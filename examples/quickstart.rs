//! Quickstart: an adaptive counting network in one process.
//!
//! Builds an adaptive `BITONIC[16]`, uses it as a shared counter, then
//! splits and merges components mid-stream to show that the counter
//! values keep flowing seamlessly while the degree of parallelism
//! changes.
//!
//! Run with `cargo run --example quickstart`.

use adaptive_counting_networks::core::LocalAdaptiveNetwork;
use adaptive_counting_networks::topology::{
    effective_depth, effective_width, ComponentDag, ComponentId,
};

fn dims(net: &LocalAdaptiveNetwork) -> (usize, usize) {
    let dag = ComponentDag::new(net.tree(), net.cut());
    (effective_width(&dag), effective_depth(&dag))
}

fn main() {
    let mut net = LocalAdaptiveNetwork::new(16);
    let root = ComponentId::root();

    // Phase 1: the whole network is one component (a centralized
    // counter) — the paper's initial configuration.
    let (w, d) = dims(&net);
    println!("phase 1: {} component(s), effective width {w}, depth {d}", net.cut().leaves().len());
    for client in 0..6u64 {
        // Clients may inject tokens on any input wire.
        let value = net.next_value((client as usize * 5) % 16);
        println!("  client {client} got counter value {value}");
    }

    // Phase 2: the system grew; split the root into six components.
    net.split(&root).expect("root splits");
    let (w, d) = dims(&net);
    println!("phase 2: {} component(s), effective width {w}, depth {d}", net.cut().leaves().len());
    for client in 6..12u64 {
        let value = net.next_value((client as usize * 3) % 16);
        println!("  client {client} got counter value {value}");
    }

    // Phase 3: grow further — split the top BITONIC[8] too.
    net.split(&root.child(0)).expect("top bitonic splits");
    let (w, d) = dims(&net);
    println!("phase 3: {} component(s), effective width {w}, depth {d}", net.cut().leaves().len());
    for client in 12..18u64 {
        let value = net.next_value((client as usize * 7) % 16);
        println!("  client {client} got counter value {value}");
    }

    // Phase 4: the system shrank; merge everything back to one.
    net.merge(&root).expect("subtree merges back");
    let (w, d) = dims(&net);
    println!("phase 4: {} component(s), effective width {w}, depth {d}", net.cut().leaves().len());
    for client in 18..24u64 {
        let value = net.next_value(client as usize % 16);
        println!("  client {client} got counter value {value}");
    }

    // The values were handed out densely: 0, 1, 2, ... with no gaps or
    // duplicates, across all four configurations.
    assert_eq!(net.total_exited(), 24);
    println!("handed out 24 consecutive counter values across 4 reconfigurations");
}
