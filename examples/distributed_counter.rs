//! A shared counter on a churning peer-to-peer system, end to end.
//!
//! Boots the full message-passing deployment (simulated Chord overlay +
//! adaptive counting network + deterministic network simulator), drives
//! client traffic while the system grows from 4 to 40 nodes and shrinks
//! back to 8, and prints what the decentralized protocol did.
//!
//! Run with `cargo run --example distributed_counter`.

use adaptive_counting_networks::core::dist::Deployment;
use adaptive_counting_networks::overlay::{splitmix64, NodeId};

fn main() {
    let w = 64;
    let mut deployment = Deployment::new(w, 4, 0xC0FFEE);
    let mut seed = 7u64;
    let mut injected = 0u64;
    let inject = |d: &mut Deployment, n: usize, injected: &mut u64, seed: &mut u64| {
        for _ in 0..n {
            d.inject((splitmix64(seed) as usize) % w);
            *injected += 1;
            d.run_for(40);
        }
    };

    println!("booting: width {w}, 4 overlay nodes, one root component");
    deployment.settle(100);
    inject(&mut deployment, 50, &mut injected, &mut seed);

    println!("growing to 40 nodes with traffic flowing...");
    for _ in 0..36 {
        deployment.join_node();
        inject(&mut deployment, 3, &mut injected, &mut seed);
    }
    assert!(deployment.settle(200), "network failed to settle after growth");
    {
        let (cut, _) = deployment.live_cut();
        let world = deployment.world.borrow();
        println!(
            "  {} nodes, {} components (levels {}..{}), {} splits so far",
            world.ring.len(),
            cut.leaves().len(),
            cut.min_level(),
            cut.max_level(),
            world.splits_done
        );
    }

    println!("shrinking to 8 nodes with traffic flowing...");
    let victims: Vec<NodeId> = deployment.world.borrow().ring.nodes().take(32).collect();
    for v in victims {
        deployment.leave_node(v);
        inject(&mut deployment, 2, &mut injected, &mut seed);
        deployment.migrate_components();
    }
    assert!(deployment.settle(300), "network failed to settle after shrink");
    deployment.run_for(500_000);

    let (cut, _) = deployment.live_cut();
    let world = deployment.world.borrow();
    let collector = deployment.collector();
    println!(
        "  {} nodes, {} components, {} merges total",
        world.ring.len(),
        cut.leaves().len(),
        world.merges_done
    );
    println!(
        "traffic: {} tokens injected, {} exited, {} routing NACKs, {} DHT lookups",
        injected,
        collector.total(),
        world.token_nacks,
        world.dht_lookups
    );
    println!("per-output-wire exits: {:?}", collector.counts);
    assert_eq!(collector.total(), injected, "token conservation violated");
    assert!(
        adaptive_counting_networks::bitonic::step::is_step_sequence(&collector.counts),
        "step property violated"
    );
    println!("token conservation and the step property held throughout.");
}
