//! An elastic load balancer: jobs are tokens, workers are output wires.
//!
//! The counting network spreads jobs across workers with the step
//! property (no worker ever holds more than one job above any other),
//! and the *adaptive* construction resizes its own parallelism as the
//! hosting cluster grows and shrinks — driven entirely by the
//! decentralized size estimator, no load-balancer node anywhere.
//!
//! Run with `cargo run --example elastic_loadbalancer`.

use adaptive_counting_networks::core::{ConvergedNetwork, LocalAdaptiveNetwork};
use adaptive_counting_networks::estimator::ideal_level;
use adaptive_counting_networks::overlay::Ring;

fn main() {
    let w = 64; // up to 64 workers
    let mut dispatcher = LocalAdaptiveNetwork::new(w);
    let mut worker_load = vec![0u64; w];
    let mut seed = 0xBA1A2CEu64;
    let mut next = move || {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        seed >> 33
    };

    // The cluster lifecycle: grow 4 -> 256 nodes, then shrink to 16.
    let mut ring = Ring::new();
    let mut ring_seed = 17u64;
    for _ in 0..4 {
        ring.add_random_node(&mut ring_seed);
    }

    for (phase, target_nodes) in [(1, 4usize), (2, 64), (3, 256), (4, 16)] {
        // Churn the overlay to the target size.
        while ring.len() < target_nodes {
            ring.add_random_node(&mut ring_seed);
        }
        while ring.len() > target_nodes {
            let victim = ring.nodes().next().expect("ring is non-empty");
            ring.remove_node(victim);
        }
        // The decentralized rules converge to a cut for this system
        // size; mirror it in the dispatcher.
        let converged = ConvergedNetwork::new(w, ring.clone());
        dispatcher.reconfigure(converged.cut());
        let snapshot = converged.snapshot();
        println!(
            "phase {phase}: {target_nodes} nodes -> {} components, effective width {}, depth {} (ideal level {})",
            snapshot.components,
            snapshot.effective_width,
            snapshot.effective_depth,
            ideal_level(target_nodes)
        );

        // Dispatch a burst of jobs from random clients.
        let burst = 500;
        for _ in 0..burst {
            let wire = (next() as usize) % w;
            let worker = dispatcher.push(wire);
            worker_load[worker] += 1;
        }
        let max = worker_load.iter().max().expect("non-empty");
        let min = worker_load.iter().min().expect("non-empty");
        println!(
            "  dispatched {burst} jobs; per-worker load now min {min} / max {max} (spread {})",
            max - min
        );
        // The step property bounds the spread by one, always.
        assert!(max - min <= 1, "load spread exceeded 1");
    }

    println!(
        "total jobs dispatched: {} — perfectly balanced through every resize",
        worker_load.iter().sum::<u64>()
    );
}
