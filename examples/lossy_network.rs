//! Exactly-once counting over an unreliable network.
//!
//! Runs the full distributed deployment with the token channel dropping
//! 15% of all messages. The GUID/acknowledgement/retransmission layer
//! still delivers every token exactly once, and the step property holds.
//!
//! Run with `cargo run --example lossy_network`.

use adaptive_counting_networks::bitonic::step::is_step_sequence;
use adaptive_counting_networks::core::dist::Deployment;
use adaptive_counting_networks::overlay::splitmix64;

fn main() {
    let w = 32;
    let loss_per_mille = 150; // 15% of token messages vanish
    let mut d = Deployment::with_loss(w, 12, 0x10_55, loss_per_mille);
    d.settle(100);

    let mut seed = 3u64;
    let mut injected = 0u64;
    println!("injecting 200 tokens through a network dropping 15% of token messages...");
    for _ in 0..50 {
        for _ in 0..4 {
            d.inject((splitmix64(&mut seed) as usize) % w);
            injected += 1;
        }
        d.run_for(500);
    }
    assert!(d.settle(400), "network failed to settle");
    d.run_for(500_000);

    let c = d.collector();
    let world = d.world.borrow();
    let sim = d.sim.stats();
    println!("tokens injected:        {injected}");
    println!("tokens delivered:       {} (exactly once)", c.total());
    println!("messages lost to drops: {}", sim.messages_lost);
    println!("retransmissions:        {}", world.token_retransmits);
    println!("routing NACKs:          {}", world.token_nacks);
    println!("per-wire exits:         {:?}", c.counts);
    assert_eq!(c.total(), injected, "exactly-once violated");
    assert!(is_step_sequence(&c.counts), "step property violated");
    println!("every token was delivered exactly once despite the loss.");
}
