//! Producer/consumer matching with two back-to-back counting networks
//! (the application sketched in Section 1.1 of the paper), using the
//! library's [`MatchMaker`].
//!
//! Producers asynchronously announce available resources and consumers
//! asynchronously request them; each side pushes tokens through its own
//! adaptive counting network, and equal slot numbers match — no lock, no
//! queue, no coordinator. The step property guarantees every request is
//! matched with exactly one supply as soon as both exist, even while the
//! networks are being resized.
//!
//! Run with `cargo run --example producer_consumer`.
//!
//! [`MatchMaker`]: adaptive_counting_networks::core::MatchMaker

use adaptive_counting_networks::core::matching::{MatchMaker, MatchOutcome, Side};
use adaptive_counting_networks::topology::ComponentId;

fn main() {
    let w = 8;
    let mut matcher: MatchMaker<String, String> = MatchMaker::new(w);
    // The supply side is busy: give it more parallelism up front.
    matcher.split(Side::Supply, &ComponentId::root()).expect("root splits");

    let mut lcg = 0x5EEDu64;
    let mut next = move || {
        lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        lcg >> 33
    };

    let mut matched = Vec::new();
    // Producers and consumers arrive interleaved, on arbitrary wires.
    for round in 0..12u64 {
        let wire = (next() as usize) % w;
        if let MatchOutcome::Matched { slot, supply, request } =
            matcher.supply(format!("cpu-slice-{round}"), wire)
        {
            matched.push((slot, supply, request));
        }
        if round % 3 != 2 {
            let wire = (next() as usize) % w;
            if let MatchOutcome::Matched { slot, supply, request } =
                matcher.request(format!("job-{round}"), wire)
            {
                matched.push((slot, supply, request));
            }
        }
        if round == 6 {
            // Mid-stream resize of the request side: matching continues.
            matcher.split(Side::Request, &ComponentId::root()).expect("root splits");
        }
    }
    // Latecomer consumers drain the remaining supply.
    for late in 0..4u64 {
        let wire = (next() as usize) % w;
        if let MatchOutcome::Matched { slot, supply, request } =
            matcher.request(format!("late-job-{late}"), wire)
        {
            matched.push((slot, supply, request));
        }
    }

    matched.sort_by_key(|&(slot, _, _)| slot);
    println!("matched {} producer/consumer pairs:", matched.len());
    for (slot, what, who) in &matched {
        println!("  slot {slot}: {what} -> {who}");
    }
    println!(
        "unmatched: {} supplies, {} requests",
        matcher.outstanding_supplies(),
        matcher.outstanding_requests()
    );

    // 12 supplies vs 12 requests: everything matches exactly once, on
    // consecutive slots with no gaps.
    assert_eq!(matched.len(), 12);
    assert_eq!(matcher.outstanding_requests(), 0);
    for (expect, (slot, _, _)) in matched.iter().enumerate() {
        assert_eq!(*slot, expect as u64);
    }
    println!("every request was matched with exactly one supply.");
}
