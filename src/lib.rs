//! Facade crate for the *Adaptive Counting Networks* reproduction
//! (Tirthapura, ICDCS 2005).
//!
//! This crate re-exports the member crates of the workspace so that
//! examples and downstream users can depend on a single package:
//!
//! - [`topology`] — the decomposition tree `T_w`, cuts, wiring, metrics.
//! - [`bitonic`] — static balancer-level counting networks and baselines.
//! - [`overlay`] — the simulated Chord-style peer-to-peer overlay.
//! - [`estimator`] — decentralized system-size and level estimation.
//! - [`simnet`] — the deterministic discrete-event message simulator.
//! - [`core`] — the adaptive counting network itself (local and
//!   distributed runtimes, split/merge protocols, routing).
//! - [`periodic`] — the adaptive *periodic* network: the paper's
//!   generality claim transferred to a second recursive decomposition.
//! - [`telemetry`] — metrics registry and structured event tracing used
//!   to observe all of the above (see `DESIGN.md` §"Telemetry").
//! - [`trace`] — causal per-token span tracing, the flight recorder,
//!   and the Chrome `trace_event` exporter (see `DESIGN.md` §10).

pub use acn_bitonic as bitonic;
pub use acn_core as core;
pub use acn_estimator as estimator;
pub use acn_overlay as overlay;
pub use acn_periodic as periodic;
pub use acn_simnet as simnet;
pub use acn_telemetry as telemetry;
pub use acn_topology as topology;
pub use acn_trace as trace;
