//! `acn-sim` — command-line driver for the adaptive counting network.
//!
//! Subcommands:
//!
//! - `run [--width W] [--nodes N] [--grow G] [--shrink S] [--tokens T]
//!   [--seed X]` — boot a full message-passing deployment, apply a
//!   grow/shrink churn schedule with traffic, and print the protocol
//!   report.
//! - `converge [--width W] [--seed X] N...` — print the converged
//!   network snapshot (components, levels, effective dimensions) for
//!   each system size.
//! - `estimate [--seed X] N...` — run the decentralized size estimator
//!   on seeded rings and print the accuracy bands.
//!
//! Everything is deterministic given `--seed`.

use std::process::ExitCode;

use adaptive_counting_networks::bitonic::step::is_step_sequence;
use adaptive_counting_networks::core::dist::Deployment;
use adaptive_counting_networks::core::ConvergedNetwork;
use adaptive_counting_networks::estimator::{estimate_size, ideal_level};
use adaptive_counting_networks::overlay::{splitmix64, NodeId, Ring};

struct Args {
    flags: Vec<(String, String)>,
    positional: Vec<String>,
}

impl Args {
    fn parse(raw: &[String]) -> Result<Args, String> {
        let mut flags = Vec::new();
        let mut positional = Vec::new();
        let mut it = raw.iter();
        while let Some(arg) = it.next() {
            if let Some(name) = arg.strip_prefix("--") {
                let value = it
                    .next()
                    .ok_or_else(|| format!("flag --{name} needs a value"))?;
                flags.push((name.to_owned(), value.clone()));
            } else {
                positional.push(arg.clone());
            }
        }
        Ok(Args { flags, positional })
    }

    fn get(&self, name: &str, default: u64) -> Result<u64, String> {
        match self.flags.iter().find(|(n, _)| n == name) {
            None => Ok(default),
            Some((_, v)) => v
                .parse()
                .map_err(|_| format!("--{name} expects an integer, got {v:?}")),
        }
    }
}

fn usage() -> &'static str {
    "usage: acn-sim <run|converge|estimate> [flags] [args]\n\
     \n\
     acn-sim run      [--width 64] [--nodes 4] [--grow 28] [--shrink 24] [--tokens 300] [--seed 1]\n\
     acn-sim converge [--width 8192] [--seed 1] <N>...\n\
     acn-sim estimate [--seed 1] <N>...\n"
}

fn cmd_run(args: &Args) -> Result<(), String> {
    let width = args.get("width", 64)? as usize;
    let nodes = args.get("nodes", 4)? as usize;
    let grow = args.get("grow", 28)? as usize;
    let shrink = args.get("shrink", 24)? as usize;
    let tokens = args.get("tokens", 300)?;
    let seed = args.get("seed", 1)?;
    if !width.is_power_of_two() || width < 2 {
        return Err(format!("--width must be a power of two >= 2, got {width}"));
    }
    if shrink >= nodes + grow {
        return Err("churn schedule would empty the overlay".to_owned());
    }
    println!("booting deployment: width {width}, {nodes} nodes, seed {seed}");
    let mut d = Deployment::new(width, nodes, seed);
    d.settle(100);
    let mut s = seed ^ 0x1234;
    let mut injected = 0u64;
    let phase_tokens = tokens / 3;
    let inject = |d: &mut Deployment, n: u64, injected: &mut u64, s: &mut u64| {
        for _ in 0..n {
            d.inject((splitmix64(s) as usize) % width);
            *injected += 1;
            d.run_for(40);
        }
    };
    inject(&mut d, phase_tokens, &mut injected, &mut s);
    println!("growing by {grow} nodes...");
    for _ in 0..grow {
        d.join_node();
        d.run_for(200);
    }
    d.settle(200);
    inject(&mut d, phase_tokens, &mut injected, &mut s);
    println!("shrinking by {shrink} nodes...");
    let victims: Vec<NodeId> = d.world.borrow().ring.nodes().take(shrink).collect();
    for v in victims {
        d.leave_node(v);
        d.run_for(200);
        d.migrate_components();
    }
    d.settle(300);
    inject(&mut d, tokens - injected, &mut injected, &mut s);
    d.settle(100);
    d.run_for(500_000);

    let (cut, _) = d.live_cut();
    let world = d.world.borrow();
    let c = d.collector();
    println!("--- report ---");
    println!("nodes: {}", world.ring.len());
    println!(
        "components: {} (levels {}..{})",
        cut.leaves().len(),
        cut.min_level(),
        cut.max_level()
    );
    println!("splits: {}  merges: {}", world.splits_done, world.merges_done);
    println!("dht lookups: {}  routing nacks: {}", world.dht_lookups, world.token_nacks);
    println!("tokens injected: {injected}  exited: {}", c.total());
    if c.total() > 0 {
        println!(
            "latency: mean {} max {} (sim units)",
            c.total_latency / c.total(),
            c.max_latency
        );
    }
    println!("step property: {}", is_step_sequence(&c.counts));
    if c.total() != injected {
        return Err("token conservation violated".to_owned());
    }
    Ok(())
}

fn cmd_converge(args: &Args) -> Result<(), String> {
    let width = args.get("width", 8192)? as usize;
    let seed = args.get("seed", 1)?;
    if args.positional.is_empty() {
        return Err("converge needs at least one system size".to_owned());
    }
    println!(
        "{:>8} {:>11} {:>8} {:>8} {:>10} {:>10} {:>10}",
        "N", "components", "levels", "l*", "eff width", "eff depth", "max/node"
    );
    for raw in &args.positional {
        let n: usize = raw.parse().map_err(|_| format!("bad system size {raw:?}"))?;
        let mut ring = Ring::new();
        let mut s = seed + n as u64;
        for _ in 0..n {
            ring.add_random_node(&mut s);
        }
        let net = ConvergedNetwork::new(width, ring);
        let snap = net.snapshot();
        println!(
            "{:>8} {:>11} {:>8} {:>8} {:>10} {:>10} {:>10}",
            n,
            snap.components,
            format!("{}..{}", snap.min_level, snap.max_level),
            snap.ideal_level,
            snap.effective_width,
            snap.effective_depth,
            snap.max_components_per_node
        );
    }
    Ok(())
}

fn cmd_estimate(args: &Args) -> Result<(), String> {
    let seed = args.get("seed", 1)?;
    if args.positional.is_empty() {
        return Err("estimate needs at least one system size".to_owned());
    }
    println!("{:>8} {:>10} {:>10} {:>10} {:>6}", "N", "min ratio", "max ratio", "in [1/10,10]", "l*");
    for raw in &args.positional {
        let n: usize = raw.parse().map_err(|_| format!("bad system size {raw:?}"))?;
        let mut ring = Ring::new();
        let mut s = seed + 31 * n as u64;
        for _ in 0..n {
            ring.add_random_node(&mut s);
        }
        let mut min_ratio = f64::INFINITY;
        let mut max_ratio: f64 = 0.0;
        let mut inside = 0usize;
        for node in ring.nodes().collect::<Vec<_>>() {
            let ratio = estimate_size(&ring, node).size / n as f64;
            min_ratio = min_ratio.min(ratio);
            max_ratio = max_ratio.max(ratio);
            if (0.1..=10.0).contains(&ratio) {
                inside += 1;
            }
        }
        println!(
            "{:>8} {:>10.3} {:>10.3} {:>12.4} {:>6}",
            n,
            min_ratio,
            max_ratio,
            inside as f64 / n as f64,
            ideal_level(n)
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = raw.split_first() else {
        eprint!("{}", usage());
        return ExitCode::FAILURE;
    };
    let args = match Args::parse(rest) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "run" => cmd_run(&args),
        "converge" => cmd_converge(&args),
        "estimate" => cmd_estimate(&args),
        _ => Err(format!("unknown subcommand {cmd:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n{}", usage());
            ExitCode::FAILURE
        }
    }
}
