//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this workspace
//! vendors the `proptest` API subset its test suites actually use:
//!
//! - the [`proptest!`] macro (`fn name(arg in strategy, ...) { ... }`),
//! - [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`],
//! - [`strategy::Strategy`] with `prop_map`, integer-range strategies,
//!   tuples, [`arbitrary::any`], [`collection::vec`],
//!   [`collection::btree_set`], and [`sample::select`].
//!
//! Inputs are generated from a deterministic splitmix64 stream seeded
//! per test (so failures reproduce), with `PROPTEST_CASES` controlling
//! the number of cases per test (default 48). Shrinking is not
//! implemented: a failing case reports the assertion message only.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Deterministic RNG and case-count plumbing used by the [`proptest!`]
/// macro expansion.
pub mod test_runner {
    /// Error type produced by `prop_assert!`-style macros and propagated
    /// with `?` inside test bodies.
    #[derive(Clone, PartialEq, Eq)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// A failed assertion with the given message.
        #[must_use]
        pub fn fail(msg: String) -> Self {
            TestCaseError(msg)
        }
    }

    impl std::fmt::Debug for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    /// The deterministic pseudo-random stream driving input generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A stream seeded with `seed`.
        #[must_use]
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed ^ 0x5DEE_CE66_D1CE_4E5B }
        }

        /// The next pseudo-random `u64` (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A uniform value in `[0, bound)`; `bound` must be positive.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0, "below(0)");
            self.next_u64() % bound
        }
    }

    /// Number of cases each property test runs (`PROPTEST_CASES`,
    /// default 48).
    #[must_use]
    pub fn cases() -> u64 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&c| c > 0)
            .unwrap_or(48)
    }

    /// A stable seed derived from the test name (FNV-1a).
    #[must_use]
    pub fn seed_for(name: &str) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01B3);
        }
        h
    }
}

/// The [`Strategy`](strategy::Strategy) trait and its combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value from the deterministic stream.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + (rng.below(span) as $t)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        // Full-width inclusive range.
                        rng.next_u64() as $t
                    } else {
                        lo + (rng.below(span) as $t)
                    }
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! tuple_strategy {
        ($(($($s:ident / $idx:tt),+)),+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }
    tuple_strategy!((A / 0, B / 1), (A / 0, B / 1, C / 2), (A / 0, B / 1, C / 2, D / 3));

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// The strategy produced by [`Just`](crate::prelude::Just): always
    /// the same value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

/// `any::<T>()` — the full-range strategy for primitive types.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// The canonical strategy for `T` (full value range).
    #[must_use]
    pub fn any<T>() -> Any<T>
    where
        Any<T>: Strategy<Value = T>,
    {
        Any(std::marker::PhantomData)
    }

    macro_rules! any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies (`vec`, `btree_set`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `Vec` of `size.start..size.end` elements drawn from `element`.
    #[must_use]
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// The strategy returned by [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `BTreeSet` whose size lies in `size` (duplicates permitting).
    #[must_use]
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.generate(rng);
            let mut set = BTreeSet::new();
            // Bounded retries: duplicates from a narrow element domain
            // must not hang generation.
            let mut budget = 16 * (target + 1);
            while set.len() < target && budget > 0 {
                set.insert(self.element.generate(rng));
                budget -= 1;
            }
            set
        }
    }
}

/// `sample::select` — pick uniformly from a fixed list.
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy returned by [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone>(Vec<T>);

    /// Uniformly selects one of `options` (must be non-empty).
    #[must_use]
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from an empty list");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }
}

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) BODY`
/// becomes a `#[test]` (the attribute is written inside the macro, as in
/// real proptest) that runs `BODY` against `PROPTEST_CASES` random
/// inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let cases = $crate::test_runner::cases();
                let mut rng = $crate::test_runner::TestRng::new(
                    $crate::test_runner::seed_for(stringify!($name)),
                );
                for case in 0..cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("property '{}' failed at case {case}: {e}", stringify!($name));
                    }
                }
            }
        )*
    };
}

/// `assert!` that reports through the proptest error channel.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// `assert_eq!` that reports through the proptest error channel.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "{} (left: `{:?}`, right: `{:?}`)",
            format!($($fmt)*), a, b
        );
    }};
}

/// `assert_ne!` that reports through the proptest error channel.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($a), stringify!($b), a
        );
    }};
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            // Rejected input: treat the case as vacuously passing.
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(7);
        let mut b = TestRng::new(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u64..17, y in 0usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn vec_sizes_respect_bounds(v in crate::collection::vec(0u32..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 10));
        }

        #[test]
        fn btree_set_within_bounds(s in crate::collection::btree_set(any::<u64>(), 1..40)) {
            prop_assert!(!s.is_empty() && s.len() < 40);
        }

        #[test]
        fn select_picks_member(x in crate::sample::select(vec![2u8, 3, 5, 7])) {
            prop_assert!([2u8, 3, 5, 7].contains(&x));
        }

        #[test]
        fn prop_map_applies(x in (0u64..10).prop_map(|v| v * 2)) {
            prop_assert!(x % 2 == 0 && x < 20);
        }

        #[test]
        fn tuples_and_assume(pair in (0u32..4, any::<bool>())) {
            prop_assume!(pair.0 != 3);
            prop_assert!(pair.0 < 3);
        }
    }
}
