//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no crates.io access, so this workspace
//! vendors the small API subset it actually uses as thin wrappers over
//! `std::sync`. Semantics match `parking_lot` where they matter to this
//! codebase:
//!
//! - `lock()` / `read()` / `write()` return guards directly (no
//!   `Result`); poisoning is transparently ignored, like `parking_lot`,
//!   by recovering the inner guard from a poisoned lock.
//! - `try_lock()` / `try_read()` / `try_write()` return `Option`.
//!
//! Fairness, timed locks, and the raw-lock APIs are not provided; the
//! workspace does not use them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::sync::{self, TryLockError};

/// A mutual exclusion primitive (non-poisoning wrapper over
/// [`std::sync::Mutex`]).
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard of a locked [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available. A panic in
    /// another thread while holding the lock does not poison it.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// A reader-writer lock (non-poisoning wrapper over
/// [`std::sync::RwLock`]).
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII guard of a read-locked [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII guard of a write-locked [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_contends() {
        let m = Mutex::new(0u32);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(5u32);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 10);
            assert!(l.try_write().is_none());
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn panic_does_not_poison() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock must recover from a poisoned state");
    }
}
