//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this workspace
//! vendors the `criterion` API subset its benches use: benchmark
//! groups, `bench_function` / `bench_with_input`, `Bencher::iter` /
//! `iter_with_setup`, `BenchmarkId`, `Throughput`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is deliberately simple: each benchmark is warmed once,
//! then timed over enough iterations to cover a small wall-clock budget,
//! and the mean time per iteration is printed. There are no statistics,
//! plots, or baselines — the goal is that `cargo bench` compiles, runs,
//! and produces usable magnitude numbers offline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measuring time per benchmark.
const BUDGET: Duration = Duration::from_millis(40);
/// Minimum iterations per benchmark.
const MIN_ITERS: u64 = 10;

/// Throughput annotation (recorded, displayed alongside results).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new<N: Display, P: Display>(name: N, parameter: P) -> Self {
        BenchmarkId { id: format!("{name}/{parameter}") }
    }

    /// An id rendered as the parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The per-benchmark timing driver handed to bench closures.
#[derive(Debug, Default)]
pub struct Bencher {
    /// Mean nanoseconds per iteration of the last `iter` call.
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Times `routine` over an adaptive number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up
        let mut iters = 0u64;
        let start = Instant::now();
        while iters < MIN_ITERS || start.elapsed() < BUDGET {
            black_box(routine());
            iters += 1;
            if iters >= 1_000_000 {
                break;
            }
        }
        let elapsed = start.elapsed();
        self.iters = iters;
        self.mean_ns = elapsed.as_nanos() as f64 / iters as f64;
    }

    /// Times `routine` on fresh input from `setup`; only the routine is
    /// (approximately) accounted, setup time is subtracted.
    pub fn iter_with_setup<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
    ) {
        black_box(routine(setup())); // warm-up
        let mut iters = 0u64;
        let mut in_routine = Duration::ZERO;
        let wall = Instant::now();
        while iters < MIN_ITERS || wall.elapsed() < BUDGET {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            in_routine += t.elapsed();
            iters += 1;
            if iters >= 1_000_000 {
                break;
            }
        }
        self.iters = iters;
        self.mean_ns = in_routine.as_nanos() as f64 / iters as f64;
    }
}

fn report(group: &str, id: &str, b: &Bencher, throughput: Option<Throughput>) {
    let scale = |ns: f64| -> String {
        if ns >= 1e9 {
            format!("{:.3} s", ns / 1e9)
        } else if ns >= 1e6 {
            format!("{:.3} ms", ns / 1e6)
        } else if ns >= 1e3 {
            format!("{:.3} µs", ns / 1e3)
        } else {
            format!("{ns:.1} ns")
        }
    };
    let extra = match throughput {
        Some(Throughput::Elements(n)) if b.mean_ns > 0.0 => {
            format!("  ({:.2} Melem/s)", n as f64 * 1e3 / b.mean_ns)
        }
        Some(Throughput::Bytes(n)) if b.mean_ns > 0.0 => {
            format!("  ({:.2} MiB/s)", n as f64 * 1e9 / b.mean_ns / (1024.0 * 1024.0))
        }
        _ => String::new(),
    };
    let name = if group.is_empty() { id.to_owned() } else { format!("{group}/{id}") };
    println!("bench {name:<48} {:>12}/iter  ({} iters){extra}", scale(b.mean_ns), b.iters);
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; sampling is adaptive here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::default();
        f(&mut b);
        report(&self.name, &id.id, &b, self.throughput);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b, input);
        report(&self.name, &id.id, &b, self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<N: Into<String>>(&mut self, name: N) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), throughput: None, _criterion: self }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        report("", id, &b, None);
        self
    }
}

/// Bundles bench functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::default();
        b.iter(|| black_box(2u64 + 2));
        assert!(b.iters >= MIN_ITERS);
        assert!(b.mean_ns >= 0.0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Elements(1));
        g.bench_function("add", |b| b.iter(|| black_box(1u32 + 1)));
        g.bench_with_input(BenchmarkId::new("mul", 3), &3u64, |b, &x| {
            b.iter(|| black_box(x * x))
        });
        g.finish();
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 8).id, "f/8");
        assert_eq!(BenchmarkId::from_parameter(42).id, "42");
    }
}
