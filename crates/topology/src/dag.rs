//! The component-level directed acyclic graph induced by a cut.

use std::collections::HashMap;

use crate::cut::Cut;
use crate::id::ComponentId;
use crate::tree::Tree;
use crate::wiring::{CutWiring, WiringStyle};

/// A directed edge between two components of a cut (deduplicated; a pair
/// of components may be joined by several wires).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DagEdge {
    /// Index of the source vertex in [`ComponentDag::vertices`].
    pub from: usize,
    /// Index of the destination vertex.
    pub to: usize,
    /// Number of parallel wires realizing this edge.
    pub wires: usize,
}

/// The component graph of a cut: vertices are the cut's leaf components,
/// edges follow the wires (Section 1.4 of the paper models the adaptive
/// network exactly like this).
///
/// # Example
///
/// ```
/// use acn_topology::{Tree, Cut, ComponentId, ComponentDag};
///
/// let tree = Tree::new(8);
/// let mut cut = Cut::root();
/// cut.split(&tree, &ComponentId::root()).unwrap();
/// let dag = ComponentDag::new(&tree, &cut);
/// assert_eq!(dag.vertices().len(), 6);
/// assert_eq!(dag.input_layer().len(), 2);  // the two BITONIC[4]
/// assert_eq!(dag.output_layer().len(), 2); // the two MIX[4]
/// ```
#[derive(Debug, Clone)]
pub struct ComponentDag {
    vertices: Vec<ComponentId>,
    index: HashMap<ComponentId, usize>,
    edges: Vec<DagEdge>,
    adjacency: Vec<Vec<usize>>, // vertex -> outgoing edge indices
    input_layer: Vec<usize>,
    output_layer: Vec<usize>,
}

impl ComponentDag {
    /// Builds the DAG for `cut` over `tree` with the default wiring style.
    ///
    /// # Panics
    ///
    /// Panics if the cut is invalid.
    #[must_use]
    pub fn new(tree: &Tree, cut: &Cut) -> Self {
        Self::from_wiring(&CutWiring::new(tree, cut), cut)
    }

    /// Builds the DAG for `cut` with an explicit wiring style.
    ///
    /// # Panics
    ///
    /// Panics if the cut is invalid.
    #[must_use]
    pub fn with_style(tree: &Tree, cut: &Cut, style: WiringStyle) -> Self {
        Self::from_wiring(&CutWiring::with_style(tree, cut, style), cut)
    }

    /// Builds the DAG from an already-resolved wiring.
    #[must_use]
    pub fn from_wiring(wiring: &CutWiring, cut: &Cut) -> Self {
        let vertices: Vec<ComponentId> = cut.leaves().iter().cloned().collect();
        let index: HashMap<ComponentId, usize> =
            vertices.iter().cloned().enumerate().map(|(i, v)| (v, i)).collect();
        let tree = wiring.tree();
        let mut edge_wires: HashMap<(usize, usize), usize> = HashMap::new();
        let mut output_layer_set = vec![false; vertices.len()];
        for (vi, v) in vertices.iter().enumerate() {
            let width = tree.info(v).expect("valid leaf").width;
            for port in 0..width {
                if let Some(dest) = wiring.out_neighbor(v, port) {
                    let di = index[dest];
                    *edge_wires.entry((vi, di)).or_insert(0) += 1;
                } else {
                    output_layer_set[vi] = true;
                }
            }
        }
        let mut input_layer_set = vec![false; vertices.len()];
        for wire in 0..tree.width() {
            input_layer_set[index[&wiring.input_owner(wire).id]] = true;
        }
        let mut edges: Vec<DagEdge> = edge_wires
            .into_iter()
            .map(|((from, to), wires)| DagEdge { from, to, wires })
            .collect();
        edges.sort_by_key(|e| (e.from, e.to));
        let mut adjacency = vec![Vec::new(); vertices.len()];
        for (ei, e) in edges.iter().enumerate() {
            adjacency[e.from].push(ei);
        }
        let input_layer =
            (0..vertices.len()).filter(|&i| input_layer_set[i]).collect();
        let output_layer =
            (0..vertices.len()).filter(|&i| output_layer_set[i]).collect();
        ComponentDag { vertices, index, edges, adjacency, input_layer, output_layer }
    }

    /// The components, in the order used by vertex indices.
    #[must_use]
    pub fn vertices(&self) -> &[ComponentId] {
        &self.vertices
    }

    /// The vertex index of a component, if present.
    #[must_use]
    pub fn vertex_index(&self, id: &ComponentId) -> Option<usize> {
        self.index.get(id).copied()
    }

    /// The deduplicated edges.
    #[must_use]
    pub fn edges(&self) -> &[DagEdge] {
        &self.edges
    }

    /// Outgoing edge indices of a vertex.
    #[must_use]
    pub fn outgoing(&self, vertex: usize) -> &[usize] {
        &self.adjacency[vertex]
    }

    /// Vertices that own at least one network input wire.
    #[must_use]
    pub fn input_layer(&self) -> &[usize] {
        &self.input_layer
    }

    /// Vertices that own at least one network output wire.
    #[must_use]
    pub fn output_layer(&self) -> &[usize] {
        &self.output_layer
    }

    /// A topological order of the vertices.
    ///
    /// # Panics
    ///
    /// Panics if the graph contains a cycle (impossible for wirings
    /// produced by this crate; balancing networks are acyclic).
    #[must_use]
    pub fn topological_order(&self) -> Vec<usize> {
        let n = self.vertices.len();
        let mut indegree = vec![0usize; n];
        for e in &self.edges {
            indegree[e.to] += 1;
        }
        let mut queue: Vec<usize> = (0..n).filter(|&v| indegree[v] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(v) = queue.pop() {
            order.push(v);
            for &ei in &self.adjacency[v] {
                let to = self.edges[ei].to;
                indegree[to] -= 1;
                if indegree[to] == 0 {
                    queue.push(to);
                }
            }
        }
        assert_eq!(order.len(), n, "component graph contains a cycle");
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_cut_dag_is_a_single_vertex() {
        let tree = Tree::new(8);
        let dag = ComponentDag::new(&tree, &Cut::root());
        assert_eq!(dag.vertices().len(), 1);
        assert!(dag.edges().is_empty());
        assert_eq!(dag.input_layer(), &[0]);
        assert_eq!(dag.output_layer(), &[0]);
    }

    #[test]
    fn level1_cut_dag_structure() {
        let tree = Tree::new(8);
        let mut cut = Cut::root();
        cut.split(&tree, &ComponentId::root()).unwrap();
        let dag = ComponentDag::new(&tree, &cut);
        // B -> {MT, MB} x2, M -> {XT, XB} x2: 8 deduplicated edges.
        assert_eq!(dag.edges().len(), 8);
        // Each B->M edge carries 2 wires (4 outputs split across 2 mergers).
        for e in dag.edges() {
            assert_eq!(e.wires, 2);
        }
        assert_eq!(dag.input_layer().len(), 2);
        assert_eq!(dag.output_layer().len(), 2);
    }

    #[test]
    fn balancer_cut_dag_is_acyclic_and_layered() {
        for w in [4usize, 8, 16] {
            let tree = Tree::new(w);
            let dag = ComponentDag::new(&tree, &Cut::balancers(&tree));
            let order = dag.topological_order();
            assert_eq!(order.len(), dag.vertices().len());
            // Input layer of the balancer cut has w/2 balancers.
            assert_eq!(dag.input_layer().len(), w / 2, "w={w}");
            assert_eq!(dag.output_layer().len(), w / 2, "w={w}");
        }
    }

    #[test]
    fn mixed_level_cut_dag_valid() {
        let tree = Tree::new(16);
        let root = ComponentId::root();
        let mut cut = Cut::root();
        cut.split(&tree, &root).unwrap();
        cut.split(&tree, &root.child(0)).unwrap();
        cut.split(&tree, &root.child(3)).unwrap();
        let dag = ComponentDag::new(&tree, &cut);
        let _ = dag.topological_order(); // must not panic
        // Vertex count: 6 - 2 + 6 + 4 = 14.
        assert_eq!(dag.vertices().len(), 14);
    }

    #[test]
    fn vertex_index_roundtrip() {
        let tree = Tree::new(8);
        let mut cut = Cut::root();
        cut.split(&tree, &ComponentId::root()).unwrap();
        let dag = ComponentDag::new(&tree, &cut);
        for (i, v) in dag.vertices().iter().enumerate() {
            assert_eq!(dag.vertex_index(v), Some(i));
        }
        assert_eq!(dag.vertex_index(&ComponentId::root()), None);
    }
}
