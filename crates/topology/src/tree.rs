//! The decomposition tree `T_w` of `BITONIC[w]`.

use std::fmt;

use crate::id::ComponentId;
use crate::kind::ComponentKind;

/// Resolved information about a node of `T_w`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NodeInfo {
    /// The node's identifier (path from the root).
    pub id: ComponentId,
    /// The kind of the component.
    pub kind: ComponentKind,
    /// The width (number of input/output wires) of the component.
    pub width: usize,
    /// The level in `T_w`; the root is at level 0.
    pub level: usize,
}

impl NodeInfo {
    /// Whether this node is a leaf of `T_w`, i.e. an individual balancer.
    #[must_use]
    pub fn is_balancer(&self) -> bool {
        self.width == 2
    }

    /// Number of children in `T_w` (0 for balancers).
    #[must_use]
    pub fn child_count(&self) -> usize {
        if self.is_balancer() {
            0
        } else {
            self.kind.arity()
        }
    }
}

impl fmt::Display for NodeInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]{}", self.kind.tag(), self.width, self.id)
    }
}

/// The decomposition tree `T_w` for a bitonic network of width `w`.
///
/// The tree itself is never materialized: all queries are computed from
/// paths. `w` must be a power of two and at least 2.
///
/// # Example
///
/// ```
/// use acn_topology::{Tree, ComponentId, ComponentKind};
///
/// let tree = Tree::new(16);
/// let info = tree.info(&ComponentId::root().child(2)).unwrap();
/// assert_eq!(info.kind, ComponentKind::Merger);
/// assert_eq!(info.width, 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tree {
    width: usize,
}

impl Tree {
    /// Creates the decomposition tree for `BITONIC[width]`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not a power of two or is less than 2.
    #[must_use]
    pub fn new(width: usize) -> Self {
        assert!(
            width >= 2 && width.is_power_of_two(),
            "width must be a power of two >= 2, got {width}"
        );
        Tree { width }
    }

    /// The width `w` of the root network.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// The maximum level of `T_w`: balancer leaves live at level
    /// `log2(w) - 1`.
    #[must_use]
    pub fn max_level(&self) -> usize {
        self.width.trailing_zeros() as usize - 1
    }

    /// Resolves a component identifier to its kind/width/level, or `None`
    /// if the path is invalid for this tree (bad child index, or deeper
    /// than the balancer level).
    #[must_use]
    pub fn info(&self, id: &ComponentId) -> Option<NodeInfo> {
        if id.level() > self.max_level() {
            return None;
        }
        let kind = id.kind()?;
        Some(NodeInfo {
            id: id.clone(),
            kind,
            width: self.width >> id.level(),
            level: id.level(),
        })
    }

    /// The children of `id` in `T_w`, or an empty vector for balancers.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a valid node of this tree.
    #[must_use]
    pub fn children(&self, id: &ComponentId) -> Vec<ComponentId> {
        let info = self.info(id).expect("invalid component id");
        (0..info.child_count() as u8).map(|i| id.child(i)).collect()
    }

    /// Size (node count) of the subtree rooted at a node of the given kind
    /// and width.
    #[must_use]
    pub fn subtree_size_of(kind: ComponentKind, width: usize) -> u64 {
        assert!(width >= 2 && width.is_power_of_two());
        if width == 2 {
            return 1;
        }
        let half = width / 2;
        let x = Self::subtree_size_of(ComponentKind::Mix, half);
        match kind {
            ComponentKind::Mix => 1 + 2 * x,
            ComponentKind::Merger => {
                1 + 2 * Self::subtree_size_of(ComponentKind::Merger, half) + 2 * x
            }
            ComponentKind::Bitonic => {
                1 + 2 * Self::subtree_size_of(ComponentKind::Bitonic, half)
                    + 2 * Self::subtree_size_of(ComponentKind::Merger, half)
                    + 2 * x
            }
        }
    }

    /// Size of the subtree rooted at `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a valid node of this tree.
    #[must_use]
    pub fn subtree_size(&self, id: &ComponentId) -> u64 {
        let info = self.info(id).expect("invalid component id");
        Self::subtree_size_of(info.kind, info.width)
    }

    /// Total number of nodes in `T_w`.
    #[must_use]
    pub fn node_count(&self) -> u64 {
        Self::subtree_size_of(ComponentKind::Bitonic, self.width)
    }

    /// The paper's *name* of a component: its position in a pre-order
    /// traversal of `T_w` (the root has name 0).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a valid node of this tree.
    #[must_use]
    pub fn preorder_index(&self, id: &ComponentId) -> u64 {
        let mut name = 0u64;
        let mut prefix = ComponentId::root();
        for &step in id.path() {
            name += 1; // enter the child region
            for sibling in 0..step {
                name += self.subtree_size(&prefix.child(sibling));
            }
            prefix = prefix.child(step);
        }
        name
    }

    /// Inverse of [`preorder_index`](Tree::preorder_index).
    ///
    /// Returns `None` if `name >= self.node_count()`.
    #[must_use]
    pub fn from_preorder_index(&self, mut name: u64) -> Option<ComponentId> {
        if name >= self.node_count() {
            return None;
        }
        let mut id = ComponentId::root();
        while name > 0 {
            name -= 1; // step into the children region
            let info = self.info(&id).expect("valid by construction");
            let mut found = false;
            for c in 0..info.child_count() as u8 {
                let sz = self.subtree_size(&id.child(c));
                if name < sz {
                    id = id.child(c);
                    found = true;
                    break;
                }
                name -= sz;
            }
            debug_assert!(found, "preorder index arithmetic out of bounds");
        }
        Some(id)
    }

    /// Iterates over every node of `T_w` in pre-order. Only use for small
    /// trees: `T_w` has `O(w log^2 w)` nodes.
    pub fn iter_preorder(&self) -> impl Iterator<Item = NodeInfo> + '_ {
        let mut stack = vec![ComponentId::root()];
        std::iter::from_fn(move || {
            let id = stack.pop()?;
            let info = self.info(&id).expect("valid by construction");
            for c in (0..info.child_count() as u8).rev() {
                stack.push(id.child(c));
            }
            Some(info)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = Tree::new(6);
    }

    #[test]
    fn balancer_count_of_bitonic_network() {
        // A width-w bitonic network has w*log(w)*(log(w)+1)/4 balancers
        // (paper, Section 2). Balancers are the leaves of T_w.
        for logw in 1..=7u32 {
            let w = 1usize << logw;
            let tree = Tree::new(w);
            let balancers: u64 = tree
                .iter_preorder()
                .filter(NodeInfo::is_balancer)
                .count() as u64;
            let expected = (w as u64) * u64::from(logw) * (u64::from(logw) + 1) / 4;
            assert_eq!(balancers, expected, "w={w}");
        }
    }

    #[test]
    fn info_width_halves_per_level() {
        let tree = Tree::new(32);
        let id = ComponentId::from_path(vec![0, 2, 2]);
        let info = tree.info(&id).unwrap();
        assert_eq!(info.width, 4);
        assert_eq!(info.level, 3);
        assert_eq!(info.kind, ComponentKind::Mix);
    }

    #[test]
    fn info_rejects_too_deep_paths() {
        let tree = Tree::new(8); // levels 0..=2
        assert!(tree.info(&ComponentId::from_path(vec![0, 0])).is_some());
        assert!(tree.info(&ComponentId::from_path(vec![0, 0, 0])).is_none());
    }

    #[test]
    fn subtree_sizes_are_consistent() {
        let tree = Tree::new(16);
        // Root size equals 1 + sum of child subtree sizes.
        let children = tree.children(&ComponentId::root());
        let sum: u64 = children.iter().map(|c| tree.subtree_size(c)).sum();
        assert_eq!(tree.node_count(), 1 + sum);
    }

    #[test]
    fn preorder_index_roundtrip_small_trees() {
        for w in [2usize, 4, 8, 16] {
            let tree = Tree::new(w);
            let nodes: Vec<NodeInfo> = tree.iter_preorder().collect();
            assert_eq!(nodes.len() as u64, tree.node_count());
            for (i, info) in nodes.iter().enumerate() {
                assert_eq!(tree.preorder_index(&info.id), i as u64, "w={w} {info}");
                assert_eq!(
                    tree.from_preorder_index(i as u64).as_ref(),
                    Some(&info.id),
                    "w={w} index {i}"
                );
            }
            assert_eq!(tree.from_preorder_index(tree.node_count()), None);
        }
    }

    #[test]
    fn node_counts_match_closed_forms() {
        // MIX subtree over width k: a full binary tree with k/2 leaves
        // => 2*(k/2) - 1 = k - 1 nodes.
        for logw in 1..=6 {
            let k = 1usize << logw;
            assert_eq!(
                Tree::subtree_size_of(ComponentKind::Mix, k),
                (k - 1) as u64
            );
        }
    }

    #[test]
    fn display_format() {
        let tree = Tree::new(8);
        let info = tree.info(&ComponentId::from_path(vec![2])).unwrap();
        assert_eq!(info.to_string(), "M[4]/2");
    }
}
