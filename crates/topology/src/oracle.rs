//! Quiescent-state oracles shared by the verification layers.
//!
//! The paper's central correctness claim is about *quiescent* states:
//! whenever no token is in flight, the per-output-wire exit counts
//! `x_0, ..., x_{w-1}` form a **step sequence** —
//! `0 <= x_i - x_j <= 1` for all `i < j` (Section 1.1). These helpers
//! implement that predicate and its diagnostics once, so the
//! balancer-level harnesses (`acn-bitonic`), the model checker
//! (`acn-check`), and the property tests all assert exactly the same
//! oracle instead of re-deriving it.

/// Whether `counts` has the step property:
/// `0 <= counts[i] - counts[j] <= 1` for all `i < j`.
///
/// # Example
///
/// ```
/// use acn_topology::oracle::is_step_sequence;
///
/// assert!(is_step_sequence(&[3, 3, 2, 2]));
/// assert!(!is_step_sequence(&[2, 3, 2, 2])); // not non-increasing
/// assert!(!is_step_sequence(&[4, 2, 2, 2])); // gap of 2
/// ```
#[must_use]
pub fn is_step_sequence(counts: &[u64]) -> bool {
    let Some(&last) = counts.last() else { return true };
    // Non-increasing, and (first = max) <= (last = min) + 1.
    counts.windows(2).all(|w| w[0] >= w[1]) && counts[0] <= last + 1
}

/// The unique step sequence of width `w` summing to `total`:
/// `ceil((total - i) / w)` tokens on wire `i`.
#[must_use]
pub fn step_sequence(width: usize, total: u64) -> Vec<u64> {
    (0..width as u64)
        .map(|i| (total + width as u64 - 1 - i) / width as u64)
        .collect()
}

/// The largest pairwise gap `max(counts) - min(counts)`; the step
/// property bounds it by 1 at quiescence. Returns 0 for empty input.
#[must_use]
pub fn max_gap(counts: &[u64]) -> u64 {
    match (counts.iter().max(), counts.iter().min()) {
        (Some(max), Some(min)) => max - min,
        _ => 0,
    }
}

/// Total deviation from the ideal step sequence for the same token
/// count: `sum_i |counts[i] - step_sequence(w, total)[i]|`. Zero iff
/// `counts` *is* the step sequence.
#[must_use]
pub fn step_discrepancy(counts: &[u64]) -> u64 {
    let total: u64 = counts.iter().sum();
    step_sequence(counts.len(), total)
        .iter()
        .zip(counts)
        .map(|(ideal, got)| ideal.abs_diff(*got))
        .sum()
}

/// `None` if `counts` satisfies the step property, otherwise a
/// human-readable description of the violation (used verbatim in
/// checker failure reports).
#[must_use]
pub fn step_violation(counts: &[u64]) -> Option<String> {
    if is_step_sequence(counts) {
        return None;
    }
    Some(format!(
        "step property violated: counts {:?} (gap {}, discrepancy {} from ideal {:?})",
        counts,
        max_gap(counts),
        step_discrepancy(counts),
        step_sequence(counts.len(), counts.iter().sum()),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_sequences_are_steps() {
        for w in [1usize, 2, 4, 8] {
            for total in 0..40u64 {
                let s = step_sequence(w, total);
                assert!(is_step_sequence(&s), "{s:?}");
                assert_eq!(s.iter().sum::<u64>(), total);
                assert_eq!(step_discrepancy(&s), 0);
                assert!(max_gap(&s) <= 1);
                assert!(step_violation(&s).is_none());
            }
        }
    }

    #[test]
    fn violations_are_described() {
        let msg = step_violation(&[4, 2, 2, 2]).expect("gap of 2");
        assert!(msg.contains("gap 2"), "{msg}");
        assert!(step_violation(&[2, 3, 2, 2]).is_some());
        assert!(step_violation(&[]).is_none());
        assert_eq!(max_gap(&[]), 0);
    }

    #[test]
    fn discrepancy_counts_misplaced_tokens() {
        // [3, 1] should be [2, 2]: one token on the wrong wire, counted
        // once per side.
        assert_eq!(step_discrepancy(&[3, 1]), 2);
        assert_eq!(step_discrepancy(&[2, 2]), 0);
    }
}
