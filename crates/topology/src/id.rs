//! Path-based component identifiers.

use std::fmt;

use crate::kind::ComponentKind;

/// Identifier of a component: its path from the root of `T_w`.
///
/// The root (`BITONIC[w]`) has the empty path. Each step of the path is a
/// child index (`0..arity` of the parent's kind; see
/// [`ComponentKind::arity`]). The identifier is *width independent*: the
/// same path names a component in every tree deep enough to contain it.
///
/// Identifiers order lexicographically by path, which coincides with the
/// pre-order traversal order of `T_w` among comparable nodes; the paper's
/// pre-order *name* of a component is computed by [`Tree::preorder_index`].
///
/// [`Tree::preorder_index`]: crate::Tree::preorder_index
///
/// # Example
///
/// ```
/// use acn_topology::ComponentId;
///
/// let root = ComponentId::root();
/// let child = root.child(2); // the top MERGER[w/2]
/// assert_eq!(child.level(), 1);
/// assert_eq!(child.parent(), Some(root));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ComponentId {
    path: Vec<u8>,
}

impl ComponentId {
    /// The root component, `BITONIC[w]`.
    #[must_use]
    pub fn root() -> Self {
        ComponentId { path: Vec::new() }
    }

    /// Builds an identifier directly from a path of child indices.
    ///
    /// The path is not validated against any particular tree; use
    /// [`Tree::info`] to check validity for a given width.
    ///
    /// [`Tree::info`]: crate::Tree::info
    #[must_use]
    pub fn from_path(path: impl Into<Vec<u8>>) -> Self {
        ComponentId { path: path.into() }
    }

    /// The path of child indices from the root.
    #[must_use]
    pub fn path(&self) -> &[u8] {
        &self.path
    }

    /// The level of this component in `T_w` (the root is at level 0).
    #[must_use]
    pub fn level(&self) -> usize {
        self.path.len()
    }

    /// Whether this is the root component.
    #[must_use]
    pub fn is_root(&self) -> bool {
        self.path.is_empty()
    }

    /// The identifier of the `index`-th child.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 6` (no component kind has more children).
    #[must_use]
    pub fn child(&self, index: u8) -> Self {
        assert!(index < 6, "child index {index} out of range");
        let mut path = self.path.clone();
        path.push(index);
        ComponentId { path }
    }

    /// The identifier of the parent, or `None` for the root.
    #[must_use]
    pub fn parent(&self) -> Option<Self> {
        if self.path.is_empty() {
            return None;
        }
        let mut path = self.path.clone();
        path.pop();
        Some(ComponentId { path })
    }

    /// The child index of this component within its parent, or `None` for
    /// the root.
    #[must_use]
    pub fn child_index(&self) -> Option<u8> {
        self.path.last().copied()
    }

    /// Whether `self` is an ancestor of `other` (a proper prefix of its
    /// path). A component is not its own ancestor.
    #[must_use]
    pub fn is_ancestor_of(&self, other: &ComponentId) -> bool {
        self.path.len() < other.path.len() && other.path.starts_with(&self.path)
    }

    /// Iterator over all ancestors from the parent up to the root.
    pub fn ancestors(&self) -> impl Iterator<Item = ComponentId> + '_ {
        (0..self.path.len())
            .rev()
            .map(|len| ComponentId::from_path(&self.path[..len]))
    }

    /// The kind of the component this path names (independent of width).
    ///
    /// Returns `None` if the path is not a valid descent (a child index
    /// exceeds the arity of the kind at that point).
    #[must_use]
    pub fn kind(&self) -> Option<ComponentKind> {
        let mut kind = ComponentKind::Bitonic;
        for &step in &self.path {
            kind = kind.child_kind(step as usize)?;
        }
        Some(kind)
    }

    /// Packs the path into a `u64` for hashing and wire formats.
    ///
    /// Encoding: base-7 digits (child index + 1), most significant first.
    /// Unique for paths of length at most 22, which covers every practical
    /// width (`w` up to `2^23`).
    ///
    /// # Panics
    ///
    /// Panics if the path is longer than 22 steps.
    #[must_use]
    pub fn to_u64(&self) -> u64 {
        assert!(self.path.len() <= 22, "path too long to pack into u64");
        self.path
            .iter()
            .fold(0u64, |acc, &c| acc * 7 + u64::from(c) + 1)
    }

    /// Inverse of [`to_u64`](ComponentId::to_u64).
    #[must_use]
    pub fn from_u64(mut packed: u64) -> Self {
        let mut rev = Vec::new();
        while packed != 0 {
            rev.push((packed % 7) as u8 - 1);
            packed /= 7;
        }
        rev.reverse();
        ComponentId { path: rev }
    }
}

impl fmt::Display for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.path.is_empty() {
            return f.write_str("/");
        }
        for step in &self.path {
            write!(f, "/{step}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_properties() {
        let root = ComponentId::root();
        assert!(root.is_root());
        assert_eq!(root.level(), 0);
        assert_eq!(root.parent(), None);
        assert_eq!(root.child_index(), None);
        assert_eq!(root.kind(), Some(ComponentKind::Bitonic));
        assert_eq!(root.to_string(), "/");
    }

    #[test]
    fn child_and_parent_roundtrip() {
        let id = ComponentId::root().child(3).child(2).child(1);
        assert_eq!(id.level(), 3);
        assert_eq!(id.child_index(), Some(1));
        assert_eq!(id.parent().unwrap().path(), &[3, 2]);
        assert_eq!(id.to_string(), "/3/2/1");
    }

    #[test]
    fn kind_follows_path() {
        // Bitonic -> child 2 is a Merger -> its child 2 is a Mix.
        let id = ComponentId::from_path(vec![2, 2]);
        assert_eq!(id.kind(), Some(ComponentKind::Mix));
        // Mix has arity 2, so child index 3 is invalid below it.
        let bad = ComponentId::from_path(vec![2, 2, 3]);
        assert_eq!(bad.kind(), None);
    }

    #[test]
    fn ancestor_relation() {
        let a = ComponentId::from_path(vec![1]);
        let b = ComponentId::from_path(vec![1, 2]);
        let c = ComponentId::from_path(vec![2, 2]);
        assert!(a.is_ancestor_of(&b));
        assert!(!b.is_ancestor_of(&a));
        assert!(!a.is_ancestor_of(&a));
        assert!(!a.is_ancestor_of(&c));
        assert!(ComponentId::root().is_ancestor_of(&c));
    }

    #[test]
    fn ancestors_iterates_to_root() {
        let id = ComponentId::from_path(vec![0, 2, 1]);
        let anc: Vec<String> = id.ancestors().map(|a| a.to_string()).collect();
        assert_eq!(anc, ["/0/2", "/0", "/"]);
    }

    #[test]
    fn u64_packing_roundtrip() {
        let ids = [
            ComponentId::root(),
            ComponentId::from_path(vec![0]),
            ComponentId::from_path(vec![5]),
            ComponentId::from_path(vec![5, 1, 0, 1, 1]),
            ComponentId::from_path(vec![0; 22]),
        ];
        for id in &ids {
            assert_eq!(&ComponentId::from_u64(id.to_u64()), id);
        }
    }

    #[test]
    fn u64_packing_unique_for_small_paths() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        // All paths of length <= 4 over alphabet 0..6.
        let mut stack = vec![ComponentId::root()];
        while let Some(id) = stack.pop() {
            assert!(seen.insert(id.to_u64()), "collision for {id}");
            if id.level() < 4 {
                for c in 0..6 {
                    stack.push(id.child(c));
                }
            }
        }
        assert_eq!(seen.len(), 1 + 6 + 36 + 216 + 1296);
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a = ComponentId::from_path(vec![0]);
        let b = ComponentId::from_path(vec![0, 1]);
        let c = ComponentId::from_path(vec![1]);
        assert!(a < b && b < c);
    }
}
