//! Recursive decomposition topology of the bitonic counting network.
//!
//! This crate implements the combinatorial heart of *Adaptive Counting
//! Networks* (Tirthapura, ICDCS 2005): the decomposition tree `T_w` of the
//! bitonic counting network `BITONIC[w]` into variable-width *components*
//! (Section 2.1 of the paper), *cuts* of that tree (Definition 2.1), the
//! wire-level connections between the components of a cut, and the
//! *effective width* / *effective depth* metrics (Definitions 1.1 and 1.2)
//! of the component network induced by a cut.
//!
//! Everything in this crate is pure and deterministic; the runtime state of
//! components (token counters, hosts, split/merge protocols) lives in
//! `acn-core`, and the balancer-level baseline networks live in
//! `acn-bitonic`.
//!
//! # The decomposition
//!
//! A component is identified by its path from the root of `T_w`
//! ([`ComponentId`]). The root is `BITONIC[w]`. A `BITONIC[k]` node
//! (`k >= 4`) has six children (top/bottom `BITONIC[k/2]`, top/bottom
//! `MERGER[k/2]`, top/bottom `MIX[k/2]`), a `MERGER[k]` node has four
//! (top/bottom `MERGER[k/2]`, top/bottom `MIX[k/2]`), and a `MIX[k]` node
//! has two (top/bottom `MIX[k/2]`). Width-2 nodes are the individual
//! balancers, the leaves of `T_w`.
//!
//! # Example
//!
//! ```
//! use acn_topology::{Tree, Cut, ComponentId};
//!
//! // The decomposition tree of BITONIC[8].
//! let tree = Tree::new(8);
//! assert_eq!(tree.max_level(), 2); // levels 0, 1, 2
//!
//! // Start from the trivial cut (the whole network as one component) and
//! // split the root: six components remain.
//! let mut cut = Cut::root();
//! cut.split(&tree, &ComponentId::root()).unwrap();
//! assert_eq!(cut.leaves().len(), 6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cut;
mod dag;
mod id;
mod kind;
mod metrics;
pub mod oracle;
mod phi;
mod tree;
mod wiring;

pub use cut::{Cut, CutError};
pub use dag::{ComponentDag, DagEdge};
pub use id::ComponentId;
pub use kind::ComponentKind;
pub use metrics::{effective_depth, effective_width, lemma_2_2_bound};
pub use phi::{level_for_size, phi, PHI_MAX_LEVEL};
pub use tree::{NodeInfo, Tree};
pub use wiring::{
    child_input_to_parent, input_port_of,
    child_output_destination, network_input_address, parent_input_to_child, resolve_output,
    ChildOutput, CutWiring, OutputDestination, PortRef, WireAddress, WiringStyle,
};
