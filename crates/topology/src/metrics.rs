//! Effective width and effective depth of a component network
//! (Definitions 1.1 and 1.2 of the paper).

use crate::dag::ComponentDag;

/// The *effective depth* of the network: the number of components on the
/// longest path from an input-layer component to an output-layer component
/// (Definition 1.2; a single-component network has depth 1, matching the
/// base case `d = 1` in the proof of Lemma 2.2).
///
/// # Example
///
/// ```
/// use acn_topology::{Tree, Cut, ComponentId, ComponentDag, effective_depth};
///
/// let tree = Tree::new(8);
/// let mut cut = Cut::root();
/// cut.split(&tree, &ComponentId::root()).unwrap();
/// let dag = ComponentDag::new(&tree, &cut);
/// // B -> M -> X: three components on the longest path.
/// assert_eq!(effective_depth(&dag), 3);
/// ```
#[must_use]
pub fn effective_depth(dag: &ComponentDag) -> usize {
    let n = dag.vertices().len();
    if n == 0 {
        return 0;
    }
    let order = dag.topological_order();
    // Longest path ending at each vertex, counted in vertices.
    let mut longest = vec![1usize; n];
    for &v in &order {
        for &ei in dag.outgoing(v) {
            let to = dag.edges()[ei].to;
            longest[to] = longest[to].max(longest[v] + 1);
        }
    }
    // The paths of interest end in the output layer. (Because every
    // component lies on some input-to-output path in a valid cut, the
    // longest path to an output vertex starts at an input vertex.)
    dag.output_layer().iter().map(|&v| longest[v]).max().unwrap_or(0)
}

/// The *effective width* of the network: the maximum number of
/// vertex-disjoint paths from input-layer components to output-layer
/// components (Definition 1.1). Computed as a unit-capacity max-flow with
/// vertex splitting.
///
/// # Example
///
/// ```
/// use acn_topology::{Tree, Cut, ComponentId, ComponentDag, effective_width};
///
/// let tree = Tree::new(8);
/// let mut cut = Cut::root();
/// cut.split(&tree, &ComponentId::root()).unwrap();
/// let dag = ComponentDag::new(&tree, &cut);
/// // Two vertex-disjoint B -> M -> X chains.
/// assert_eq!(effective_width(&dag), 2);
/// ```
#[must_use]
pub fn effective_width(dag: &ComponentDag) -> usize {
    let n = dag.vertices().len();
    if n == 0 {
        return 0;
    }
    // Build a flow network: vertex v splits into v_in = 2v, v_out = 2v+1
    // with capacity 1 between them; source = 2n, sink = 2n+1.
    let source = 2 * n;
    let sink = 2 * n + 1;
    let mut flow = MaxFlow::new(2 * n + 2);
    for v in 0..n {
        flow.add_edge(2 * v, 2 * v + 1, 1);
    }
    for e in dag.edges() {
        // Parallel wires do not increase vertex-disjoint paths, but give
        // the edge ample capacity anyway (vertex capacities dominate).
        flow.add_edge(2 * e.from + 1, 2 * e.to, e.wires);
    }
    for &v in dag.input_layer() {
        flow.add_edge(source, 2 * v, 1);
    }
    for &v in dag.output_layer() {
        flow.add_edge(2 * v + 1, sink, 1);
    }
    flow.max_flow(source, sink)
}

/// The Lemma 2.2 upper bound on effective depth when every leaf of the
/// cut is at level at most `k`: `(k + 1)(k + 2) / 2`.
#[must_use]
pub fn lemma_2_2_bound(k: usize) -> usize {
    (k + 1) * (k + 2) / 2
}

/// A small Edmonds–Karp max-flow for the unit-capacity graphs above.
struct MaxFlow {
    // adjacency: node -> list of edge indices into `edges`
    adjacency: Vec<Vec<usize>>,
    // edges stored as (to, capacity); reverse edge at index ^ 1
    edges: Vec<(usize, usize)>,
}

impl MaxFlow {
    fn new(nodes: usize) -> Self {
        MaxFlow { adjacency: vec![Vec::new(); nodes], edges: Vec::new() }
    }

    fn add_edge(&mut self, from: usize, to: usize, capacity: usize) {
        self.adjacency[from].push(self.edges.len());
        self.edges.push((to, capacity));
        self.adjacency[to].push(self.edges.len());
        self.edges.push((from, 0));
    }

    fn max_flow(&mut self, source: usize, sink: usize) -> usize {
        let mut total = 0;
        loop {
            // BFS for an augmenting path.
            let mut prev_edge = vec![usize::MAX; self.adjacency.len()];
            let mut visited = vec![false; self.adjacency.len()];
            visited[source] = true;
            let mut queue = std::collections::VecDeque::from([source]);
            while let Some(u) = queue.pop_front() {
                if u == sink {
                    break;
                }
                for &ei in &self.adjacency[u] {
                    let (to, cap) = self.edges[ei];
                    if cap > 0 && !visited[to] {
                        visited[to] = true;
                        prev_edge[to] = ei;
                        queue.push_back(to);
                    }
                }
            }
            if !visited[sink] {
                return total;
            }
            // Find bottleneck.
            let mut bottleneck = usize::MAX;
            let mut v = sink;
            while v != source {
                let ei = prev_edge[v];
                bottleneck = bottleneck.min(self.edges[ei].1);
                v = self.edges[ei ^ 1].0;
            }
            // Apply.
            let mut v = sink;
            while v != source {
                let ei = prev_edge[v];
                self.edges[ei].1 -= bottleneck;
                self.edges[ei ^ 1].1 += bottleneck;
                v = self.edges[ei ^ 1].0;
            }
            total += bottleneck;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ComponentId, Cut, Tree};

    #[test]
    fn single_component_has_width_and_depth_one() {
        let tree = Tree::new(16);
        let dag = ComponentDag::new(&tree, &Cut::root());
        assert_eq!(effective_depth(&dag), 1);
        assert_eq!(effective_width(&dag), 1);
    }

    #[test]
    fn uniform_cut_width_matches_lemma_2_3() {
        // Lemma 2.3: every leaf at level exactly k => effective width 2^k
        // (the network is isomorphic to a bitonic network of width 2^{k+1}).
        for w in [8usize, 16, 32] {
            let tree = Tree::new(w);
            for k in 0..=tree.max_level() {
                let dag = ComponentDag::new(&tree, &Cut::uniform(&tree, k));
                assert_eq!(effective_width(&dag), 1 << k, "w={w} k={k}");
            }
        }
    }

    #[test]
    fn uniform_cut_depth_matches_recurrence() {
        // With all leaves at level k the depth recurrences of Lemma 2.2
        // hold with equality: d = (k+1)(k+2)/2.
        for w in [8usize, 16, 32, 64] {
            let tree = Tree::new(w);
            for k in 0..=tree.max_level() {
                let dag = ComponentDag::new(&tree, &Cut::uniform(&tree, k));
                assert_eq!(effective_depth(&dag), lemma_2_2_bound(k), "w={w} k={k}");
            }
        }
    }

    #[test]
    fn lemma_2_2_holds_for_all_cuts_of_t8() {
        let tree = Tree::new(8);
        for cut in Cut::enumerate_all(&tree) {
            let dag = ComponentDag::new(&tree, &cut);
            let depth = effective_depth(&dag);
            let k = cut.max_level();
            assert!(
                depth <= lemma_2_2_bound(k),
                "cut {cut}: depth {depth} exceeds bound {}",
                lemma_2_2_bound(k)
            );
        }
    }

    #[test]
    fn lemma_2_3_holds_for_all_cuts_of_t8() {
        let tree = Tree::new(8);
        for cut in Cut::enumerate_all(&tree) {
            let dag = ComponentDag::new(&tree, &cut);
            let width = effective_width(&dag);
            let k = cut.min_level();
            assert!(
                width >= 1 << k,
                "cut {cut}: width {width} below bound {}",
                1 << k
            );
        }
    }

    #[test]
    fn figure_3_numbers_are_achievable_on_t8() {
        // Figure 3 of the paper shows a cut of T_8 with effective width 2
        // and effective depth 5: split the root and then the top
        // BITONIC[4] and top MERGER[4]... the simplest realization is to
        // split the root and the top BITONIC[4] fully.
        let tree = Tree::new(8);
        let root = ComponentId::root();
        let mut cut = Cut::root();
        cut.split(&tree, &root).unwrap();
        cut.split(&tree, &root.child(0)).unwrap();
        let dag = ComponentDag::new(&tree, &cut);
        assert_eq!(effective_width(&dag), 2);
        assert_eq!(effective_depth(&dag), 5);
    }

    #[test]
    fn splitting_never_decreases_effective_width() {
        // Lemma 2.3's key observation: vertex-disjoint paths survive
        // splits. Check on every single-split refinement over T_8 cuts.
        let tree = Tree::new(8);
        for cut in Cut::enumerate_all(&tree) {
            let base = effective_width(&ComponentDag::new(&tree, &cut));
            for leaf in cut.leaves().clone() {
                if tree.info(&leaf).unwrap().is_balancer() {
                    continue;
                }
                let mut refined = cut.clone();
                refined.split(&tree, &leaf).unwrap();
                let w2 = effective_width(&ComponentDag::new(&tree, &refined));
                assert!(
                    w2 >= base,
                    "split of {leaf} reduced width {base} -> {w2} in {cut}"
                );
            }
        }
    }

    #[test]
    fn max_flow_basics() {
        let mut f = MaxFlow::new(4);
        f.add_edge(0, 1, 2);
        f.add_edge(1, 2, 1);
        f.add_edge(1, 3, 1);
        f.add_edge(2, 3, 5);
        assert_eq!(f.max_flow(0, 3), 2);
    }
}
