//! Cuts of the decomposition tree (Definition 2.1 of the paper).
//!
//! A *cut* of `T_w` is the tree obtained by pruning away subtrees; the
//! network is implemented by the components at the cut's leaves. We
//! represent a cut directly by its leaf set, which must be an *antichain
//! cover*: every root-to-balancer path of `T_w` contains exactly one leaf.

use std::collections::BTreeSet;
use std::fmt;

use crate::id::ComponentId;
use crate::tree::Tree;

/// Errors returned by cut mutations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CutError {
    /// The component to split/merge is not a leaf of the cut.
    NotALeaf(ComponentId),
    /// The component is a balancer and cannot be split further.
    AtomicComponent(ComponentId),
    /// Merging requires every child of the target to be a leaf of the cut.
    ChildrenNotLeaves(ComponentId),
}

impl fmt::Display for CutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CutError::NotALeaf(id) => write!(f, "component {id} is not a leaf of the cut"),
            CutError::AtomicComponent(id) => {
                write!(f, "component {id} is a balancer and cannot be split")
            }
            CutError::ChildrenNotLeaves(id) => {
                write!(f, "children of {id} are not all leaves of the cut")
            }
        }
    }
}

impl std::error::Error for CutError {}

/// A cut of `T_w`, represented by its leaf components.
///
/// # Example
///
/// ```
/// use acn_topology::{Tree, Cut, ComponentId};
///
/// let tree = Tree::new(8);
/// let mut cut = Cut::root();
/// let root = ComponentId::root();
/// cut.split(&tree, &root).unwrap();
/// assert_eq!(cut.leaves().len(), 6);
/// cut.merge(&tree, &root).unwrap();
/// assert_eq!(cut.leaves().len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Cut {
    leaves: BTreeSet<ComponentId>,
}

impl Default for Cut {
    fn default() -> Self {
        Cut::root()
    }
}

impl Cut {
    /// The trivial cut: the entire network as one root component. This is
    /// the initial state of the adaptive network (paper Section 1.2).
    #[must_use]
    pub fn root() -> Self {
        let mut leaves = BTreeSet::new();
        leaves.insert(ComponentId::root());
        Cut { leaves }
    }

    /// The deepest cut: every leaf is an individual balancer. This
    /// recovers the classical balancer-level implementation (paper
    /// Section 2, the "simple approach").
    #[must_use]
    pub fn balancers(tree: &Tree) -> Self {
        Cut::uniform(tree, tree.max_level())
    }

    /// The uniform cut with all leaves at exactly `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level > tree.max_level()`.
    #[must_use]
    pub fn uniform(tree: &Tree, level: usize) -> Self {
        assert!(level <= tree.max_level(), "level {level} deeper than the tree");
        let mut leaves = BTreeSet::new();
        let mut stack = vec![ComponentId::root()];
        while let Some(id) = stack.pop() {
            if id.level() == level {
                leaves.insert(id);
            } else {
                let info = tree.info(&id).expect("valid descent");
                for c in 0..info.child_count() as u8 {
                    stack.push(id.child(c));
                }
            }
        }
        Cut { leaves }
    }

    /// Builds a cut from an explicit leaf set without validation; call
    /// [`is_valid`](Cut::is_valid) to check it.
    #[must_use]
    pub fn from_leaves(leaves: impl IntoIterator<Item = ComponentId>) -> Self {
        Cut { leaves: leaves.into_iter().collect() }
    }

    /// The leaf components of the cut.
    #[must_use]
    pub fn leaves(&self) -> &BTreeSet<ComponentId> {
        &self.leaves
    }

    /// Whether `id` is a leaf of the cut.
    #[must_use]
    pub fn contains(&self, id: &ComponentId) -> bool {
        self.leaves.contains(id)
    }

    /// Splits leaf `id` into its children (paper Section 2.2, "Splitting a
    /// Component").
    ///
    /// # Errors
    ///
    /// Returns [`CutError::NotALeaf`] if `id` is not a leaf of the cut and
    /// [`CutError::AtomicComponent`] if it is a balancer.
    pub fn split(&mut self, tree: &Tree, id: &ComponentId) -> Result<Vec<ComponentId>, CutError> {
        if !self.leaves.contains(id) {
            return Err(CutError::NotALeaf(id.clone()));
        }
        let info = tree.info(id).expect("leaf ids are valid");
        if info.is_balancer() {
            return Err(CutError::AtomicComponent(id.clone()));
        }
        self.leaves.remove(id);
        let children = tree.children(id);
        for child in &children {
            self.leaves.insert(child.clone());
        }
        Ok(children)
    }

    /// Merges the children of `id` back into `id` (paper Section 2.2,
    /// "Merging Components"). All children must currently be leaves;
    /// recursive merging of deeper descendants is the caller's
    /// responsibility (`acn-core` implements it).
    ///
    /// # Errors
    ///
    /// Returns [`CutError::ChildrenNotLeaves`] unless every child of `id`
    /// is a leaf of the cut.
    pub fn merge(&mut self, tree: &Tree, id: &ComponentId) -> Result<(), CutError> {
        let children = tree.children(id);
        if children.is_empty() || !children.iter().all(|c| self.leaves.contains(c)) {
            return Err(CutError::ChildrenNotLeaves(id.clone()));
        }
        for child in &children {
            self.leaves.remove(child);
        }
        self.leaves.insert(id.clone());
        Ok(())
    }

    /// Checks the antichain-cover property: every root-to-balancer path of
    /// `T_w` meets exactly one leaf.
    #[must_use]
    pub fn is_valid(&self, tree: &Tree) -> bool {
        // All leaves must be valid nodes.
        if !self.leaves.iter().all(|l| tree.info(l).is_some()) {
            return false;
        }
        // Walk the tree from the root; each branch must hit exactly one
        // leaf before (or at) the balancer level and none after.
        fn walk(tree: &Tree, cut: &BTreeSet<ComponentId>, id: &ComponentId) -> bool {
            let in_cut = cut.contains(id);
            if in_cut {
                // Nothing below may be in the cut.
                return !cut.iter().any(|l| id.is_ancestor_of(l));
            }
            let info = tree.info(id).expect("validated above");
            if info.is_balancer() {
                return false; // path ended without meeting a leaf
            }
            (0..info.child_count() as u8).all(|c| walk(tree, cut, &id.child(c)))
        }
        walk(tree, &self.leaves, &ComponentId::root())
    }

    /// The minimum level among the leaves.
    #[must_use]
    pub fn min_level(&self) -> usize {
        self.leaves.iter().map(ComponentId::level).min().unwrap_or(0)
    }

    /// The maximum level among the leaves.
    #[must_use]
    pub fn max_level(&self) -> usize {
        self.leaves.iter().map(ComponentId::level).max().unwrap_or(0)
    }

    /// Enumerates **all** cuts of `T_w`. The count grows doubly
    /// exponentially; only use for `w <= 8`.
    #[must_use]
    pub fn enumerate_all(tree: &Tree) -> Vec<Cut> {
        fn cuts_below(tree: &Tree, id: &ComponentId) -> Vec<Vec<ComponentId>> {
            let info = tree.info(id).expect("valid node");
            // Option 1: this node is a leaf of the cut.
            let mut all = vec![vec![id.clone()]];
            if !info.is_balancer() {
                // Option 2: recurse — the cartesian product of child cuts.
                let child_choices: Vec<Vec<Vec<ComponentId>>> = (0..info.child_count() as u8)
                    .map(|c| cuts_below(tree, &id.child(c)))
                    .collect();
                let mut product: Vec<Vec<ComponentId>> = vec![Vec::new()];
                for choices in child_choices {
                    let mut next = Vec::new();
                    for base in &product {
                        for choice in &choices {
                            let mut combined = base.clone();
                            combined.extend(choice.iter().cloned());
                            next.push(combined);
                        }
                    }
                    product = next;
                }
                all.extend(product);
            }
            all
        }
        cuts_below(tree, &ComponentId::root())
            .into_iter()
            .map(Cut::from_leaves)
            .collect()
    }

    /// A random valid cut: starting from the root, split each leaf
    /// independently with probability `split_prob` while above
    /// `max_level`, using `rng_next` as a uniform `[0,1)` source.
    #[must_use]
    pub fn random(
        tree: &Tree,
        max_level: usize,
        split_prob: f64,
        rng_next: &mut dyn FnMut() -> f64,
    ) -> Self {
        let max_level = max_level.min(tree.max_level());
        let mut leaves = BTreeSet::new();
        let mut stack = vec![ComponentId::root()];
        while let Some(id) = stack.pop() {
            if id.level() < max_level && rng_next() < split_prob {
                let info = tree.info(&id).expect("valid descent");
                for c in 0..info.child_count() as u8 {
                    stack.push(id.child(c));
                }
            } else {
                leaves.insert(id);
            }
        }
        Cut { leaves }
    }
}

impl fmt::Display for Cut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, leaf) in self.leaves.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{leaf}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_cut_is_valid() {
        let tree = Tree::new(8);
        let cut = Cut::root();
        assert!(cut.is_valid(&tree));
        assert_eq!(cut.leaves().len(), 1);
        assert_eq!(cut.min_level(), 0);
        assert_eq!(cut.max_level(), 0);
    }

    #[test]
    fn balancer_cut_counts() {
        for logw in 1..=5u32 {
            let w = 1usize << logw;
            let tree = Tree::new(w);
            let cut = Cut::balancers(&tree);
            assert!(cut.is_valid(&tree));
            let expected = (w as u64) * u64::from(logw) * (u64::from(logw) + 1) / 4;
            assert_eq!(cut.leaves().len() as u64, expected, "w={w}");
        }
    }

    #[test]
    fn uniform_cut_sizes_match_phi() {
        let tree = Tree::new(32);
        for level in 0..=tree.max_level() {
            let cut = Cut::uniform(&tree, level);
            assert!(cut.is_valid(&tree));
            assert_eq!(cut.leaves().len() as u128, crate::phi(level), "level {level}");
        }
    }

    #[test]
    fn split_and_merge_roundtrip() {
        let tree = Tree::new(16);
        let root = ComponentId::root();
        let mut cut = Cut::root();
        let children = cut.split(&tree, &root).unwrap();
        assert_eq!(children.len(), 6);
        assert!(cut.is_valid(&tree));
        // Split one child further.
        let mt = root.child(2);
        cut.split(&tree, &mt).unwrap();
        assert!(cut.is_valid(&tree));
        assert_eq!(cut.leaves().len(), 5 + 4);
        // Merging the root now fails (children not all leaves).
        assert_eq!(cut.clone().merge(&tree, &root), Err(CutError::ChildrenNotLeaves(root.clone())));
        // Merge back bottom-up.
        cut.merge(&tree, &mt).unwrap();
        cut.merge(&tree, &root).unwrap();
        assert_eq!(cut, Cut::root());
    }

    #[test]
    fn split_errors() {
        let tree = Tree::new(4);
        let mut cut = Cut::root();
        let bogus = ComponentId::from_path(vec![0]);
        assert_eq!(cut.split(&tree, &bogus), Err(CutError::NotALeaf(bogus.clone())));
        cut.split(&tree, &ComponentId::root()).unwrap();
        // Children of BITONIC[4] are balancers: cannot split further.
        assert_eq!(
            cut.split(&tree, &bogus),
            Err(CutError::AtomicComponent(bogus.clone()))
        );
    }

    #[test]
    fn invalid_cuts_detected() {
        let tree = Tree::new(8);
        // Missing coverage.
        let cut = Cut::from_leaves(vec![ComponentId::from_path(vec![0])]);
        assert!(!cut.is_valid(&tree));
        // Overlapping (ancestor + descendant).
        let cut = Cut::from_leaves(vec![ComponentId::root(), ComponentId::from_path(vec![0])]);
        assert!(!cut.is_valid(&tree));
        // Node from a deeper tree.
        let cut = Cut::from_leaves(vec![ComponentId::from_path(vec![0, 0, 0])]);
        assert!(!cut.is_valid(&tree));
    }

    #[test]
    fn enumerate_all_cuts_of_t4() {
        // T_4: root with 6 balancer children -> exactly 2 cuts.
        let tree = Tree::new(4);
        let cuts = Cut::enumerate_all(&tree);
        assert_eq!(cuts.len(), 2);
        for cut in &cuts {
            assert!(cut.is_valid(&tree));
        }
    }

    #[test]
    fn enumerate_all_cuts_of_t8() {
        // T_8: each level-1 child of the root is itself a root of a
        // 6/4/2-child star of balancers => (1 + 2^6)(1+2^6)(1+2^4)^2(1+2^2)^2 + 1... computed below.
        let tree = Tree::new(8);
        let cuts = Cut::enumerate_all(&tree);
        // cuts(balancer) = 1; cuts(B[4]) = 1 + 1^6 = 2, cuts(M[4]) = 2,
        // cuts(X[4]) = 2; cuts(B[8]) = 1 + 2^2 * 2^2 * 2^2 = 65.
        assert_eq!(cuts.len(), 65);
        let mut unique: std::collections::HashSet<String> = std::collections::HashSet::new();
        for cut in &cuts {
            assert!(cut.is_valid(&tree), "{cut}");
            assert!(unique.insert(cut.to_string()));
        }
    }

    #[test]
    fn random_cuts_are_valid() {
        let tree = Tree::new(64);
        // A simple deterministic pseudo-random source.
        let mut state = 0x12345678u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..50 {
            let cut = Cut::random(&tree, tree.max_level(), 0.6, &mut next);
            assert!(cut.is_valid(&tree));
        }
    }

    #[test]
    fn display_is_readable() {
        let mut cut = Cut::root();
        let tree = Tree::new(4);
        cut.split(&tree, &ComponentId::root()).unwrap();
        assert_eq!(cut.to_string(), "{/0, /1, /2, /3, /4, /5}");
    }
}
