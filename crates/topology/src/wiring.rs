//! Wire-level connections between the components of the decomposition.
//!
//! Section 2.1 of the paper specifies how the input/output wires of a
//! component map onto its children when it is decomposed. This module
//! implements those maps, plus the derived machinery the runtimes need:
//!
//! - [`parent_input_to_child`]: where input port `p` of a decomposed
//!   component enters among its children;
//! - [`child_output_destination`]: where output port `q` of a child goes —
//!   into a sibling, or out of the parent;
//! - [`resolve_output`] / [`WireAddress`]: the *cut-independent* address of
//!   the wire leaving a component output — the balancer-level (deepest)
//!   tree leaf owning the destination input wire. Under any cut, the
//!   live owner of the wire is the unique cut leaf on the ancestor path of
//!   that balancer, which is how routing with stale views works (paper
//!   Section 3.5);
//! - [`CutWiring`]: the fully resolved component graph of one cut.
//!
//! # Wiring style
//!
//! The paper's prose says the top `MERGER[k/2]` receives the *even*
//! outputs of **both** half-`BITONIC[k/2]`s. Under 0-based indexing that
//! pairing does not count (the two mergers can accumulate a discrepancy of
//! 2 which the final `MIX` layer cannot repair); the intended construction
//! — the paper notes its proof "is very similar to" Aspnes–Herlihy–Shavit
//! — pairs the *even* outputs of the top half with the *odd* outputs of
//! the bottom half. [`WiringStyle::Ahs`] (the default everywhere)
//! implements the correct AHS pairing; [`WiringStyle::PaperLiteral`] is
//! kept for the ablation experiment that demonstrates the failure.

use std::fmt;

use crate::cut::Cut;
use crate::id::ComponentId;
use crate::kind::ComponentKind;
use crate::tree::Tree;

/// Which even/odd pairing to use when a `BITONIC` or `MERGER` component
/// distributes wires to its two sub-mergers. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WiringStyle {
    /// The Aspnes–Herlihy–Shavit pairing (correct; default).
    #[default]
    Ahs,
    /// The literal even/even pairing from the paper's prose (fails the
    /// step property; retained for the ablation experiment).
    PaperLiteral,
}

/// A reference to a port (input or output, by context) of a component.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PortRef {
    /// The component.
    pub id: ComponentId,
    /// The port index, `0..width`.
    pub port: usize,
}

impl fmt::Display for PortRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.id, self.port)
    }
}

/// Where a child's output wire leads within (or out of) its parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChildOutput {
    /// Into input `port` of sibling number `child`.
    Sibling {
        /// Child index of the sibling within the same parent.
        child: usize,
        /// Input port of the sibling.
        port: usize,
    },
    /// Out of the parent on its output `port`.
    Parent {
        /// Output port of the parent.
        port: usize,
    },
}

/// Maps input port `port` of a decomposed component of the given kind and
/// width to `(child index, child input port)`.
///
/// # Panics
///
/// Panics if `width < 4` (width-2 components are leaves and cannot be
/// decomposed) or `port >= width`.
#[must_use]
pub fn parent_input_to_child(
    kind: ComponentKind,
    width: usize,
    port: usize,
    style: WiringStyle,
) -> (usize, usize) {
    assert!(width >= 4 && width.is_power_of_two(), "width {width} not decomposable");
    assert!(port < width, "port {port} out of range for width {width}");
    let half = width / 2;
    let quarter = width / 4;
    match kind {
        // Inputs split top/bottom between the two half-BITONICs.
        ComponentKind::Bitonic => {
            if port < half {
                (0, port)
            } else {
                (1, port - half)
            }
        }
        // MERGER[k] merges x = ports 0..k/2 with y = ports k/2..k.
        // Even x's go to the top sub-merger, odd x's to the bottom; the
        // y side depends on the wiring style.
        ComponentKind::Merger => {
            if port < half {
                if port.is_multiple_of(2) {
                    (0, port / 2)
                } else {
                    (1, port / 2)
                }
            } else {
                let q = port - half;
                let to_top = match style {
                    WiringStyle::Ahs => q % 2 == 1,
                    WiringStyle::PaperLiteral => q.is_multiple_of(2),
                };
                if to_top {
                    (0, quarter + q / 2)
                } else {
                    (1, quarter + q / 2)
                }
            }
        }
        // MIX[k] splits into two MIX[k/2] with no internal connections.
        ComponentKind::Mix => {
            if port < half {
                (0, port)
            } else {
                (1, port - half)
            }
        }
    }
}

/// Maps output port `port` of child number `child` of a decomposed
/// component of the given kind and width to its destination.
///
/// # Panics
///
/// Panics if `width < 4`, `child` is out of range for the kind, or
/// `port >= width / 2`.
#[must_use]
pub fn child_output_destination(
    kind: ComponentKind,
    width: usize,
    child: usize,
    port: usize,
    style: WiringStyle,
) -> ChildOutput {
    assert!(width >= 4 && width.is_power_of_two(), "width {width} not decomposable");
    let half = width / 2;
    let quarter = width / 4;
    assert!(child < kind.arity(), "child {child} out of range for {kind}");
    assert!(port < half, "port {port} out of range for child width {half}");
    match kind {
        ComponentKind::Bitonic => match child {
            // Top BITONIC: even outputs feed the top MERGER's top inputs,
            // odd outputs the bottom MERGER's top inputs.
            0 => {
                if port.is_multiple_of(2) {
                    ChildOutput::Sibling { child: 2, port: port / 2 }
                } else {
                    ChildOutput::Sibling { child: 3, port: port / 2 }
                }
            }
            // Bottom BITONIC: the pairing depends on the style (AHS sends
            // *odd* outputs to the top MERGER).
            1 => {
                let to_top = match style {
                    WiringStyle::Ahs => port % 2 == 1,
                    WiringStyle::PaperLiteral => port.is_multiple_of(2),
                };
                if to_top {
                    ChildOutput::Sibling { child: 2, port: quarter + port / 2 }
                } else {
                    ChildOutput::Sibling { child: 3, port: quarter + port / 2 }
                }
            }
            // Top MERGER: top quarter of outputs are the even inputs of
            // the top MIX, bottom quarter the even inputs of the bottom MIX.
            2 => {
                if port < quarter {
                    ChildOutput::Sibling { child: 4, port: 2 * port }
                } else {
                    ChildOutput::Sibling { child: 5, port: 2 * (port - quarter) }
                }
            }
            // Bottom MERGER: same, on the odd inputs.
            3 => {
                if port < quarter {
                    ChildOutput::Sibling { child: 4, port: 2 * port + 1 }
                } else {
                    ChildOutput::Sibling { child: 5, port: 2 * (port - quarter) + 1 }
                }
            }
            // The MIX outputs are the component outputs, in order.
            4 => ChildOutput::Parent { port },
            5 => ChildOutput::Parent { port: half + port },
            _ => unreachable!(),
        },
        ComponentKind::Merger => match child {
            0 => {
                if port < quarter {
                    ChildOutput::Sibling { child: 2, port: 2 * port }
                } else {
                    ChildOutput::Sibling { child: 3, port: 2 * (port - quarter) }
                }
            }
            1 => {
                if port < quarter {
                    ChildOutput::Sibling { child: 2, port: 2 * port + 1 }
                } else {
                    ChildOutput::Sibling { child: 3, port: 2 * (port - quarter) + 1 }
                }
            }
            2 => ChildOutput::Parent { port },
            3 => ChildOutput::Parent { port: half + port },
            _ => unreachable!(),
        },
        ComponentKind::Mix => match child {
            0 => ChildOutput::Parent { port },
            1 => ChildOutput::Parent { port: half + port },
            _ => unreachable!(),
        },
    }
}

/// The inverse of [`parent_input_to_child`]: if input port `port` of
/// child number `child` is fed by one of the parent's input ports,
/// returns that parent port; returns `None` if the child port is fed by
/// a sibling's output (i.e. the wire is internal to the parent).
///
/// # Panics
///
/// Panics if `width < 4`, `child` is out of range, or
/// `port >= width / 2`.
#[must_use]
pub fn child_input_to_parent(
    kind: ComponentKind,
    width: usize,
    child: usize,
    port: usize,
    style: WiringStyle,
) -> Option<usize> {
    assert!(width >= 4 && width.is_power_of_two(), "width {width} not decomposable");
    let half = width / 2;
    let quarter = width / 4;
    assert!(child < kind.arity(), "child {child} out of range for {kind}");
    assert!(port < half, "port {port} out of range for child width {half}");
    match kind {
        ComponentKind::Bitonic => match child {
            0 => Some(port),
            1 => Some(half + port),
            _ => None,
        },
        ComponentKind::Merger => match child {
            // Top sub-merger: x-evens then y's of one parity.
            0 => {
                if port < quarter {
                    Some(2 * port)
                } else {
                    let q = match style {
                        WiringStyle::Ahs => 2 * (port - quarter) + 1,
                        WiringStyle::PaperLiteral => 2 * (port - quarter),
                    };
                    Some(half + q)
                }
            }
            // Bottom sub-merger: x-odds then y's of the other parity.
            1 => {
                if port < quarter {
                    Some(2 * port + 1)
                } else {
                    let q = match style {
                        WiringStyle::Ahs => 2 * (port - quarter),
                        WiringStyle::PaperLiteral => 2 * (port - quarter) + 1,
                    };
                    Some(half + q)
                }
            }
            _ => None,
        },
        ComponentKind::Mix => match child {
            0 => Some(port),
            1 => Some(half + port),
            _ => None,
        },
    }
}

/// The input port of component `id` on which a token addressed to
/// `addr` arrives, or `None` if the wire is *internal* to `id` (possible
/// only for tokens that were in flight across a merge).
///
/// # Panics
///
/// Panics if `id` is not a valid node of `tree` or `addr` is not under
/// `id`'s subtree.
#[must_use]
pub fn input_port_of(
    tree: &Tree,
    id: &ComponentId,
    addr: &WireAddress,
    style: WiringStyle,
) -> Option<usize> {
    assert!(
        id == addr.balancer() || id.is_ancestor_of(addr.balancer()),
        "address {addr} is not under component {id}"
    );
    let mut node = addr.balancer().clone();
    let mut port = usize::from(addr.port());
    while &node != id {
        let parent = node.parent().expect("walk stays under id");
        let child = node.child_index().expect("non-root") as usize;
        let pinfo = tree.info(&parent).expect("valid ancestor");
        match child_input_to_parent(pinfo.kind, pinfo.width, child, port, style) {
            Some(parent_port) => {
                node = parent;
                port = parent_port;
            }
            None => return None,
        }
    }
    Some(port)
}

/// The cut-independent address of an input wire: the balancer-level leaf
/// of `T_w` that ultimately owns it, plus the balancer port (0 or 1).
///
/// Under any cut, the live owner of the wire is the unique cut leaf that
/// is the balancer itself or one of its ancestors — see
/// [`WireAddress::owner_under`]. This is exactly the ancestor-chain
/// probing structure of paper Section 3.5.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WireAddress {
    balancer: ComponentId,
    port: u8,
}

impl WireAddress {
    /// The balancer-level component owning this wire at full depth.
    #[must_use]
    pub fn balancer(&self) -> &ComponentId {
        &self.balancer
    }

    /// The input port (0 or 1) on the balancer.
    #[must_use]
    pub fn port(&self) -> u8 {
        self.port
    }

    /// The owner of this wire under `cut`: the unique leaf of the cut on
    /// the root-to-balancer path.
    ///
    /// Returns `None` if the cut does not cover the balancer (only
    /// possible for an invalid cut).
    #[must_use]
    pub fn owner_under(&self, cut: &Cut) -> Option<ComponentId> {
        if cut.contains(&self.balancer) {
            return Some(self.balancer.clone());
        }
        self.balancer.ancestors().find(|a| cut.contains(a))
    }

    /// The candidate owners, deepest first: the balancer, then its
    /// ancestors up to the root. A router probes along this chain (at most
    /// `log w - 1` names beyond the first, paper Section 3.5).
    pub fn candidates(&self) -> impl Iterator<Item = ComponentId> + '_ {
        std::iter::once(self.balancer.clone()).chain(self.balancer.ancestors())
    }
}

impl fmt::Display for WireAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.balancer, self.port)
    }
}

/// Where a component's output wire leads: either to another wire of the
/// network (addressed cut-independently) or out of the network.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum OutputDestination {
    /// The wire feeds another component; `WireAddress` names it at
    /// balancer granularity.
    Wire(WireAddress),
    /// The wire is output `port` of the whole `BITONIC[w]` network.
    NetworkOutput(usize),
}

/// Descends from `(node, input port)` to the balancer-level wire address.
fn descend_to_balancer(
    tree: &Tree,
    mut node: ComponentId,
    mut port: usize,
    style: WiringStyle,
) -> WireAddress {
    loop {
        let info = tree.info(&node).expect("invalid node during descent");
        if info.width == 2 {
            return WireAddress { balancer: node, port: port as u8 };
        }
        let (child, child_port) = parent_input_to_child(info.kind, info.width, port, style);
        node = node.child(child as u8);
        port = child_port;
    }
}

/// Resolves output `port` of component `id` to its destination. The result
/// is independent of any cut and can be cached for the lifetime of the
/// network.
///
/// # Panics
///
/// Panics if `id` is not a valid node of `tree` or `port` is out of range
/// for its width.
#[must_use]
pub fn resolve_output(
    tree: &Tree,
    id: &ComponentId,
    port: usize,
    style: WiringStyle,
) -> OutputDestination {
    let info = tree.info(id).expect("invalid component id");
    assert!(port < info.width, "port {port} out of range for width {}", info.width);
    let mut node = id.clone();
    let mut port = port;
    loop {
        let Some(parent) = node.parent() else {
            return OutputDestination::NetworkOutput(port);
        };
        let child_index = node.child_index().expect("non-root has a child index") as usize;
        let pinfo = tree.info(&parent).expect("parent is valid");
        match child_output_destination(pinfo.kind, pinfo.width, child_index, port, style) {
            ChildOutput::Sibling { child, port: sib_port } => {
                let sibling = parent.child(child as u8);
                return OutputDestination::Wire(descend_to_balancer(
                    tree, sibling, sib_port, style,
                ));
            }
            ChildOutput::Parent { port: parent_port } => {
                node = parent;
                port = parent_port;
            }
        }
    }
}

/// The wire address of network input wire `wire` (`0..w`), i.e. the
/// balancer a client should name first when injecting a token there
/// ("Finding an Input Component", paper Section 3.5).
///
/// # Panics
///
/// Panics if `wire >= tree.width()`.
#[must_use]
pub fn network_input_address(tree: &Tree, wire: usize, style: WiringStyle) -> WireAddress {
    assert!(wire < tree.width(), "input wire {wire} out of range");
    descend_to_balancer(tree, ComponentId::root(), wire, style)
}

/// The fully resolved component-level graph of one cut: for every leaf of
/// the cut, where each of its output ports leads, and which leaves own the
/// network's input wires.
///
/// # Example
///
/// ```
/// use acn_topology::{Tree, Cut, ComponentId, CutWiring};
///
/// let tree = Tree::new(8);
/// let mut cut = Cut::root();
/// cut.split(&tree, &ComponentId::root()).unwrap();
/// let wiring = CutWiring::new(&tree, &cut);
/// // Input wires enter the two half-BITONICs.
/// assert_eq!(wiring.input_owner(0).id, ComponentId::root().child(0));
/// assert_eq!(wiring.input_owner(7).id, ComponentId::root().child(1));
/// ```
#[derive(Debug, Clone)]
pub struct CutWiring {
    tree: Tree,
    style: WiringStyle,
    /// For each leaf, for each output port: the resolved destination
    /// (owner leaf under this cut, or network output).
    edges: std::collections::HashMap<ComponentId, Vec<ResolvedDestination>>,
    /// For each network input wire: the owning leaf and (balancer) port.
    inputs: Vec<PortRef>,
}

/// A resolved destination inside a [`CutWiring`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum ResolvedDestination {
    Leaf(ComponentId),
    NetworkOutput(usize),
}

impl CutWiring {
    /// Resolves the wiring of `cut` over `tree` with the default
    /// ([`WiringStyle::Ahs`]) style.
    ///
    /// # Panics
    ///
    /// Panics if the cut is invalid for the tree.
    #[must_use]
    pub fn new(tree: &Tree, cut: &Cut) -> Self {
        Self::with_style(tree, cut, WiringStyle::Ahs)
    }

    /// Resolves the wiring of `cut` over `tree` with an explicit style.
    ///
    /// # Panics
    ///
    /// Panics if the cut is invalid for the tree.
    #[must_use]
    pub fn with_style(tree: &Tree, cut: &Cut, style: WiringStyle) -> Self {
        assert!(cut.is_valid(tree), "cut is not a valid antichain cover of the tree");
        let mut edges = std::collections::HashMap::new();
        for leaf in cut.leaves() {
            let info = tree.info(leaf).expect("cut leaf is valid");
            let mut ports = Vec::with_capacity(info.width);
            for port in 0..info.width {
                let dest = match resolve_output(tree, leaf, port, style) {
                    OutputDestination::Wire(addr) => ResolvedDestination::Leaf(
                        addr.owner_under(cut).expect("valid cut covers every wire"),
                    ),
                    OutputDestination::NetworkOutput(w) => ResolvedDestination::NetworkOutput(w),
                };
                ports.push(dest);
            }
            edges.insert(leaf.clone(), ports);
        }
        let inputs = (0..tree.width())
            .map(|wire| {
                let addr = network_input_address(tree, wire, style);
                let owner = addr.owner_under(cut).expect("valid cut covers every wire");
                PortRef { id: owner, port: usize::from(addr.port()) }
            })
            .collect();
        CutWiring { tree: *tree, style, edges, inputs }
    }

    /// The tree this wiring was resolved over.
    #[must_use]
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// The wiring style used.
    #[must_use]
    pub fn style(&self) -> WiringStyle {
        self.style
    }

    /// The leaf owning network input wire `wire` (the port is the
    /// balancer-level port and is informational only — components ignore
    /// input ports).
    ///
    /// # Panics
    ///
    /// Panics if `wire >= tree.width()`.
    #[must_use]
    pub fn input_owner(&self, wire: usize) -> &PortRef {
        &self.inputs[wire]
    }

    /// The destination leaf of output `port` of `leaf`, or `None` if that
    /// port is a network output.
    ///
    /// # Panics
    ///
    /// Panics if `leaf` is not in the cut or `port` is out of range.
    #[must_use]
    pub fn out_neighbor(&self, leaf: &ComponentId, port: usize) -> Option<&ComponentId> {
        match &self.edges[leaf][port] {
            ResolvedDestination::Leaf(id) => Some(id),
            ResolvedDestination::NetworkOutput(_) => None,
        }
    }

    /// The network output wire index of output `port` of `leaf`, or `None`
    /// if that port leads to another component.
    ///
    /// # Panics
    ///
    /// Panics if `leaf` is not in the cut or `port` is out of range.
    #[must_use]
    pub fn network_output(&self, leaf: &ComponentId, port: usize) -> Option<usize> {
        match &self.edges[leaf][port] {
            ResolvedDestination::Leaf(_) => None,
            ResolvedDestination::NetworkOutput(w) => Some(*w),
        }
    }

    /// The distinct out-neighbours of a leaf (paper Section 3.5 argues the
    /// expected number is constant).
    ///
    /// # Panics
    ///
    /// Panics if `leaf` is not in the cut.
    #[must_use]
    pub fn out_neighbors(&self, leaf: &ComponentId) -> Vec<ComponentId> {
        let mut v: Vec<ComponentId> = self.edges[leaf]
            .iter()
            .filter_map(|d| match d {
                ResolvedDestination::Leaf(id) => Some(id.clone()),
                ResolvedDestination::NetworkOutput(_) => None,
            })
            .collect();
        v.sort();
        v.dedup();
        v
    }

    /// All leaves of the wiring (the components of the cut).
    pub fn leaves(&self) -> impl Iterator<Item = &ComponentId> {
        self.edges.keys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cut::Cut;
    use std::collections::HashSet;

    /// Every child input port of a decomposed node is fed exactly once —
    /// by a parent input or by a sibling output.
    #[test]
    fn decomposition_wiring_is_a_bijection() {
        for style in [WiringStyle::Ahs, WiringStyle::PaperLiteral] {
            for kind in [ComponentKind::Bitonic, ComponentKind::Merger, ComponentKind::Mix] {
                for width in [4usize, 8, 16, 32] {
                    let half = width / 2;
                    let mut fed: HashSet<(usize, usize)> = HashSet::new();
                    for port in 0..width {
                        let dst = parent_input_to_child(kind, width, port, style);
                        assert!(fed.insert(dst), "{kind}[{width}] double-feeds {dst:?}");
                    }
                    let mut parent_out: HashSet<usize> = HashSet::new();
                    for child in 0..kind.arity() {
                        for port in 0..half {
                            match child_output_destination(kind, width, child, port, style) {
                                ChildOutput::Sibling { child: c, port: p } => {
                                    assert!(
                                        fed.insert((c, p)),
                                        "{kind}[{width}] double-feeds sibling ({c},{p})"
                                    );
                                }
                                ChildOutput::Parent { port: p } => {
                                    assert!(p < width);
                                    assert!(parent_out.insert(p));
                                }
                            }
                        }
                    }
                    // Every child input port covered exactly once.
                    let expected: usize = (0..kind.arity()).map(|_| half).sum();
                    assert_eq!(fed.len(), expected, "{kind}[{width}]");
                    // Every parent output port produced exactly once.
                    assert_eq!(parent_out.len(), width, "{kind}[{width}]");
                }
            }
        }
    }

    /// Child input ports that are fed by parent inputs vs. sibling outputs
    /// partition correctly: for BITONIC only the two sub-BITONICs receive
    /// external input; for MERGER only the two sub-MERGERs; for MIX both
    /// children.
    #[test]
    fn external_inputs_enter_the_right_children() {
        let width = 16;
        for kind in [ComponentKind::Bitonic, ComponentKind::Merger, ComponentKind::Mix] {
            let mut kids: HashSet<usize> = HashSet::new();
            for port in 0..width {
                let (c, _) = parent_input_to_child(kind, width, port, WiringStyle::Ahs);
                kids.insert(c);
            }
            let expected: HashSet<usize> = [0, 1].into_iter().collect();
            assert_eq!(kids, expected, "{kind}");
        }
    }

    #[test]
    fn mix_layer_pairs_adjacent_wires() {
        // MIX[k] is a layer of balancers on wire pairs (2i, 2i+1): its
        // decomposition keeps top/bottom halves disjoint.
        let w = 8;
        for port in 0..w {
            let (c, p) = parent_input_to_child(ComponentKind::Mix, w, port, WiringStyle::Ahs);
            assert_eq!(c, usize::from(port >= w / 2));
            assert_eq!(p, port % (w / 2));
        }
    }

    #[test]
    fn resolve_output_of_root_cut_is_network_output() {
        let tree = Tree::new(8);
        for port in 0..8 {
            assert_eq!(
                resolve_output(&tree, &ComponentId::root(), port, WiringStyle::Ahs),
                OutputDestination::NetworkOutput(port)
            );
        }
    }

    #[test]
    fn resolve_output_level1_cut_matches_paper_figure1() {
        // Cut = the six level-1 children of BITONIC[8]. The component
        // graph must be: B -> M (both), M -> X (both), X -> out.
        let tree = Tree::new(8);
        let root = ComponentId::root();
        let mut cut = Cut::root();
        cut.split(&tree, &root).unwrap();
        let wiring = CutWiring::new(&tree, &cut);
        let b_top = root.child(0);
        let neighbors = wiring.out_neighbors(&b_top);
        assert_eq!(neighbors, vec![root.child(2), root.child(3)]);
        let m_top = root.child(2);
        assert_eq!(wiring.out_neighbors(&m_top), vec![root.child(4), root.child(5)]);
        let x_top = root.child(4);
        assert!(wiring.out_neighbors(&x_top).is_empty());
        // X outputs are the network outputs, in order.
        for port in 0..4 {
            assert_eq!(wiring.network_output(&x_top, port), Some(port));
            assert_eq!(wiring.network_output(&root.child(5), port), Some(4 + port));
        }
    }

    #[test]
    fn network_inputs_cover_all_wires_once() {
        let tree = Tree::new(16);
        let mut seen = HashSet::new();
        for wire in 0..16 {
            let addr = network_input_address(&tree, wire, WiringStyle::Ahs);
            assert!(seen.insert(addr.clone()), "wire {wire} duplicated");
            // Input wires land on level-max balancers on the input side:
            // the all-bitonic spine.
            assert!(addr.balancer().path().iter().all(|&c| c <= 1));
        }
    }

    #[test]
    fn wire_address_owner_and_candidates() {
        let tree = Tree::new(8);
        let addr = network_input_address(&tree, 0, WiringStyle::Ahs);
        // Root cut: owner is the root.
        let cut = Cut::root();
        assert_eq!(addr.owner_under(&cut), Some(ComponentId::root()));
        // Split the root: owner is the top BITONIC.
        let mut cut2 = Cut::root();
        cut2.split(&tree, &ComponentId::root()).unwrap();
        assert_eq!(addr.owner_under(&cut2), Some(ComponentId::root().child(0)));
        // Candidate chain is balancer, then ancestors to the root.
        let cands: Vec<ComponentId> = addr.candidates().collect();
        assert_eq!(cands.len(), tree.max_level() + 1);
        assert_eq!(cands.last(), Some(&ComponentId::root()));
    }

    #[test]
    fn cut_wiring_full_balancer_cut_has_expected_size() {
        let tree = Tree::new(8);
        let cut = Cut::balancers(&tree);
        let wiring = CutWiring::new(&tree, &cut);
        // 8*3*4/4 = 24 balancers.
        assert_eq!(wiring.leaves().count(), 24);
        // Every balancer has width 2; count network outputs: exactly 8.
        let mut outs = HashSet::new();
        for leaf in cut.leaves() {
            for port in 0..2 {
                if let Some(w) = wiring.network_output(leaf, port) {
                    assert!(outs.insert(w));
                }
            }
        }
        assert_eq!(outs.len(), 8);
    }

    #[test]
    fn out_neighbor_counts_are_bounded_by_two_for_balancer_cut() {
        // A balancer has two output wires, hence at most 2 out-neighbours.
        let tree = Tree::new(16);
        let cut = Cut::balancers(&tree);
        let wiring = CutWiring::new(&tree, &cut);
        for leaf in cut.leaves() {
            assert!(wiring.out_neighbors(leaf).len() <= 2);
        }
    }

    #[test]
    fn styles_differ_only_on_merger_assignment() {
        let w = 8;
        let a = child_output_destination(ComponentKind::Bitonic, w, 1, 0, WiringStyle::Ahs);
        let b =
            child_output_destination(ComponentKind::Bitonic, w, 1, 0, WiringStyle::PaperLiteral);
        assert_ne!(a, b);
        // Top-bitonic outputs agree across styles.
        for port in 0..w / 2 {
            assert_eq!(
                child_output_destination(ComponentKind::Bitonic, w, 0, port, WiringStyle::Ahs),
                child_output_destination(
                    ComponentKind::Bitonic,
                    w,
                    0,
                    port,
                    WiringStyle::PaperLiteral
                ),
            );
        }
    }

    #[test]
    fn child_input_to_parent_inverts_input_map() {
        for style in [WiringStyle::Ahs, WiringStyle::PaperLiteral] {
            for kind in [ComponentKind::Bitonic, ComponentKind::Merger, ComponentKind::Mix] {
                for width in [4usize, 8, 16, 32] {
                    for port in 0..width {
                        let (c, p) = parent_input_to_child(kind, width, port, style);
                        assert_eq!(
                            child_input_to_parent(kind, width, c, p, style),
                            Some(port),
                            "{kind}[{width}] port {port}"
                        );
                    }
                    // Sibling-fed child ports report None.
                    for child in 0..kind.arity() {
                        for p in 0..width / 2 {
                            let inv = child_input_to_parent(kind, width, child, p, style);
                            if let Some(parent_port) = inv {
                                assert_eq!(
                                    parent_input_to_child(kind, width, parent_port, style),
                                    (child, p)
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn input_port_of_roundtrips_descents() {
        let tree = Tree::new(16);
        for node in tree.iter_preorder() {
            for port in 0..node.width {
                let addr = super::descend_to_balancer(
                    &tree,
                    node.id.clone(),
                    port,
                    WiringStyle::Ahs,
                );
                assert_eq!(
                    input_port_of(&tree, &node.id, &addr, WiringStyle::Ahs),
                    Some(port),
                    "{} port {port}",
                    node.id
                );
            }
        }
    }

    #[test]
    fn input_port_of_internal_wire_is_none() {
        // The wire from the top BITONIC[4] into the top MERGER[4] of T_8
        // is internal to the root.
        let tree = Tree::new(8);
        let root = ComponentId::root();
        if let OutputDestination::Wire(addr) =
            resolve_output(&tree, &root.child(0), 0, WiringStyle::Ahs)
        {
            assert_eq!(input_port_of(&tree, &root, &addr, WiringStyle::Ahs), None);
            // But relative to the merger itself it is a boundary port.
            assert!(input_port_of(&tree, &root.child(2), &addr, WiringStyle::Ahs).is_some());
        } else {
            panic!("expected an internal wire");
        }
    }
}
