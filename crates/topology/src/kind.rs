//! Component kinds of the bitonic decomposition.

use std::fmt;

/// The kind of a component in the decomposition tree `T_w`.
///
/// The paper (Section 2.1) decomposes `BITONIC[k]` into six smaller
/// components: two `BITONIC[k/2]`, two `MERGER[k/2]` and two `MIX[k/2]`.
/// `MERGER[k]` decomposes into two `MERGER[k/2]` and two `MIX[k/2]`, and
/// `MIX[k]` into two `MIX[k/2]`. Width-2 components of every kind are
/// single balancers and are the leaves of `T_w`.
///
/// # Example
///
/// ```
/// use acn_topology::ComponentKind;
///
/// assert_eq!(ComponentKind::Bitonic.arity(), 6);
/// assert_eq!(ComponentKind::Merger.arity(), 4);
/// assert_eq!(ComponentKind::Mix.arity(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ComponentKind {
    /// A `BITONIC[k]` counting (sub)network.
    Bitonic,
    /// A `MERGER[k]` network merging two step-property sequences.
    Merger,
    /// A `MIX[k]` network: a single layer of `k/2` balancers.
    Mix,
}

impl ComponentKind {
    /// Number of children a non-leaf node of this kind has in `T_w`.
    ///
    /// Children are ordered as follows (indices used by [`child_kind`]):
    ///
    /// - `Bitonic`: `[BitonicTop, BitonicBottom, MergerTop, MergerBottom,
    ///   MixTop, MixBottom]`
    /// - `Merger`: `[MergerTop, MergerBottom, MixTop, MixBottom]`
    /// - `Mix`: `[MixTop, MixBottom]`
    ///
    /// [`child_kind`]: ComponentKind::child_kind
    #[must_use]
    pub fn arity(self) -> usize {
        match self {
            ComponentKind::Bitonic => 6,
            ComponentKind::Merger => 4,
            ComponentKind::Mix => 2,
        }
    }

    /// The kind of the `index`-th child of a node of this kind.
    ///
    /// Returns `None` if `index >= self.arity()`.
    ///
    /// # Example
    ///
    /// ```
    /// use acn_topology::ComponentKind;
    ///
    /// assert_eq!(
    ///     ComponentKind::Bitonic.child_kind(2),
    ///     Some(ComponentKind::Merger)
    /// );
    /// assert_eq!(ComponentKind::Mix.child_kind(2), None);
    /// ```
    #[must_use]
    pub fn child_kind(self, index: usize) -> Option<ComponentKind> {
        match (self, index) {
            (ComponentKind::Bitonic, 0 | 1) => Some(ComponentKind::Bitonic),
            (ComponentKind::Bitonic, 2 | 3) => Some(ComponentKind::Merger),
            (ComponentKind::Bitonic, 4 | 5) => Some(ComponentKind::Mix),
            (ComponentKind::Merger, 0 | 1) => Some(ComponentKind::Merger),
            (ComponentKind::Merger, 2 | 3) => Some(ComponentKind::Mix),
            (ComponentKind::Mix, 0 | 1) => Some(ComponentKind::Mix),
            _ => None,
        }
    }

    /// Short uppercase tag used in component names (`B`, `M`, `X`).
    #[must_use]
    pub fn tag(self) -> char {
        match self {
            ComponentKind::Bitonic => 'B',
            ComponentKind::Merger => 'M',
            ComponentKind::Mix => 'X',
        }
    }
}

impl fmt::Display for ComponentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ComponentKind::Bitonic => "BITONIC",
            ComponentKind::Merger => "MERGER",
            ComponentKind::Mix => "MIX",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_matches_paper() {
        // Paper Section 2.1: six, four and two children respectively.
        assert_eq!(ComponentKind::Bitonic.arity(), 6);
        assert_eq!(ComponentKind::Merger.arity(), 4);
        assert_eq!(ComponentKind::Mix.arity(), 2);
    }

    #[test]
    fn child_kinds_follow_decomposition() {
        use ComponentKind::*;
        let b: Vec<_> = (0..6).map(|i| Bitonic.child_kind(i).unwrap()).collect();
        assert_eq!(b, [Bitonic, Bitonic, Merger, Merger, Mix, Mix]);
        let m: Vec<_> = (0..4).map(|i| Merger.child_kind(i).unwrap()).collect();
        assert_eq!(m, [Merger, Merger, Mix, Mix]);
        let x: Vec<_> = (0..2).map(|i| Mix.child_kind(i).unwrap()).collect();
        assert_eq!(x, [Mix, Mix]);
    }

    #[test]
    fn child_kind_out_of_range_is_none() {
        assert_eq!(ComponentKind::Bitonic.child_kind(6), None);
        assert_eq!(ComponentKind::Merger.child_kind(4), None);
        assert_eq!(ComponentKind::Mix.child_kind(2), None);
    }

    #[test]
    fn display_and_tag() {
        assert_eq!(ComponentKind::Bitonic.to_string(), "BITONIC");
        assert_eq!(ComponentKind::Merger.to_string(), "MERGER");
        assert_eq!(ComponentKind::Mix.to_string(), "MIX");
        assert_eq!(ComponentKind::Bitonic.tag(), 'B');
        assert_eq!(ComponentKind::Merger.tag(), 'M');
        assert_eq!(ComponentKind::Mix.tag(), 'X');
    }
}
