//! The level-count function `phi` of the decomposition tree.
//!
//! The paper (Section 3, "Notation") defines `phi(l)` as the number of
//! components at level `l` of `T_w`. The counts follow the linear
//! recurrence induced by the decomposition arities and are independent of
//! `w` as long as `l <= log2(w) - 1`; we compute them for the unbounded
//! tree, which is what the splitting/merging rules consume.

/// Largest level for which [`phi`] is exactly representable; `phi` grows
/// like `6^l`, so values beyond this level saturate `u128`.
pub const PHI_MAX_LEVEL: usize = 45;

/// Number of components at level `level` of the (unbounded) decomposition
/// tree: `phi(0) = 1`, `phi(1) = 6`, `phi(2) = 24`, ...
///
/// Saturates at `u128::MAX` beyond [`PHI_MAX_LEVEL`].
///
/// # Example
///
/// ```
/// use acn_topology::phi;
///
/// assert_eq!(phi(0), 1);
/// assert_eq!(phi(1), 6);
/// assert_eq!(phi(2), 24);
/// ```
#[must_use]
pub fn phi(level: usize) -> u128 {
    let (b, m, x) = counts_at(level);
    b.saturating_add(m).saturating_add(x)
}

/// The (bitonic, merger, mix) population at a level of the unbounded tree.
fn counts_at(level: usize) -> (u128, u128, u128) {
    let mut b: u128 = 1;
    let mut m: u128 = 0;
    let mut x: u128 = 0;
    for _ in 0..level.min(PHI_MAX_LEVEL + 1) {
        // Each Bitonic spawns 2 Bitonic, 2 Merger, 2 Mix; each Merger
        // spawns 2 Merger, 2 Mix; each Mix spawns 2 Mix.
        let nb = b.saturating_mul(2);
        let nm = b.saturating_mul(2).saturating_add(m.saturating_mul(2));
        let nx = b
            .saturating_mul(2)
            .saturating_add(m.saturating_mul(2))
            .saturating_add(x.saturating_mul(2));
        b = nb;
        m = nm;
        x = nx;
    }
    if level > PHI_MAX_LEVEL {
        (u128::MAX / 4, u128::MAX / 4, u128::MAX / 4)
    } else {
        (b, m, x)
    }
}

/// The largest level `k` such that `phi(k) < n` (the paper's local level
/// estimate given a size estimate `n`, and the definition of the ideal
/// level `l*` given the true size `N`).
///
/// Returns 0 when `n <= 1` (no level satisfies `phi(k) < n`; the network
/// then stays a single root component).
///
/// # Example
///
/// ```
/// use acn_topology::level_for_size;
///
/// assert_eq!(level_for_size(1), 0);
/// assert_eq!(level_for_size(2), 0);  // phi(0) = 1 < 2, phi(1) = 6 >= 2
/// assert_eq!(level_for_size(7), 1);  // phi(1) = 6 < 7
/// assert_eq!(level_for_size(25), 2); // phi(2) = 24 < 25
/// ```
#[must_use]
pub fn level_for_size(n: u128) -> usize {
    let mut level = 0;
    while phi(level + 1) < n {
        level += 1;
    }
    level
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ComponentId, NodeInfo, Tree};

    #[test]
    fn first_values_match_paper() {
        // Paper: phi(0) = 1, phi(1) = 6, phi(2) = 24.
        assert_eq!(phi(0), 1);
        assert_eq!(phi(1), 6);
        assert_eq!(phi(2), 24);
    }

    #[test]
    fn fact_1_growth_bounds() {
        // Paper Fact 1: 2*phi(k) <= phi(k+1) <= 6*phi(k).
        for k in 0..30 {
            assert!(phi(k + 1) >= 2 * phi(k), "lower bound fails at {k}");
            assert!(phi(k + 1) <= 6 * phi(k), "upper bound fails at {k}");
        }
    }

    #[test]
    fn phi_matches_explicit_tree_enumeration() {
        let tree = Tree::new(64); // levels 0..=5
        for level in 0..=tree.max_level() {
            let count = tree
                .iter_preorder()
                .filter(|n: &NodeInfo| n.level == level)
                .count() as u128;
            assert_eq!(count, phi(level), "level {level}");
        }
    }

    #[test]
    fn level_for_size_is_monotone_and_tight() {
        let mut prev = level_for_size(1);
        for n in 2..=100_000u128 {
            let l = level_for_size(n);
            assert!(l >= prev);
            assert!(phi(l) < n || l == 0);
            assert!(phi(l + 1) >= n);
            prev = l;
        }
    }

    #[test]
    fn saturation_does_not_panic() {
        assert!(phi(PHI_MAX_LEVEL + 10) > phi(30));
        // level_for_size on huge inputs terminates.
        assert!(level_for_size(u128::MAX / 2) <= PHI_MAX_LEVEL + 2);
    }

    #[test]
    fn phi_counts_components_not_balancers() {
        // Sanity: level counts of T_w coincide with the unbounded tree for
        // all levels present in T_w (independence from w).
        let t8 = Tree::new(8);
        let t32 = Tree::new(32);
        for level in 0..=t8.max_level() {
            let c8 = t8.iter_preorder().filter(|n| n.level == level).count();
            let c32 = t32.iter_preorder().filter(|n| n.level == level).count();
            assert_eq!(c8, c32, "level {level}");
        }
        let _ = ComponentId::root(); // silence unused import in some cfgs
    }
}
