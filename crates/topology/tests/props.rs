//! Property tests for the decomposition topology.

use acn_topology::{
    child_output_destination, network_input_address, parent_input_to_child, phi, ChildOutput,
    ComponentId, ComponentKind, Cut, Tree, WiringStyle,
};
use proptest::prelude::*;

proptest! {
    /// Pre-order naming round-trips for every node of every tree.
    #[test]
    fn preorder_roundtrip(logw in 1u32..7, index_seed in any::<u64>()) {
        let tree = Tree::new(1 << logw);
        let index = index_seed % tree.node_count();
        let id = tree.from_preorder_index(index).expect("in range");
        prop_assert_eq!(tree.preorder_index(&id), index);
    }

    /// Packed u64 ids round-trip for arbitrary valid paths.
    #[test]
    fn packed_id_roundtrip(path in proptest::collection::vec(0u8..6, 0..12)) {
        // Make the path a valid kind descent by clamping indices.
        let mut valid = Vec::new();
        let mut kind = ComponentKind::Bitonic;
        for step in path {
            let arity = kind.arity() as u8;
            let step = step % arity;
            valid.push(step);
            kind = kind.child_kind(step as usize).expect("clamped");
        }
        let id = ComponentId::from_path(valid);
        prop_assert_eq!(ComponentId::from_u64(id.to_u64()), id);
    }

    /// The decomposition port maps are mutually consistent bijections.
    #[test]
    fn port_maps_bijective(
        kind in proptest::sample::select(vec![
            ComponentKind::Bitonic, ComponentKind::Merger, ComponentKind::Mix
        ]),
        logw in 2u32..7,
        style in proptest::sample::select(vec![WiringStyle::Ahs, WiringStyle::PaperLiteral]),
    ) {
        let width = 1usize << logw;
        let half = width / 2;
        let mut fed = std::collections::HashSet::new();
        for port in 0..width {
            prop_assert!(fed.insert(parent_input_to_child(kind, width, port, style)));
        }
        let mut parent_out = std::collections::HashSet::new();
        for child in 0..kind.arity() {
            for port in 0..half {
                match child_output_destination(kind, width, child, port, style) {
                    ChildOutput::Sibling { child: c, port: p } => {
                        prop_assert!(fed.insert((c, p)));
                    }
                    ChildOutput::Parent { port: p } => {
                        prop_assert!(parent_out.insert(p));
                    }
                }
            }
        }
        prop_assert_eq!(fed.len(), kind.arity() * half);
        prop_assert_eq!(parent_out.len(), width);
    }

    /// phi respects Fact 1 for all levels.
    #[test]
    fn phi_fact_1(k in 0usize..30) {
        prop_assert!(phi(k + 1) >= 2 * phi(k));
        prop_assert!(phi(k + 1) <= 6 * phi(k));
    }

    /// Input-wire addresses are distinct and always resolvable under the
    /// uniform cuts.
    #[test]
    fn input_addresses_distinct(logw in 1u32..7) {
        let w = 1usize << logw;
        let tree = Tree::new(w);
        let mut seen = std::collections::HashSet::new();
        for wire in 0..w {
            let addr = network_input_address(&tree, wire, WiringStyle::Ahs);
            prop_assert!(seen.insert(addr.clone()));
            for level in 0..=tree.max_level() {
                let cut = Cut::uniform(&tree, level);
                prop_assert!(addr.owner_under(&cut).is_some());
            }
        }
    }
}
