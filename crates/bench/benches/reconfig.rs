//! Cost of the adaptive machinery itself: split/merge state transfer,
//! convergence of the decentralized rules, size estimation, and routing
//! resolution.

use acn_bench::util::seeded_ring;
use acn_core::component::{merge_components, split_component, Component};
use acn_core::{ConvergedNetwork, LocalAdaptiveNetwork, NeighborCache};
use acn_estimator::estimate_size;
use acn_topology::{network_input_address, ComponentId, Cut, Tree, WiringStyle};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_state_transfer(c: &mut Criterion) {
    let mut group = c.benchmark_group("state_transfer");
    for w in [8usize, 64, 256] {
        let tree = Tree::new(w);
        let parent = Component::with_tokens(&tree, &ComponentId::root(), 3 * w as u64 + 1);
        group.bench_with_input(BenchmarkId::new("split", w), &parent, |b, p| {
            b.iter(|| split_component(&tree, p, WiringStyle::Ahs).expect("settled"))
        });
        let children = split_component(&tree, &parent, WiringStyle::Ahs).expect("settled");
        group.bench_with_input(BenchmarkId::new("merge", w), &children, |b, ch| {
            b.iter(|| {
                merge_components(&tree, &ComponentId::root(), ch, WiringStyle::Ahs)
                    .expect("settled")
            })
        });
    }
    group.finish();
}

fn bench_convergence(c: &mut Criterion) {
    let mut group = c.benchmark_group("converge_from_scratch");
    group.sample_size(10);
    for n in [32usize, 256, 1024] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter_with_setup(
                || seeded_ring(n, 42),
                |ring| ConvergedNetwork::new(1 << 12, ring),
            )
        });
    }
    group.finish();
}

fn bench_estimation(c: &mut Criterion) {
    let mut group = c.benchmark_group("size_estimation");
    for n in [64usize, 4096] {
        let ring = seeded_ring(n, 7);
        let node = ring.nodes().next().expect("non-empty");
        group.bench_with_input(BenchmarkId::from_parameter(n), &ring, |b, r| {
            b.iter(|| estimate_size(r, node))
        });
    }
    group.finish();
}

fn bench_routing_resolution(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing");
    let w = 1 << 10;
    let tree = Tree::new(w);
    let net = ConvergedNetwork::new(w, seeded_ring(128, 3));
    let addr = network_input_address(&tree, 0, WiringStyle::Ahs);
    let mut cache = NeighborCache::new();
    let _ = cache.resolve(net.cut(), &addr);
    group.bench_function("warm_resolve", |b| {
        b.iter(|| cache.resolve(net.cut(), &addr))
    });
    let mut push_net = LocalAdaptiveNetwork::with_cut(64, Cut::root(), WiringStyle::Ahs);
    group.bench_function("push_root_cut", |b| b.iter(|| push_net.push(0)));
    group.finish();
}

criterion_group!(
    benches,
    bench_state_transfer,
    bench_convergence,
    bench_estimation,
    bench_routing_resolution
);
criterion_main!(benches);
