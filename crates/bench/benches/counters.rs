//! Throughput of the counter structures (the wall-clock companion to
//! experiment E11): centralized counter, counting tree (diffracting-tree
//! baseline), lock-free static bitonic/periodic networks, and the
//! adaptive network at several cuts.

use std::sync::Arc;

use acn_bitonic::{
    bitonic_network, periodic_network, AtomicNetworkCounter, CentralCounter, Counter,
    ReactiveTreeCounter, TreeCounter,
};
use acn_core::LocalAdaptiveNetwork;
use acn_topology::{Cut, Tree, WiringStyle};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_sequential_counters(c: &mut Criterion) {
    let mut group = c.benchmark_group("sequential_next");
    group.throughput(Throughput::Elements(1));

    let central = CentralCounter::new();
    group.bench_function("central", |b| b.iter(|| std::hint::black_box(central.next())));

    for leaves in [8usize, 64] {
        let tree = TreeCounter::new(leaves);
        group.bench_with_input(BenchmarkId::new("tree", leaves), &tree, |b, t| {
            b.iter(|| std::hint::black_box(t.next()))
        });
    }

    for w in [8usize, 32] {
        let net = AtomicNetworkCounter::new(bitonic_network(w));
        group.bench_with_input(BenchmarkId::new("bitonic", w), &net, |b, n| {
            b.iter(|| std::hint::black_box(n.next()))
        });
    }
    let periodic = AtomicNetworkCounter::new(periodic_network(8));
    group.bench_function("periodic/8", |b| b.iter(|| std::hint::black_box(periodic.next())));

    let reactive = ReactiveTreeCounter::new(6);
    group.bench_function("reactive_tree_folded/64", |b| {
        b.iter(|| std::hint::black_box(reactive.next()))
    });
    let reactive_open = ReactiveTreeCounter::new(6);
    reactive_open.unfold_root();
    reactive_open.unfold_root();
    group.bench_function("reactive_tree_unfolded/64", |b| {
        b.iter(|| std::hint::black_box(reactive_open.next()))
    });

    group.finish();
}

fn bench_adaptive_cuts(c: &mut Criterion) {
    let mut group = c.benchmark_group("adaptive_push");
    group.throughput(Throughput::Elements(1));
    let w = 64;
    let tree = Tree::new(w);
    for level in 0..=tree.max_level() {
        let mut net =
            LocalAdaptiveNetwork::with_cut(w, Cut::uniform(&tree, level), WiringStyle::Ahs);
        let mut wire = 0usize;
        group.bench_with_input(BenchmarkId::new("uniform_level", level), &level, |b, _| {
            b.iter(|| {
                wire = (wire + 7) % w;
                std::hint::black_box(net.push(wire))
            })
        });
    }
    group.finish();
}

fn bench_concurrent_counters(c: &mut Criterion) {
    let mut group = c.benchmark_group("concurrent_4threads_1000ops");
    let run = |counter: Arc<dyn Counter>| {
        let mut handles = Vec::new();
        for _ in 0..4 {
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                for _ in 0..250 {
                    std::hint::black_box(counter.next());
                }
            }));
        }
        for h in handles {
            h.join().expect("worker panicked");
        }
    };
    group.bench_function("central", |b| {
        b.iter(|| run(Arc::new(CentralCounter::new())));
    });
    group.bench_function("tree/64", |b| {
        b.iter(|| run(Arc::new(TreeCounter::new(64))));
    });
    group.bench_function("bitonic/16", |b| {
        b.iter(|| run(Arc::new(AtomicNetworkCounter::new(bitonic_network(16)))));
    });
    group.bench_function("reactive_tree/64", |b| {
        b.iter(|| {
            let tree = ReactiveTreeCounter::new(6);
            tree.unfold_root();
            run(Arc::new(tree))
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sequential_counters,
    bench_adaptive_cuts,
    bench_concurrent_counters
);
criterion_main!(benches);
