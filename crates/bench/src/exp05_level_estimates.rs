//! E5 (Lemma 3.3): with high probability, every node's level estimate
//! lies in `[l* - 4, l* + 4]`.
//!
//! Reports the full histogram of `l_v - l*` across many seeded rings.

use acn_estimator::{ideal_level, node_level};

use crate::util::{section, seeded_ring, Table};

/// Runs the experiment and returns the rendered report.
#[must_use]
pub fn run() -> String {
    let mut table = Table::new(&["N", "l*", "-2", "-1", "0", "+1", "+2", "|dev|>4"]);
    for &n in &[32usize, 128, 512, 2048, 8192] {
        let lstar = ideal_level(n) as i64;
        let mut hist = [0usize; 5]; // deviations -2..=+2
        let mut out_of_lemma = 0usize;
        let rings = if n <= 2048 { 10 } else { 3 };
        for seed in 0..rings as u64 {
            let ring = seeded_ring(n, seed * 31 + 5);
            for node in ring.nodes().collect::<Vec<_>>() {
                let dev = node_level(&ring, node) as i64 - lstar;
                if dev.abs() > 4 {
                    out_of_lemma += 1;
                } else if (-2..=2).contains(&dev) {
                    hist[(dev + 2) as usize] += 1;
                }
            }
        }
        table.row(&[
            n.to_string(),
            lstar.to_string(),
            hist[0].to_string(),
            hist[1].to_string(),
            hist[2].to_string(),
            hist[3].to_string(),
            hist[4].to_string(),
            out_of_lemma.to_string(),
        ]);
    }
    section(
        "E5 / Lemma 3.3 — level estimates within [l*-4, l*+4]",
        &format!(
            "{}\nExpected (paper): the |dev|>4 column is 0; mass concentrates at deviation 0.\n",
            table.render()
        ),
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn no_deviation_beyond_lemma() {
        let report = super::run();
        for line in report.lines() {
            let cells: Vec<&str> = line.split_whitespace().collect();
            if cells.len() == 8 && cells[0].chars().all(|c| c.is_ascii_digit()) {
                assert_eq!(cells[7], "0", "lemma 3.3 violated: {line}");
            }
        }
    }
}
