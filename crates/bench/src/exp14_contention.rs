//! E11b — the motivating comparison under an explicit contention model.
//!
//! E11 compares idealized makespans; this experiment actually *runs* the
//! token traffic through a timed network-of-queues model in which the
//! **overlay nodes are the servers**: every component is mapped to its
//! hash owner, a node processes one token per tick (its components share
//! the node's capacity, exactly as colocated objects share a host), and
//! wires add a fixed latency. The makespan for a batch of tokens then
//! reflects both contention (too little width ⇒ one node serializes
//! everything) and overhead (too much width ⇒ long pipelines for no
//! gain) — the two failure modes of static sizing from Section 2 of the
//! paper.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use acn_core::component::Component;
use acn_core::ConvergedNetwork;
use acn_overlay::Ring;
use acn_topology::{
    input_port_of, network_input_address, resolve_output, ComponentId, Cut, OutputDestination,
    Tree, WireAddress, WiringStyle,
};

use crate::util::{section, seeded_ring, Table};

/// Wire latency in ticks (a remote hop costs this much).
const HOP_LATENCY: u64 = 4;

/// Runs a batch of `tokens` through the cut's component network with
/// per-node FIFO service (1 token/tick/node) and returns the makespan.
fn timed_makespan(tree: &Tree, cut: &Cut, ring: &Ring, tokens: u64) -> u64 {
    let style = WiringStyle::Ahs;
    let mut components: HashMap<ComponentId, Component> = cut
        .leaves()
        .iter()
        .map(|id| (id.clone(), Component::new(tree, id)))
        .collect();
    // Node service availability.
    let mut node_free: HashMap<u64, u64> = HashMap::new();
    // Event queue: (arrival time, sequence, wire address).
    let mut heap: BinaryHeap<Reverse<(u64, u64, WireAddress)>> = BinaryHeap::new();
    let w = tree.width();
    for t in 0..tokens {
        let wire = (t % w as u64) as usize;
        let addr = network_input_address(tree, wire, style);
        heap.push(Reverse((0, t, addr)));
    }
    let mut seq = tokens;
    let mut makespan = 0u64;
    while let Some(Reverse((time, _, addr))) = heap.pop() {
        let owner = addr.owner_under(cut).expect("valid cut");
        let node = ring.owner_of_name(tree.preorder_index(&owner));
        let free = node_free.entry(node.0).or_insert(0);
        let start = time.max(*free);
        *free = start + 1; // one token per tick per node
        let comp = components.get_mut(&owner).expect("live component");
        let port = input_port_of(tree, &owner, &addr, style);
        let out = comp.process_token(port);
        let done = start + 1;
        match resolve_output(tree, &owner, out, style) {
            OutputDestination::Wire(next) => {
                seq += 1;
                heap.push(Reverse((done + HOP_LATENCY, seq, next)));
            }
            OutputDestination::NetworkOutput(_) => makespan = makespan.max(done),
        }
    }
    makespan
}

/// Runs the experiment and returns the rendered report.
#[must_use]
pub fn run() -> String {
    run_for(&[4usize, 32, 256, 1024])
}

/// Runs the sweep for the given system sizes (the unit test truncates
/// it; the release harness runs the full sweep).
#[must_use]
pub fn run_for(sizes: &[usize]) -> String {
    let mut table = Table::new(&[
        "N",
        "tokens",
        "structure",
        "makespan (ticks)",
        "throughput (tok/tick)",
    ]);
    for &n in sizes {
        let ring = seeded_ring(n, 0xC047E + n as u64);
        let tokens = 64 * n as u64;
        // The adaptive cut for this system size.
        let adaptive = ConvergedNetwork::new(1 << 12, ring.clone());
        let rows: Vec<(String, Tree, Cut)> = vec![
            (
                "adaptive".into(),
                *adaptive.tree(),
                adaptive.cut().clone(),
            ),
            ("static BITONIC[8] (balancers)".into(), Tree::new(8), {
                let t = Tree::new(8);
                Cut::balancers(&t)
            }),
            ("static BITONIC[128] (balancers)".into(), Tree::new(128), {
                let t = Tree::new(128);
                Cut::balancers(&t)
            }),
            ("central counter".into(), Tree::new(2), Cut::root()),
        ];
        for (name, tree, cut) in rows {
            let makespan = timed_makespan(&tree, &cut, &ring, tokens);
            table.row(&[
                n.to_string(),
                tokens.to_string(),
                name,
                makespan.to_string(),
                format!("{:.2}", tokens as f64 / makespan as f64),
            ]);
        }
    }
    section(
        "E11b — contention-model makespan (nodes are the servers)",
        &format!(
            "{}\nModel: 1 token/tick per node, {HOP_LATENCY}-tick wire hops, tokens injected\nround-robin at t=0. Expected shape (paper Section 2): the central counter's\nthroughput is pinned at 1 token/tick forever and the static networks are\npinned at their built-in width, while the adaptive throughput grows with N;\nat small N the adaptive network avoids the overhead the oversized static\nnetwork pays (pipeline depth with no usable parallelism). The bitonic\npipeline depth O(log^2) is the price of adaptivity the paper acknowledges —\nvisible as the mid-range dip before parallelism dominates.\n",
            table.render()
        ),
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn adaptive_is_never_pathological() {
        let report = super::run_for(&[4usize, 32]);
        // Parse throughputs per N and verify the adaptive line is within
        // a small factor of the best structure at every N.
        let mut best: std::collections::HashMap<String, f64> = std::collections::HashMap::new();
        let mut adaptive: std::collections::HashMap<String, f64> =
            std::collections::HashMap::new();
        for line in report.lines() {
            let cells: Vec<&str> = line.split_whitespace().collect();
            if cells.len() < 4 || !cells[0].chars().all(|c| c.is_ascii_digit()) {
                continue;
            }
            let n = cells[0].to_owned();
            let throughput: f64 = cells[cells.len() - 1].parse().expect("throughput");
            let entry = best.entry(n.clone()).or_insert(0.0);
            *entry = entry.max(throughput);
            if line.contains(" adaptive") {
                adaptive.insert(n, throughput);
            }
        }
        for (n, best_tp) in best {
            let ours = adaptive[&n];
            assert!(
                ours * 4.0 >= best_tp,
                "N={n}: adaptive throughput {ours} vs best {best_tp}"
            );
        }
    }
}
