//! A1 (ablation, DESIGN.md §3.1): the simulation-based split
//! initialization is necessary — zero-initializing the children loses
//! the round-robin offset whenever the parent counter `x != 0`.

use acn_bitonic::step::is_step_sequence;
use acn_core::LocalAdaptiveNetwork;
use acn_topology::{ComponentId, Cut, Tree, WiringStyle};

use crate::util::{section, Table};

/// Runs the experiment and returns the rendered report.
#[must_use]
pub fn run() -> String {
    let mut table =
        Table::new(&["w", "warmups tested", "zero-init failures", "sim-init failures"]);
    for &w in &[4usize, 8, 16, 32] {
        let tree = Tree::new(w);
        let root = ComponentId::root();
        let mut zero_failures = 0usize;
        let mut sim_failures = 0usize;
        for warmup in 0..w {
            // Real split.
            let mut good = LocalAdaptiveNetwork::new(w);
            for t in 0..warmup {
                let _ = good.push(t % w);
            }
            good.split(&root).expect("root splits");
            let mut ok = true;
            for t in warmup..warmup + 2 * w {
                ok &= good.push(t % 3) == t % w;
            }
            ok &= is_step_sequence(good.output_counts());
            if !ok {
                sim_failures += 1;
            }

            // Naive split: fresh children, warmed-up exit ledger.
            let mut split_cut = Cut::root();
            split_cut.split(&tree, &root).expect("root splits");
            let mut naive = LocalAdaptiveNetwork::with_cut(w, split_cut, WiringStyle::Ahs);
            // Replay the warmup through a pristine root first, recording
            // the ledger, then pretend a zero-init split happened.
            let mut ledger = vec![0u64; w];
            for t in 0..warmup {
                ledger[t % w] += 1;
            }
            let mut ok = true;
            for t in warmup..warmup + 2 * w {
                let out = naive.push(t % 3);
                ledger[out] += 1;
                ok &= is_step_sequence(&ledger);
            }
            if !ok {
                zero_failures += 1;
            }
        }
        table.row(&[
            w.to_string(),
            w.to_string(),
            zero_failures.to_string(),
            sim_failures.to_string(),
        ]);
    }
    section(
        "A1 — split state-transfer ablation (zero-init vs. simulated-init)",
        &format!(
            "{}\nExpected: sim-init never fails; zero-init fails for every warmup with\nx = warmup mod w != 0 (i.e. w-1 of w warmups).\n",
            table.render()
        ),
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn sim_init_never_fails_zero_init_mostly_fails() {
        let report = super::run();
        for line in report.lines() {
            let cells: Vec<&str> = line.split_whitespace().collect();
            if cells.len() == 4 && cells[0].chars().all(|c| c.is_ascii_digit()) {
                let w: usize = cells[0].parse().expect("w");
                let zero: usize = cells[2].parse().expect("zero failures");
                let sim: usize = cells[3].parse().expect("sim failures");
                assert_eq!(sim, 0, "simulated init failed: {line}");
                assert_eq!(zero, w - 1, "unexpected zero-init failures: {line}");
            }
        }
    }
}
