//! E3 (Lemma 2.3): if every leaf of the cut is at level at least `k`,
//! the effective width is at least `2^k` (uniform cuts achieve exactly
//! `2^k`), and splitting never decreases the effective width.

use acn_topology::{effective_width, ComponentDag, Cut, Tree};

use crate::util::{section, Lcg, Table};

/// Runs the experiment and returns the rendered report.
#[must_use]
pub fn run() -> String {
    let mut table = Table::new(&["w", "k (min level)", "cut", "width", "bound 2^k", "ok"]);
    for &w in &[8usize, 32, 128] {
        let tree = Tree::new(w);
        for k in 0..=tree.max_level() {
            let dag = ComponentDag::new(&tree, &Cut::uniform(&tree, k));
            let width = effective_width(&dag);
            table.row(&[
                w.to_string(),
                k.to_string(),
                "uniform".into(),
                width.to_string(),
                (1usize << k).to_string(),
                (width >= 1 << k).to_string(),
            ]);
        }
        let mut rng = Lcg(w as u64 * 31 + 7);
        let mut all_ok = true;
        for _ in 0..25 {
            let mut next = || rng.next() as f64 / (1u64 << 31) as f64;
            let cut = Cut::random(&tree, tree.max_level(), 0.5, &mut next);
            let k = cut.min_level();
            let width = effective_width(&ComponentDag::new(&tree, &cut));
            all_ok &= width >= 1 << k;
        }
        table.row(&[
            w.to_string(),
            "varied".into(),
            "25 random".into(),
            "-".into(),
            "-".into(),
            all_ok.to_string(),
        ]);
    }

    // Monotonicity under splits (the key observation in the lemma).
    let tree = Tree::new(8);
    let mut monotone = true;
    for cut in Cut::enumerate_all(&tree) {
        let base = effective_width(&ComponentDag::new(&tree, &cut));
        for leaf in cut.leaves().clone() {
            if tree.info(&leaf).expect("valid leaf").is_balancer() {
                continue;
            }
            let mut refined = cut.clone();
            refined.split(&tree, &leaf).expect("splittable");
            monotone &= effective_width(&ComponentDag::new(&tree, &refined)) >= base;
        }
    }

    section(
        "E3 / Lemma 2.3 — effective width bound 2^k",
        &format!(
            "{}\nSplit monotonicity over all refinements of all T_8 cuts: {}\nExpected (paper): ok everywhere; width never decreases on split.\n",
            table.render(),
            monotone
        ),
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn bound_always_holds() {
        let report = super::run();
        assert!(!report.contains("false"), "{report}");
    }
}
