//! A2 (ablation, DESIGN.md §3.2): the paper's literal (even, even)
//! merger wiring fails the step property; the Aspnes–Herlihy–Shavit
//! (even, odd) pairing counts.

use acn_bitonic::step::verify_sequential;
use acn_bitonic::from_cut_wiring;
use acn_topology::{Cut, CutWiring, Tree, WiringStyle};

use crate::util::{section, Lcg, Table};

/// Runs the experiment and returns the rendered report.
#[must_use]
pub fn run() -> String {
    let mut table = Table::new(&["w", "schedules", "AHS failures", "literal failures"]);
    for &w in &[4usize, 8, 16] {
        let tree = Tree::new(w);
        let cut = Cut::balancers(&tree);
        let ahs = from_cut_wiring(&CutWiring::with_style(&tree, &cut, WiringStyle::Ahs));
        let literal =
            from_cut_wiring(&CutWiring::with_style(&tree, &cut, WiringStyle::PaperLiteral));
        let schedules = 50usize;
        let mut ahs_failures = 0usize;
        let mut literal_failures = 0usize;
        for seed in 0..schedules as u64 {
            let mut a = Lcg(seed * 13 + 1);
            let mut b = Lcg(seed * 13 + 1);
            if !verify_sequential(&ahs, 4 * w, |_| a.below(w)).counts {
                ahs_failures += 1;
            }
            if !verify_sequential(&literal, 4 * w, |_| b.below(w)).counts {
                literal_failures += 1;
            }
        }
        table.row(&[
            w.to_string(),
            schedules.to_string(),
            ahs_failures.to_string(),
            literal_failures.to_string(),
        ]);
    }
    section(
        "A2 — wiring ablation (AHS pairing vs. the paper's literal prose)",
        &format!(
            "{}\nExpected: AHS never fails; the literal (even, even) pairing fails on\nmost schedules that load both halves (see DESIGN.md section 3.2).\n",
            table.render()
        ),
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn ahs_clean_literal_broken() {
        let report = super::run();
        for line in report.lines() {
            let cells: Vec<&str> = line.split_whitespace().collect();
            if cells.len() == 4 && cells[0].chars().all(|c| c.is_ascii_digit()) {
                assert_eq!(cells[2], "0", "AHS wiring failed: {line}");
                let literal: usize = cells[3].parse().expect("literal failures");
                assert!(literal > 0, "literal wiring unexpectedly counted: {line}");
            }
        }
    }
}
