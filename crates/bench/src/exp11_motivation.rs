//! E11 (Section 2's motivating comparison): a statically sized network
//! is either pure overhead (too wide for a small system) or a
//! parallelism bottleneck (too narrow for a large one); the adaptive
//! network tracks the sweet spot.
//!
//! For each system size `N` we compare, per structure: the number of
//! objects a node must host, the effective width (available
//! parallelism) and the effective depth (per-token latency in hops).
//! An idealized makespan for routing `T = 64 * N` tokens —
//! `depth + T/width` component-steps — summarizes the trade-off. The
//! wall-clock throughput companion to this table is the criterion bench
//! `benches/counters.rs`.

use acn_core::ConvergedNetwork;
use acn_topology::{effective_depth, effective_width, ComponentDag, Cut, Tree};

use crate::util::{section, seeded_ring, Table};

/// Per-structure measurements for one system size.
struct Row {
    name: &'static str,
    objects_per_node: f64,
    width: usize,
    depth: usize,
}

fn static_row(name: &'static str, w: usize, n: usize) -> Row {
    let tree = Tree::new(w);
    let cut = Cut::balancers(&tree);
    let dag = ComponentDag::new(&tree, &cut);
    Row {
        name,
        objects_per_node: cut.leaves().len() as f64 / n as f64,
        width: effective_width(&dag),
        depth: effective_depth(&dag),
    }
}

/// Runs the experiment and returns the rendered report.
#[must_use]
pub fn run() -> String {
    let mut table = Table::new(&[
        "N",
        "structure",
        "objects/node",
        "eff width",
        "eff depth",
        "makespan (T=64N)",
    ]);
    for &n in &[4usize, 16, 64, 256, 1024] {
        let tokens = 64.0 * n as f64;
        let adaptive = {
            let net = ConvergedNetwork::new(1 << 13, seeded_ring(n, 0xE11 + n as u64));
            let s = net.snapshot();
            Row {
                name: "adaptive",
                objects_per_node: s.mean_components_per_node,
                width: s.effective_width,
                depth: s.effective_depth,
            }
        };
        let rows = [
            adaptive,
            static_row("static BITONIC[8]", 8, n),
            static_row("static BITONIC[128]", 128, n),
            Row { name: "central counter", objects_per_node: 1.0 / n as f64, width: 1, depth: 1 },
        ];
        for r in rows {
            let makespan = r.depth as f64 + tokens / r.width as f64;
            table.row(&[
                n.to_string(),
                r.name.into(),
                format!("{:.2}", r.objects_per_node),
                r.width.to_string(),
                r.depth.to_string(),
                format!("{makespan:.0}"),
            ]);
        }
    }
    section(
        "E11 / Section 2 motivation — adaptive vs. wrongly sized static networks",
        &format!(
            "{}\nReading guide: at N=4 the static BITONIC[128] forces ~hundreds of objects\nonto each node (pure overhead) while the adaptive network stays centralized;\nat N=1024 the static BITONIC[8] and the central counter are width-starved\n(makespan ~ T/width) while the adaptive width keeps growing with N.\n",
            table.render()
        ),
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn adaptive_wins_at_both_extremes() {
        let report = super::run();
        assert!(report.contains("adaptive"));
        assert!(report.contains("static BITONIC[128]"));
    }
}
