//! E18 — multi-threaded token throughput: locked vs lock-free executor.
//!
//! The ROADMAP's north star is a counting service "as fast as the
//! hardware allows"; the paper's own pitch is that each component is
//! *one counter*, so routing a token should cost a handful of atomic
//! ops — not a global `RwLock` plus a per-component `Mutex` per hop.
//! This harness measures exactly that: the same
//! [`SharedAdaptiveNetwork`] workload under [`ExecMode::Locked`] (the
//! pre-fast-path executor, kept for comparison and checking) and
//! [`ExecMode::LockFree`] (the epoch-published snapshot fast path of
//! `DESIGN.md` §8), at 1/2/4/8 threads.
//!
//! Besides the human-readable table, [`run_report`] renders
//! `BENCH_throughput.json` — the repo's first perf-trajectory artifact
//! (see README "Benchmarks"). Numbers are only meaningful from release
//! builds (`scripts/bench.sh`).

use std::sync::Arc;
use std::time::Instant;

use acn_core::{ExecMode, SharedAdaptiveNetwork};
use acn_topology::ComponentId;

use crate::util::{section, Table};

/// Network width (BITONIC[8]); the root is split once so tokens route
/// through a real multi-component cut rather than a single counter.
const WIDTH: usize = 8;

/// One measured configuration.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputRow {
    /// Worker thread count.
    pub threads: usize,
    /// Locked-mode throughput, tokens/second.
    pub locked: f64,
    /// Lock-free-mode throughput, tokens/second.
    pub lockfree: f64,
}

impl ThroughputRow {
    /// Lock-free over locked speedup.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.lockfree / self.locked
    }
}

/// Runs `threads × ops` tokens through a fresh network in `mode` and
/// returns the aggregate throughput in tokens/second. Panics if the
/// handed-out token count disagrees with the quiescent output counts
/// (the benchmark must never trade correctness for speed silently).
fn run_mode(mode: ExecMode, threads: usize, ops: u64) -> f64 {
    let net = Arc::new(match mode {
        ExecMode::Locked => SharedAdaptiveNetwork::new_locked(WIDTH),
        ExecMode::LockFree => SharedAdaptiveNetwork::new(WIDTH),
    });
    net.split(&ComponentId::root()).expect("root splits");
    let start = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let net = Arc::clone(&net);
            std::thread::spawn(move || {
                let mut wire = t % WIDTH;
                for _ in 0..ops {
                    let _ = net.next_value(wire);
                    wire = (wire + 1) % WIDTH;
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker panicked");
    }
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    let total = threads as u64 * ops;
    let counted: u64 = net.output_counts().iter().sum();
    assert_eq!(counted, total, "{mode:?}: outputs disagree with tokens issued");
    total as f64 / elapsed
}

/// Runs the sweep over `thread_counts` with `ops` tokens per thread.
#[must_use]
pub fn measure(thread_counts: &[usize], ops: u64) -> Vec<ThroughputRow> {
    thread_counts
        .iter()
        .map(|&threads| ThroughputRow {
            threads,
            locked: run_mode(ExecMode::Locked, threads, ops),
            lockfree: run_mode(ExecMode::LockFree, threads, ops),
        })
        .collect()
}

/// Renders the rows as the `BENCH_throughput.json` artifact: a single
/// JSON object, hand-rolled (no serde in the workspace) and stable in
/// field order so diffs across PRs read as a trajectory.
#[must_use]
pub fn render_json(rows: &[ThroughputRow], ops: u64, smoke: bool) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"throughput_locked_vs_lockfree\",\n");
    out.push_str(&format!("  \"width\": {WIDTH},\n"));
    out.push_str(&format!("  \"ops_per_thread\": {ops},\n"));
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str("  \"results\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"threads\": {}, \"locked_tokens_per_sec\": {:.0}, \
             \"lockfree_tokens_per_sec\": {:.0}, \"speedup\": {:.2}}}{}\n",
            row.threads,
            row.locked,
            row.lockfree,
            row.speedup(),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders the human-readable table.
#[must_use]
pub fn render_table(rows: &[ThroughputRow], ops: u64) -> String {
    let mut table =
        Table::new(&["threads", "locked (tok/s)", "lock-free (tok/s)", "speedup"]);
    for row in rows {
        table.row(&[
            row.threads.to_string(),
            format!("{:.0}", row.locked),
            format!("{:.0}", row.lockfree),
            format!("{:.2}x", row.speedup()),
        ]);
    }
    section(
        "E18 — token throughput, locked vs lock-free executor",
        &format!(
            "{}\nWorkload: BITONIC[{WIDTH}] split once (multi-component cut), {ops} tokens\n\
             per thread, round-robin input wires. Locked = global RwLock read +\n\
             per-component Mutex per hop; lock-free = epoch-validated snapshot pin +\n\
             one fetch_add per hop (DESIGN.md \u{a7}8). Expected shape: parity-ish at one\n\
             thread, widening gap as threads contend on the component locks.\n",
            table.render()
        ),
    )
}

/// Full harness: measures 1/2/4/8 threads and returns
/// `(human_report, json_artifact)`. `smoke` shrinks the per-thread op
/// count so CI gates finish fast; headline numbers come from the
/// release-mode full run (`scripts/bench.sh`).
#[must_use]
pub fn run_report(smoke: bool) -> (String, String) {
    let ops: u64 = if smoke { 20_000 } else { 400_000 };
    let rows = measure(&[1, 2, 4, 8], ops);
    (render_table(&rows, ops), render_json(&rows, ops, smoke))
}

/// Runs the experiment and returns the rendered report (table only; the
/// JSON artifact is written by the `exp_throughput` binary).
#[must_use]
pub fn run() -> String {
    run_report(true).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_modes_measure_and_json_is_well_formed() {
        // Tiny run: this is a correctness test of the harness, not a
        // performance assertion (debug builds invert every ratio).
        let rows = measure(&[1, 2], 200);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!(row.locked > 0.0 && row.lockfree > 0.0);
        }
        let json = render_json(&rows, 200, true);
        assert!(json.contains("\"experiment\": \"throughput_locked_vs_lockfree\""));
        assert!(json.contains("\"threads\": 1"));
        assert!(json.contains("\"threads\": 2"));
        assert!(json.contains("\"speedup\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let table = render_table(&rows, 200);
        assert!(table.contains("E18"));
    }
}
