//! E18 — multi-threaded token throughput: locked vs lock-free executor.
//!
//! The ROADMAP's north star is a counting service "as fast as the
//! hardware allows"; the paper's own pitch is that each component is
//! *one counter*, so routing a token should cost a handful of atomic
//! ops — not a global `RwLock` plus a per-component `Mutex` per hop.
//! This harness measures exactly that: the same
//! [`SharedAdaptiveNetwork`] workload under [`ExecMode::Locked`] (the
//! pre-fast-path executor, kept for comparison and checking), the
//! scalar [`ExecMode::LockFree`] fast path (epoch-published snapshot,
//! `DESIGN.md` §8), and the batching/eliminating
//! [`ShardedFrontEnd`] over the same lock-free network (`DESIGN.md`
//! §12) — the headline `lockfree` column — at 1/2/4/8 threads, plus a
//! `scaling_vs_1thread` column so flat scaling is visible at a glance.
//!
//! Two satellites ride along: a batch-size sweep at 8 threads
//! (adaptive vs pinned 16/64/256) and a padded-vs-unpadded
//! false-sharing microbench justifying [`CachePadded`] on the
//! per-leaf atomics.
//!
//! Besides the human-readable table, [`run_report`] renders
//! `BENCH_throughput.json` — the repo's first perf-trajectory artifact
//! (see README "Benchmarks"). Numbers are only meaningful from release
//! builds (`scripts/bench.sh`).

use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use std::time::Instant;

use acn_core::dist::Deployment;
use acn_core::{ExecMode, FrontendConfig, SharedAdaptiveNetwork, ShardedFrontEnd};
use acn_sync::CachePadded;
use acn_telemetry::Registry;
use acn_topology::ComponentId;
use acn_trace::Tracer;

use crate::util::{section, Table};

/// Network width (BITONIC[8]); the root is split once so tokens route
/// through a real multi-component cut rather than a single counter.
const WIDTH: usize = 8;

/// One measured configuration.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputRow {
    /// Worker thread count.
    pub threads: usize,
    /// Locked-mode throughput, tokens/second.
    pub locked: f64,
    /// Scalar lock-free throughput (one token per traversal),
    /// tokens/second — the pre-batching fast path, kept as the
    /// baseline the front-end is measured against.
    pub scalar: f64,
    /// Batched lock-free throughput through the [`ShardedFrontEnd`]
    /// (per-thread shard, adaptive batches, elimination), tokens/second
    /// — the headline `lockfree` column.
    pub lockfree: f64,
}

impl ThroughputRow {
    /// Lock-free (front-end) over locked speedup.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.lockfree / self.locked
    }
}

/// One batch-size sweep point (8 threads, front-end).
#[derive(Debug, Clone, Copy)]
pub struct BatchPoint {
    /// Pinned batch size; `0` means adaptive sizing.
    pub batch: u64,
    /// Front-end throughput at that size, tokens/second.
    pub tokens_per_sec: f64,
}

/// Padded-vs-unpadded contended `fetch_add` microbench (the S1
/// before/after evidence for cache-line padding the per-leaf atomics).
#[derive(Debug, Clone, Copy)]
pub struct PaddingReport {
    /// Ops/second with each thread's counter on adjacent words
    /// (false sharing).
    pub unpadded: f64,
    /// Ops/second with each counter in its own [`CachePadded`] line.
    pub padded: f64,
}

impl PaddingReport {
    /// Padded over unpadded throughput ratio.
    #[must_use]
    pub fn ratio(&self) -> f64 {
        self.padded / self.unpadded
    }
}

/// Runs `threads × ops` tokens through a fresh network in `mode` and
/// returns the aggregate throughput in tokens/second. Panics if the
/// handed-out token count disagrees with the quiescent output counts
/// (the benchmark must never trade correctness for speed silently).
fn run_mode(mode: ExecMode, threads: usize, ops: u64) -> f64 {
    run_mode_traced(mode, threads, ops, &Tracer::disabled())
}

/// [`run_mode`] with a [`Tracer`] attached to the executor — the
/// latency pass samples `exec.traverse` spans through it, and the
/// overhead pass compares against the detached baseline.
fn run_mode_traced(mode: ExecMode, threads: usize, ops: u64, tracer: &Tracer) -> f64 {
    let mut net = match mode {
        ExecMode::Locked => SharedAdaptiveNetwork::new_locked(WIDTH),
        ExecMode::LockFree => SharedAdaptiveNetwork::new(WIDTH),
    };
    net.attach_tracer(tracer);
    let net = Arc::new(net);
    net.split(&ComponentId::root()).expect("root splits");
    let start = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let net = Arc::clone(&net);
            std::thread::spawn(move || {
                let mut wire = t % WIDTH;
                for _ in 0..ops {
                    let _ = net.next_value(wire);
                    wire = (wire + 1) % WIDTH;
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker panicked");
    }
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    let total = threads as u64 * ops;
    let counted: u64 = net.output_counts().iter().sum();
    assert_eq!(counted, total, "{mode:?}: outputs disagree with tokens issued");
    total as f64 / elapsed
}

/// Runs `threads × ops` tokens through a fresh lock-free network via
/// the [`ShardedFrontEnd`] (one shard per thread) and returns the
/// aggregate consumed-token throughput. Asserts conservation
/// (`consumed + stashed == claimed`) and that the batching and
/// elimination counters are live in the telemetry snapshot — the
/// acceptance criteria of the scaling fix must hold on every run.
fn run_frontend(threads: usize, ops: u64, config: Option<FrontendConfig>) -> f64 {
    let registry = Registry::new();
    let mut net = SharedAdaptiveNetwork::new(WIDTH);
    net.attach_telemetry(&registry);
    let net = Arc::new(net);
    net.split(&ComponentId::root()).expect("root splits");
    let mut fe = match config {
        Some(cfg) => ShardedFrontEnd::with_config_in(Arc::clone(&net), threads, cfg),
        None => ShardedFrontEnd::new(Arc::clone(&net), threads),
    };
    fe.attach_telemetry(&registry);
    let fe = Arc::new(fe);
    let start = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let fe = Arc::clone(&fe);
            std::thread::spawn(move || {
                let mut wire = t % WIDTH;
                for _ in 0..ops {
                    let _ = fe.next_value(t, wire);
                    wire = (wire + 1) % WIDTH;
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker panicked");
    }
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    let total = threads as u64 * ops;
    let claimed: u64 = net.output_counts().iter().sum();
    assert_eq!(
        total + fe.outstanding(),
        claimed,
        "front-end leaked or invented values"
    );
    let snap = registry.snapshot();
    for name in
        ["acn.exec.batch_flushes", "acn.exec.batch_tokens", "acn.exec.refills", "acn.exec.elim_hits"]
    {
        assert!(snap.counter(name).is_some(), "{name} missing from telemetry snapshot");
    }
    total as f64 / elapsed
}

/// Runs the sweep over `thread_counts` with `ops` tokens per thread.
#[must_use]
pub fn measure(thread_counts: &[usize], ops: u64) -> Vec<ThroughputRow> {
    thread_counts
        .iter()
        .map(|&threads| ThroughputRow {
            threads,
            locked: run_mode(ExecMode::Locked, threads, ops),
            scalar: run_mode(ExecMode::LockFree, threads, ops),
            lockfree: run_frontend(threads, ops, None),
        })
        .collect()
}

/// The batch-size sweep: the front-end at `threads` threads with
/// adaptive sizing (`batch == 0`) and with the batch pinned to each
/// size in `sizes`.
#[must_use]
pub fn measure_batch_sweep(threads: usize, ops: u64, sizes: &[u64]) -> Vec<BatchPoint> {
    let mut points =
        vec![BatchPoint { batch: 0, tokens_per_sec: run_frontend(threads, ops, None) }];
    for &b in sizes {
        let cfg = FrontendConfig {
            batch_min: b,
            batch_max: b,
            quiet_window: 1024,
            elim_slots: (threads / 2).max(1),
            elim_patience: 32,
        };
        points.push(BatchPoint {
            batch: b,
            tokens_per_sec: run_frontend(threads, ops, Some(cfg)),
        });
    }
    points
}

/// `threads` workers each hammering their own `AtomicU64`, all packed
/// adjacently in one allocation — every `fetch_add` invalidates the
/// neighbours' cache line (false sharing).
fn hammer_unpadded(threads: usize, iters: u64) -> f64 {
    let slots: Arc<Vec<AtomicU64>> = Arc::new((0..threads).map(|_| AtomicU64::new(0)).collect());
    let start = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let slots = Arc::clone(&slots);
            std::thread::spawn(move || {
                for _ in 0..iters {
                    // lint: relaxed-ok(private per-thread tally; the microbench measures cache traffic, not ordering)
                    slots[t].fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker panicked");
    }
    (threads as u64 * iters) as f64 / start.elapsed().as_secs_f64().max(1e-9)
}

/// Same workload with each counter in its own [`CachePadded`] cache
/// line — the layout the executor uses for per-leaf atomics.
fn hammer_padded(threads: usize, iters: u64) -> f64 {
    let slots: Arc<Vec<CachePadded<AtomicU64>>> =
        Arc::new((0..threads).map(|_| CachePadded::new(AtomicU64::new(0))).collect());
    let start = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let slots = Arc::clone(&slots);
            std::thread::spawn(move || {
                for _ in 0..iters {
                    // lint: relaxed-ok(private per-thread tally; the microbench measures cache traffic, not ordering)
                    slots[t].fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker panicked");
    }
    (threads as u64 * iters) as f64 / start.elapsed().as_secs_f64().max(1e-9)
}

/// Measures the false-sharing microbench at `threads` threads.
#[must_use]
pub fn measure_padding(threads: usize, iters: u64) -> PaddingReport {
    PaddingReport {
        unpadded: hammer_unpadded(threads, iters),
        padded: hammer_padded(threads, iters),
    }
}

/// Renders the rows as the `BENCH_throughput.json` artifact: a single
/// JSON object, hand-rolled (no serde in the workspace) and stable in
/// field order so diffs across PRs read as a trajectory. The
/// `lockfree_tokens_per_sec` column is the batched front-end (the
/// production serving path); `scalar_lockfree_tokens_per_sec` keeps
/// the pre-batching per-token fast path visible for comparison, and
/// `scaling_vs_1thread` is each row's front-end throughput over the
/// 1-thread row's (the scaling-regression guard in `scripts/bench.sh`
/// reads it).
#[must_use]
pub fn render_json(
    rows: &[ThroughputRow],
    sweep: &[BatchPoint],
    padding: &PaddingReport,
    ops: u64,
    smoke: bool,
) -> String {
    let base = rows.first().map_or(1.0, |r| r.lockfree.max(1e-9));
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"throughput_locked_vs_lockfree\",\n");
    out.push_str(&format!("  \"width\": {WIDTH},\n"));
    out.push_str(&format!("  \"ops_per_thread\": {ops},\n"));
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str("  \"results\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"threads\": {}, \"locked_tokens_per_sec\": {:.0}, \
             \"scalar_lockfree_tokens_per_sec\": {:.0}, \
             \"lockfree_tokens_per_sec\": {:.0}, \"speedup\": {:.2}, \
             \"scaling_vs_1thread\": {:.2}}}{}\n",
            row.threads,
            row.locked,
            row.scalar,
            row.lockfree,
            row.speedup(),
            row.lockfree / base,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"batch_sweep_8t\": [\n");
    for (i, p) in sweep.iter().enumerate() {
        let label = if p.batch == 0 { "\"adaptive\"".to_string() } else { p.batch.to_string() };
        out.push_str(&format!(
            "    {{\"batch\": {label}, \"tokens_per_sec\": {:.0}}}{}\n",
            p.tokens_per_sec,
            if i + 1 < sweep.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"padding_microbench\": {{\"unpadded_ops_per_sec\": {:.0}, \
         \"padded_ops_per_sec\": {:.0}, \"padded_over_unpadded\": {:.2}}}\n",
        padding.unpadded,
        padding.padded,
        padding.ratio()
    ));
    out.push_str("}\n");
    out
}

/// Renders the human-readable table.
#[must_use]
pub fn render_table(
    rows: &[ThroughputRow],
    sweep: &[BatchPoint],
    padding: &PaddingReport,
    ops: u64,
) -> String {
    let base = rows.first().map_or(1.0, |r| r.lockfree.max(1e-9));
    let mut table = Table::new(&[
        "threads",
        "locked (tok/s)",
        "scalar lf (tok/s)",
        "lock-free (tok/s)",
        "speedup",
        "scaling",
    ]);
    for row in rows {
        table.row(&[
            row.threads.to_string(),
            format!("{:.0}", row.locked),
            format!("{:.0}", row.scalar),
            format!("{:.0}", row.lockfree),
            format!("{:.2}x", row.speedup()),
            format!("{:.2}x", row.lockfree / base),
        ]);
    }
    let mut sweep_table = Table::new(&["batch (8t)", "lock-free (tok/s)"]);
    for p in sweep {
        sweep_table.row(&[
            if p.batch == 0 { "adaptive".to_string() } else { p.batch.to_string() },
            format!("{:.0}", p.tokens_per_sec),
        ]);
    }
    section(
        "E18 — token throughput, locked vs lock-free executor",
        &format!(
            "{}\nWorkload: BITONIC[{WIDTH}] split once (multi-component cut), {ops} tokens\n\
             per thread, round-robin input wires. Locked = global RwLock read +\n\
             per-component Mutex per hop; scalar lf = epoch-validated snapshot pin +\n\
             one fetch_add per hop (DESIGN.md \u{a7}8); lock-free = the sharded batching\n\
             front-end over the same fast path (per-thread shard, adaptive batches,\n\
             elimination — DESIGN.md \u{a7}12). `scaling` is each row over the 1-thread\n\
             front-end row; the scalar path is flat because every thread hammers the\n\
             same {WIDTH} leaf counters per token.\n\n\
             Batch-size sweep (8 threads, front-end):\n{}\n\
             False-sharing microbench (8 threads, contended fetch_add):\n\
             unpadded {:.0} ops/s vs cache-padded {:.0} ops/s ({:.2}x). Padding puts\n\
             each per-leaf hot word in its own cache line; the gap tracks true\n\
             hardware parallelism (near 1x on a single-core host, where threads\n\
             timeslice instead of bouncing lines).\n",
            table.render(),
            sweep_table.render(),
            padding.unpadded,
            padding.padded,
            padding.ratio()
        ),
    )
}

/// Full harness: measures 1/2/4/8 threads plus the batch sweep and the
/// padding microbench, and returns `(human_report, json_artifact)`.
/// `smoke` shrinks the per-thread op count so CI gates finish fast;
/// headline numbers come from the release-mode full run
/// (`scripts/bench.sh`).
#[must_use]
pub fn run_report(smoke: bool) -> (String, String) {
    let ops: u64 = if smoke { 20_000 } else { 400_000 };
    let rows = measure(&[1, 2, 4, 8], ops);
    let sweep_ops: u64 = if smoke { 10_000 } else { 200_000 };
    let sweep = measure_batch_sweep(8, sweep_ops, &[16, 64, 256]);
    let padding = measure_padding(8, if smoke { 50_000 } else { 2_000_000 });
    (
        render_table(&rows, &sweep, &padding, ops),
        render_json(&rows, &sweep, &padding, ops, smoke),
    )
}

/// Runs the experiment and returns the rendered report (table only; the
/// JSON artifact is written by the `exp_throughput` binary).
#[must_use]
pub fn run() -> String {
    run_report(true).0
}

/// The latency pass samples one in `2^SAMPLE_LOG2` traversals —
/// sparse enough that tracing stays within its overhead budget on the
/// lock-free fast path, dense enough for stable percentiles.
const SAMPLE_LOG2: u32 = 6;

/// Per-run latency digest derived from traces (`acn-trace`): sampled
/// `exec.traverse` span durations on the lock-free executor, the
/// throughput cost of having the tracer attached, and end-to-end
/// token latency from a traced distributed deployment.
#[derive(Debug, Clone, Copy)]
pub struct LatencyReport {
    /// `exec.traverse` spans sampled (1 in 64 traversals).
    pub traverse_samples: u64,
    /// Traversal latency percentiles, nanoseconds (lock-free mode).
    pub traverse_p50_ns: f64,
    /// 90th percentile traversal latency, nanoseconds.
    pub traverse_p90_ns: f64,
    /// 99th percentile traversal latency, nanoseconds.
    pub traverse_p99_ns: f64,
    /// Lock-free throughput loss with the sampling tracer attached,
    /// percent vs the traces-disabled baseline (negative = noise).
    pub tracing_overhead_pct: f64,
    /// Tokens closed by the traced distributed deployment.
    pub dist_tokens: u64,
    /// End-to-end dist token latency percentiles, virtual-clock ticks.
    pub dist_p50_ticks: f64,
    /// 99th percentile dist token latency, ticks.
    pub dist_p99_ticks: f64,
}

/// Measures [`LatencyReport`]: one traces-disabled lock-free baseline,
/// one sampled traced run (same shape), and one traced distributed
/// smoke deployment. Panics if either tracer ends up empty — the
/// harness must notice instrumentation silently falling off.
#[must_use]
pub fn measure_latency(smoke: bool) -> LatencyReport {
    let threads = 4;
    let ops: u64 = if smoke { 20_000 } else { 200_000 };
    // Alternate baseline and traced runs and compare peaks: a single
    // pair is dominated by warm-up and scheduler noise (±10% swings),
    // peak-vs-peak isolates the tracer's actual cost.
    let tracer = Tracer::with_sampling(1 << 16, SAMPLE_LOG2);
    let (mut baseline, mut traced) = (0f64, 0f64);
    for _ in 0..3 {
        baseline = baseline.max(run_mode(ExecMode::LockFree, threads, ops));
        traced = traced.max(run_mode_traced(ExecMode::LockFree, threads, ops, &tracer));
    }
    let overhead_pct = (baseline - traced) / baseline * 100.0;

    // Fold sampled traversal durations into a log2 histogram and pull
    // percentiles out of it (the same digest E18's dist side and the
    // tracer's own latency path use).
    let registry = Registry::new();
    let hist = registry.histogram("acn.bench.traverse_ns");
    let mut samples = 0u64;
    for span in tracer.spans() {
        if span.kind == "exec.traverse" {
            hist.record(span.duration());
            samples += 1;
        }
    }
    assert!(samples > 0, "sampled latency pass recorded no exec.traverse spans");
    let snap = registry.snapshot();
    let traverse = snap.histogram("acn.bench.traverse_ns").expect("recorded above");

    // End-to-end token latency through the distributed runtime: the
    // deployment's tracer opens each token's trace at injection and
    // closes it at the collector.
    let w = 16;
    let tokens: usize = if smoke { 64 } else { 512 };
    let mut d = Deployment::new(w, 3, 0xE18);
    let dist_tracer = Tracer::new(1 << 16);
    d.attach_tracer(&dist_tracer);
    for i in 0..tokens {
        d.inject((i * 5) % w);
        d.run_for(20);
    }
    d.run_for(200_000);
    let dist = dist_tracer.latency_summary().expect("dist run closed token traces");
    assert_eq!(dist.count, tokens as u64, "every injected token's trace must close");

    LatencyReport {
        traverse_samples: samples,
        traverse_p50_ns: traverse.p50().unwrap_or(0.0),
        traverse_p90_ns: traverse.p90().unwrap_or(0.0),
        traverse_p99_ns: traverse.p99().unwrap_or(0.0),
        tracing_overhead_pct: overhead_pct,
        dist_tokens: dist.count,
        dist_p50_ticks: dist.p50,
        dist_p99_ticks: dist.p99,
    }
}

/// Renders the latency digest as the `BENCH_latency.json` artifact
/// (written by `scripts/bench.sh` next to `BENCH_throughput.json`).
#[must_use]
pub fn render_latency_json(lat: &LatencyReport, smoke: bool) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"trace_latency\",\n");
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str(&format!("  \"sample_one_in\": {},\n", 1u64 << SAMPLE_LOG2));
    out.push_str(&format!(
        "  \"exec_traverse_ns\": {{\"samples\": {}, \"p50\": {:.0}, \"p90\": {:.0}, \
         \"p99\": {:.0}}},\n",
        lat.traverse_samples, lat.traverse_p50_ns, lat.traverse_p90_ns, lat.traverse_p99_ns
    ));
    out.push_str(&format!(
        "  \"lockfree_tracing_overhead_pct\": {:.1},\n",
        lat.tracing_overhead_pct
    ));
    out.push_str(&format!(
        "  \"dist_token_latency_ticks\": {{\"count\": {}, \"p50\": {:.0}, \"p99\": {:.0}}}\n",
        lat.dist_tokens, lat.dist_p50_ticks, lat.dist_p99_ticks
    ));
    out.push_str("}\n");
    out
}

/// Renders the human-readable latency section.
#[must_use]
pub fn render_latency_table(lat: &LatencyReport) -> String {
    let mut table = Table::new(&["metric", "samples", "p50", "p90", "p99"]);
    table.row(&[
        "exec.traverse (ns, lock-free)".to_string(),
        lat.traverse_samples.to_string(),
        format!("{:.0}", lat.traverse_p50_ns),
        format!("{:.0}", lat.traverse_p90_ns),
        format!("{:.0}", lat.traverse_p99_ns),
    ]);
    table.row(&[
        "dist token latency (ticks)".to_string(),
        lat.dist_tokens.to_string(),
        format!("{:.0}", lat.dist_p50_ticks),
        "-".to_string(),
        format!("{:.0}", lat.dist_p99_ticks),
    ]);
    section(
        "E18a — latency from traces (acn-trace spans)",
        &format!(
            "{}\nTracing overhead on the lock-free fast path: {:+.1}% throughput at 4\n\
             threads with a 1-in-{} sampling tracer attached vs traces disabled\n\
             (budget: <= 10%; the disabled path is a single branch).\n",
            table.render(),
            lat.tracing_overhead_pct,
            1u64 << SAMPLE_LOG2
        ),
    )
}

/// Full latency harness: measures and returns
/// `(human_report, json_artifact)`.
#[must_use]
pub fn run_latency_report(smoke: bool) -> (String, String) {
    let lat = measure_latency(smoke);
    (render_latency_table(&lat), render_latency_json(&lat, smoke))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_modes_measure_and_json_is_well_formed() {
        // Tiny run: this is a correctness test of the harness, not a
        // performance assertion (debug builds invert every ratio).
        let rows = measure(&[1, 2], 200);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!(row.locked > 0.0 && row.scalar > 0.0 && row.lockfree > 0.0);
        }
        let sweep = measure_batch_sweep(2, 100, &[16]);
        assert_eq!(sweep.len(), 2);
        assert_eq!(sweep[0].batch, 0);
        assert_eq!(sweep[1].batch, 16);
        let padding = measure_padding(2, 500);
        assert!(padding.unpadded > 0.0 && padding.padded > 0.0);
        let json = render_json(&rows, &sweep, &padding, 200, true);
        assert!(json.contains("\"experiment\": \"throughput_locked_vs_lockfree\""));
        assert!(json.contains("\"threads\": 1"));
        assert!(json.contains("\"threads\": 2"));
        assert!(json.contains("\"speedup\""));
        assert!(json.contains("\"scalar_lockfree_tokens_per_sec\""));
        assert!(json.contains("\"scaling_vs_1thread\""));
        assert!(json.contains("\"batch\": \"adaptive\""));
        assert!(json.contains("\"batch\": 16"));
        assert!(json.contains("\"padding_microbench\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let table = render_table(&rows, &sweep, &padding, 200);
        assert!(table.contains("E18"));
        assert!(table.contains("adaptive"));
    }

    #[test]
    fn frontend_run_conserves_and_registers_counters() {
        // run_frontend's internal asserts (conservation + counter
        // presence) are the test; a panic here is the failure.
        let tput = run_frontend(2, 300, None);
        assert!(tput > 0.0);
    }

    #[test]
    fn traced_run_records_sampled_traversals() {
        let tracer = Tracer::with_sampling(1 << 12, 0); // keep every traversal
        let throughput = run_mode_traced(ExecMode::LockFree, 2, 200, &tracer);
        assert!(throughput > 0.0);
        let spans = tracer.spans();
        assert!(
            spans.iter().filter(|s| s.kind == "exec.traverse").count() > 0,
            "traced executor must emit exec.traverse spans"
        );
        assert!(spans.iter().all(|s| s.end >= s.start));
    }

    #[test]
    fn latency_json_and_table_are_well_formed() {
        let lat = LatencyReport {
            traverse_samples: 100,
            traverse_p50_ns: 120.0,
            traverse_p90_ns: 400.0,
            traverse_p99_ns: 900.0,
            tracing_overhead_pct: 3.2,
            dist_tokens: 64,
            dist_p50_ticks: 40.0,
            dist_p99_ticks: 220.0,
        };
        let json = render_latency_json(&lat, true);
        assert!(json.contains("\"experiment\": \"trace_latency\""));
        assert!(json.contains("\"sample_one_in\": 64"));
        assert!(json.contains("\"exec_traverse_ns\""));
        assert!(json.contains("\"dist_token_latency_ticks\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let table = render_latency_table(&lat);
        assert!(table.contains("E18a"));
        assert!(table.contains("overhead"));
    }
}

