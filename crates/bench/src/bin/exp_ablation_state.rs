//! Runs experiment `exp12_ablation_state` and prints its report.
fn main() {
    print!("{}", acn_bench::exp12_ablation_state::run());
}
