//! Runs the full experiment suite of the reproduction (DESIGN.md §4)
//! and prints every report. This is the program that regenerates the
//! measured numbers recorded in EXPERIMENTS.md.
fn main() {
    let reports: Vec<fn() -> String> = vec![
        acn_bench::exp01_step_property::run,
        acn_bench::exp02_depth_bound::run,
        acn_bench::exp03_width_bound::run,
        acn_bench::exp04_size_estimation::run,
        acn_bench::exp05_level_estimates::run,
        acn_bench::exp06_component_counts::run,
        acn_bench::exp07_effective_dims::run,
        acn_bench::exp08_figure3::run,
        acn_bench::exp09_routing::run,
        acn_bench::exp10_adaptivity::run,
        acn_bench::exp11_motivation::run,
        acn_bench::exp12_ablation_state::run,
        acn_bench::exp13_ablation_wiring::run,
        acn_bench::exp14_contention::run,
        acn_bench::exp15_generality::run,
        acn_bench::exp16_overlay::run,
        acn_bench::exp17_reconfig_cost::run,
    ];
    for run in reports {
        print!("{}", run());
    }
}
