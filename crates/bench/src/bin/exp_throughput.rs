//! Runs experiment `exp18_throughput` (locked vs lock-free executor at
//! 1/2/4/8 threads), prints the table, and writes the
//! `BENCH_throughput.json` perf-trajectory artifact.
//!
//! Flags / environment:
//!
//! - `--smoke` (or `ACN_BENCH_SMOKE=1`): shrink the per-thread op count
//!   for CI gates; the artifact then lands in
//!   `target/BENCH_throughput.smoke.json` so the committed full-run
//!   artifact is never overwritten by a smoke pass.
//! - `ACN_BENCH_OUT=<path>`: explicit artifact path (overrides both
//!   defaults).

use std::path::PathBuf;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke")
        || std::env::var_os("ACN_BENCH_SMOKE").is_some();
    let (report, json) = acn_bench::exp18_throughput::run_report(smoke);
    let path = std::env::var_os("ACN_BENCH_OUT").map(PathBuf::from).unwrap_or_else(|| {
        if smoke {
            PathBuf::from("target").join("BENCH_throughput.smoke.json")
        } else {
            PathBuf::from("BENCH_throughput.json")
        }
    });
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(parent);
        }
    }
    std::fs::write(&path, &json).expect("write throughput artifact");
    print!("{report}");
    eprintln!("wrote {}", path.display());
}
