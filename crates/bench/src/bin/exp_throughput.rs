//! Runs experiment `exp18_throughput` (locked vs lock-free executor at
//! 1/2/4/8 threads), prints the table, and writes the
//! `BENCH_throughput.json` perf-trajectory artifact.
//!
//! Flags / environment:
//!
//! - `--smoke` (or `ACN_BENCH_SMOKE=1`): shrink the per-thread op count
//!   for CI gates; the artifact then lands in
//!   `target/BENCH_throughput.smoke.json` so the committed full-run
//!   artifact is never overwritten by a smoke pass.
//! - `ACN_BENCH_OUT=<path>`: explicit artifact path (overrides both
//!   defaults).
//!
//! Alongside the throughput artifact it writes the trace-derived
//! latency digest (`BENCH_latency.json` / `target/BENCH_latency.smoke.json`):
//! sampled `exec.traverse` percentiles, the tracing overhead on the
//! lock-free fast path, and end-to-end dist token latency.

use std::path::PathBuf;

fn write_artifact(path: &PathBuf, json: &str, what: &str) {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(parent);
        }
    }
    std::fs::write(path, json).unwrap_or_else(|e| panic!("write {what} artifact: {e}"));
    eprintln!("wrote {}", path.display());
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke")
        || std::env::var_os("ACN_BENCH_SMOKE").is_some();
    let (report, json) = acn_bench::exp18_throughput::run_report(smoke);
    let path = std::env::var_os("ACN_BENCH_OUT").map(PathBuf::from).unwrap_or_else(|| {
        if smoke {
            PathBuf::from("target").join("BENCH_throughput.smoke.json")
        } else {
            PathBuf::from("BENCH_throughput.json")
        }
    });
    write_artifact(&path, &json, "throughput");
    print!("{report}");

    let (lat_report, lat_json) = acn_bench::exp18_throughput::run_latency_report(smoke);
    let lat_path = if smoke {
        PathBuf::from("target").join("BENCH_latency.smoke.json")
    } else {
        PathBuf::from("BENCH_latency.json")
    };
    write_artifact(&lat_path, &lat_json, "latency");
    print!("{lat_report}");
}
