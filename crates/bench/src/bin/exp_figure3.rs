//! Runs experiment `exp08_figure3` and prints its report.
fn main() {
    print!("{}", acn_bench::exp08_figure3::run());
}
