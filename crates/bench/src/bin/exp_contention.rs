//! Runs experiment `exp14_contention` and prints its report.
fn main() {
    print!("{}", acn_bench::exp14_contention::run());
}
