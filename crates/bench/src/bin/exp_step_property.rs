//! Runs experiment `exp01_step_property` and prints its report.
fn main() {
    print!("{}", acn_bench::exp01_step_property::run());
}
