//! Runs experiment `exp11_motivation` and prints its report.
fn main() {
    print!("{}", acn_bench::exp11_motivation::run());
}
