//! Emits Graphviz DOT for the paper's three figures (render with
//! `dot -Tsvg`). Writes figure1.dot / figure2.dot / figure3.dot to the
//! current directory and echoes them to stdout.
use acn_bench::figures::{figure1_dot, figure2_dot, figure3_dot};
use acn_topology::{ComponentId, Cut, Tree};

fn main() {
    let tree = Tree::new(8);
    let root = ComponentId::root();
    let mut cut = Cut::root();
    cut.split(&tree, &root).expect("root splits");
    cut.split(&tree, &root.child(0)).expect("top bitonic splits");
    let figures = [
        ("figure1.dot", figure1_dot(8)),
        ("figure2.dot", figure2_dot(8, &cut)),
        ("figure3.dot", figure3_dot(8, &cut)),
    ];
    for (path, dot) in figures {
        std::fs::write(path, &dot).expect("write figure");
        println!("wrote {path}:\n{dot}");
    }
}
