//! Runs experiment `exp09_routing` and prints its report.
fn main() {
    print!("{}", acn_bench::exp09_routing::run());
}
