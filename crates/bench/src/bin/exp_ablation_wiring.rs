//! Runs experiment `exp13_ablation_wiring` and prints its report.
fn main() {
    print!("{}", acn_bench::exp13_ablation_wiring::run());
}
