//! Runs experiment `exp05_level_estimates` and prints its report.
fn main() {
    print!("{}", acn_bench::exp05_level_estimates::run());
}
