//! Runs experiment `exp15_generality` and prints its report.
fn main() {
    print!("{}", acn_bench::exp15_generality::run());
}
