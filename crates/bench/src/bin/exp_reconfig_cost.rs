//! Runs experiment `exp17_reconfig_cost` and prints its report.
fn main() {
    print!("{}", acn_bench::exp17_reconfig_cost::run());
}
