//! Runs experiment `exp03_width_bound` and prints its report.
fn main() {
    print!("{}", acn_bench::exp03_width_bound::run());
}
