//! Runs experiment `exp10_adaptivity` and prints its report.
fn main() {
    print!("{}", acn_bench::exp10_adaptivity::run());
}
