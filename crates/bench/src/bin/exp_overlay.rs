//! Runs experiment `exp16_overlay` and prints its report.
fn main() {
    print!("{}", acn_bench::exp16_overlay::run());
}
