//! Runs experiment `exp06_component_counts` and prints its report.
fn main() {
    print!("{}", acn_bench::exp06_component_counts::run());
}
