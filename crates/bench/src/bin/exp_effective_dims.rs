//! Runs experiment `exp07_effective_dims` and prints its report.
fn main() {
    print!("{}", acn_bench::exp07_effective_dims::run());
}
