//! Runs experiment `exp04_size_estimation` and prints its report.
fn main() {
    print!("{}", acn_bench::exp04_size_estimation::run());
}
