//! Runs experiment `exp02_depth_bound` and prints its report.
fn main() {
    print!("{}", acn_bench::exp02_depth_bound::run());
}
