//! E4 (Lemmas 3.1/3.2): with high probability, **every** node's size
//! estimate lies in `[N/10, 10N]`.
//!
//! For each system size we build many independent seeded rings, run the
//! two-step estimator at every node, and report the fraction of nodes
//! inside the band plus the extreme ratios.

use acn_estimator::estimate_size;

use crate::util::{section, seeded_ring, Table};

/// Runs the experiment and returns the rendered report.
#[must_use]
pub fn run() -> String {
    let mut table = Table::new(&[
        "N",
        "rings",
        "nodes measured",
        "frac in [N/10,10N]",
        "min ratio",
        "max ratio",
    ]);
    for &n in &[16usize, 64, 256, 1024, 4096, 16384] {
        let rings = if n <= 1024 { 20 } else { 5 };
        let mut measured = 0usize;
        let mut inside = 0usize;
        let mut min_ratio = f64::INFINITY;
        let mut max_ratio: f64 = 0.0;
        for seed in 0..rings as u64 {
            let ring = seeded_ring(n, seed * 7717 + 13);
            for node in ring.nodes().collect::<Vec<_>>() {
                let est = estimate_size(&ring, node).size;
                let ratio = est / n as f64;
                measured += 1;
                if (0.1..=10.0).contains(&ratio) {
                    inside += 1;
                }
                min_ratio = min_ratio.min(ratio);
                max_ratio = max_ratio.max(ratio);
            }
        }
        table.row(&[
            n.to_string(),
            rings.to_string(),
            measured.to_string(),
            format!("{:.4}", inside as f64 / measured as f64),
            format!("{min_ratio:.3}"),
            format!("{max_ratio:.3}"),
        ]);
    }
    section(
        "E4 / Lemmas 3.1-3.2 — size estimates within a factor of 10",
        &format!(
            "{}\nExpected (paper): fraction -> 1 as N grows (w.h.p. bound 1 - 3/N^2).\n",
            table.render()
        ),
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn estimates_mostly_in_band() {
        let report = super::run();
        // Every row should report a fraction of at least 0.99.
        for line in report.lines() {
            if let Some(frac) = line.split_whitespace().nth(3) {
                if let Ok(f) = frac.parse::<f64>() {
                    assert!(f >= 0.99, "low in-band fraction: {line}");
                }
            }
        }
    }
}
