//! E2 (Lemma 2.2): if every leaf of the cut is at level at most `k`,
//! the effective depth is at most `(k+1)(k+2)/2`.
//!
//! Uniform cuts realize the bound with equality; random cuts stay under
//! it.

use acn_topology::{effective_depth, lemma_2_2_bound, ComponentDag, Cut, Tree};

use crate::util::{section, Lcg, Table};

/// Runs the experiment and returns the rendered report.
#[must_use]
pub fn run() -> String {
    let mut table = Table::new(&["w", "k (max level)", "cut", "depth", "bound", "ok"]);
    for &w in &[8usize, 32, 128, 256] {
        let tree = Tree::new(w);
        for k in 0..=tree.max_level() {
            let dag = ComponentDag::new(&tree, &Cut::uniform(&tree, k));
            let depth = effective_depth(&dag);
            let bound = lemma_2_2_bound(k);
            table.row(&[
                w.to_string(),
                k.to_string(),
                "uniform".into(),
                depth.to_string(),
                bound.to_string(),
                (depth <= bound).to_string(),
            ]);
        }
        // Random cuts.
        let mut rng = Lcg(w as u64 + 11);
        let mut worst_margin = f64::INFINITY;
        let mut all_ok = true;
        for _ in 0..25 {
            let mut next = || rng.next() as f64 / (1u64 << 31) as f64;
            let cut = Cut::random(&tree, tree.max_level(), 0.55, &mut next);
            let k = cut.max_level();
            let depth = effective_depth(&ComponentDag::new(&tree, &cut));
            let bound = lemma_2_2_bound(k);
            all_ok &= depth <= bound;
            worst_margin = worst_margin.min(bound as f64 - depth as f64);
        }
        table.row(&[
            w.to_string(),
            "varied".into(),
            "25 random".into(),
            format!("bound-{worst_margin:.0} worst"),
            "-".into(),
            all_ok.to_string(),
        ]);
    }
    section(
        "E2 / Lemma 2.2 — effective depth bound (k+1)(k+2)/2",
        &format!("{}\nExpected (paper): ok everywhere; uniform cuts meet the bound exactly.\n", table.render()),
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn bound_always_holds() {
        let report = super::run();
        assert!(!report.contains("false"), "{report}");
    }
}
