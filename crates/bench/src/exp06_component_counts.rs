//! E6 (Lemmas 3.4/3.5): in the converged network, component levels stay
//! within the node-level range, the total number of components is
//! `Theta(N)`, the expected number per node is `O(1)`, and the maximum
//! per node is `O(log N / log log N)`.

use acn_core::ConvergedNetwork;

use crate::util::{section, seeded_ring, Table};

/// Runs the experiment and returns the rendered report.
#[must_use]
pub fn run() -> String {
    let mut table = Table::new(&[
        "N",
        "components",
        "comp/N",
        "levels [min,max]",
        "l*",
        "mean/node",
        "max/node",
        "logN/loglogN",
    ]);
    for &n in &[16usize, 64, 256, 1024, 4096] {
        let net = ConvergedNetwork::new(1 << 13, seeded_ring(n, 0xC0FFEE + n as u64));
        let s = net.snapshot();
        let logn = (n as f64).ln();
        let bound = logn / logn.ln().max(1.0);
        table.row(&[
            n.to_string(),
            s.components.to_string(),
            format!("{:.2}", s.components as f64 / n as f64),
            format!("[{},{}]", s.min_level, s.max_level),
            s.ideal_level.to_string(),
            format!("{:.2}", s.mean_components_per_node),
            s.max_components_per_node.to_string(),
            format!("{bound:.1}"),
        ]);
    }
    section(
        "E6 / Lemmas 3.4-3.5 — component counts and placement balance",
        &format!(
            "{}\nExpected (paper): comp/N = Theta(1) (within [1/6^5, 6^4]); levels within\n[l*-4, l*+4]; max/node grows like logN/loglogN up to a constant.\n",
            table.render()
        ),
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn counts_are_sane() {
        let report = super::run();
        assert!(report.contains("components"));
        assert!(!report.contains("NaN"));
    }
}
