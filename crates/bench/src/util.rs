//! Shared helpers for the experiment harnesses.

use std::path::PathBuf;

use acn_overlay::Ring;
use acn_telemetry::{JsonlSink, Registry};

/// An enabled telemetry registry streaming events to a JSONL artifact
/// named after `experiment`.
///
/// The artifact lands in `$ACN_TELEMETRY_DIR` (default
/// `target/telemetry/`) as `<experiment>.jsonl`, one JSON object per
/// event. Returns the registry plus the artifact path; if the file
/// cannot be created the registry still works (metrics, no event file)
/// and the path is `None` — telemetry must never fail an experiment.
#[must_use]
pub fn telemetry_registry(experiment: &str) -> (Registry, Option<PathBuf>) {
    let registry = Registry::new();
    let dir = std::env::var_os("ACN_TELEMETRY_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target").join("telemetry"));
    if std::fs::create_dir_all(&dir).is_err() {
        return (registry, None);
    }
    let path = dir.join(format!("{experiment}.jsonl"));
    match JsonlSink::create(&path) {
        Ok(sink) => {
            registry.add_sink(sink);
            (registry, Some(path))
        }
        Err(_) => (registry, None),
    }
}

/// A deterministic ring with `n` random-id nodes.
#[must_use]
pub fn seeded_ring(n: usize, seed: u64) -> Ring {
    let mut ring = Ring::new();
    let mut s = seed;
    for _ in 0..n {
        ring.add_random_node(&mut s);
    }
    ring
}

/// A tiny deterministic RNG for workloads.
#[derive(Debug, Clone)]
pub struct Lcg(pub u64);

impl Lcg {
    /// The next pseudo-random `u64`.
    ///
    /// Named `next` as RNG convention; this is not an `Iterator`.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    /// A pseudo-random index below `n` (which must be positive).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next() as usize) % n
    }
}

/// A plain-text table printer used by every experiment.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    #[must_use]
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
        .normalize()
    }

    fn normalize(mut self) -> Self {
        if self.header.is_empty() {
            self.header = vec![String::new()];
        }
        self
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: &[String]) {
        self.rows.push(cells.to_vec());
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", cell, width = widths.get(i).copied().unwrap_or(0)));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

/// Renders a titled experiment section.
#[must_use]
pub fn section(title: &str, body: &str) -> String {
    format!("\n=== {title} ===\n{body}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["N", "value"]);
        t.row(&["8".into(), "1.25".into()]);
        t.row(&["1024".into(), "0.5".into()]);
        let s = t.render();
        assert!(s.contains("   N  value"));
        assert!(s.contains("1024"));
    }

    #[test]
    fn lcg_is_deterministic() {
        let mut a = Lcg(1);
        let mut b = Lcg(1);
        for _ in 0..10 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    fn seeded_ring_size() {
        assert_eq!(seeded_ring(17, 3).len(), 17);
    }

    #[test]
    fn telemetry_registry_writes_jsonl_artifact() {
        let (registry, path) = telemetry_registry("util-selftest");
        let path = path.expect("artifact path under target/");
        registry.emit(acn_telemetry::Event::new("test.ping").at(1));
        registry.flush();
        let text = std::fs::read_to_string(&path).expect("artifact readable");
        assert!(text.contains("\"kind\":\"test.ping\""), "{text}");
    }
}
