//! Shared helpers for the experiment harnesses.

use acn_overlay::Ring;

/// A deterministic ring with `n` random-id nodes.
#[must_use]
pub fn seeded_ring(n: usize, seed: u64) -> Ring {
    let mut ring = Ring::new();
    let mut s = seed;
    for _ in 0..n {
        ring.add_random_node(&mut s);
    }
    ring
}

/// A tiny deterministic RNG for workloads.
#[derive(Debug, Clone)]
pub struct Lcg(pub u64);

impl Lcg {
    /// The next pseudo-random `u64`.
    pub fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    /// A pseudo-random index below `n` (which must be positive).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next() as usize) % n
    }
}

/// A plain-text table printer used by every experiment.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    #[must_use]
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
        .normalize()
    }

    fn normalize(mut self) -> Self {
        if self.header.is_empty() {
            self.header = vec![String::new()];
        }
        self
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: &[String]) {
        self.rows.push(cells.to_vec());
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", cell, width = widths.get(i).copied().unwrap_or(0)));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

/// Renders a titled experiment section.
#[must_use]
pub fn section(title: &str, body: &str) -> String {
    format!("\n=== {title} ===\n{body}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["N", "value"]);
        t.row(&["8".into(), "1.25".into()]);
        t.row(&["1024".into(), "0.5".into()]);
        let s = t.render();
        assert!(s.contains("   N  value"));
        assert!(s.contains("1024"));
    }

    #[test]
    fn lcg_is_deterministic() {
        let mut a = Lcg(1);
        let mut b = Lcg(1);
        for _ in 0..10 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    fn seeded_ring_size() {
        assert_eq!(seeded_ring(17, 3).len(), 17);
    }
}
