//! S5 substrate validation: the protocol-level Chord overlay converges
//! under churn and keeps lookups correct and logarithmic.
//!
//! The paper *assumes* an overlay with these properties (Section 1.4);
//! this table substantiates the assumption for the `ChordNet`
//! implementation: after batches of joins/failures, plain stabilization
//! rounds restore >99% successor correctness, and lookups agree with the
//! consistent-hashing oracle with O(log N) hops.

use acn_overlay::{ChordNet, NodeId};

use crate::util::{section, Lcg, Table};

/// Runs the experiment and returns the rendered report.
#[must_use]
pub fn run() -> String {
    let mut table = Table::new(&[
        "N start",
        "churn (join/fail)",
        "rounds to >99%",
        "final correctness",
        "lookup hops avg",
        "failed lookups",
    ]);
    for &(n, joins, fails) in &[(64usize, 16usize, 16usize), (128, 64, 32), (256, 32, 96)] {
        let mut rng = Lcg(n as u64 * 7 + 1);
        let ids: Vec<NodeId> = (0..n).map(|_| NodeId(rng.next() << 32 | rng.next())).collect();
        let mut net = ChordNet::bootstrap(&ids, 4);
        // Apply the churn burst.
        for _ in 0..joins {
            net.join(NodeId(rng.next() << 32 | rng.next()));
        }
        for _ in 0..fails {
            let keys: Vec<u64> = (0..net.len()).map(|i| i as u64).collect();
            let _ = keys;
            // Fail a random live node (resample from live set).
            let live: Vec<NodeId> = ids
                .iter()
                .copied()
                .filter(|id| net.contains(*id))
                .collect();
            if live.len() > 4 {
                net.fail(live[rng.below(live.len())]);
            }
        }
        // Stabilize until converged.
        let mut rounds = 0;
        while net.successor_correctness() < 0.99 && rounds < 500 {
            net.stabilize_round();
            rounds += 1;
        }
        // Post-convergence lookups: owners must be live nodes.
        let live: Vec<NodeId> =
            ids.iter().copied().filter(|id| net.contains(*id)).collect();
        let mut hops_total = 0usize;
        let lookups = 200;
        for _ in 0..lookups {
            let from = live[rng.below(live.len())];
            let key = rng.next() << 32 | rng.next();
            if let Some((owner, hops)) = net.lookup(from, key) {
                hops_total += hops;
                assert!(net.contains(owner), "lookup returned a dead owner");
            }
        }
        let after = net.stats();
        table.row(&[
            n.to_string(),
            format!("{joins}/{fails}"),
            rounds.to_string(),
            format!("{:.3}", net.successor_correctness()),
            format!("{:.1}", hops_total as f64 / lookups as f64),
            (after.failed_lookups).to_string(),
        ]);
    }
    section(
        "S5 — overlay substrate validation (protocol-level Chord under churn)",
        &format!(
            "{}\nExpected: correctness returns to ~1.0 within tens of rounds; lookup hops\nstay O(log N); failed lookups only during the convergence window.\n",
            table.render()
        ),
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn overlay_converges() {
        let report = super::run();
        assert!(report.contains("correctness"));
        for line in report.lines() {
            let cells: Vec<&str> = line.split_whitespace().collect();
            if cells.len() == 6 && cells[0].chars().all(|c| c.is_ascii_digit()) {
                let correctness: f64 = cells[3].parse().expect("correctness");
                assert!(correctness >= 0.99, "overlay failed to converge: {line}");
            }
        }
    }
}
