//! E10 (Sections 2.2, 3.2, 3.4 dynamics): the full message-passing
//! deployment adapts to churn while counting correctly.
//!
//! A system grows from 4 to 48 nodes and shrinks back to 6 while
//! clients keep injecting tokens. We record the decentralized
//! splits/merges, DHT lookups, routing NACKs, token conservation, the
//! step property at quiescence, and latency.

use acn_bitonic::step::is_step_sequence;
use acn_core::dist::Deployment;

use crate::util::{section, telemetry_registry, Lcg, Table};

/// Runs the experiment and returns the rendered report.
///
/// Besides the printed table, the run streams its full telemetry (one
/// JSON object per event: splits, merges, crashes, level changes, …) to
/// `target/telemetry/exp10_adaptivity.jsonl` (override the directory
/// with `ACN_TELEMETRY_DIR`).
#[must_use]
pub fn run() -> String {
    let w = 64;
    let (registry, artifact) = telemetry_registry("exp10_adaptivity");
    let mut d = Deployment::new(w, 4, 0xAB5);
    d.attach_telemetry(&registry);
    let mut rng = Lcg(17);
    let mut injected = 0u64;
    let mut table = Table::new(&[
        "phase",
        "nodes",
        "components",
        "splits",
        "merges",
        "nacks",
        "tokens in",
        "tokens out",
    ]);
    let snapshot = |d: &mut Deployment, phase: &str, injected: u64, table: &mut Table| {
        assert!(d.settle(300), "deployment failed to settle in phase {phase}");
        d.run_for(200_000);
        let (cut, _) = d.live_cut();
        let world = d.world.borrow();
        table.row(&[
            phase.into(),
            world.ring.len().to_string(),
            cut.leaves().len().to_string(),
            world.splits_done.to_string(),
            world.merges_done.to_string(),
            world.token_nacks.to_string(),
            injected.to_string(),
            d.collector().total().to_string(),
        ]);
    };

    let inject = |d: &mut Deployment, rng: &mut Lcg, count: usize, injected: &mut u64| {
        for _ in 0..count {
            d.inject(rng.below(w));
            *injected += 1;
            d.run_for(50);
        }
    };

    inject(&mut d, &mut rng, 100, &mut injected);
    snapshot(&mut d, "initial (N=4)", injected, &mut table);

    // Growth with interleaved traffic.
    for _ in 0..44 {
        d.join_node();
        inject(&mut d, &mut rng, 5, &mut injected);
    }
    snapshot(&mut d, "after growth (N=48)", injected, &mut table);

    // Shrink with interleaved traffic.
    let victims: Vec<acn_overlay::NodeId> = d.world.borrow().ring.nodes().take(42).collect();
    for v in victims {
        d.leave_node(v);
        inject(&mut d, &mut rng, 3, &mut injected);
        d.migrate_components();
    }
    snapshot(&mut d, "after shrink (N=6)", injected, &mut table);

    let c = d.collector();
    let conserved = c.total() == injected;
    let step = is_step_sequence(&c.counts);
    let mean_latency = if c.total() > 0 { c.total_latency / c.total() } else { 0 };

    registry.flush();
    let snap = registry.snapshot();
    let hops = snap.histogram("acn.dist.routing_hops");
    let telemetry = format!(
        "telemetry: splits={} merges={} dht_lookups={} mean routing hops={:.2}\ntelemetry artifact: {}",
        snap.counter("acn.dist.splits").unwrap_or(0),
        snap.counter("acn.dist.merges").unwrap_or(0),
        snap.counter("acn.dist.dht_lookups").unwrap_or(0),
        hops.and_then(|h| h.mean()).unwrap_or(0.0),
        artifact.as_deref().map_or_else(|| "(unavailable)".into(), |p| p.display().to_string()),
    );

    section(
        "E10 — adaptivity under churn (message-level deployment)",
        &format!(
            "{}\ntoken conservation: {conserved}\nquiescent step property: {step}\nmean token latency: {mean_latency} sim-units (max {})\n{telemetry}\nExpected (paper): decentralized splits on growth, merges on shrink, no\ntokens lost, step property in every quiescent state.\n",
            table.render(),
            c.max_latency
        ),
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn churn_run_is_correct_and_emits_telemetry_artifact() {
        // One run() call for both checks: parallel runs would race on the
        // shared target/telemetry/exp10_adaptivity.jsonl artifact.
        let report = super::run();
        assert!(report.contains("token conservation: true"), "{report}");
        assert!(report.contains("step property: true"), "{report}");
        let path = report
            .lines()
            .find_map(|l| l.strip_prefix("telemetry artifact: "))
            .expect("artifact line in report");
        assert_ne!(path, "(unavailable)");
        let text = std::fs::read_to_string(path).expect("artifact readable");
        assert!(text.lines().count() > 10, "artifact suspiciously small");
        assert!(text.contains("\"kind\":\"split.begin\""), "split events present");
        assert!(text.contains("\"kind\":\"estimator.estimate\""), "estimator events present");
    }
}
