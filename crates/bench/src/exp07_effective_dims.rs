//! E7 (Theorem 3.6): the converged network has effective width
//! `Omega(N / log^2 N)` and effective depth `O(log^2 N)`.
//!
//! We sweep `N`, measure both dimensions, and report the ratios to the
//! theorem's envelopes; a static network is shown for contrast (its
//! dimensions ignore `N` entirely — the paper's motivating problem).

use acn_core::ConvergedNetwork;
use acn_topology::{effective_depth, effective_width, ComponentDag, Cut, Tree};

use crate::util::{section, seeded_ring, Table};

/// Runs the experiment and returns the rendered report.
#[must_use]
pub fn run() -> String {
    let mut table = Table::new(&[
        "N",
        "eff width",
        "N/log^2 N",
        "width ratio",
        "eff depth",
        "log^2 N",
        "depth ratio",
    ]);
    for &n in &[16usize, 64, 256, 1024, 4096] {
        let net = ConvergedNetwork::new(1 << 13, seeded_ring(n, 0xD1CE + n as u64));
        let s = net.snapshot();
        let log2n = (n as f64).log2();
        let wenv = n as f64 / (log2n * log2n);
        let denv = log2n * log2n;
        table.row(&[
            n.to_string(),
            s.effective_width.to_string(),
            format!("{wenv:.1}"),
            format!("{:.2}", s.effective_width as f64 / wenv),
            s.effective_depth.to_string(),
            format!("{denv:.1}"),
            format!("{:.2}", s.effective_depth as f64 / denv),
        ]);
    }

    // The static contrast: a fixed-width BITONIC[64] at balancer
    // granularity has the same dimensions for every N.
    let tree = Tree::new(64);
    let dag = ComponentDag::new(&tree, &Cut::balancers(&tree));
    let static_line = format!(
        "Static BITONIC[64] (balancer cut): effective width {} and depth {} for every N.",
        effective_width(&dag),
        effective_depth(&dag)
    );

    section(
        "E7 / Theorem 3.6 — effective width Omega(N/log^2 N), depth O(log^2 N)",
        &format!(
            "{}\n{static_line}\nExpected (paper): width ratio bounded below, depth ratio bounded above,\nboth by constants independent of N.\n",
            table.render()
        ),
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn ratios_are_bounded() {
        let report = super::run();
        for line in report.lines() {
            let cells: Vec<&str> = line.split_whitespace().collect();
            if cells.len() == 7 && cells[0].chars().all(|c| c.is_ascii_digit()) {
                let width_ratio: f64 = cells[3].parse().expect("width ratio");
                let depth_ratio: f64 = cells[6].parse().expect("depth ratio");
                assert!(width_ratio >= 0.1, "width too small: {line}");
                assert!(depth_ratio <= 3.0, "depth too large: {line}");
            }
        }
    }
}
