//! E1 (Theorem 2.1): every cut of `T_w` is a counting network of
//! width `w`.
//!
//! Part A enumerates **all** cuts of `T_8` (65 of them) and drives each
//! with sequential tokens on adversarial input wires; the outputs must
//! be a global round-robin. Part B samples random cuts of larger trees
//! and checks the quiescent step property under adversarially
//! interleaved token schedules with live reconfiguration.

use acn_bitonic::step::is_step_sequence;
use acn_core::{LocalAdaptiveNetwork, TokenPos};
use acn_topology::{ComponentId, Cut, Tree, WiringStyle};

use crate::util::{section, Lcg, Table};

/// Runs the experiment and returns the rendered report.
#[must_use]
pub fn run() -> String {
    let mut table = Table::new(&["part", "w", "cuts", "tokens/cut", "violations"]);

    // Part A: exhaustive over T_8.
    let tree = Tree::new(8);
    let cuts = Cut::enumerate_all(&tree);
    let mut violations = 0usize;
    for cut in &cuts {
        let mut net = LocalAdaptiveNetwork::with_cut(8, cut.clone(), WiringStyle::Ahs);
        let mut rng = Lcg(0x5eed);
        for t in 0..200usize {
            let out = net.push(rng.below(8));
            if out != t % 8 {
                violations += 1;
            }
        }
    }
    table.row(&[
        "A (exhaustive, sequential)".into(),
        "8".into(),
        cuts.len().to_string(),
        "200".into(),
        violations.to_string(),
    ]);

    // Part B: random cuts of larger trees, interleaved tokens, live
    // splits and merges between token hops.
    for &w in &[16usize, 32, 64] {
        let tree = Tree::new(w);
        let mut violations = 0usize;
        let cut_count = 20;
        for seed in 0..cut_count {
            let mut rng = Lcg(seed as u64 * 7919 + 3);
            let mut net = LocalAdaptiveNetwork::new(w);
            let mut in_flight: Vec<TokenPos> = Vec::new();
            let mut injected = 0usize;
            for _ in 0..1500 {
                match rng.below(10) {
                    0 => {
                        let splittable: Vec<ComponentId> = net
                            .cut()
                            .leaves()
                            .iter()
                            .filter(|l| tree.info(l).map(|i| i.width >= 4).unwrap_or(false))
                            .cloned()
                            .collect();
                        if !splittable.is_empty() {
                            let pick = splittable[rng.below(splittable.len())].clone();
                            // Deferred transfers (in-flight traffic) are
                            // expected; just retry later.
                            let _ = net.split(&pick);
                        }
                    }
                    1 => {
                        let parents: Vec<ComponentId> =
                            net.cut().leaves().iter().filter_map(|l| l.parent()).collect();
                        if !parents.is_empty() {
                            let pick = parents[rng.below(parents.len())].clone();
                            let _ = net.merge(&pick);
                        }
                    }
                    2..=4 => {
                        in_flight.push(net.inject(rng.below(w)));
                        injected += 1;
                    }
                    _ => {
                        if !in_flight.is_empty() {
                            let i = rng.below(in_flight.len());
                            let next = net.advance(in_flight[i].clone());
                            if matches!(next, TokenPos::Exited(_)) {
                                in_flight.swap_remove(i);
                            } else {
                                in_flight[i] = next;
                            }
                        }
                    }
                }
            }
            while let Some(mut pos) = in_flight.pop() {
                while !matches!(pos, TokenPos::Exited(_)) {
                    pos = net.advance(pos);
                }
            }
            if !is_step_sequence(net.output_counts()) {
                violations += 1;
            }
            assert_eq!(net.total_exited() as usize, injected);
        }
        table.row(&[
            "B (random, interleaved+reconfig)".into(),
            w.to_string(),
            cut_count.to_string(),
            "~450".into(),
            violations.to_string(),
        ]);
    }

    section(
        "E1 / Theorem 2.1 — every cut counts",
        &format!(
            "{}\nExpected (paper): 0 violations everywhere.\n",
            table.render()
        ),
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn runs_clean() {
        let report = super::run();
        assert!(report.contains("violations"));
        // Every data row ends with 0 violations.
        for line in report
            .lines()
            .filter(|l| l.contains("(exhaustive") || l.contains("(random"))
        {
            assert!(line.trim_end().ends_with('0'), "violations found: {line}");
        }
    }
}
