//! E9 (Section 3.5): routing efficiency.
//!
//! Three claims: (1) finding an input component takes at most
//! `log w - 1` name probes beyond the first; (2) the expected number of
//! out-neighbours per component is `O(1)`; (3) with caching, steady
//! traffic resolves neighbours in ~1 probe even across churn.

use acn_core::routing::find_input_component;
use acn_core::{ConvergedNetwork, NeighborCache};
use acn_topology::{network_input_address, CutWiring, WiringStyle};

use crate::util::{section, seeded_ring, Lcg, Table};

/// Runs the experiment and returns the rendered report.
#[must_use]
pub fn run() -> String {
    let w = 1 << 14;
    let mut table = Table::new(&[
        "N",
        "discovery mean",
        "discovery max",
        "bound log w",
        "out-nbrs mean",
        "out-nbrs max",
    ]);
    for &n in &[16usize, 128, 1024] {
        let net = ConvergedNetwork::new(w, seeded_ring(n, 77 + n as u64));
        let tree = *net.tree();
        // (1) input-component discovery, cold, over all input wires.
        let mut total = 0u64;
        let mut max = 0u64;
        for wire in 0..w {
            let addr = network_input_address(&tree, wire, WiringStyle::Ahs);
            let (_, probes) = find_input_component(net.cut(), &addr);
            total += probes;
            max = max.max(probes);
        }
        // (2) out-neighbour counts.
        let wiring = CutWiring::new(&tree, net.cut());
        let mut nbr_total = 0usize;
        let mut nbr_max = 0usize;
        let mut leaves = 0usize;
        for leaf in net.cut().leaves() {
            let nbrs = wiring.out_neighbors(leaf).len();
            nbr_total += nbrs;
            nbr_max = nbr_max.max(nbrs);
            leaves += 1;
        }
        table.row(&[
            n.to_string(),
            format!("{:.2}", total as f64 / w as f64),
            max.to_string(),
            (tree.max_level() + 1).to_string(),
            format!("{:.2}", nbr_total as f64 / leaves as f64),
            nbr_max.to_string(),
        ]);
    }

    // (3) caching across churn: steady traffic re-resolves a working set
    // of destinations, so the cache matters.
    let mut churn_table = Table::new(&["phase", "lookups", "mean probes", "max probes"]);
    let mut net = ConvergedNetwork::new(w, seeded_ring(256, 4242));
    let mut cache = NeighborCache::new();
    let mut rng = Lcg(99);
    let tree = *net.tree();
    let working_set: Vec<usize> = (0..128).map(|i| i * 97 % w).collect();
    let measure = |net: &ConvergedNetwork, cache: &mut NeighborCache, rng: &mut Lcg| {
        let before = cache.stats();
        for _ in 0..2000 {
            let wire = working_set[rng.below(working_set.len())];
            let addr = network_input_address(&tree, wire, WiringStyle::Ahs);
            let _ = cache.resolve(net.cut(), &addr);
        }
        let after = cache.stats();
        (
            after.lookups - before.lookups,
            (after.probes - before.probes) as f64 / (after.lookups - before.lookups) as f64,
            after.max_probes,
        )
    };
    let (l, mean, max) = measure(&net, &mut cache, &mut rng);
    churn_table.row(&["cold".into(), l.to_string(), format!("{mean:.2}"), max.to_string()]);
    let (l, mean, max) = measure(&net, &mut cache, &mut rng);
    churn_table.row(&["warm".into(), l.to_string(), format!("{mean:.2}"), max.to_string()]);
    let mut seed = 5u64;
    net.churn(256, 0, &mut seed);
    let (l, mean, max) = measure(&net, &mut cache, &mut rng);
    churn_table.row(&[
        "after 2x growth".into(),
        l.to_string(),
        format!("{mean:.2}"),
        max.to_string(),
    ]);
    net.churn(0, 384, &mut seed);
    let (l, mean, max) = measure(&net, &mut cache, &mut rng);
    churn_table.row(&[
        "after 4x shrink".into(),
        l.to_string(),
        format!("{mean:.2}"),
        max.to_string(),
    ]);

    section(
        "E9 / Section 3.5 — routing efficiency",
        &format!(
            "{}\nNeighbour-cache behaviour across churn (width {w}):\n{}\nExpected (paper): discovery <= log w probes; O(1) out-neighbours;\nwarm lookups ~1 probe, churn adds only a small transient.\n",
            table.render(),
            churn_table.render()
        ),
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn discovery_within_bound() {
        let report = super::run();
        assert!(report.contains("discovery"));
        assert!(!report.contains("panicked"));
    }
}
