//! Graphviz DOT renderings of the paper's three figures.
//!
//! The paper's figures are structural diagrams; this module regenerates
//! them from the implementation so they can be rendered with `dot -Tsvg`:
//!
//! - **Figure 1** — the recursive structure of `BITONIC[w]`: the six-way
//!   decomposition with its inter-component wiring.
//! - **Figure 2** — the decomposition tree `T_w` with a highlighted cut.
//! - **Figure 3** — the component network induced by a cut, labelled
//!   with its effective width and depth.

use std::fmt::Write as _;

use acn_topology::{
    child_output_destination, effective_depth, effective_width, ChildOutput, ComponentDag,
    ComponentId, ComponentKind, Cut, Tree, WiringStyle,
};

/// Figure 1: the one-level decomposition of `BITONIC[w]` as a DOT graph.
/// Edge labels carry the number of wires.
#[must_use]
pub fn figure1_dot(w: usize) -> String {
    let tree = Tree::new(w);
    let root = ComponentId::root();
    let mut dot = String::new();
    let _ = writeln!(dot, "digraph figure1 {{");
    let _ = writeln!(dot, "  rankdir=LR; node [shape=box, style=rounded];");
    let _ = writeln!(dot, "  label=\"Recursive structure of BITONIC[{w}] (paper Fig. 1)\";");
    let names = ["Btop", "Bbot", "Mtop", "Mbot", "Xtop", "Xbot"];
    for (i, name) in names.iter().enumerate() {
        let info = tree.info(&root.child(i as u8)).expect("valid child");
        let _ = writeln!(dot, "  {name} [label=\"{}[{}]\"];", info.kind.tag(), info.width);
    }
    // Count wires per (child, sibling) pair.
    let mut wires = std::collections::BTreeMap::new();
    let half = w / 2;
    for child in 0..6 {
        for port in 0..half {
            if let ChildOutput::Sibling { child: s, .. } = child_output_destination(
                ComponentKind::Bitonic,
                w,
                child,
                port,
                WiringStyle::Ahs,
            ) {
                *wires.entry((child, s)).or_insert(0usize) += 1;
            }
        }
    }
    let _ = writeln!(dot, "  in [shape=plaintext, label=\"{w} inputs\"];");
    let _ = writeln!(dot, "  out [shape=plaintext, label=\"{w} outputs\"];");
    let _ = writeln!(dot, "  in -> Btop [label=\"{half}\"]; in -> Bbot [label=\"{half}\"];");
    for ((from, to), count) in wires {
        let _ = writeln!(dot, "  {} -> {} [label=\"{count}\"];", names[from], names[to]);
    }
    let _ = writeln!(dot, "  Xtop -> out [label=\"{half}\"]; Xbot -> out [label=\"{half}\"];");
    let _ = writeln!(dot, "}}");
    dot
}

/// Figure 2: the decomposition tree `T_w` with the leaves of `cut`
/// highlighted (doubled border), as a DOT graph.
#[must_use]
pub fn figure2_dot(w: usize, cut: &Cut) -> String {
    let tree = Tree::new(w);
    let mut dot = String::new();
    let _ = writeln!(dot, "digraph figure2 {{");
    let _ = writeln!(dot, "  node [shape=box];");
    let _ = writeln!(dot, "  label=\"Decomposition tree T_{w} with a cut (paper Fig. 2)\";");
    for info in tree.iter_preorder() {
        let name = node_name(&info.id);
        let peripheries = if cut.contains(&info.id) { 3 } else { 1 };
        let _ = writeln!(
            dot,
            "  {name} [label=\"{}[{}]\\n{}\", peripheries={peripheries}];",
            info.kind.tag(),
            info.width,
            info.id
        );
        if let Some(parent) = info.id.parent() {
            let _ = writeln!(dot, "  {} -> {name};", node_name(&parent));
        }
        // Do not expand below cut leaves (matches the paper's "solid
        // subtrees" elision) — but only when the cut is shallow enough
        // to make the figure readable.
    }
    let _ = writeln!(dot, "}}");
    dot
}

/// Figure 3: the component network induced by `cut`, labelled with its
/// effective width and depth, as a DOT graph.
#[must_use]
pub fn figure3_dot(w: usize, cut: &Cut) -> String {
    let tree = Tree::new(w);
    let dag = ComponentDag::new(&tree, cut);
    let width = effective_width(&dag);
    let depth = effective_depth(&dag);
    let mut dot = String::new();
    let _ = writeln!(dot, "digraph figure3 {{");
    let _ = writeln!(dot, "  rankdir=LR; node [shape=box, style=rounded];");
    let _ = writeln!(
        dot,
        "  label=\"Cut implementation of BITONIC[{w}]: effective width {width}, depth {depth} (paper Fig. 3)\";"
    );
    for (i, v) in dag.vertices().iter().enumerate() {
        let info = tree.info(v).expect("valid leaf");
        let shape = if dag.input_layer().contains(&i) {
            ", color=blue"
        } else if dag.output_layer().contains(&i) {
            ", color=red"
        } else {
            ""
        };
        let _ = writeln!(
            dot,
            "  v{i} [label=\"{}[{}]\\n{}\"{shape}];",
            info.kind.tag(),
            info.width,
            v
        );
    }
    for e in dag.edges() {
        let _ = writeln!(dot, "  v{} -> v{} [label=\"{}\"];", e.from, e.to, e.wires);
    }
    let _ = writeln!(dot, "}}");
    dot
}

fn node_name(id: &ComponentId) -> String {
    if id.is_root() {
        "root".to_owned()
    } else {
        let digits: Vec<String> = id.path().iter().map(u8::to_string).collect();
        format!("n{}", digits.join("_"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_mentions_all_components() {
        let dot = figure1_dot(8);
        for name in ["Btop", "Bbot", "Mtop", "Mbot", "Xtop", "Xbot"] {
            assert!(dot.contains(name), "{name} missing:\n{dot}");
        }
        assert!(dot.contains("digraph"));
    }

    #[test]
    fn figure2_highlights_cut_leaves() {
        let tree = Tree::new(8);
        let mut cut = Cut::root();
        cut.split(&tree, &ComponentId::root()).unwrap();
        let dot = figure2_dot(8, &cut);
        assert_eq!(dot.matches("peripheries=3").count(), 6);
    }

    #[test]
    fn figure3_reports_paper_numbers() {
        let tree = Tree::new(8);
        let root = ComponentId::root();
        let mut cut = Cut::root();
        cut.split(&tree, &root).unwrap();
        cut.split(&tree, &root.child(0)).unwrap();
        let dot = figure3_dot(8, &cut);
        assert!(dot.contains("effective width 2, depth 5"), "{dot}");
    }
}
