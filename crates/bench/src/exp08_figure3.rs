//! E8 (Figures 2 and 3): the example cut of `T_8` with effective width
//! 2 and effective depth 5, and an exhaustive census of the
//! (width, depth) pairs realizable by cuts of `T_8`.

use acn_topology::{effective_depth, effective_width, ComponentDag, ComponentId, Cut, Tree};

use crate::util::{section, Table};

/// Runs the experiment and returns the rendered report.
#[must_use]
pub fn run() -> String {
    let tree = Tree::new(8);
    // The paper's cut1: split the root, then the top BITONIC[4].
    let root = ComponentId::root();
    let mut cut1 = Cut::root();
    cut1.split(&tree, &root).expect("root splits");
    cut1.split(&tree, &root.child(0)).expect("top bitonic splits");
    let dag = ComponentDag::new(&tree, &cut1);
    let fig3 = format!(
        "cut1 = {cut1}\n  components: {}\n  effective width: {} (paper: 2)\n  effective depth: {} (paper: 5)",
        dag.vertices().len(),
        effective_width(&dag),
        effective_depth(&dag)
    );

    // Census of all 65 cuts.
    let mut table = Table::new(&["eff width", "eff depth", "#cuts"]);
    let mut census: std::collections::BTreeMap<(usize, usize), usize> =
        std::collections::BTreeMap::new();
    for cut in Cut::enumerate_all(&tree) {
        let dag = ComponentDag::new(&tree, &cut);
        *census
            .entry((effective_width(&dag), effective_depth(&dag)))
            .or_insert(0) += 1;
    }
    for ((w, d), count) in &census {
        table.row(&[w.to_string(), d.to_string(), count.to_string()]);
    }

    section(
        "E8 / Figures 2-3 — the example cut and the (width, depth) census of T_8",
        &format!("{fig3}\n\nAll cuts of T_8 by effective dimensions:\n{}", table.render()),
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn figure3_numbers_reproduce() {
        let report = super::run();
        assert!(report.contains("effective width: 2 (paper: 2)"), "{report}");
        assert!(report.contains("effective depth: 5 (paper: 5)"), "{report}");
    }
}
