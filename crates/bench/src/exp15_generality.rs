//! G1 — the paper's generality claim, demonstrated positively.
//!
//! Section 1.2 of the paper remarks that "the same technique can be used
//! for any distributed data structure which can be decomposed in a
//! recursive way", working out only the bitonic network. The
//! `acn-periodic` crate transfers the whole construction — recursive
//! decomposition, mod-k components, profile-flow split/merge — to the
//! `PERIODIC[w]` network of Dowd–Perl–Rudolph–Saks. This experiment
//! verifies the Theorem 2.1 analogue for it:
//!
//! - **exhaustively**: every one of the 97,337 cuts of the `P_8`
//!   decomposition tree is driven with sequential tokens on adversarial
//!   input wires and must emit a strict global round-robin. (Components
//!   are port-blind counters, so quiescent outputs are a deterministic
//!   function of per-component totals — sequential verification covers
//!   every asynchronous interleaving.)
//! - **dynamically**: random split/merge storms interleaved with tokens
//!   on `P_16`/`P_32` must preserve the round robin across the
//!   reconfigurations.

use acn_periodic::{AdaptivePeriodic, PCut, PId, PTree};

use crate::util::{section, Lcg, Table};

/// Runs the experiment and returns the rendered report.
#[must_use]
pub fn run() -> String {
    let mut table = Table::new(&["part", "w", "cuts", "tokens/cut", "violations"]);

    // Part A: exhaustive over P_8.
    let tree = PTree::new(8);
    let cuts = PCut::enumerate_all(&tree);
    let mut violations = 0usize;
    for cut in &cuts {
        let mut net = AdaptivePeriodic::with_cut(8, cut.clone());
        let mut rng = Lcg(0x9E51);
        for t in 0..32usize {
            if net.push(rng.below(8)) != t % 8 {
                violations += 1;
            }
        }
    }
    table.row(&[
        "A (exhaustive, sequential)".into(),
        "8".into(),
        cuts.len().to_string(),
        "32".into(),
        violations.to_string(),
    ]);

    // Part B: reconfiguration storms on wider trees.
    for &w in &[16usize, 32] {
        let tree = PTree::new(w);
        let mut violations = 0usize;
        let trials = 25;
        for seed in 0..trials {
            let mut net = AdaptivePeriodic::new(w);
            let mut rng = Lcg(seed as u64 * 6151 + 11);
            let mut pushed = 0usize;
            for _ in 0..1200 {
                match rng.below(4) {
                    0 => {
                        let splittable: Vec<PId> = net
                            .cut()
                            .leaves()
                            .iter()
                            .filter(|l| tree.info(l).map(|i| i.width >= 4).unwrap_or(false))
                            .cloned()
                            .collect();
                        if !splittable.is_empty() {
                            let pick = splittable[rng.below(splittable.len())].clone();
                            net.split(&pick).expect("splittable leaf");
                        }
                    }
                    1 => {
                        let parents: Vec<PId> =
                            net.cut().leaves().iter().filter_map(|l| l.parent()).collect();
                        if !parents.is_empty() {
                            let pick = parents[rng.below(parents.len())].clone();
                            let _ = net.merge(&pick);
                        }
                    }
                    _ => {
                        if net.push(rng.below(w)) != pushed % w {
                            violations += 1;
                        }
                        pushed += 1;
                    }
                }
            }
        }
        table.row(&[
            "B (split/merge storms)".into(),
            w.to_string(),
            trials.to_string(),
            "~600".into(),
            violations.to_string(),
        ]);
    }

    section(
        "G1 — generality: an adaptive PERIODIC network (Theorem 2.1 analogue)",
        &format!(
            "{}\nExpected: 0 violations — the adaptive technique transfers to the second\nclassical counting network, substantiating the paper's Section 1.2 claim.\n",
            table.render()
        ),
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn storms_are_clean() {
        // The exhaustive part is release-only (97k cuts); the unit test
        // exercises the storm part via a trimmed run of the harness on
        // the smaller tree inside `acn-periodic`'s own tests. Here just
        // verify the harness runs on a sample.
        let tree = acn_periodic::PTree::new(8);
        let cuts = acn_periodic::PCut::enumerate_all(&tree);
        assert_eq!(cuts.len(), 97_337);
        for cut in cuts.iter().step_by(997) {
            let mut net = acn_periodic::AdaptivePeriodic::with_cut(8, cut.clone());
            for t in 0..16usize {
                assert_eq!(net.push((t * 3) % 8), t % 8, "cut {cut}");
            }
        }
    }
}
