//! Experiment harnesses reproducing every figure and analytic claim of
//! *Adaptive Counting Networks* (Tirthapura, ICDCS 2005).
//!
//! Each `expNN_*` module regenerates one experiment from the index in
//! `DESIGN.md` §4 and prints a table; the `exp_*` binaries are thin
//! wrappers, and `exp_all` runs the full suite (this is what populated
//! `EXPERIMENTS.md`). The criterion benches under `benches/` measure the
//! throughput comparisons (experiment E11).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exp01_step_property;
pub mod exp02_depth_bound;
pub mod exp03_width_bound;
pub mod exp04_size_estimation;
pub mod exp05_level_estimates;
pub mod exp06_component_counts;
pub mod exp07_effective_dims;
pub mod exp08_figure3;
pub mod exp09_routing;
pub mod exp10_adaptivity;
pub mod exp11_motivation;
pub mod exp12_ablation_state;
pub mod exp13_ablation_wiring;
pub mod exp14_contention;
pub mod exp15_generality;
pub mod exp16_overlay;
pub mod exp17_reconfig_cost;
pub mod exp18_throughput;
pub mod figures;
pub mod util;
