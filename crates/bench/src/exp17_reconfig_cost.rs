//! E12 — reconfiguration cost and stability of the decentralized rules.
//!
//! The paper argues reconfiguration is infrequent relative to traffic
//! (Section 3.5 assumes neighbour addresses can be cached because
//! "changes in the structure of the counting network are infrequent").
//! This experiment quantifies that: growing a system one join at a time
//! from 1 to 4096 nodes, how many split/merge operations do the
//! decentralized rules trigger per decade of growth, and how much
//! *thrash* (a merge undoing a recent split) occurs near the φ-level
//! boundaries where the estimates are noisiest?

use acn_core::ConvergedNetwork;
use acn_overlay::Ring;

use crate::util::{section, Table};

/// Runs the experiment and returns the rendered report.
#[must_use]
pub fn run() -> String {
    run_to(&[4usize, 16, 64, 256, 1024, 4096])
}

/// Runs the growth sweep up to the given decade boundaries (the unit
/// test uses a truncated sweep; the release harness the full one).
#[must_use]
pub fn run_to(decades: &[usize]) -> String {
    let mut table = Table::new(&[
        "N range",
        "joins",
        "splits",
        "merges (thrash)",
        "ops/join",
        "components at end",
    ]);
    let mut ring = Ring::new();
    let mut seed = 0xE17u64;
    ring.add_random_node(&mut seed);
    let mut net = ConvergedNetwork::new(1 << 13, ring.clone());
    let mut prev_splits = 0u64;
    let mut prev_merges = 0u64;
    let mut lo = 1usize;
    for &hi in decades {
        let joins = hi - lo;
        for _ in 0..joins {
            net.churn(1, 0, &mut seed);
        }
        let splits = net.splits() - prev_splits;
        let merges = net.merges() - prev_merges;
        prev_splits = net.splits();
        prev_merges = net.merges();
        table.row(&[
            format!("{lo}..{hi}"),
            joins.to_string(),
            splits.to_string(),
            merges.to_string(),
            format!("{:.3}", (splits + merges) as f64 / joins as f64),
            net.cut().leaves().len().to_string(),
        ]);
        lo = hi;
    }
    section(
        "E12 — reconfiguration cost while growing 1 -> 4096 nodes one join at a time",
        &format!(
            "{}\nReading: total splits track the component count (each split is permanent\nprogress), merges measure thrash from estimate noise at phi-level\nboundaries, and ops/join stays far below 1 — structure changes are indeed\ninfrequent relative to membership events, let alone token traffic, which\nis what makes the Section 3.5 neighbour caching effective.\n",
            table.render()
        ),
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn reconfiguration_is_infrequent() {
        let report = super::run_to(&[4usize, 16, 64, 256]);
        for line in report.lines() {
            let cells: Vec<&str> = line.split_whitespace().collect();
            if cells.len() == 6 && cells[0].contains("..") {
                let ops_per_join: f64 = cells[4].parse().expect("ops/join");
                assert!(
                    ops_per_join < 5.0,
                    "reconfiguration unexpectedly frequent: {line}"
                );
            }
        }
    }
}
