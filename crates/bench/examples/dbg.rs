fn main() {
    use acn_core::LocalAdaptiveNetwork;
    use acn_topology::{Cut, Tree, WiringStyle};
    let tree = Tree::new(16);
    for level in 0..=tree.max_level() {
        let mut net = LocalAdaptiveNetwork::with_cut(16, Cut::uniform(&tree, level), WiringStyle::Ahs);
        let outs: Vec<usize> = (0..8).map(|t| net.push((t*7) % 16)).collect();
        println!("level {level}: {outs:?}");
    }
    // and wire-0 only
    for level in 0..=tree.max_level() {
        let mut net = LocalAdaptiveNetwork::with_cut(16, Cut::uniform(&tree, level), WiringStyle::Ahs);
        let outs: Vec<usize> = (0..8).map(|_| net.push(0)).collect();
        println!("level {level} wire0: {outs:?}");
    }
}
