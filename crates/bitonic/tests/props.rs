//! Property tests for the static counting networks.

use acn_bitonic::step::{is_step_sequence, verify_interleaved, verify_sequential};
use acn_bitonic::{bitonic_network, periodic_network};
use proptest::prelude::*;

proptest! {
    /// The bitonic network counts for arbitrary sequential schedules.
    #[test]
    fn bitonic_counts(
        logw in 1u32..6,
        wires in proptest::collection::vec(any::<usize>(), 1..150),
    ) {
        let w = 1usize << logw;
        let net = bitonic_network(w);
        let mut i = 0;
        let v = verify_sequential(&net, wires.len(), |_| {
            let wire = wires[i % wires.len()];
            i += 1;
            wire
        });
        prop_assert!(v.counts);
    }

    /// The periodic network counts for arbitrary sequential schedules.
    #[test]
    fn periodic_counts(
        logw in 1u32..5,
        wires in proptest::collection::vec(any::<usize>(), 1..100),
    ) {
        let w = 1usize << logw;
        let net = periodic_network(w);
        let mut i = 0;
        let v = verify_sequential(&net, wires.len(), |_| {
            let wire = wires[i % wires.len()];
            i += 1;
            wire
        });
        prop_assert!(v.counts);
    }

    /// The bitonic network keeps the quiescent step property under
    /// arbitrary interleavings.
    #[test]
    fn bitonic_counts_interleaved(
        logw in 1u32..5,
        tokens in 1usize..80,
        schedule in proptest::collection::vec(any::<usize>(), 1..400),
        inputs in proptest::collection::vec(any::<usize>(), 1..80),
    ) {
        let w = 1usize << logw;
        let net = bitonic_network(w);
        let mut s = 0;
        let mut i = 0;
        let v = verify_interleaved(
            &net,
            tokens,
            |_| { let x = inputs[i % inputs.len()]; i += 1; x },
            |n| { let x = schedule[s % schedule.len()] % n.max(1); s += 1; x },
        );
        prop_assert!(v.counts);
        prop_assert_eq!(v.final_outputs.iter().sum::<u64>(), tokens as u64);
    }

    /// Step sequences are exactly the sorted-and-tight sequences.
    #[test]
    fn step_checker_semantics(counts in proptest::collection::vec(0u64..6, 0..10)) {
        let max = counts.iter().copied().max().unwrap_or(0);
        let min = counts.iter().copied().min().unwrap_or(0);
        let sorted = counts.windows(2).all(|p| p[0] >= p[1]);
        prop_assert_eq!(is_step_sequence(&counts), sorted && max - min <= 1);
    }
}
