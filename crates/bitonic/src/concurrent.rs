//! Lock-free concurrent execution of balancing networks.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::baselines::Counter;
use crate::network::{BalancingNetwork, Dest};

/// A lock-free concurrent counter built from a counting network: each
/// balancer toggle is an atomic fetch-and-increment, and every output
/// wire hands out values `wire + w * round`, exactly as a distributed
/// counter would (paper Section 1.1, "Applications").
///
/// Counting networks guarantee the *quiescent* step property, so unlike
/// [`CentralCounter`](crate::CentralCounter) the values observed by
/// overlapping operations are not linearizable — but no value is ever
/// duplicated or skipped.
///
/// # Example
///
/// ```
/// use acn_bitonic::{bitonic_network, AtomicNetworkCounter, Counter};
///
/// let counter = AtomicNetworkCounter::new(bitonic_network(4));
/// let mut seen: Vec<u64> = (0..10).map(|_| counter.next()).collect();
/// seen.sort();
/// assert_eq!(seen, (0..10).collect::<Vec<u64>>());
/// ```
#[derive(Debug)]
pub struct AtomicNetworkCounter {
    net: BalancingNetwork,
    toggles: Vec<AtomicU64>,
    wire_counts: Vec<AtomicU64>,
    arrivals: AtomicU64,
}

impl AtomicNetworkCounter {
    /// Wraps a balancing network into a concurrent counter.
    #[must_use]
    pub fn new(net: BalancingNetwork) -> Self {
        let toggles = (0..net.balancer_count()).map(|_| AtomicU64::new(0)).collect();
        let wire_counts = (0..net.width()).map(|_| AtomicU64::new(0)).collect();
        AtomicNetworkCounter { net, toggles, wire_counts, arrivals: AtomicU64::new(0) }
    }

    /// The underlying network.
    #[must_use]
    pub fn network(&self) -> &BalancingNetwork {
        &self.net
    }

    /// Routes one token entering on `input_wire`, returning the output
    /// wire it exits on (without consuming a counter value).
    ///
    /// # Panics
    ///
    /// Panics if `input_wire >= width`.
    pub fn traverse(&self, input_wire: usize) -> usize {
        let mut dest = self.net.input(input_wire);
        loop {
            match dest {
                Dest::Balancer(b) => {
                    let port = (self.toggles[b].fetch_add(1, Ordering::Relaxed) % 2) as usize;
                    dest = self.net.balancer_outputs(b)[port];
                }
                Dest::Output(o) => return o,
            }
        }
    }

    /// Tokens that have exited on each wire so far (a quiescent snapshot
    /// of this vector has the step property).
    #[must_use]
    pub fn output_counts(&self) -> Vec<u64> {
        self.wire_counts.iter().map(|c| c.load(Ordering::Relaxed)).collect()
    }
}

impl Counter for AtomicNetworkCounter {
    fn next(&self) -> u64 {
        let w = self.net.width();
        // Spread arrivals across input wires round-robin, as independent
        // clients would.
        let wire = (self.arrivals.fetch_add(1, Ordering::Relaxed) % w as u64) as usize;
        let out = self.traverse(wire);
        let round = self.wire_counts[out].fetch_add(1, Ordering::Relaxed);
        out as u64 + round * w as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::{bitonic_network, periodic_network};
    use crate::step::is_step_sequence;
    use std::sync::Arc;

    #[test]
    fn concurrent_bitonic_values_are_distinct_and_dense() {
        let counter = Arc::new(AtomicNetworkCounter::new(bitonic_network(8)));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                (0..250).map(|_| c.next()).collect::<Vec<u64>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker panicked"))
            .collect();
        all.sort_unstable();
        // 2000 distinct values, forming exactly 0..2000: counting networks
        // never skip or duplicate.
        assert_eq!(all, (0..2000u64).collect::<Vec<u64>>());
    }

    #[test]
    fn quiescent_output_counts_have_step_property() {
        for net in [bitonic_network(8), periodic_network(8)] {
            let counter = Arc::new(AtomicNetworkCounter::new(net));
            let mut handles = Vec::new();
            for _ in 0..4 {
                let c = Arc::clone(&counter);
                handles.push(std::thread::spawn(move || {
                    for _ in 0..333 {
                        let _ = c.next();
                    }
                }));
            }
            for h in handles {
                h.join().expect("worker panicked");
            }
            let counts = counter.output_counts();
            assert!(is_step_sequence(&counts), "{counts:?}");
            assert_eq!(counts.iter().sum::<u64>(), 4 * 333);
        }
    }

    #[test]
    fn traverse_does_not_consume_values() {
        let counter = AtomicNetworkCounter::new(bitonic_network(4));
        let w1 = counter.traverse(0);
        let w2 = counter.traverse(1);
        assert!(w1 < 4 && w2 < 4);
        // Output counters are untouched by traversal.
        assert_eq!(counter.output_counts(), vec![0; 4]);
        // The first real value is the exit wire with round 0.
        let v = counter.next();
        assert!(v < 4, "first value must be in round 0, got {v}");
    }
}
