//! Lock-free concurrent execution of balancing networks.

use acn_sync::{Ordering, RealSync, SyncApi, SyncAtomicU64};
use acn_telemetry::{Counter as TelemetryCounter, Histogram, Registry};

use crate::baselines::Counter;
use crate::network::{BalancingNetwork, Dest};

/// Telemetry handles for the lock-free counter (no-ops by default).
#[derive(Debug, Default)]
struct BitonicMetrics {
    /// `acn.bitonic.balancer_passes` — balancer toggles performed.
    balancer_passes: TelemetryCounter,
    /// `acn.bitonic.traversal_depth` — balancers crossed per token.
    traversal_depth: Histogram,
    /// `acn.bitonic.tokens` — values handed out via [`Counter::next`].
    tokens: TelemetryCounter,
}

impl BitonicMetrics {
    fn attach(registry: &Registry) -> Self {
        BitonicMetrics {
            balancer_passes: registry.counter("acn.bitonic.balancer_passes"),
            traversal_depth: registry.histogram("acn.bitonic.traversal_depth"),
            tokens: registry.counter("acn.bitonic.tokens"),
        }
    }
}

/// A lock-free concurrent counter built from a counting network: each
/// balancer toggle is an atomic fetch-and-increment, and every output
/// wire hands out values `wire + w * round`, exactly as a distributed
/// counter would (paper Section 1.1, "Applications").
///
/// Counting networks guarantee the *quiescent* step property, so unlike
/// [`CentralCounter`](crate::CentralCounter) the values observed by
/// overlapping operations are not linearizable — but no value is ever
/// duplicated or skipped.
///
/// Generic over [`SyncApi`] (default [`RealSync`]): the production
/// executor and the model-checked artifact are the same code.
///
/// # Example
///
/// ```
/// use acn_bitonic::{bitonic_network, AtomicNetworkCounter, Counter};
///
/// let counter = AtomicNetworkCounter::new(bitonic_network(4));
/// let mut seen: Vec<u64> = (0..10).map(|_| counter.next()).collect();
/// seen.sort();
/// assert_eq!(seen, (0..10).collect::<Vec<u64>>());
/// ```
#[derive(Debug)]
pub struct AtomicNetworkCounter<S: SyncApi = RealSync>
where
    S::AtomicU64: std::fmt::Debug,
{
    net: BalancingNetwork,
    toggles: Vec<S::AtomicU64>,
    wire_counts: Vec<S::AtomicU64>,
    arrivals: S::AtomicU64,
    metrics: BitonicMetrics,
}

impl AtomicNetworkCounter<RealSync> {
    /// Wraps a balancing network into a concurrent counter.
    #[must_use]
    pub fn new(net: BalancingNetwork) -> Self {
        Self::new_in(net)
    }
}

impl<S: SyncApi> AtomicNetworkCounter<S>
where
    S::AtomicU64: std::fmt::Debug,
{
    /// Wraps a balancing network into a concurrent counter under an
    /// explicit [`SyncApi`] (the model checker instantiates this with
    /// `VirtualSync`).
    #[must_use]
    pub fn new_in(net: BalancingNetwork) -> Self {
        let toggles = (0..net.balancer_count()).map(|_| S::AtomicU64::new(0)).collect();
        let wire_counts = (0..net.width()).map(|_| S::AtomicU64::new(0)).collect();
        AtomicNetworkCounter {
            net,
            toggles,
            wire_counts,
            arrivals: S::AtomicU64::new(0),
            metrics: BitonicMetrics::default(),
        }
    }

    /// Registers this counter's metrics (`acn.bitonic.*`) with `registry`.
    ///
    /// Call before sharing the counter across threads (it needs `&mut`).
    /// Telemetry is observation-only: routing and handed-out values are
    /// identical with or without a registry attached.
    pub fn attach_telemetry(&mut self, registry: &Registry) {
        self.metrics = BitonicMetrics::attach(registry);
    }

    /// The underlying network.
    #[must_use]
    pub fn network(&self) -> &BalancingNetwork {
        &self.net
    }

    /// Routes one token entering on `input_wire`, returning the output
    /// wire it exits on (without consuming a counter value).
    ///
    /// # Panics
    ///
    /// Panics if `input_wire >= width`.
    pub fn traverse(&self, input_wire: usize) -> usize {
        let mut dest = self.net.input(input_wire);
        let mut depth = 0u64;
        loop {
            match dest {
                Dest::Balancer(b) => {
                    // lint: relaxed-ok(the toggle's own RMW modification order alternates ports regardless of cross-balancer visibility; the step property is only claimed at quiescence)
                    let port = (self.toggles[b].fetch_add(1, Ordering::Relaxed) % 2) as usize;
                    depth += 1;
                    dest = self.net.balancer_outputs(b)[port];
                }
                Dest::Output(o) => {
                    self.metrics.balancer_passes.add(depth);
                    self.metrics.traversal_depth.record(depth);
                    return o;
                }
            }
        }
    }

    /// Tokens that have exited on each wire so far (a quiescent snapshot
    /// of this vector has the step property). `Acquire` pairs with the
    /// caller's quiescence protocol (thread join or stronger).
    #[must_use]
    pub fn output_counts(&self) -> Vec<u64> {
        self.wire_counts.iter().map(|c| c.load(Ordering::Acquire)).collect()
    }

    /// Hands out the next counter value (round-robin arrival wire).
    /// Exposed inherently so `SyncApi`-generic callers (the model
    /// checker) can use it without importing the [`Counter`] trait.
    pub fn next_value(&self) -> u64 {
        let w = self.net.width();
        // Spread arrivals across input wires round-robin, as independent
        // clients would.
        // lint: relaxed-ok(wire assignment is load-balancing only; any interleaving of the arrival RMW is equally correct)
        let wire = (self.arrivals.fetch_add(1, Ordering::Relaxed) % w as u64) as usize;
        self.metrics.tokens.inc();
        let out = self.traverse(wire);
        // lint: relaxed-ok(the round comes from this wire's own RMW modification order, which alone determines the handed-out value)
        let round = self.wire_counts[out].fetch_add(1, Ordering::Relaxed);
        out as u64 + round * w as u64
    }
}

impl<S: SyncApi> Counter for AtomicNetworkCounter<S>
where
    S::AtomicU64: std::fmt::Debug,
{
    fn next(&self) -> u64 {
        self.next_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::{bitonic_network, periodic_network};
    use crate::step::is_step_sequence;
    use std::sync::Arc;

    #[test]
    fn concurrent_bitonic_values_are_distinct_and_dense() {
        let counter = Arc::new(AtomicNetworkCounter::new(bitonic_network(8)));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                (0..250).map(|_| c.next()).collect::<Vec<u64>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker panicked"))
            .collect();
        all.sort_unstable();
        // 2000 distinct values, forming exactly 0..2000: counting networks
        // never skip or duplicate.
        assert_eq!(all, (0..2000u64).collect::<Vec<u64>>());
    }

    #[test]
    fn quiescent_output_counts_have_step_property() {
        for net in [bitonic_network(8), periodic_network(8)] {
            let counter = Arc::new(AtomicNetworkCounter::new(net));
            let mut handles = Vec::new();
            for _ in 0..4 {
                let c = Arc::clone(&counter);
                handles.push(std::thread::spawn(move || {
                    for _ in 0..333 {
                        let _ = c.next();
                    }
                }));
            }
            for h in handles {
                h.join().expect("worker panicked");
            }
            let counts = counter.output_counts();
            assert!(is_step_sequence(&counts), "{counts:?}");
            assert_eq!(counts.iter().sum::<u64>(), 4 * 333);
        }
    }

    #[test]
    fn telemetry_counts_balancer_passes_per_token() {
        let registry = Registry::new();
        let mut counter = AtomicNetworkCounter::new(bitonic_network(4));
        counter.attach_telemetry(&registry);
        for _ in 0..12 {
            let _ = counter.next();
        }
        let snap = registry.snapshot();
        assert_eq!(snap.counter("acn.bitonic.tokens"), Some(12));
        let depth = snap.histogram("acn.bitonic.traversal_depth").expect("depth histogram");
        // Bitonic[4] has depth 3: every token crosses exactly 3 balancers.
        assert_eq!(depth.count, 12);
        assert_eq!(depth.sum, 36);
        assert_eq!(snap.counter("acn.bitonic.balancer_passes"), Some(36));
    }

    #[test]
    fn traverse_does_not_consume_values() {
        let counter = AtomicNetworkCounter::new(bitonic_network(4));
        let w1 = counter.traverse(0);
        let w2 = counter.traverse(1);
        assert!(w1 < 4 && w2 < 4);
        // Output counters are untouched by traversal.
        assert_eq!(counter.output_counts(), vec![0; 4]);
        // The first real value is the exit wire with round 0.
        let v = counter.next();
        assert!(v < 4, "first value must be in round 0, got {v}");
    }
}
