//! Lock-free concurrent execution of balancing networks.
//!
//! [`AtomicNetworkCounter`] was always lock-free per token (each
//! balancer toggle is one `fetch_add`); since the snapshot protocol
//! landed it also shares the adaptive runtime's **epoch-published
//! snapshot** discipline (`acn_sync::SyncSnapshot`, `DESIGN.md` §8):
//! the network description and its toggle bank live in an immutable
//! snapshot that tokens pin through a read–write gate and validate by
//! epoch, and [`AtomicNetworkCounter::replace_network`] can swap in a
//! different (same-width) counting network *live* — the writer drains
//! pinned tokens, seeds the replacement's toggles from the quiescent
//! output counts so the value stream stays dense, and publishes the
//! new snapshot under a bumped epoch.

use std::hash::{Hash, Hasher};
use std::sync::Arc;

use acn_sync::{Ordering, RealSync, SyncApi, SyncAtomicU64, SyncRwLock, SyncSnapshot};
use acn_telemetry::{Counter as TelemetryCounter, Histogram, Registry};
use acn_trace::{Span, Tracer};

use crate::baselines::Counter;
use crate::network::{BalancingNetwork, Dest};
use crate::step::is_step_sequence;

/// Telemetry handles for the lock-free counter (no-ops by default).
#[derive(Debug, Default)]
struct BitonicMetrics {
    /// `acn.bitonic.balancer_passes` — balancer toggles performed.
    balancer_passes: TelemetryCounter,
    /// `acn.bitonic.traversal_depth` — balancers crossed per token.
    traversal_depth: Histogram,
    /// `acn.bitonic.tokens` — values handed out via [`Counter::next`].
    tokens: TelemetryCounter,
    /// `acn.bitonic.fastpath_hits` — traversals that completed on a
    /// validated snapshot pin.
    fastpath_hits: TelemetryCounter,
    /// `acn.bitonic.snapshot_retries` — pinned snapshots that failed
    /// epoch validation (a network replacement won the race).
    snapshot_retries: TelemetryCounter,
}

impl BitonicMetrics {
    fn attach(registry: &Registry) -> Self {
        BitonicMetrics {
            balancer_passes: registry.counter("acn.bitonic.balancer_passes"),
            traversal_depth: registry.histogram("acn.bitonic.traversal_depth"),
            tokens: registry.counter("acn.bitonic.tokens"),
            fastpath_hits: registry.counter("acn.bitonic.fastpath_hits"),
            snapshot_retries: registry.counter("acn.bitonic.snapshot_retries"),
        }
    }
}

/// The immutable unit a token traverses: a network description plus its
/// toggle bank, published via [`SyncSnapshot`] and validated by epoch.
struct ToggleSnapshot<S: SyncApi> {
    epoch: u64,
    net: BalancingNetwork,
    toggles: Vec<S::AtomicU64>,
}

impl<S: SyncApi> Hash for ToggleSnapshot<S> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.epoch.hash(state);
        self.net.hash(state);
        self.toggles.hash(state);
    }
}

impl<S: SyncApi> std::fmt::Debug for ToggleSnapshot<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ToggleSnapshot")
            .field("epoch", &self.epoch)
            .field("balancers", &self.net.balancer_count())
            .finish()
    }
}

/// Tokens of `total` round-robin arrivals that land on wire `i` of `w`:
/// `ceil((total - i) / w)`, clamped at zero — the step profile.
fn round_robin_profile(total: u64, w: usize, i: usize) -> u64 {
    (total + w as u64 - 1 - i as u64) / w as u64
}

/// The quiescent toggle state of `net` after `total` round-robin
/// arrivals, computed by flowing the arrival profile through the
/// balancers (Kahn-style, so balancer indices need not be topologically
/// ordered): `t` tokens through a balancer leave its toggle at `t`,
/// having sent `ceil(t/2)` up and `floor(t/2)` down regardless of
/// interleaving. Returns `(toggles, outputs)`.
fn quiescent_flow(net: &BalancingNetwork, total: u64) -> (Vec<u64>, Vec<u64>) {
    let w = net.width();
    let bcount = net.balancer_count();
    let mut pending = vec![0usize; bcount];
    for wire in 0..w {
        if let Dest::Balancer(b) = net.input(wire) {
            pending[b] += 1;
        }
    }
    for b in 0..bcount {
        for d in net.balancer_outputs(b) {
            if let Dest::Balancer(t) = d {
                pending[t] += 1;
            }
        }
    }
    let mut incoming = vec![0u64; bcount];
    let mut outputs = vec![0u64; w];
    let mut ready: Vec<usize> = Vec::new();
    let feed = |dest: Dest,
                    tokens: u64,
                    incoming: &mut Vec<u64>,
                    outputs: &mut Vec<u64>,
                    pending: &mut Vec<usize>,
                    ready: &mut Vec<usize>| match dest {
        Dest::Balancer(b) => {
            incoming[b] += tokens;
            pending[b] -= 1;
            if pending[b] == 0 {
                ready.push(b);
            }
        }
        Dest::Output(o) => outputs[o] += tokens,
    };
    for wire in 0..w {
        let tokens = round_robin_profile(total, w, wire);
        feed(net.input(wire), tokens, &mut incoming, &mut outputs, &mut pending, &mut ready);
    }
    let mut toggles = vec![0u64; bcount];
    while let Some(b) = ready.pop() {
        let t = incoming[b];
        toggles[b] = t;
        let [top, bottom] = net.balancer_outputs(b);
        feed(top, t.div_ceil(2), &mut incoming, &mut outputs, &mut pending, &mut ready);
        feed(bottom, t / 2, &mut incoming, &mut outputs, &mut pending, &mut ready);
    }
    (toggles, outputs)
}

/// A lock-free concurrent counter built from a counting network: each
/// balancer toggle is an atomic fetch-and-increment, and every output
/// wire hands out values `wire + w * round`, exactly as a distributed
/// counter would (paper Section 1.1, "Applications").
///
/// Counting networks guarantee the *quiescent* step property, so unlike
/// [`CentralCounter`](crate::CentralCounter) the values observed by
/// overlapping operations are not linearizable — but no value is ever
/// duplicated or skipped.
///
/// Generic over [`SyncApi`] (default [`RealSync`]): the production
/// executor and the model-checked artifact are the same code.
///
/// # Example
///
/// ```
/// use acn_bitonic::{bitonic_network, AtomicNetworkCounter, Counter};
///
/// let counter = AtomicNetworkCounter::new(bitonic_network(4));
/// let mut seen: Vec<u64> = (0..10).map(|_| counter.next()).collect();
/// seen.sort();
/// assert_eq!(seen, (0..10).collect::<Vec<u64>>());
/// ```
pub struct AtomicNetworkCounter<S: SyncApi = RealSync> {
    width: usize,
    /// The published network + toggle bank.
    snapshot: S::Snapshot<ToggleSnapshot<S>>,
    /// Current epoch; bumped by every [`Self::replace_network`].
    epoch: S::AtomicU64,
    /// Drain gate: tokens pin (read) for their whole traversal
    /// *including* the output-wire round claim; a replacement writer
    /// acquires it exclusively, which is the quiescent point. The
    /// payload carries no data.
    gate: S::RwLock<u64>,
    wire_counts: Vec<S::AtomicU64>,
    arrivals: S::AtomicU64,
    metrics: BitonicMetrics,
    /// Sampled `exec.bitonic` spans with monotonic timestamps from the
    /// [`SyncApi`] clock seam; disabled (one branch per token) unless
    /// [`Self::attach_tracer`] is called.
    tracer: Tracer,
}

impl<S: SyncApi> std::fmt::Debug for AtomicNetworkCounter<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtomicNetworkCounter").field("width", &self.width).finish()
    }
}

impl AtomicNetworkCounter<RealSync> {
    /// Wraps a balancing network into a concurrent counter.
    #[must_use]
    pub fn new(net: BalancingNetwork) -> Self {
        Self::new_in(net)
    }
}

impl<S: SyncApi> AtomicNetworkCounter<S> {
    /// Wraps a balancing network into a concurrent counter under an
    /// explicit [`SyncApi`] (the model checker instantiates this with
    /// `VirtualSync`).
    #[must_use]
    pub fn new_in(net: BalancingNetwork) -> Self {
        let width = net.width();
        let toggles = (0..net.balancer_count()).map(|_| S::AtomicU64::new(0)).collect();
        AtomicNetworkCounter {
            width,
            snapshot: S::Snapshot::new(Arc::new(ToggleSnapshot { epoch: 0, net, toggles })),
            epoch: S::AtomicU64::new(0),
            gate: S::RwLock::new(0),
            wire_counts: (0..width).map(|_| S::AtomicU64::new(0)).collect(),
            arrivals: S::AtomicU64::new(0),
            metrics: BitonicMetrics::default(),
            tracer: Tracer::disabled(),
        }
    }

    /// Registers this counter's metrics (`acn.bitonic.*`) with `registry`.
    ///
    /// Call before sharing the counter across threads (it needs `&mut`).
    /// Telemetry is observation-only: routing and handed-out values are
    /// identical with or without a registry attached.
    pub fn attach_telemetry(&mut self, registry: &Registry) {
        self.metrics = BitonicMetrics::attach(registry);
    }

    /// Routes sampled `exec.bitonic` spans (one per sampled
    /// [`Self::next_value`] call, timestamped with
    /// [`SyncApi::monotonic_now`]) into `tracer`. The arrival index is
    /// the pseudo trace id, so a power-of-two sampling mask keeps
    /// roughly one token in `2^k`. Call before sharing the counter
    /// across threads (it needs `&mut`).
    pub fn attach_tracer(&mut self, tracer: &Tracer) {
        self.tracer = tracer.clone();
    }

    /// The network width.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// A clone of the currently published network description.
    #[must_use]
    pub fn network(&self) -> BalancingNetwork {
        self.snapshot.load().net.clone()
    }

    /// Pins the current snapshot (validated by epoch against racing
    /// [`Self::replace_network`] calls) and runs `f` against it. The
    /// pin is held until `f` returns, so a replacement's drain waits
    /// out everything `f` does.
    fn with_pin<R>(&self, f: impl FnOnce(&ToggleSnapshot<S>) -> R) -> R {
        loop {
            let snap = self.snapshot.load();
            let pin = self.gate.read();
            if snap.epoch != self.epoch.load(Ordering::Acquire) {
                self.metrics.snapshot_retries.inc();
                drop(pin);
                continue;
            }
            self.metrics.fastpath_hits.inc();
            let result = f(&snap);
            drop(pin);
            return result;
        }
    }

    /// Walks `snap` from `input_wire` to an output wire.
    fn walk(&self, snap: &ToggleSnapshot<S>, input_wire: usize) -> usize {
        let mut dest = snap.net.input(input_wire);
        let mut depth = 0u64;
        loop {
            match dest {
                Dest::Balancer(b) => {
                    // lint: relaxed-ok(the toggle's own RMW modification order alternates ports regardless of cross-balancer visibility; the step property is only claimed at quiescence)
                    let port = (snap.toggles[b].fetch_add(1, Ordering::Relaxed) % 2) as usize;
                    depth += 1;
                    dest = snap.net.balancer_outputs(b)[port];
                }
                Dest::Output(o) => {
                    self.metrics.balancer_passes.add(depth);
                    self.metrics.traversal_depth.record(depth);
                    return o;
                }
            }
        }
    }

    /// Routes one token entering on `input_wire`, returning the output
    /// wire it exits on (without consuming a counter value).
    ///
    /// # Panics
    ///
    /// Panics if `input_wire >= width`.
    pub fn traverse(&self, input_wire: usize) -> usize {
        assert!(input_wire < self.width, "input wire out of range");
        self.with_pin(|snap| self.walk(snap, input_wire))
    }

    /// Tokens that have exited on each wire so far (a quiescent snapshot
    /// of this vector has the step property). `Acquire` pairs with the
    /// caller's quiescence protocol (thread join or stronger).
    #[must_use]
    pub fn output_counts(&self) -> Vec<u64> {
        self.wire_counts.iter().map(|c| c.load(Ordering::Acquire)).collect()
    }

    /// Hands out the next counter value (round-robin arrival wire).
    /// Exposed inherently so `SyncApi`-generic callers (the model
    /// checker) can use it without importing the [`Counter`] trait.
    pub fn next_value(&self) -> u64 {
        let w = self.width;
        // Spread arrivals across input wires round-robin, as independent
        // clients would.
        // lint: relaxed-ok(wire assignment is load-balancing only; any interleaving of the arrival RMW is equally correct)
        let arrival = self.arrivals.fetch_add(1, Ordering::Relaxed);
        let wire = (arrival % w as u64) as usize;
        self.metrics.tokens.inc();
        let start =
            if self.tracer.should_sample(arrival) { Some(S::monotonic_now()) } else { None };
        // The round claim happens under the pin so a replacement's
        // quiescent point never misses an exited-but-uncounted token.
        let value = self.with_pin(|snap| {
            let out = self.walk(snap, wire);
            // lint: relaxed-ok(the round comes from this wire's own RMW modification order, which alone determines the handed-out value; replacement reads under the gate edge)
            let round = self.wire_counts[out].fetch_add(1, Ordering::Relaxed);
            out as u64 + round * w as u64
        });
        if let Some(start) = start {
            self.tracer.record(
                Span::new("exec.bitonic", arrival)
                    .between(start, S::monotonic_now())
                    .with("wire", wire as u64)
                    .with("value", value),
            );
        }
        value
    }

    /// Replaces the published network with a different counting network
    /// of the same width, *live*: drains pinned tokens at the gate,
    /// seeds the replacement's toggles to the quiescent state implied
    /// by the values already handed out, and publishes the new snapshot
    /// under a bumped epoch. The value stream stays dense across the
    /// swap (no value duplicated or skipped once quiescent).
    ///
    /// # Panics
    ///
    /// Panics if `net`'s width differs, or if `net` is not a counting
    /// network for the already-handed-out total (its quiescent output
    /// flow must reproduce the current step-property counts — true for
    /// any counting network, e.g. `bitonic_network` /
    /// `periodic_network`).
    pub fn replace_network(&self, net: BalancingNetwork) {
        assert_eq!(net.width(), self.width, "replacement must preserve the width");
        let drain = self.gate.write();
        // Under the drain, every token has completed both its walk and
        // its round claim (the pin covers both), so the counts are a
        // quiescent step-property snapshot. The gate write acquisition
        // happens-after the drained pins, so these loads read exactly.
        let counts: Vec<u64> =
            self.wire_counts.iter().map(|c| c.load(Ordering::Acquire)).collect();
        debug_assert!(is_step_sequence(&counts), "quiescent counts must be a step");
        let total: u64 = counts.iter().sum();
        let (toggle_values, outputs) = quiescent_flow(&net, total);
        for (o, &flow) in outputs.iter().enumerate() {
            assert_eq!(
                flow, counts[o],
                "replacement network's quiescent flow must reproduce the \
                 handed-out counts (wire {o}: flow {flow} vs counted {})",
                counts[o]
            );
        }
        let toggles = toggle_values.into_iter().map(S::AtomicU64::new).collect();
        let epoch = self.epoch.load(Ordering::Acquire) + 1;
        self.snapshot.store(Arc::new(ToggleSnapshot { epoch, net, toggles }));
        self.epoch.store(epoch, Ordering::Release);
        drop(drain);
    }
}

impl<S: SyncApi> Counter for AtomicNetworkCounter<S> {
    fn next(&self) -> u64 {
        self.next_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::{bitonic_network, periodic_network};
    use crate::step::is_step_sequence;
    use std::sync::Arc;

    #[test]
    fn concurrent_bitonic_values_are_distinct_and_dense() {
        let counter = Arc::new(AtomicNetworkCounter::new(bitonic_network(8)));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                (0..250).map(|_| c.next()).collect::<Vec<u64>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker panicked"))
            .collect();
        all.sort_unstable();
        // 2000 distinct values, forming exactly 0..2000: counting networks
        // never skip or duplicate.
        assert_eq!(all, (0..2000u64).collect::<Vec<u64>>());
    }

    #[test]
    fn quiescent_output_counts_have_step_property() {
        for net in [bitonic_network(8), periodic_network(8)] {
            let counter = Arc::new(AtomicNetworkCounter::new(net));
            let mut handles = Vec::new();
            for _ in 0..4 {
                let c = Arc::clone(&counter);
                handles.push(std::thread::spawn(move || {
                    for _ in 0..333 {
                        let _ = c.next();
                    }
                }));
            }
            for h in handles {
                h.join().expect("worker panicked");
            }
            let counts = counter.output_counts();
            assert!(is_step_sequence(&counts), "{counts:?}");
            assert_eq!(counts.iter().sum::<u64>(), 4 * 333);
        }
    }

    #[test]
    fn telemetry_counts_balancer_passes_per_token() {
        let registry = Registry::new();
        let mut counter = AtomicNetworkCounter::new(bitonic_network(4));
        counter.attach_telemetry(&registry);
        for _ in 0..12 {
            let _ = counter.next();
        }
        let snap = registry.snapshot();
        assert_eq!(snap.counter("acn.bitonic.tokens"), Some(12));
        let depth = snap.histogram("acn.bitonic.traversal_depth").expect("depth histogram");
        // Bitonic[4] has depth 3: every token crosses exactly 3 balancers.
        assert_eq!(depth.count, 12);
        assert_eq!(depth.sum, 36);
        assert_eq!(snap.counter("acn.bitonic.balancer_passes"), Some(36));
        // Every token completed on a validated pin; nothing raced.
        assert_eq!(snap.counter("acn.bitonic.fastpath_hits"), Some(12));
        assert_eq!(snap.counter("acn.bitonic.snapshot_retries"), Some(0));
    }

    #[test]
    fn traverse_does_not_consume_values() {
        let counter = AtomicNetworkCounter::new(bitonic_network(4));
        let w1 = counter.traverse(0);
        let w2 = counter.traverse(1);
        assert!(w1 < 4 && w2 < 4);
        // Output counters are untouched by traversal.
        assert_eq!(counter.output_counts(), vec![0; 4]);
        // The first real value is the exit wire with round 0.
        let v = counter.next();
        assert!(v < 4, "first value must be in round 0, got {v}");
    }

    #[test]
    fn replace_network_keeps_values_dense() {
        // Sequentially: bitonic -> periodic swaps at awkward offsets
        // must never duplicate or skip a value.
        let counter = AtomicNetworkCounter::new(bitonic_network(8));
        let mut seen: Vec<u64> = (0..13).map(|_| counter.next()).collect();
        counter.replace_network(periodic_network(8));
        seen.extend((0..9).map(|_| counter.next()));
        counter.replace_network(bitonic_network(8));
        seen.extend((0..10).map(|_| counter.next()));
        seen.sort_unstable();
        assert_eq!(seen, (0..32u64).collect::<Vec<u64>>());
        assert!(is_step_sequence(&counter.output_counts()));
    }

    #[test]
    fn replace_network_under_concurrent_traffic() {
        let counter = Arc::new(AtomicNetworkCounter::new(bitonic_network(8)));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                (0..200).map(|_| c.next()).collect::<Vec<u64>>()
            }));
        }
        // Swap back and forth while traffic flows.
        for _ in 0..10 {
            counter.replace_network(periodic_network(8));
            counter.replace_network(bitonic_network(8));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker panicked"))
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..800u64).collect::<Vec<u64>>());
        assert!(is_step_sequence(&counter.output_counts()));
    }

    #[test]
    fn quiescent_flow_matches_simulation() {
        // Flow-seeding must agree with actually pushing T round-robin
        // tokens through a fresh counter.
        for total in [0u64, 1, 5, 8, 13, 24] {
            let net = bitonic_network(8);
            let fresh = AtomicNetworkCounter::new(net.clone());
            for _ in 0..total {
                let _ = fresh.next();
            }
            let (_, outputs) = quiescent_flow(&net, total);
            assert_eq!(outputs, fresh.output_counts(), "total={total}");
        }
    }

    #[test]
    #[should_panic(expected = "replacement must preserve the width")]
    fn replace_network_rejects_width_change() {
        let counter = AtomicNetworkCounter::new(bitonic_network(8));
        counter.replace_network(bitonic_network(4));
    }

    #[test]
    fn send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AtomicNetworkCounter>();
    }
}
