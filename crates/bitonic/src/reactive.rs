//! A reactive counting tree, after Della-Libera–Shavit's *reactive
//! diffracting trees* \[DLS00\] (paper Section 1.3).
//!
//! The related work the paper positions against: a shared-memory toggle
//! tree whose *size* reacts to load — subtrees **fold** into a single
//! counter when traffic is light (less latency) and **unfold** when
//! traffic is heavy (less contention). This implementation captures the
//! fold/unfold semantics with exact value-preserving state transfer, the
//! same discipline as the adaptive network's split/merge:
//!
//! - a folded node emulates its subtree *in toggle order*. With the
//!   usual bit-reversed leaf-value assignment (cf. [`TreeCounter`]) the
//!   values a subtree at position `lo` controls form the arithmetic
//!   progression `bitrev(lo) + j * (L/span)`, and the toggle order walks
//!   it in sequence — so a folded node is simply
//!   `value(k) = bitrev(lo) + (k mod span) * (L/span) + L * (k/span)`.
//!   In particular the fully folded root is a plain `0, 1, 2, ...`
//!   counter;
//! - **unfold** splits the counter exactly: the left child gets
//!   `ceil(k/2)`, the right `floor(k/2)`, and the toggle resumes at
//!   parity `k mod 2`;
//! - **fold** sums the children. Because the folded enumeration matches
//!   the toggle order, *every* reachable state is an exact fold/unfold
//!   image — no settledness gate is needed (unlike the counting
//!   network's merge, where in-flight tokens force the owed-multiset
//!   machinery).
//!
//! The *diffraction* (prism) machinery of \[SZ96\]/\[DLS00\] is a
//! shared-memory contention optimization orthogonal to the values handed
//! out; it is not modelled (same note as [`TreeCounter`]).
//!
//! [`TreeCounter`]: crate::TreeCounter

use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::baselines::Counter;

/// A node of the reactive tree.
#[derive(Debug)]
enum Node {
    /// A folded subtree acting as one counter over its leaf range.
    Folded {
        /// Emissions so far.
        count: AtomicU64,
    },
    /// An active toggle routing tokens to the two children.
    Active {
        toggle: AtomicU64,
        left: Box<Node>,
        right: Box<Node>,
        /// Visits since the last adaptation decision (load signal).
        visits: AtomicU64,
    },
}

/// A reactive counting tree with up to `2^max_depth` leaves.
///
/// # Example
///
/// ```
/// use acn_bitonic::{Counter, ReactiveTreeCounter};
///
/// let tree = ReactiveTreeCounter::new(3); // up to 8 leaves
/// assert_eq!(tree.next(), 0);
/// assert_eq!(tree.next(), 1);
/// tree.unfold_root();
/// // Values keep flowing densely after the reconfiguration.
/// let mut got: Vec<u64> = (0..6).map(|_| tree.next()).collect();
/// got.sort();
/// assert_eq!(got, vec![2, 3, 4, 5, 6, 7]);
/// ```
#[derive(Debug)]
pub struct ReactiveTreeCounter {
    root: RwLock<Node>,
    /// Total leaves of the *fully unfolded* tree (the modulus `L`).
    leaves: u64,
}

impl ReactiveTreeCounter {
    /// A tree with up to `2^max_depth` leaves, starting fully folded
    /// (one counter).
    ///
    /// # Panics
    ///
    /// Panics if `max_depth > 20`.
    #[must_use]
    pub fn new(max_depth: u32) -> Self {
        assert!(max_depth <= 20, "tree too deep");
        ReactiveTreeCounter {
            root: RwLock::new(Node::Folded { count: AtomicU64::new(0) }),
            leaves: 1 << max_depth,
        }
    }

    /// The modulus `L` (leaves of the fully unfolded tree).
    #[must_use]
    pub fn width(&self) -> u64 {
        self.leaves
    }

    /// Number of folded counters currently active (1 = fully folded).
    #[must_use]
    pub fn active_counters(&self) -> usize {
        fn count(node: &Node) -> usize {
            match node {
                Node::Folded { .. } => 1,
                Node::Active { left, right, .. } => count(left) + count(right),
            }
        }
        count(&self.root.read())
    }

    /// Unfolds the root (doubling available parallelism at the top).
    /// No-op if already active or at maximum depth.
    pub fn unfold_root(&self) {
        let mut root = self.root.write();
        Self::unfold_node(&mut root, self.leaves);
    }

    /// Folds the whole tree back into a single counter.
    pub fn fold_root(&self) {
        let mut root = self.root.write();
        let total = Self::fold_node(&root);
        *root = Node::Folded { count: AtomicU64::new(total) };
    }

    /// One adaptation round: every active toggle with fewer than
    /// `fold_below` visits since the last round folds; every folded
    /// counter with more than `unfold_above` visits unfolds (visits are
    /// approximated by emission deltas). Returns (folds, unfolds).
    pub fn adapt(&self, fold_below: u64, unfold_above: u64) -> (usize, usize) {
        let mut root = self.root.write();
        let leaves = self.leaves;
        fn walk(
            node: &mut Node,
            span: u64,
            fold_below: u64,
            unfold_above: u64,
            folds: &mut usize,
            unfolds: &mut usize,
        ) {
            match node {
                Node::Folded { count } => {
                    // Unfold hot counters (visit proxy: emissions since
                    // creation — adequate for a load experiment).
                    // lint: relaxed-ok(heuristic hotness probe under the adaptation lock; staleness only delays unfolding)
                    if span > 1 && count.load(Ordering::Relaxed) >= unfold_above {
                        ReactiveTreeCounter::unfold_node(node, span);
                        *unfolds += 1;
                    }
                }
                Node::Active { visits, left, right, .. } => {
                    // lint: relaxed-ok(visit-rate sample under the adaptation lock; a lost concurrent visit only skews the fold heuristic)
                    let v = visits.swap(0, Ordering::Relaxed);
                    if v < fold_below {
                        let total = ReactiveTreeCounter::fold_node(node);
                        *node = Node::Folded { count: AtomicU64::new(total) };
                        *folds += 1;
                    } else {
                        walk(left, span / 2, fold_below, unfold_above, folds, unfolds);
                        walk(right, span / 2, fold_below, unfold_above, folds, unfolds);
                    }
                }
            }
        }
        let (mut folds, mut unfolds) = (0, 0);
        walk(&mut root, leaves, fold_below, unfold_above, &mut folds, &mut unfolds);
        (folds, unfolds)
    }

    /// Unfolds a folded node in place (exact value-preserving transfer):
    /// in toggle order the left child received every even-indexed
    /// emission so far, the right every odd-indexed one.
    fn unfold_node(node: &mut Node, span: u64) {
        let Node::Folded { count } = node else { return };
        if span < 2 {
            return; // single leaves cannot unfold
        }
        // lint: relaxed-ok(called with the structure write lock held, so the folded count is quiescent)
        let k = count.load(Ordering::Relaxed);
        let k_left = k - k / 2;
        let k_right = k / 2;
        *node = Node::Active {
            toggle: AtomicU64::new(k % 2),
            left: Box::new(Node::Folded { count: AtomicU64::new(k_left) }),
            right: Box::new(Node::Folded { count: AtomicU64::new(k_right) }),
            visits: AtomicU64::new(0),
        };
    }

    /// Total emissions of a subtree (the folded counter value).
    fn fold_node(node: &Node) -> u64 {
        match node {
            // lint: relaxed-ok(called with the structure write lock held, so the folded count is quiescent)
            Node::Folded { count } => count.load(Ordering::Relaxed),
            Node::Active { left, right, .. } => {
                Self::fold_node(left) + Self::fold_node(right)
            }
        }
    }

    /// Routes one token and returns its counter value.
    fn descend(&self, leaves: u64) -> u64 {
        let root = self.root.read();
        let mut node: &Node = &root;
        let mut span = leaves;
        let mut lo = 0u64;
        loop {
            match node {
                Node::Folded { count } => {
                    // lint: relaxed-ok(folded-leaf emission counter; the per-cell modification order alone keeps emitted values distinct)
                    let k = count.fetch_add(1, Ordering::Relaxed);
                    let base = bitrev(lo, leaves);
                    let stride = leaves / span;
                    return base + (k % span) * stride + leaves * (k / span);
                }
                Node::Active { toggle, left, right, visits } => {
                    // lint: relaxed-ok(hotness statistic; losing ordering against the toggle below only perturbs the heuristic)
                    visits.fetch_add(1, Ordering::Relaxed);
                    // lint: relaxed-ok(toggle parity is location-local, same argument as the static toggle tree)
                    let bit = toggle.fetch_add(1, Ordering::Relaxed) % 2;
                    span /= 2;
                    if bit == 0 {
                        node = left;
                    } else {
                        lo += span;
                        node = right;
                    }
                }
            }
        }
    }
}

/// Reverses the low `log2(span)` bits of `v` (the toggle-tree visiting
/// order within a subtree of `span` leaves).
fn bitrev(v: u64, span: u64) -> u64 {
    let bits = span.trailing_zeros();
    if bits == 0 {
        return 0;
    }
    v.reverse_bits() >> (64 - bits)
}

impl Counter for ReactiveTreeCounter {
    fn next(&self) -> u64 {
        self.descend(self.leaves)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn folded_tree_is_a_plain_counter() {
        let tree = ReactiveTreeCounter::new(4);
        let got: Vec<u64> = (0..20).map(|_| tree.next()).collect();
        assert_eq!(got, (0..20).collect::<Vec<u64>>());
        assert_eq!(tree.active_counters(), 1);
        // Any fold state matches what the eager TreeCounter hands out.
        let reference = crate::TreeCounter::new(16);
        let tree2 = ReactiveTreeCounter::new(4);
        tree2.unfold_root();
        for _ in 0..40 {
            assert_eq!(tree2.next(), reference.next());
        }
    }

    #[test]
    fn unfold_preserves_value_stream() {
        for warmup in 0..20u64 {
            let tree = ReactiveTreeCounter::new(3);
            let mut seen: Vec<u64> = (0..warmup).map(|_| tree.next()).collect();
            tree.unfold_root();
            assert_eq!(tree.active_counters(), 2);
            for _ in 0..24 {
                seen.push(tree.next());
            }
            seen.sort_unstable();
            assert_eq!(
                seen,
                (0..warmup + 24).collect::<Vec<u64>>(),
                "warmup {warmup}: duplicated or skipped values"
            );
        }
    }

    #[test]
    fn fold_preserves_value_stream() {
        for warmup in 0..20u64 {
            let tree = ReactiveTreeCounter::new(3);
            tree.unfold_root();
            tree.unfold_root(); // idempotent on an active root
            let mut seen: Vec<u64> = (0..warmup).map(|_| tree.next()).collect();
            tree.fold_root();
            assert_eq!(tree.active_counters(), 1);
            for _ in 0..24 {
                seen.push(tree.next());
            }
            seen.sort_unstable();
            assert_eq!(seen, (0..warmup + 24).collect::<Vec<u64>>(), "warmup {warmup}");
        }
    }

    #[test]
    fn deep_reconfiguration_storm_keeps_values_dense() {
        let tree = ReactiveTreeCounter::new(4);
        let mut seen = Vec::new();
        let mut state = 0x5EEDu64;
        let mut rng = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };
        for _ in 0..300 {
            match rng() % 5 {
                0 => tree.unfold_root(),
                1 => tree.fold_root(),
                2 => {
                    let _ = tree.adapt(1, 4);
                }
                _ => seen.push(tree.next()),
            }
        }
        let n = seen.len() as u64;
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len() as u64, n, "duplicates under reconfiguration");
        // Values are dense: the set is exactly 0..n.
        assert_eq!(seen, (0..n).collect::<Vec<u64>>());
    }

    #[test]
    fn adapt_unfolds_under_load_and_folds_when_idle() {
        let tree = ReactiveTreeCounter::new(4);
        for _ in 0..100 {
            let _ = tree.next();
        }
        let (_, unfolds) = tree.adapt(0, 50);
        assert!(unfolds >= 1, "hot counter did not unfold");
        assert!(tree.active_counters() > 1);
        // Idle: everything folds back.
        let (folds, _) = tree.adapt(u64::MAX, u64::MAX);
        assert!(folds >= 1, "idle tree did not fold");
        assert_eq!(tree.active_counters(), 1);
        // Still dense afterwards.
        let v = tree.next();
        assert_eq!(v, 100);
    }

    #[test]
    fn concurrent_values_distinct_across_reconfigurations() {
        let tree = Arc::new(ReactiveTreeCounter::new(4));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let tree = Arc::clone(&tree);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                // lint: relaxed-ok(test stop flag; the joining thread synchronizes via JoinHandle::join)
                while !stop.load(Ordering::Relaxed) {
                    got.push(tree.next());
                }
                got
            }));
        }
        for _ in 0..50 {
            tree.unfold_root();
            std::thread::yield_now();
            tree.fold_root();
        }
        // lint: relaxed-ok(test stop flag; join() below provides the needed happens-before)
        stop.store(true, Ordering::Relaxed);
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker panicked"))
            .collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "duplicate values under concurrent reconfiguration");
    }
}
