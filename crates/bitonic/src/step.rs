//! The step property and counting-network verification harnesses.
//!
//! A balancing network of width `w` *counts* if in every quiescent state
//! the per-output-wire token counts `x_0, ..., x_{w-1}` satisfy
//! `0 <= x_i - x_j <= 1` for every `i < j` (paper Section 1.1). The
//! harnesses here drive a [`BalancingNetwork`] with sequential or
//! adversarially interleaved token schedules and check that invariant in
//! every quiescent state.

use crate::network::{BalancingNetwork, Dest, NetworkState};

/// Whether `counts` has the step property:
/// `0 <= counts[i] - counts[j] <= 1` for all `i < j`.
///
/// Delegates to the shared oracle in [`acn_topology::oracle`] so every
/// verification layer (these harnesses, the `acn-check` model checker,
/// the workspace property tests) asserts exactly the same predicate.
///
/// # Example
///
/// ```
/// use acn_bitonic::step::is_step_sequence;
///
/// assert!(is_step_sequence(&[3, 3, 2, 2]));
/// assert!(!is_step_sequence(&[2, 3, 2, 2])); // not non-increasing
/// assert!(!is_step_sequence(&[4, 2, 2, 2])); // gap of 2
/// ```
#[must_use]
pub fn is_step_sequence(counts: &[u64]) -> bool {
    acn_topology::oracle::is_step_sequence(counts)
}

/// The unique step sequence of width `w` summing to `total`:
/// `ceil((total - i) / w)` tokens on wire `i`.
///
/// Delegates to the shared oracle in [`acn_topology::oracle`].
#[must_use]
pub fn step_sequence(width: usize, total: u64) -> Vec<u64> {
    acn_topology::oracle::step_sequence(width, total)
}

/// Result of a verification run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Verdict {
    /// Whether every checked quiescent state had the step property.
    pub counts: bool,
    /// Number of quiescent states checked.
    pub states_checked: usize,
    /// Output counts of the final quiescent state.
    pub final_outputs: Vec<u64>,
}

/// Feeds `batches` of tokens sequentially (tokens fully traverse one at a
/// time), drawing input wires from `input_of`, and checks the step
/// property after every token (every state is quiescent in a sequential
/// run).
pub fn verify_sequential(
    net: &BalancingNetwork,
    tokens: usize,
    mut input_of: impl FnMut(usize) -> usize,
) -> Verdict {
    let mut state = NetworkState::new(net);
    let mut outputs = vec![0u64; net.width()];
    let mut ok = true;
    for t in 0..tokens {
        let out = net.route(&mut state, input_of(t) % net.width());
        outputs[out] += 1;
        ok &= is_step_sequence(&outputs);
    }
    Verdict { counts: ok, states_checked: tokens, final_outputs: outputs }
}

/// Drives `tokens` tokens through the network with an adversarial
/// interleaving: at every step, `pick` chooses which in-flight token
/// advances by one balancer (given the number of active tokens). Tokens
/// are injected eagerly; the step property is checked in the final
/// quiescent state and at every intermediate quiescent state that happens
/// to arise.
///
/// This models an asynchronous execution exactly: balancer traversals are
/// atomic, and any interleaving of them is a legal schedule.
pub fn verify_interleaved(
    net: &BalancingNetwork,
    tokens: usize,
    mut input_of: impl FnMut(usize) -> usize,
    mut pick: impl FnMut(usize) -> usize,
) -> Verdict {
    let mut state = NetworkState::new(net);
    let mut outputs = vec![0u64; net.width()];
    // Position of each in-flight token.
    let mut active: Vec<Dest> = (0..tokens)
        .map(|t| net.input(input_of(t) % net.width()))
        .collect();
    let mut ok = true;
    let mut states_checked = 0;
    // Immediately-exiting tokens (width-0 paths) resolve first.
    loop {
        // Retire tokens that have reached outputs.
        let mut i = 0;
        while i < active.len() {
            if let Dest::Output(o) = active[i] {
                outputs[o] += 1;
                active.swap_remove(i);
            } else {
                i += 1;
            }
        }
        if active.is_empty() {
            // Quiescent state: every injected token has exited.
            states_checked += 1;
            ok &= is_step_sequence(&outputs);
            break;
        }
        let chosen = pick(active.len()) % active.len();
        active[chosen] = net.step_token(&mut state, active[chosen]);
    }
    Verdict { counts: ok, states_checked, final_outputs: outputs }
}

/// Drives the network through `rounds` rounds; each round injects a batch
/// of tokens (size chosen by `batch_size`) on wires chosen by `input_of`,
/// interleaves them via `pick`, waits for quiescence, and checks the step
/// property. Cumulative counts persist across rounds, so this checks the
/// quiescent step property of long mixed executions.
pub fn verify_rounds(
    net: &BalancingNetwork,
    rounds: usize,
    mut batch_size: impl FnMut(usize) -> usize,
    mut input_of: impl FnMut(usize) -> usize,
    mut pick: impl FnMut(usize) -> usize,
) -> Verdict {
    let mut state = NetworkState::new(net);
    let mut outputs = vec![0u64; net.width()];
    let mut ok = true;
    let mut injected = 0usize;
    for r in 0..rounds {
        let batch = batch_size(r).max(1);
        let mut active: Vec<Dest> = (0..batch)
            .map(|_| {
                let wire = input_of(injected) % net.width();
                injected += 1;
                net.input(wire)
            })
            .collect();
        while !active.is_empty() {
            let mut i = 0;
            while i < active.len() {
                if let Dest::Output(o) = active[i] {
                    outputs[o] += 1;
                    active.swap_remove(i);
                } else {
                    i += 1;
                }
            }
            if active.is_empty() {
                break;
            }
            let chosen = pick(active.len()) % active.len();
            active[chosen] = net.step_token(&mut state, active[chosen]);
        }
        ok &= is_step_sequence(&outputs);
    }
    Verdict { counts: ok, states_checked: rounds, final_outputs: outputs }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_sequence_detection() {
        assert!(is_step_sequence(&[]));
        assert!(is_step_sequence(&[5]));
        assert!(is_step_sequence(&[2, 2, 2]));
        assert!(is_step_sequence(&[3, 2, 2]));
        assert!(is_step_sequence(&[3, 3, 2]));
        assert!(!is_step_sequence(&[2, 3, 3]));
        assert!(!is_step_sequence(&[4, 3, 2]));
        assert!(!is_step_sequence(&[3, 1, 1]));
    }

    #[test]
    fn step_sequence_construction_matches_checker() {
        for width in 1..=8 {
            for total in 0..40u64 {
                let s = step_sequence(width, total);
                assert!(is_step_sequence(&s), "w={width} t={total}: {s:?}");
                assert_eq!(s.iter().sum::<u64>(), total);
            }
        }
    }

    #[test]
    fn single_balancer_verifies() {
        let net = BalancingNetwork::new(
            2,
            vec![Dest::Balancer(0), Dest::Balancer(0)],
            vec![[Dest::Output(0), Dest::Output(1)]],
        );
        let v = verify_sequential(&net, 100, |t| t % 2);
        assert!(v.counts);
        assert_eq!(v.final_outputs, [50, 50]);
        let v = verify_interleaved(&net, 101, |t| t, |n| n / 2);
        assert!(v.counts);
        assert_eq!(v.final_outputs, [51, 50]);
    }

    #[test]
    fn non_counting_network_is_rejected() {
        // Two parallel wires through independent balancers do NOT count:
        // feeding two tokens into wire 0 yields counts [1, 1, 0, 0]
        // overall but [2, 0] on the top pair if fed only there... build a
        // width-4 "network" of two disjoint balancers and feed only the
        // top one.
        let net = BalancingNetwork::new(
            4,
            vec![
                Dest::Balancer(0),
                Dest::Balancer(0),
                Dest::Balancer(1),
                Dest::Balancer(1),
            ],
            vec![
                [Dest::Output(0), Dest::Output(1)],
                [Dest::Output(2), Dest::Output(3)],
            ],
        );
        let v = verify_sequential(&net, 4, |_| 0);
        assert!(!v.counts, "disjoint balancers must fail the step property");
    }
}
