//! Generic balancing networks of 2×2 balancers.

use std::fmt;

/// Destination of a wire inside a [`BalancingNetwork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dest {
    /// The wire enters the balancer with this index. (Balancers are
    /// oblivious to which of their two input wires a token arrives on, so
    /// no input-port index is needed.)
    Balancer(usize),
    /// The wire is a network output with this index.
    Output(usize),
}

/// An immutable description of an acyclic balancing network: `width` input
/// wires, `width` output wires, and a set of balancers whose two output
/// wires lead to other balancers or to network outputs.
///
/// The mutable toggle state lives separately in [`NetworkState`] so one
/// network description can drive many executions. (`Hash`/`Eq` exist so
/// the description can live inside checker-fingerprintable snapshot
/// payloads — see `acn_sync::SyncSnapshot`.)
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BalancingNetwork {
    width: usize,
    inputs: Vec<Dest>,
    /// `balancers[b]` = destinations of the two output wires (top, bottom).
    balancers: Vec<[Dest; 2]>,
}

impl BalancingNetwork {
    /// Builds a network from raw parts.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != width`, if any referenced balancer or
    /// output index is out of range, or if the network is cyclic or does
    /// not produce every output wire exactly once.
    #[must_use]
    pub fn new(width: usize, inputs: Vec<Dest>, balancers: Vec<[Dest; 2]>) -> Self {
        assert_eq!(inputs.len(), width, "need one destination per input wire");
        let net = BalancingNetwork { width, inputs, balancers };
        net.validate();
        net
    }

    fn validate(&self) {
        let mut output_seen = vec![false; self.width];
        let mut check = |d: &Dest| match *d {
            Dest::Balancer(b) => {
                assert!(b < self.balancers.len(), "balancer index {b} out of range");
            }
            Dest::Output(o) => {
                assert!(o < self.width, "output index {o} out of range");
                assert!(!output_seen[o], "output wire {o} produced twice");
                output_seen[o] = true;
            }
        };
        for d in &self.inputs {
            check(d);
        }
        for b in &self.balancers {
            check(&b[0]);
            check(&b[1]);
        }
        assert!(
            output_seen.iter().all(|&s| s),
            "some output wire is never produced"
        );
        // Acyclicity: depth computation performs a topological check.
        let _ = self.depth();
    }

    /// The number of input (and output) wires.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// The number of balancers.
    #[must_use]
    pub fn balancer_count(&self) -> usize {
        self.balancers.len()
    }

    /// The destinations of balancer `b`'s two output wires.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    #[must_use]
    pub fn balancer_outputs(&self, b: usize) -> [Dest; 2] {
        self.balancers[b]
    }

    /// The destination of input wire `wire`.
    ///
    /// # Panics
    ///
    /// Panics if `wire >= width`.
    #[must_use]
    pub fn input(&self, wire: usize) -> Dest {
        self.inputs[wire]
    }

    /// The depth of the network: the maximum number of balancers a token
    /// traverses from an input wire to an output wire.
    ///
    /// # Panics
    ///
    /// Panics if the network is cyclic.
    #[must_use]
    pub fn depth(&self) -> usize {
        // Longest path over balancers, memoized; recursion depth equals
        // network depth (O(log^2 w)), so plain recursion is fine.
        fn longest(
            balancers: &[[Dest; 2]],
            memo: &mut [Option<usize>],
            visiting: &mut [bool],
            b: usize,
        ) -> usize {
            if let Some(v) = memo[b] {
                return v;
            }
            assert!(!visiting[b], "balancing network contains a cycle");
            visiting[b] = true;
            let mut best = 0;
            for d in balancers[b] {
                if let Dest::Balancer(next) = d {
                    best = best.max(longest(balancers, memo, visiting, next));
                }
            }
            visiting[b] = false;
            memo[b] = Some(best + 1);
            best + 1
        }
        let mut memo = vec![None; self.balancers.len()];
        let mut visiting = vec![false; self.balancers.len()];
        self.inputs
            .iter()
            .map(|d| match *d {
                Dest::Balancer(b) => {
                    longest(&self.balancers, &mut memo, &mut visiting, b)
                }
                Dest::Output(_) => 0,
            })
            .max()
            .unwrap_or(0)
    }

    /// Routes one token sequentially from `input_wire` to an output wire,
    /// updating toggles in `state`.
    ///
    /// # Panics
    ///
    /// Panics if `input_wire >= width` or `state` was created for a
    /// different network shape.
    #[must_use]
    pub fn route(&self, state: &mut NetworkState, input_wire: usize) -> usize {
        let mut dest = self.inputs[input_wire];
        loop {
            match dest {
                Dest::Balancer(b) => dest = self.balancers[b][state.toggle(b)],
                Dest::Output(o) => return o,
            }
        }
    }

    /// Advances a token that is currently at `dest` by **one balancer
    /// step** (the granularity at which asynchronous executions
    /// interleave). Returns the new position.
    ///
    /// # Panics
    ///
    /// Panics if `state` does not match this network.
    #[must_use]
    pub fn step_token(&self, state: &mut NetworkState, dest: Dest) -> Dest {
        match dest {
            Dest::Balancer(b) => self.balancers[b][state.toggle(b)],
            Dest::Output(_) => dest,
        }
    }
}

impl fmt::Display for BalancingNetwork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BalancingNetwork(width={}, balancers={}, depth={})",
            self.width,
            self.balancer_count(),
            self.depth()
        )
    }
}

/// The mutable per-execution state of a [`BalancingNetwork`]: one token
/// counter per balancer. The counter's parity is the classical toggle; the
/// full count is retained for diagnostics and self-stabilization tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkState {
    counts: Vec<u64>,
}

impl NetworkState {
    /// Fresh state (all toggles up) for `net`.
    #[must_use]
    pub fn new(net: &BalancingNetwork) -> Self {
        NetworkState { counts: vec![0; net.balancer_count()] }
    }

    /// Passes a token through balancer `b`: returns the output port (0 =
    /// top for even visits) and increments the count.
    fn toggle(&mut self, b: usize) -> usize {
        let port = (self.counts[b] % 2) as usize;
        self.counts[b] += 1;
        port
    }

    /// Tokens that have passed through balancer `b` so far.
    #[must_use]
    pub fn count(&self, b: usize) -> u64 {
        self.counts[b]
    }

    /// Overwrites the token count of balancer `b` (used by
    /// fault-injection and self-stabilization tests).
    pub fn set_count(&mut self, b: usize, count: u64) {
        self.counts[b] = count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A single balancer as a width-2 network.
    fn single_balancer() -> BalancingNetwork {
        BalancingNetwork::new(
            2,
            vec![Dest::Balancer(0), Dest::Balancer(0)],
            vec![[Dest::Output(0), Dest::Output(1)]],
        )
    }

    #[test]
    fn balancer_alternates_outputs() {
        let net = single_balancer();
        let mut state = NetworkState::new(&net);
        let outs: Vec<usize> = (0..6).map(|i| net.route(&mut state, i % 2)).collect();
        assert_eq!(outs, [0, 1, 0, 1, 0, 1]);
        assert_eq!(state.count(0), 6);
    }

    #[test]
    fn depth_of_single_balancer_is_one() {
        assert_eq!(single_balancer().depth(), 1);
    }

    #[test]
    #[should_panic(expected = "never produced")]
    fn validation_rejects_missing_output() {
        // Output wire 1 is never produced (the stray wires form a loop,
        // but the missing-output check fires first).
        let _ = BalancingNetwork::new(
            2,
            vec![Dest::Balancer(0), Dest::Balancer(0)],
            vec![
                [Dest::Output(0), Dest::Balancer(1)],
                [Dest::Balancer(0), Dest::Balancer(0)],
            ],
        );
    }

    #[test]
    #[should_panic(expected = "produced twice")]
    fn validation_rejects_duplicate_output() {
        let _ = BalancingNetwork::new(
            2,
            vec![Dest::Output(0), Dest::Output(0)],
            vec![],
        );
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn validation_rejects_cycles() {
        let _ = BalancingNetwork::new(
            2,
            vec![Dest::Balancer(0), Dest::Output(1)],
            vec![[Dest::Balancer(0), Dest::Output(0)]],
        );
    }

    #[test]
    fn step_token_matches_route() {
        let net = single_balancer();
        let mut s1 = NetworkState::new(&net);
        let mut s2 = NetworkState::new(&net);
        for i in 0..5 {
            let direct = net.route(&mut s1, i % 2);
            let mut pos = net.input(i % 2);
            while let Dest::Balancer(_) = pos {
                pos = net.step_token(&mut s2, pos);
            }
            assert_eq!(pos, Dest::Output(direct));
        }
    }

    #[test]
    fn two_layer_network_routes() {
        // Two balancers in sequence on two wires: still a counting network.
        let net = BalancingNetwork::new(
            2,
            vec![Dest::Balancer(0), Dest::Balancer(0)],
            vec![
                [Dest::Balancer(1), Dest::Balancer(1)],
                [Dest::Output(0), Dest::Output(1)],
            ],
        );
        assert_eq!(net.depth(), 2);
        let mut state = NetworkState::new(&net);
        let outs: Vec<usize> = (0..4).map(|_| net.route(&mut state, 0)).collect();
        assert_eq!(outs, [0, 1, 0, 1]);
    }
}
