//! Static balancer-level counting networks and baseline counters.
//!
//! This crate provides the classical, *fixed-width* data structures that
//! the adaptive construction of Tirthapura (ICDCS 2005) builds upon and is
//! compared against:
//!
//! - [`BalancingNetwork`] — a generic acyclic network of 2×2 balancers
//!   with sequential, adversarially-interleaved, and lock-free concurrent
//!   execution engines;
//! - [`bitonic_network`] — the Aspnes–Herlihy–Shavit `BITONIC[w]` counting
//!   network (isomorphic to Batcher's bitonic sorting network);
//! - [`periodic_network`] — the `PERIODIC[w]` network of
//!   Dowd–Perl–Rudolph–Saks;
//! - [`step`] — the step property (the defining invariant of counting
//!   networks) and checking harnesses;
//! - [`TreeCounter`] and [`CentralCounter`] — the baseline synchronization
//!   structures used in the paper's related-work comparison (diffracting
//!   trees, centralized counting).
//!
//! # Example
//!
//! ```
//! use acn_bitonic::{bitonic_network, NetworkState};
//!
//! let net = bitonic_network(8);
//! let mut state = NetworkState::new(&net);
//! // Feed 20 tokens into arbitrary input wires; outputs are round-robin.
//! let mut outputs = vec![0u64; 8];
//! for i in 0..20 {
//!     let out = net.route(&mut state, i % 3);
//!     outputs[out] += 1;
//! }
//! assert!(acn_bitonic::step::is_step_sequence(&outputs));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod baselines;
mod concurrent;
mod construct;
mod network;
mod reactive;
pub mod step;

pub use baselines::{CentralCounter, Counter, TreeCounter};
pub use reactive::ReactiveTreeCounter;
pub use concurrent::AtomicNetworkCounter;
pub use construct::{bitonic_network, from_cut_wiring, periodic_network};
pub use network::{BalancingNetwork, Dest, NetworkState};
