//! Baseline shared counters: centralized counter and counting tree.
//!
//! These are the structures the paper's related-work section compares
//! against (Section 1.3): a single centralized counter (maximal
//! contention, minimal latency) and the balancer-tree counters that
//! diffracting trees \[SZ96\] optimize.

use std::sync::atomic::{AtomicU64, Ordering};

/// A source of consecutive counter values. All implementations are
/// linearizable or (for network-based counters) satisfy the quiescent
/// step property on the values handed out.
pub trait Counter: Send + Sync {
    /// Fetches the next counter value.
    fn next(&self) -> u64;
}

/// The trivial centralized counter: a single atomic fetch-and-increment.
///
/// # Example
///
/// ```
/// use acn_bitonic::{CentralCounter, Counter};
///
/// let c = CentralCounter::new();
/// assert_eq!(c.next(), 0);
/// assert_eq!(c.next(), 1);
/// ```
#[derive(Debug, Default)]
pub struct CentralCounter {
    value: AtomicU64,
}

impl CentralCounter {
    /// A counter starting at zero.
    #[must_use]
    pub fn new() -> Self {
        CentralCounter { value: AtomicU64::new(0) }
    }
}

impl Counter for CentralCounter {
    fn next(&self) -> u64 {
        // lint: relaxed-ok(single fetch_add cell; values come from one modification order, no cross-location ordering needed)
        self.value.fetch_add(1, Ordering::Relaxed)
    }
}

/// A counting tree in the style of diffracting trees \[SZ96\]: a complete
/// binary tree of toggle balancers routes each token to one of `L`
/// leaves, and leaf `i` hands out the values `i, i + L, i + 2L, ...`.
///
/// The toggles are atomic fetch-and-increment parities, which makes the
/// structure lock-free. (The *prism* arrays of \[SZ96\], which pair up
/// concurrent tokens to bypass the root toggle, are a shared-memory
/// contention optimization; this implementation models the tree itself,
/// which is what determines the values handed out.)
///
/// # Example
///
/// ```
/// use acn_bitonic::{TreeCounter, Counter};
///
/// let c = TreeCounter::new(4);
/// let mut got: Vec<u64> = (0..8).map(|_| c.next()).collect();
/// got.sort();
/// assert_eq!(got, (0..8).collect::<Vec<u64>>());
/// ```
#[derive(Debug)]
pub struct TreeCounter {
    leaves: usize,
    /// Toggle counters of internal nodes, heap-indexed from 1.
    toggles: Vec<AtomicU64>,
    /// Per-leaf next value: leaf i hands out i + leaves * n.
    leaf_counts: Vec<AtomicU64>,
}

impl TreeCounter {
    /// A counting tree with `leaves` leaves.
    ///
    /// # Panics
    ///
    /// Panics if `leaves` is not a power of two or is zero.
    #[must_use]
    pub fn new(leaves: usize) -> Self {
        assert!(leaves >= 1 && leaves.is_power_of_two(), "leaves must be a power of two");
        TreeCounter {
            leaves,
            toggles: (0..leaves).map(|_| AtomicU64::new(0)).collect(),
            leaf_counts: (0..leaves).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// The number of leaves (the tree's width).
    #[must_use]
    pub fn width(&self) -> usize {
        self.leaves
    }
}

impl Counter for TreeCounter {
    fn next(&self) -> u64 {
        // Walk from the root (heap index 1) to a leaf.
        let mut node = 1usize;
        while node < self.leaves {
            // lint: relaxed-ok(toggle parity only needs the per-toggle modification order; balancer safety is location-local)
            let bit = self.toggles[node].fetch_add(1, Ordering::Relaxed) % 2;
            node = 2 * node + bit as usize;
        }
        // A toggle tree visits its leaves in bit-reversed round-robin
        // order, so the *logical* leaf index (the one that makes handed
        // out values consecutive) is the bit reversal of the heap path.
        let depth = self.leaves.trailing_zeros();
        let heap_leaf = node - self.leaves;
        let leaf = if depth == 0 {
            0
        } else {
            (heap_leaf.reverse_bits() >> (usize::BITS - depth)) & (self.leaves - 1)
        };
        // lint: relaxed-ok(per-leaf round counter; each leaf's modification order alone makes leaf values disjoint)
        let round = self.leaf_counts[leaf].fetch_add(1, Ordering::Relaxed);
        leaf as u64 + round * self.leaves as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;

    #[test]
    fn central_counter_is_sequential() {
        let c = CentralCounter::new();
        let got: Vec<u64> = (0..10).map(|_| c.next()).collect();
        assert_eq!(got, (0..10).collect::<Vec<u64>>());
    }

    #[test]
    fn tree_counter_sequential_values_are_a_permutation_of_a_prefix() {
        for leaves in [1usize, 2, 4, 8, 16] {
            let c = TreeCounter::new(leaves);
            let n = 5 * leaves + 3;
            let got: HashSet<u64> = (0..n).map(|_| c.next()).collect();
            // Sequential use of a counting tree yields exactly 0..n.
            assert_eq!(got, (0..n as u64).collect(), "leaves={leaves}");
        }
    }

    #[test]
    fn tree_counter_concurrent_values_are_distinct() {
        let c = Arc::new(TreeCounter::new(8));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                (0..500).map(|_| c.next()).collect::<Vec<u64>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker panicked"))
            .collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "duplicate counter values handed out");
    }

    #[test]
    fn central_counter_concurrent_values_are_distinct() {
        let c = Arc::new(CentralCounter::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                (0..500).map(|_| c.next()).collect::<Vec<u64>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker panicked"))
            .collect();
        all.sort_unstable();
        let n = all.len();
        all.dedup();
        assert_eq!(all.len(), n);
        assert_eq!(all, (0..n as u64).collect::<Vec<u64>>());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn tree_counter_rejects_non_power_of_two() {
        let _ = TreeCounter::new(6);
    }
}
