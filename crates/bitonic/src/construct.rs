//! Constructions of the classical counting networks.

use crate::network::{BalancingNetwork, Dest};

/// A wire endpoint during construction: who produces the wire.
#[derive(Debug, Clone, Copy)]
enum Source {
    /// Network input wire `i`.
    Input(usize),
    /// Output port `port` (0 or 1) of balancer `b`.
    Balancer { b: usize, port: usize },
}

/// Incremental builder that allocates balancers and finally resolves the
/// `Source` graph into a [`BalancingNetwork`].
struct Builder {
    /// For each balancer, the sources of its two *input* wires are not
    /// stored — balancers are port-oblivious. We store, per balancer,
    /// nothing; edges are recorded by resolving sources at the end.
    balancer_count: usize,
    /// Destination assignment, filled in `finish`.
    input_dest: Vec<Option<Dest>>,
    balancer_dest: Vec<[Option<Dest>; 2]>,
}

impl Builder {
    fn new(width: usize) -> Self {
        Builder {
            balancer_count: 0,
            input_dest: vec![None; width],
            balancer_dest: Vec::new(),
        }
    }

    /// Adds a balancer fed by `a` and `b`; returns its two output sources.
    fn balancer(&mut self, a: Source, b: Source) -> (Source, Source) {
        let idx = self.balancer_count;
        self.balancer_count += 1;
        self.balancer_dest.push([None, None]);
        self.connect(a, Dest::Balancer(idx));
        self.connect(b, Dest::Balancer(idx));
        (
            Source::Balancer { b: idx, port: 0 },
            Source::Balancer { b: idx, port: 1 },
        )
    }

    fn connect(&mut self, source: Source, dest: Dest) {
        match source {
            Source::Input(i) => {
                assert!(self.input_dest[i].is_none(), "input wire {i} connected twice");
                self.input_dest[i] = Some(dest);
            }
            Source::Balancer { b, port } => {
                assert!(
                    self.balancer_dest[b][port].is_none(),
                    "balancer {b} port {port} connected twice"
                );
                self.balancer_dest[b][port] = Some(dest);
            }
        }
    }

    /// Connects `outputs[i]` to network output wire `i` and builds.
    fn finish(mut self, outputs: &[Source]) -> BalancingNetwork {
        let width = self.input_dest.len();
        assert_eq!(outputs.len(), width);
        for (i, &src) in outputs.iter().enumerate() {
            self.connect(src, Dest::Output(i));
        }
        let inputs = self
            .input_dest
            .into_iter()
            .map(|d| d.expect("dangling input wire"))
            .collect();
        let balancers = self
            .balancer_dest
            .into_iter()
            .map(|[a, b]| [a.expect("dangling balancer output"), b.expect("dangling balancer output")])
            .collect();
        BalancingNetwork::new(width, inputs, balancers)
    }
}

/// The Aspnes–Herlihy–Shavit `MERGER[2k]`: merges two width-`k` sequences
/// with the step property into one width-`2k` step sequence.
fn merger(builder: &mut Builder, top: &[Source], bottom: &[Source]) -> Vec<Source> {
    assert_eq!(top.len(), bottom.len());
    let k = top.len();
    if k == 1 {
        let (a, b) = builder.balancer(top[0], bottom[0]);
        return vec![a, b];
    }
    // Even tops + odd bottoms into one sub-merger, odd tops + even
    // bottoms into the other.
    let even = |s: &[Source]| -> Vec<Source> { s.iter().copied().step_by(2).collect() };
    let odd = |s: &[Source]| -> Vec<Source> { s.iter().copied().skip(1).step_by(2).collect() };
    let a = merger(builder, &even(top), &odd(bottom));
    let b = merger(builder, &odd(top), &even(bottom));
    // Final layer: balancer i joins a[i] and b[i], emitting wires 2i, 2i+1.
    let mut out = Vec::with_capacity(2 * k);
    for i in 0..k {
        let (t, u) = builder.balancer(a[i], b[i]);
        out.push(t);
        out.push(u);
    }
    out
}

fn bitonic_rec(builder: &mut Builder, inputs: &[Source]) -> Vec<Source> {
    let w = inputs.len();
    if w == 1 {
        return vec![inputs[0]];
    }
    if w == 2 {
        let (a, b) = builder.balancer(inputs[0], inputs[1]);
        return vec![a, b];
    }
    let top = bitonic_rec(builder, &inputs[..w / 2]);
    let bottom = bitonic_rec(builder, &inputs[w / 2..]);
    merger(builder, &top, &bottom)
}

/// Builds the `BITONIC[w]` counting network of Aspnes–Herlihy–Shavit,
/// isomorphic to Batcher's bitonic sorting network.
///
/// The network has `w·log(w)·(log(w)+1)/4` balancers and depth
/// `log(w)·(log(w)+1)/2`.
///
/// # Panics
///
/// Panics if `w` is not a power of two or `w < 2`.
///
/// # Example
///
/// ```
/// use acn_bitonic::bitonic_network;
///
/// let net = bitonic_network(16);
/// assert_eq!(net.width(), 16);
/// assert_eq!(net.balancer_count(), 16 * 4 * 5 / 4);
/// assert_eq!(net.depth(), 4 * 5 / 2);
/// ```
#[must_use]
pub fn bitonic_network(w: usize) -> BalancingNetwork {
    assert!(w >= 2 && w.is_power_of_two(), "width must be a power of two >= 2");
    let mut builder = Builder::new(w);
    let inputs: Vec<Source> = (0..w).map(Source::Input).collect();
    let outputs = bitonic_rec(&mut builder, &inputs);
    builder.finish(&outputs)
}

/// Builds the `PERIODIC[w]` counting network of Dowd–Perl–Rudolph–Saks:
/// `log w` identical `BLOCK[w]` networks in sequence. `BLOCK[w]` begins
/// with a layer joining wire `i` to wire `w-1-i`, followed recursively by
/// two `BLOCK[w/2]` on the halves.
///
/// The network has depth `log²(w)` and `w·log²(w)/2` balancers.
///
/// # Panics
///
/// Panics if `w` is not a power of two or `w < 2`.
///
/// # Example
///
/// ```
/// use acn_bitonic::periodic_network;
///
/// let net = periodic_network(8);
/// assert_eq!(net.depth(), 9);
/// assert_eq!(net.balancer_count(), 8 * 9 / 2);
/// ```
#[must_use]
pub fn periodic_network(w: usize) -> BalancingNetwork {
    assert!(w >= 2 && w.is_power_of_two(), "width must be a power of two >= 2");

    fn block(builder: &mut Builder, wires: &[Source]) -> Vec<Source> {
        let k = wires.len();
        if k == 1 {
            return vec![wires[0]];
        }
        // First layer: wire i joined with wire k-1-i.
        let mut after = vec![None; k];
        for i in 0..k / 2 {
            let (a, b) = builder.balancer(wires[i], wires[k - 1 - i]);
            after[i] = Some(a);
            after[k - 1 - i] = Some(b);
        }
        let after: Vec<Source> = after.into_iter().map(Option::unwrap).collect();
        // Recurse on the two halves.
        let top = block(builder, &after[..k / 2]);
        let bottom = block(builder, &after[k / 2..]);
        top.into_iter().chain(bottom).collect()
    }

    let logw = w.trailing_zeros() as usize;
    let mut builder = Builder::new(w);
    let mut wires: Vec<Source> = (0..w).map(Source::Input).collect();
    for _ in 0..logw {
        wires = block(&mut builder, &wires);
    }
    builder.finish(&wires)
}

/// Expands the *balancer cut* of `T_w` (the cut whose leaves are all
/// individual balancers) into an explicit [`BalancingNetwork`]. This
/// cross-validates the `acn-topology` decomposition wiring against the
/// direct recursive construction of [`bitonic_network`].
///
/// # Panics
///
/// Panics if the wiring was not produced from the full balancer cut
/// (every leaf must have width 2).
#[must_use]
pub fn from_cut_wiring(wiring: &acn_topology::CutWiring) -> BalancingNetwork {
    use acn_topology::ComponentId;
    use std::collections::HashMap;

    let tree = wiring.tree();
    let leaves: Vec<ComponentId> = {
        let mut v: Vec<ComponentId> = wiring.leaves().cloned().collect();
        v.sort();
        v
    };
    let index: HashMap<&ComponentId, usize> =
        leaves.iter().enumerate().map(|(i, l)| (l, i)).collect();
    let mut balancers = Vec::with_capacity(leaves.len());
    for leaf in &leaves {
        let info = tree.info(leaf).expect("valid leaf");
        assert_eq!(info.width, 2, "from_cut_wiring requires the balancer cut");
        let mut dests = [Dest::Output(usize::MAX); 2];
        for (port, dest) in dests.iter_mut().enumerate() {
            *dest = match wiring.out_neighbor(leaf, port) {
                Some(n) => Dest::Balancer(index[n]),
                None => Dest::Output(
                    wiring.network_output(leaf, port).expect("port is output"),
                ),
            };
        }
        balancers.push(dests);
    }
    let inputs = (0..tree.width())
        .map(|wire| Dest::Balancer(index[&wiring.input_owner(wire).id]))
        .collect();
    BalancingNetwork::new(tree.width(), inputs, balancers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::step::{verify_interleaved, verify_rounds, verify_sequential};

    /// Simple deterministic RNG for schedules.
    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0 >> 33
        }
    }

    #[test]
    fn bitonic_sizes_match_formulas() {
        for logw in 1..=6u32 {
            let w = 1usize << logw;
            let net = bitonic_network(w);
            let lw = logw as usize;
            assert_eq!(net.balancer_count(), w * lw * (lw + 1) / 4, "w={w}");
            assert_eq!(net.depth(), lw * (lw + 1) / 2, "w={w}");
        }
    }

    #[test]
    fn periodic_sizes_match_formulas() {
        for logw in 1..=6u32 {
            let w = 1usize << logw;
            let net = periodic_network(w);
            let lw = logw as usize;
            assert_eq!(net.balancer_count(), w * lw * lw / 2, "w={w}");
            assert_eq!(net.depth(), lw * lw, "w={w}");
        }
    }

    #[test]
    fn bitonic_counts_sequentially() {
        for w in [2usize, 4, 8, 16, 32] {
            let net = bitonic_network(w);
            // All tokens into wire 0.
            assert!(verify_sequential(&net, 3 * w, |_| 0).counts, "w={w} wire0");
            // Round-robin inputs.
            assert!(verify_sequential(&net, 3 * w, |t| t).counts, "w={w} rr");
            // Skewed inputs.
            assert!(verify_sequential(&net, 3 * w, |t| t % 3).counts, "w={w} skew");
        }
    }

    #[test]
    fn periodic_counts_sequentially() {
        for w in [2usize, 4, 8, 16] {
            let net = periodic_network(w);
            assert!(verify_sequential(&net, 4 * w, |_| 0).counts, "w={w} wire0");
            assert!(verify_sequential(&net, 4 * w, |t| t).counts, "w={w} rr");
            assert!(
                verify_sequential(&net, 4 * w, |t| (t * 7) % w).counts,
                "w={w} stride"
            );
        }
    }

    #[test]
    fn bitonic_counts_under_adversarial_interleavings() {
        for w in [4usize, 8, 16] {
            let net = bitonic_network(w);
            for seed in 0..20u64 {
                let mut rng = Lcg(seed + 1);
                let mut inputs = Lcg(seed.wrapping_mul(77) + 13);
                let v = verify_interleaved(
                    &net,
                    5 * w + seed as usize,
                    |_| inputs.next() as usize,
                    |n| (rng.next() as usize) % n.max(1),
                );
                assert!(v.counts, "w={w} seed={seed}: {:?}", v.final_outputs);
            }
        }
    }

    #[test]
    fn periodic_counts_under_adversarial_interleavings() {
        for w in [4usize, 8] {
            let net = periodic_network(w);
            for seed in 0..10u64 {
                let mut rng = Lcg(seed + 101);
                let mut inputs = Lcg(seed + 7);
                let v = verify_interleaved(
                    &net,
                    6 * w,
                    |_| inputs.next() as usize,
                    |n| (rng.next() as usize) % n.max(1),
                );
                assert!(v.counts, "w={w} seed={seed}");
            }
        }
    }

    #[test]
    fn bitonic_counts_across_rounds() {
        let net = bitonic_network(8);
        for seed in 0..10u64 {
            let mut rng = Lcg(seed + 3);
            let mut batch = Lcg(seed + 19);
            let mut inputs = Lcg(seed + 29);
            let v = verify_rounds(
                &net,
                12,
                |_| (batch.next() % 17) as usize + 1,
                |_| inputs.next() as usize,
                |n| (rng.next() as usize) % n.max(1),
            );
            assert!(v.counts, "seed={seed}");
        }
    }

    #[test]
    fn topology_balancer_cut_matches_direct_construction() {
        use acn_topology::{Cut, CutWiring, Tree};
        for w in [2usize, 4, 8, 16] {
            let tree = Tree::new(w);
            let wiring = CutWiring::new(&tree, &Cut::balancers(&tree));
            let from_topology = from_cut_wiring(&wiring);
            let direct = bitonic_network(w);
            assert_eq!(
                from_topology.balancer_count(),
                direct.balancer_count(),
                "w={w}"
            );
            assert_eq!(from_topology.depth(), direct.depth(), "w={w}");
            // And it must count.
            assert!(verify_sequential(&from_topology, 4 * w, |t| t % 3).counts);
            for seed in 0..5u64 {
                let mut rng = Lcg(seed + 55);
                let mut inputs = Lcg(seed + 111);
                let v = verify_interleaved(
                    &from_topology,
                    4 * w,
                    |_| inputs.next() as usize,
                    |n| (rng.next() as usize) % n.max(1),
                );
                assert!(v.counts, "w={w} seed={seed}");
            }
        }
    }

    #[test]
    fn paper_literal_wiring_fails_step_property() {
        // The ablation of DESIGN.md Section 3.2: the (even, even) pairing
        // from the paper's prose does not count.
        use acn_topology::{Cut, CutWiring, Tree, WiringStyle};
        let tree = Tree::new(4);
        let wiring =
            CutWiring::with_style(&tree, &Cut::balancers(&tree), WiringStyle::PaperLiteral);
        let net = from_cut_wiring(&wiring);
        // Loading both halves exposes the imbalance: one token into each
        // half-BITONIC sends the even outputs of *both* halves into the
        // same merger, so the tokens exit on wires {0, 2} instead of
        // {0, 1}.
        let v = verify_sequential(&net, 2, |t| t * 2);
        assert!(!v.counts, "literal wiring unexpectedly counted: {:?}", v.final_outputs);
        assert_eq!(v.final_outputs, [1, 0, 1, 0]);
        // The AHS wiring on the same schedule counts.
        let correct = from_cut_wiring(&CutWiring::new(&tree, &Cut::balancers(&tree)));
        assert!(verify_sequential(&correct, 2, |t| t * 2).counts);
    }
}
