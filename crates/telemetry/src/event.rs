//! Structured events: `{t, node, component, kind, fields}` with a
//! small tagged value type and JSONL-friendly serialization.

use crate::json::{push_f64, push_str_literal};

/// A field value attached to an [`Event`].
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Unsigned integer (counts, ids, ticks).
    U64(u64),
    /// Signed integer (deltas).
    I64(i64),
    /// Floating point (ratios, errors).
    F64(f64),
    /// Free-form text (causes, labels).
    Str(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::U64(u64::from(v))
    }
}

/// One structured occurrence in the system: what happened
/// ([`kind`](Event::kind)), when ([`t`](Event::t)), where
/// ([`node`](Event::node) / [`component`](Event::component)), and any
/// extra key/value detail ([`fields`](Event::fields)).
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Logical timestamp (simulation ticks or a harness-defined clock).
    pub t: u64,
    /// The node / process the event is attributed to, if any.
    pub node: Option<u64>,
    /// The network component (cut element) involved, if any.
    pub component: Option<String>,
    /// Event kind under the `layer.verb` convention
    /// (`"split.begin"`, `"sim.drop"`, ...).
    pub kind: &'static str,
    /// Ordered extra fields.
    pub fields: Vec<(&'static str, Value)>,
}

impl Event {
    /// A new event of `kind` at time zero with no attribution.
    #[must_use]
    pub fn new(kind: &'static str) -> Self {
        Event { t: 0, node: None, component: None, kind, fields: Vec::new() }
    }

    /// Sets the timestamp.
    #[must_use]
    pub fn at(mut self, t: u64) -> Self {
        self.t = t;
        self
    }

    /// Attributes the event to a node / process id.
    #[must_use]
    pub fn node(mut self, node: u64) -> Self {
        self.node = Some(node);
        self
    }

    /// Attributes the event to a network component.
    #[must_use]
    pub fn component(mut self, component: impl Into<String>) -> Self {
        self.component = Some(component.into());
        self
    }

    /// Appends a `key = value` field.
    #[must_use]
    pub fn with(mut self, key: &'static str, value: impl Into<Value>) -> Self {
        self.fields.push((key, value.into()));
        self
    }

    /// The first field named `key`, if present.
    #[must_use]
    pub fn field(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// One-line JSON object (the JSONL sink writes exactly this).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64);
        out.push_str("{\"t\":");
        let _ = std::fmt::Write::write_fmt(&mut out, format_args!("{}", self.t));
        out.push_str(",\"kind\":");
        push_str_literal(&mut out, self.kind);
        if let Some(node) = self.node {
            let _ = std::fmt::Write::write_fmt(&mut out, format_args!(",\"node\":{node}"));
        }
        if let Some(component) = &self.component {
            out.push_str(",\"component\":");
            push_str_literal(&mut out, component);
        }
        for (key, value) in &self.fields {
            out.push(',');
            push_str_literal(&mut out, key);
            out.push(':');
            match value {
                Value::U64(v) => {
                    let _ = std::fmt::Write::write_fmt(&mut out, format_args!("{v}"));
                }
                Value::I64(v) => {
                    let _ = std::fmt::Write::write_fmt(&mut out, format_args!("{v}"));
                }
                Value::F64(v) => push_f64(&mut out, *v),
                Value::Str(s) => push_str_literal(&mut out, s),
            }
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_fills_all_parts() {
        let e = Event::new("split.begin")
            .at(42)
            .node(7)
            .component("w=3;[2,4)")
            .with("level", 3u64)
            .with("cause", "overload");
        assert_eq!(e.t, 42);
        assert_eq!(e.node, Some(7));
        assert_eq!(e.component.as_deref(), Some("w=3;[2,4)"));
        assert_eq!(e.field("level"), Some(&Value::U64(3)));
        assert_eq!(e.field("cause"), Some(&Value::Str("overload".into())));
        assert_eq!(e.field("missing"), None);
    }

    #[test]
    fn json_shape_is_stable() {
        let e = Event::new("sim.drop").at(9).node(1).with("reason", "loss").with("len", 3u64);
        assert_eq!(
            e.to_json(),
            "{\"t\":9,\"kind\":\"sim.drop\",\"node\":1,\"reason\":\"loss\",\"len\":3}"
        );
    }

    #[test]
    fn json_escapes_and_floats() {
        let e = Event::new("x").with("s", "a\"b").with("f", 0.5).with("bad", f64::NAN);
        let json = e.to_json();
        assert!(json.contains("\"s\":\"a\\\"b\""));
        assert!(json.contains("\"f\":0.5"));
        assert!(json.contains("\"bad\":null"));
    }
}
