//! Atomic metric cells and the public handles wrapping them.
//!
//! Cells (`CounterCell`, `GaugeCell`, `HistogramCell`) are the shared
//! storage owned by the registry; handles ([`Counter`], [`Gauge`],
//! [`Histogram`]) are what instrumented code holds. A handle from a
//! disabled registry carries no cell and every operation is a cheap
//! `None` branch.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::snapshot::HistogramSnapshot;

/// Number of log₂ buckets in a [`Histogram`]: bucket 0 holds zeros,
/// bucket `i` (1..=64) holds values with `floor(log2(v)) == i - 1`.
pub const BUCKET_COUNT: usize = 65;

/// The bucket index a sample lands in: `0` for `v == 0`, otherwise
/// `floor(log2(v)) + 1`.
#[must_use]
pub fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// The inclusive `(lo, hi)` value range of bucket `i`.
///
/// Bucket 0 is `(0, 0)`; bucket `i >= 1` is `(2^(i-1), 2^i - 1)` with
/// the final bucket capped at `u64::MAX`.
///
/// # Panics
///
/// Panics if `i >= BUCKET_COUNT`.
#[must_use]
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    assert!(i < BUCKET_COUNT, "bucket index {i} out of range");
    if i == 0 {
        (0, 0)
    } else {
        let lo = 1u64 << (i - 1);
        let hi = if i == 64 { u64::MAX } else { (1u64 << i) - 1 };
        (lo, hi)
    }
}

/// Shared storage for a counter.
#[derive(Debug, Default)]
pub(crate) struct CounterCell {
    value: AtomicU64,
}

impl CounterCell {
    pub(crate) fn add(&self, n: u64) {
        // lint: relaxed-ok(telemetry counter; only the per-cell total matters and snapshots tolerate slight staleness)
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn get(&self) -> u64 {
        // lint: relaxed-ok(snapshot read of a statistics cell; no cross-location ordering consumed)
        self.value.load(Ordering::Relaxed)
    }
}

/// Shared storage for a gauge (an `f64` stored as raw bits).
#[derive(Debug, Default)]
pub(crate) struct GaugeCell {
    bits: AtomicU64,
}

impl GaugeCell {
    pub(crate) fn set(&self, v: f64) {
        // lint: relaxed-ok(last-writer-wins gauge cell; no other memory is published through it)
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    pub(crate) fn get(&self) -> f64 {
        // lint: relaxed-ok(snapshot read of a statistics cell; no cross-location ordering consumed)
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Shared storage for a log₂ histogram.
#[derive(Debug)]
pub(crate) struct HistogramCell {
    buckets: [AtomicU64; BUCKET_COUNT],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for HistogramCell {
    fn default() -> Self {
        HistogramCell {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl HistogramCell {
    pub(crate) fn record(&self, v: u64) {
        // lint: relaxed-ok(histogram bucket increment; per-cell totals only, snapshots are advisory)
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        // lint: relaxed-ok(histogram count increment; per-cell totals only, snapshots are advisory)
        self.count.fetch_add(1, Ordering::Relaxed);
        // lint: relaxed-ok(histogram sum increment; per-cell totals only, snapshots are advisory)
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    pub(crate) fn count(&self) -> u64 {
        // lint: relaxed-ok(snapshot read of a statistics cell; no cross-location ordering consumed)
        self.count.load(Ordering::Relaxed)
    }

    pub(crate) fn sum(&self) -> u64 {
        // lint: relaxed-ok(snapshot read of a statistics cell; no cross-location ordering consumed)
        self.sum.load(Ordering::Relaxed)
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            // lint: relaxed-ok(advisory snapshot; buckets/count/sum may be mutually torn by design)
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
        }
    }
}

/// A monotonically increasing metric handle.
///
/// Cloning shares the underlying cell; a handle from a disabled
/// registry ignores every update and reads as zero.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    cell: Option<Arc<CounterCell>>,
}

impl Counter {
    pub(crate) fn noop() -> Self {
        Counter { cell: None }
    }

    pub(crate) fn active(cell: Arc<CounterCell>) -> Self {
        Counter { cell: Some(cell) }
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.cell {
            cell.add(n);
        }
    }

    /// The current total (zero for a disabled handle).
    #[must_use]
    pub fn get(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.get())
    }
}

/// A last-value-wins metric handle holding an `f64`.
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    cell: Option<Arc<GaugeCell>>,
}

impl Gauge {
    pub(crate) fn noop() -> Self {
        Gauge { cell: None }
    }

    pub(crate) fn active(cell: Arc<GaugeCell>) -> Self {
        Gauge { cell: Some(cell) }
    }

    /// Stores `v` as the latest value.
    pub fn set(&self, v: f64) {
        if let Some(cell) = &self.cell {
            cell.set(v);
        }
    }

    /// The latest stored value (zero for a disabled handle).
    #[must_use]
    pub fn get(&self) -> f64 {
        self.cell.as_ref().map_or(0.0, |c| c.get())
    }
}

/// A log₂-bucketed distribution handle.
///
/// Records `u64` samples (latencies in ticks, hop counts, depths) into
/// [`BUCKET_COUNT`] fixed buckets — see [`bucket_of`] /
/// [`bucket_bounds`] for the layout.
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    cell: Option<Arc<HistogramCell>>,
}

impl Histogram {
    pub(crate) fn noop() -> Self {
        Histogram { cell: None }
    }

    pub(crate) fn active(cell: Arc<HistogramCell>) -> Self {
        Histogram { cell: Some(cell) }
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        if let Some(cell) = &self.cell {
            cell.record(v);
        }
    }

    /// Total number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.count())
    }

    /// Sum of all recorded samples (wrapping on `u64` overflow).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_bounds(0), (0, 0));
        assert_eq!(bucket_bounds(1), (1, 1));
        assert_eq!(bucket_bounds(2), (2, 3));
        assert_eq!(bucket_bounds(64).1, u64::MAX);
    }

    #[test]
    fn bounds_and_bucket_of_agree() {
        for i in 0..BUCKET_COUNT {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(bucket_of(lo), i);
            assert_eq!(bucket_of(hi), i);
        }
    }

    #[test]
    fn gauge_preserves_f64_payloads() {
        let cell = GaugeCell::default();
        for v in [0.0, -1.5, f64::MIN_POSITIVE, 1e300] {
            cell.set(v);
            assert_eq!(cell.get(), v);
        }
    }
}
