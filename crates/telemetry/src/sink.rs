//! Event sinks: where emitted [`Event`]s go.
//!
//! Two implementations ship with the crate — an in-memory
//! [`RingBufferSink`] for tests and interactive inspection, and a
//! [`JsonlSink`] that streams one JSON object per line for harness
//! artifacts. Anything else can implement [`EventSink`].

use std::collections::VecDeque;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
// lint: std-sync-ok(acn-telemetry is zero-dependency by policy; it cannot pull in parking_lot)
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use crate::event::Event;
use crate::metrics::Counter;
use crate::Registry;

/// A destination for emitted events.
///
/// Implementations must be cheap and must never panic on emit: sinks
/// run inline on instrumented hot paths.
pub trait EventSink: Send + Sync {
    /// Receives one event.
    fn emit(&self, event: &Event);

    /// Flushes any buffered output (default: nothing to do).
    fn flush(&self) {}
}

fn relock<'a, T>(
    r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// An in-memory sink keeping the most recent `capacity` events.
///
/// # Overflow semantics
///
/// When a new event arrives at a full ring, the **oldest** retained
/// event is evicted to make room (newest-wins); a zero-capacity ring
/// discards every event on arrival. Either way the discarded event is
/// *lost*, and the loss is visible: [`RingBufferSink::dropped`] counts
/// evictions since creation, and a sink built with
/// [`RingBufferSink::with_capacity_metered`] additionally increments
/// the `acn.telemetry.ring_dropped` counter in its registry, so a
/// truncated event window never masquerades as a complete one.
#[derive(Debug)]
pub struct RingBufferSink {
    capacity: usize,
    events: Mutex<VecDeque<Event>>,
    /// Events evicted (or rejected by a zero-capacity ring) so far.
    dropped: AtomicU64,
    /// Registry-visible mirror of [`Self::dropped`] (no-op by default).
    ring_dropped: Counter,
}

impl RingBufferSink {
    /// A ring buffer holding at most `capacity` events (older events
    /// are discarded first; see the type docs for overflow semantics).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Arc<Self> {
        Arc::new(RingBufferSink {
            capacity,
            events: Mutex::new(VecDeque::new()),
            dropped: AtomicU64::new(0),
            ring_dropped: Counter::default(),
        })
    }

    /// Like [`Self::with_capacity`], but evictions also increment the
    /// `acn.telemetry.ring_dropped` counter of `registry`, making
    /// overflow visible in metric snapshots alongside the event stream.
    #[must_use]
    pub fn with_capacity_metered(capacity: usize, registry: &Registry) -> Arc<Self> {
        Arc::new(RingBufferSink {
            capacity,
            events: Mutex::new(VecDeque::new()),
            dropped: AtomicU64::new(0),
            ring_dropped: registry.counter("acn.telemetry.ring_dropped"),
        })
    }

    /// Events discarded due to overflow since creation (oldest-entry
    /// evictions, plus everything a zero-capacity ring rejected).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        // lint: relaxed-ok(monotonic statistics counter; no ordering is claimed between the count and the retained events)
        self.dropped.load(Ordering::Relaxed)
    }

    /// All retained events, oldest first.
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        relock(self.events.lock()).iter().cloned().collect()
    }

    /// Retained events of the given kind, oldest first.
    #[must_use]
    pub fn events_of_kind(&self, kind: &str) -> Vec<Event> {
        relock(self.events.lock()).iter().filter(|e| e.kind == kind).cloned().collect()
    }

    /// How many retained events have the given kind.
    #[must_use]
    pub fn count_kind(&self, kind: &str) -> usize {
        relock(self.events.lock()).iter().filter(|e| e.kind == kind).count()
    }

    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        relock(self.events.lock()).len()
    }

    /// Whether no events are retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Discards all retained events.
    pub fn clear(&self) {
        relock(self.events.lock()).clear();
    }
}

impl EventSink for RingBufferSink {
    fn emit(&self, event: &Event) {
        let mut events = relock(self.events.lock());
        if self.capacity == 0 {
            // lint: relaxed-ok(monotonic statistics counter; see Self::dropped)
            self.dropped.fetch_add(1, Ordering::Relaxed);
            self.ring_dropped.inc();
            return;
        }
        if events.len() == self.capacity {
            events.pop_front();
            // lint: relaxed-ok(monotonic statistics counter; see Self::dropped)
            self.dropped.fetch_add(1, Ordering::Relaxed);
            self.ring_dropped.inc();
        }
        events.push_back(event.clone());
    }
}

/// A sink appending one JSON object per event to a file (JSONL).
///
/// Output is buffered; call [`EventSink::flush`] (or rely on `Drop`)
/// before reading the file.
pub struct JsonlSink {
    path: PathBuf,
    writer: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Creates (truncating) `path` and returns a sink writing to it.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the file.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Arc<Self>> {
        let path = path.as_ref().to_path_buf();
        let file = File::create(&path)?;
        Ok(Arc::new(JsonlSink { path, writer: Mutex::new(BufWriter::new(file)) }))
    }

    /// The file this sink writes to.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl EventSink for JsonlSink {
    fn emit(&self, event: &Event) {
        let mut writer = relock(self.writer.lock());
        // Best-effort: a full disk must not take down the system under
        // observation.
        let _ = writeln!(writer, "{}", event.to_json());
    }

    fn flush(&self) {
        let _ = relock(self.writer.lock()).flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let _ = relock(self.writer.lock()).flush();
    }
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink").field("path", &self.path).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_buffer_keeps_most_recent() {
        let sink = RingBufferSink::with_capacity(2);
        for kind in ["a", "b", "c"] {
            sink.emit(&Event::new(kind));
        }
        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, "b");
        assert_eq!(events[1].kind, "c");
        assert_eq!(sink.count_kind("c"), 1);
        assert_eq!(sink.count_kind("a"), 0);
        sink.clear();
        assert!(sink.is_empty());
    }

    #[test]
    fn zero_capacity_ring_buffer_drops_everything() {
        let sink = RingBufferSink::with_capacity(0);
        sink.emit(&Event::new("x"));
        assert!(sink.is_empty());
        assert_eq!(sink.dropped(), 1);
    }

    #[test]
    fn overflow_evicts_oldest_and_counts_drops() {
        let sink = RingBufferSink::with_capacity(3);
        for kind in ["a", "b", "c"] {
            sink.emit(&Event::new(kind));
        }
        // At capacity, nothing dropped yet.
        assert_eq!(sink.dropped(), 0);
        sink.emit(&Event::new("d"));
        sink.emit(&Event::new("e"));
        // Oldest-first eviction: a then b fell off the front.
        let kinds: Vec<&str> = sink.events().iter().map(|e| e.kind).collect();
        assert_eq!(kinds, ["c", "d", "e"]);
        assert_eq!(sink.dropped(), 2);
        // clear() is an explicit discard, not overflow.
        sink.clear();
        assert_eq!(sink.dropped(), 2);
    }

    #[test]
    fn metered_overflow_is_visible_in_the_registry() {
        let registry = Registry::new();
        let sink = RingBufferSink::with_capacity_metered(2, &registry);
        registry.add_sink(sink.clone());
        for i in 0..5u64 {
            registry.emit(Event::new("tick").at(i));
        }
        assert_eq!(sink.dropped(), 3);
        assert_eq!(registry.snapshot().counter("acn.telemetry.ring_dropped"), Some(3));
        // The retained window is the newest two events.
        let ts: Vec<u64> = sink.events().iter().map(|e| e.t).collect();
        assert_eq!(ts, [3, 4]);
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("acn-telemetry-test-{}.jsonl", std::process::id()));
        {
            let sink = JsonlSink::create(&path).expect("create sink");
            assert_eq!(sink.path(), path.as_path());
            sink.emit(&Event::new("a").at(1));
            sink.emit(&Event::new("b").at(2).with("n", 5u64));
            sink.flush();
        }
        let text = std::fs::read_to_string(&path).expect("read back");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"t\":1,\"kind\":\"a\""));
        assert!(lines[1].contains("\"n\":5"));
        let _ = std::fs::remove_file(&path);
    }
}
