//! Point-in-time captures of a registry and window diffs between them.

use std::collections::BTreeMap;
use std::fmt;

use crate::json::{push_f64, push_str_literal};
use crate::metrics::bucket_bounds;

/// The captured state of one histogram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Per-bucket sample counts ([`crate::BUCKET_COUNT`] entries).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean sample value, or `None` when empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// The `q`-quantile (`0.0 <= q <= 1.0`) of the recorded samples, or
    /// `None` when the histogram is empty.
    ///
    /// The log2 buckets only retain each sample's bucket, so the answer
    /// is **exact** when the target rank lands in a single-value bucket
    /// (bucket 0 holds only `0`, bucket 1 holds only `1`) and
    /// **interpolated** otherwise: the bucket's samples are assumed
    /// uniformly spread over its inclusive `[lo, hi]` range and the
    /// rank's position within the bucket picks a point on that segment.
    /// The result is therefore always within the true quantile's bucket
    /// — an error factor below 2 — and exact for small values.
    ///
    /// Quantile rank follows the "nearest-rank, interpolated" rule used
    /// by most telemetry systems: the target rank is `q * (count - 1)`
    /// (zero-based), so `quantile(0.0)` is the minimum bucket and
    /// `quantile(1.0)` the maximum.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not a finite value in `[0.0, 1.0]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!(q.is_finite() && (0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.count == 0 {
            return None;
        }
        // Zero-based fractional rank of the target sample.
        let rank = q * (self.count - 1) as f64;
        let mut below = 0u64; // samples in buckets before this one
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            // The bucket covers zero-based ranks [below, below + n - 1].
            let last = (below + n - 1) as f64;
            if rank <= last {
                let (lo, hi) = bucket_bounds(i);
                if lo == hi {
                    return Some(lo as f64); // single-value bucket: exact
                }
                // Position of the rank within this bucket, in [0, 1]
                // (clamped: a fractional rank straddling the previous
                // bucket's last sample still reads as this bucket's lo).
                let frac = if n == 1 {
                    0.5
                } else {
                    ((rank - below as f64) / (n - 1) as f64).max(0.0)
                };
                return Some(lo as f64 + frac * (hi - lo) as f64);
            }
            below += n;
        }
        // count > 0 but buckets empty: inconsistent snapshot; treat the
        // sum as degenerate single-sample data.
        None
    }

    /// Median (see [`Self::quantile`]).
    #[must_use]
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.50)
    }

    /// 90th percentile (see [`Self::quantile`]).
    #[must_use]
    pub fn p90(&self) -> Option<f64> {
        self.quantile(0.90)
    }

    /// 99th percentile (see [`Self::quantile`]).
    #[must_use]
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }

    fn diff(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            buckets: self
                .buckets
                .iter()
                .zip(earlier.buckets.iter().chain(std::iter::repeat(&0)))
                .map(|(now, then)| now.saturating_sub(*then))
                .collect(),
        }
    }
}

/// The captured value of one metric.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// A counter total.
    Counter(u64),
    /// A gauge's latest value.
    Gauge(f64),
    /// A histogram's full state.
    Histogram(HistogramSnapshot),
}

/// An ordered capture of every metric in a registry.
///
/// Obtained from [`crate::Registry::snapshot`]; [`Snapshot::diff`]
/// isolates the activity between two captures.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    metrics: BTreeMap<String, MetricValue>,
}

impl Snapshot {
    pub(crate) fn insert(&mut self, name: &str, value: MetricValue) {
        self.metrics.insert(name.to_owned(), value);
    }

    /// Number of captured metrics.
    #[must_use]
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether nothing was captured.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Iterates metrics in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.metrics.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// The counter named `name`, if captured as one.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.metrics.get(name) {
            Some(MetricValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// The gauge named `name`, if captured as one.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.metrics.get(name) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// The histogram named `name`, if captured as one.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.metrics.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// The activity between `earlier` and `self`.
    ///
    /// Counters and histograms subtract (saturating, so a metric that
    /// only exists in `self` passes through unchanged); gauges keep the
    /// latest value. Metrics present only in `earlier` are omitted.
    #[must_use]
    pub fn diff(&self, earlier: &Snapshot) -> Snapshot {
        let mut out = Snapshot::default();
        for (name, now) in &self.metrics {
            let value = match (now, earlier.metrics.get(name)) {
                (MetricValue::Counter(n), Some(MetricValue::Counter(e))) => {
                    MetricValue::Counter(n.saturating_sub(*e))
                }
                (MetricValue::Histogram(n), Some(MetricValue::Histogram(e))) => {
                    MetricValue::Histogram(n.diff(e))
                }
                (now, _) => now.clone(),
            };
            out.metrics.insert(name.clone(), value);
        }
        out
    }

    /// One JSON object mapping metric names to values. Histograms
    /// render as `{"count", "sum", "buckets"}` with zero buckets
    /// omitted (`"buckets"` maps bucket index to count).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128);
        out.push('{');
        let mut first = true;
        for (name, value) in &self.metrics {
            if !first {
                out.push(',');
            }
            first = false;
            push_str_literal(&mut out, name);
            out.push(':');
            match value {
                MetricValue::Counter(v) => {
                    let _ = std::fmt::Write::write_fmt(&mut out, format_args!("{v}"));
                }
                MetricValue::Gauge(v) => push_f64(&mut out, *v),
                MetricValue::Histogram(h) => {
                    let _ = std::fmt::Write::write_fmt(
                        &mut out,
                        format_args!("{{\"count\":{},\"sum\":{},\"buckets\":{{", h.count, h.sum),
                    );
                    let mut first_bucket = true;
                    for (i, n) in h.buckets.iter().enumerate() {
                        if *n == 0 {
                            continue;
                        }
                        if !first_bucket {
                            out.push(',');
                        }
                        first_bucket = false;
                        let _ = std::fmt::Write::write_fmt(
                            &mut out,
                            format_args!("\"{i}\":{n}"),
                        );
                    }
                    out.push_str("}}");
                }
            }
        }
        out.push('}');
        out
    }
}

impl fmt::Display for Snapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, value) in &self.metrics {
            match value {
                MetricValue::Counter(v) => writeln!(f, "{name:<44} {v}")?,
                MetricValue::Gauge(v) => writeln!(f, "{name:<44} {v}")?,
                MetricValue::Histogram(h) => {
                    let mean =
                        h.mean().map_or_else(|| "-".to_owned(), |m| format!("{m:.2}"));
                    writeln!(
                        f,
                        "{name:<44} count={} sum={} mean={mean}",
                        h.count, h.sum
                    )?;
                    for (i, n) in h.buckets.iter().enumerate() {
                        if *n == 0 {
                            continue;
                        }
                        let (lo, hi) = bucket_bounds(i);
                        writeln!(f, "    [{lo}, {hi}] {n}")?;
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(buckets: &[(usize, u64)], count: u64, sum: u64) -> HistogramSnapshot {
        let mut b = vec![0u64; crate::BUCKET_COUNT];
        for &(i, n) in buckets {
            b[i] = n;
        }
        HistogramSnapshot { count, sum, buckets: b }
    }

    #[test]
    fn diff_subtracts_counters_and_keeps_gauges() {
        let mut earlier = Snapshot::default();
        earlier.insert("c", MetricValue::Counter(5));
        earlier.insert("g", MetricValue::Gauge(0.1));
        let mut now = Snapshot::default();
        now.insert("c", MetricValue::Counter(9));
        now.insert("g", MetricValue::Gauge(0.9));
        now.insert("new", MetricValue::Counter(2));
        let d = now.diff(&earlier);
        assert_eq!(d.counter("c"), Some(4));
        assert_eq!(d.gauge("g"), Some(0.9));
        assert_eq!(d.counter("new"), Some(2));
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn histogram_diff_is_per_bucket() {
        let earlier = hist(&[(1, 2), (3, 1)], 3, 10);
        let now = hist(&[(1, 5), (3, 1), (7, 2)], 8, 300);
        let d = now.diff(&earlier);
        assert_eq!(d.count, 5);
        assert_eq!(d.sum, 290);
        assert_eq!(d.buckets[1], 3);
        assert_eq!(d.buckets[3], 0);
        assert_eq!(d.buckets[7], 2);
    }

    #[test]
    fn json_omits_empty_buckets() {
        let mut snap = Snapshot::default();
        snap.insert("h", MetricValue::Histogram(hist(&[(0, 1), (4, 2)], 3, 20)));
        snap.insert("c", MetricValue::Counter(7));
        assert_eq!(
            snap.to_json(),
            "{\"c\":7,\"h\":{\"count\":3,\"sum\":20,\"buckets\":{\"0\":1,\"4\":2}}}"
        );
    }

    #[test]
    fn display_is_human_readable() {
        let mut snap = Snapshot::default();
        snap.insert("acn.test.c", MetricValue::Counter(3));
        snap.insert("acn.test.h", MetricValue::Histogram(hist(&[(2, 4)], 4, 10)));
        let text = snap.to_string();
        assert!(text.contains("acn.test.c"));
        assert!(text.contains("count=4 sum=10 mean=2.50"));
        assert!(text.contains("[2, 3] 4"));
    }

    #[test]
    fn mean_handles_empty() {
        assert_eq!(hist(&[], 0, 0).mean(), None);
        assert_eq!(hist(&[(1, 2)], 2, 6).mean(), Some(3.0));
    }

    /// Builds a snapshot the way the live histogram would bucket the
    /// samples, and the exact zero-based interpolated quantile of the
    /// raw data for comparison.
    fn from_samples(samples: &[u64]) -> HistogramSnapshot {
        let mut b = vec![0u64; crate::BUCKET_COUNT];
        for &s in samples {
            b[crate::bucket_of(s)] += 1;
        }
        HistogramSnapshot {
            count: samples.len() as u64,
            sum: samples.iter().sum(),
            buckets: b,
        }
    }

    fn exact_quantile(sorted: &[u64], q: f64) -> f64 {
        let rank = q * (sorted.len() - 1) as f64;
        let lo = sorted[rank.floor() as usize] as f64;
        let hi = sorted[rank.ceil() as usize] as f64;
        lo + (rank - rank.floor()) * (hi - lo)
    }

    #[test]
    fn quantiles_of_small_values_are_exact() {
        // Values 0 and 1 live in single-value buckets, so every
        // quantile that lands there is exact, not interpolated.
        let h = from_samples(&[0, 0, 0, 1, 1, 1, 1, 1, 1, 1]);
        assert_eq!(h.quantile(0.0), Some(0.0));
        assert_eq!(h.quantile(0.2), Some(0.0));
        assert_eq!(h.p50(), Some(1.0));
        assert_eq!(h.quantile(1.0), Some(1.0));
    }

    #[test]
    fn quantiles_interpolate_within_bucket_bounds() {
        // 100 samples uniform over [64, 127]: all in bucket 7. The
        // interpolated quantile must stay inside the bucket and track
        // the exact quantile closely for uniform data.
        let samples: Vec<u64> = (0..100).map(|i| 64 + (i * 64) / 100).collect();
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let h = from_samples(&samples);
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let got = h.quantile(q).expect("non-empty");
            let exact = exact_quantile(&sorted, q);
            assert!((64.0..=127.0).contains(&got), "q={q} escaped the bucket: {got}");
            // Uniform fill means linear interpolation is near-exact.
            assert!((got - exact).abs() <= 2.0, "q={q}: got {got}, exact {exact}");
        }
    }

    #[test]
    fn quantiles_never_leave_the_true_bucket() {
        // A skewed mixture across several buckets: the estimate must
        // always land in the same bucket as the exact quantile.
        let mut samples: Vec<u64> = Vec::new();
        samples.extend(vec![3u64; 50]);
        samples.extend(vec![20u64; 30]);
        samples.extend(vec![1000u64; 15]);
        samples.extend(vec![60_000u64; 5]);
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let h = from_samples(&samples);
        // Quantiles whose rank falls strictly inside one value's run
        // (at a run boundary the *exact* quantile interpolates between
        // two different buckets, so bucket equality cannot hold there).
        for q in [0.1, 0.6, 0.85, 0.97, 0.99] {
            let got = h.quantile(q).expect("non-empty");
            let exact = exact_quantile(&sorted, q);
            assert_eq!(
                crate::bucket_of(got.round() as u64),
                crate::bucket_of(exact.round() as u64),
                "q={q}: got {got}, exact {exact}"
            );
        }
    }

    #[test]
    fn quantile_edge_cases() {
        assert_eq!(hist(&[], 0, 0).p50(), None);
        // One sample of value 7 (bucket 3 = [4,7]): every quantile is
        // the bucket midpoint since nothing narrows it down.
        let one = from_samples(&[7]);
        assert_eq!(one.quantile(0.0), one.quantile(1.0));
        let v = one.p50().expect("one sample");
        assert!((4.0..=7.0).contains(&v));
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn quantile_rejects_out_of_range() {
        let _ = from_samples(&[1]).quantile(1.5);
    }
}
