//! Zero-dependency observability for the adaptive counting network.
//!
//! Every layer of this workspace — the discrete-event simulator, the
//! distributed and concurrent runtimes, the estimator, and the bench
//! harness — reports into one [`Registry`] of named metrics plus a
//! structured [`Event`] stream with pluggable [`EventSink`]s. The layer
//! is strictly **observation-only**: recording a metric or emitting an
//! event never changes control flow, consumes randomness, or otherwise
//! perturbs the system under measurement (the determinism regression
//! tests in the root crate pin this).
//!
//! # Design
//!
//! - **Cheap hot paths.** Metrics are plain atomics behind `Arc`
//!   handles resolved once by name ([`Counter`], [`Gauge`],
//!   [`Histogram`]); recording is a single `fetch_add`/`store`. Keys
//!   are `&'static str` under the `acn.<layer>.<name>` convention.
//! - **Disabled is free-ish.** [`Registry::disabled`] yields a handle
//!   whose metric operations are a `None` branch and whose event
//!   emission drops immediately, so instrumented code needs no `cfg`s
//!   or `Option` plumbing.
//! - **Log₂ histograms.** [`Histogram`] buckets samples by
//!   `floor(log2(v)) + 1` (bucket 0 holds zeros), giving 65 fixed
//!   buckets that cover all of `u64` — cheap, allocation-free, and
//!   precise enough for latency/hop/depth distributions.
//! - **Snapshots and diffs.** [`Registry::snapshot`] captures every
//!   metric into an ordered [`Snapshot`]; [`Snapshot::diff`] isolates a
//!   measurement window; both render human-readable (`Display`) and
//!   machine-readable ([`Snapshot::to_json`]).
//! - **Events.** [`Event`] is `{t, node, component, kind, fields}`;
//!   sinks include an in-memory [`RingBufferSink`] for tests and a
//!   [`JsonlSink`] for harness artifacts.
//!
//! # Example
//!
//! ```
//! use acn_telemetry::{Event, Registry, RingBufferSink};
//!
//! let registry = Registry::new();
//!
//! // Metric handles are resolved once and then shared freely.
//! let tokens = registry.counter("acn.example.tokens");
//! let latency = registry.histogram("acn.example.latency");
//! tokens.inc();
//! tokens.add(2);
//! latency.record(37);
//!
//! // Structured events flow to every installed sink.
//! let sink = RingBufferSink::with_capacity(64);
//! registry.add_sink(sink.clone());
//! registry.emit(Event::new("split.begin").at(10).node(3).with("level", 1u64));
//! assert_eq!(sink.count_kind("split.begin"), 1);
//!
//! // Snapshots capture, diff, and render the whole registry.
//! let before = registry.snapshot();
//! tokens.add(5);
//! let delta = registry.snapshot().diff(&before);
//! assert_eq!(delta.counter("acn.example.tokens"), Some(5));
//! assert!(delta.to_json().contains("\"acn.example.tokens\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod json;
mod metrics;
mod sink;
mod snapshot;

pub use event::{Event, Value};
pub use metrics::{bucket_bounds, bucket_of, Counter, Gauge, Histogram, BUCKET_COUNT};
pub use sink::{EventSink, JsonlSink, RingBufferSink};
pub use snapshot::{HistogramSnapshot, MetricValue, Snapshot};

use std::collections::HashMap;
// lint: std-sync-ok(acn-telemetry is zero-dependency by policy; it cannot pull in parking_lot)
use std::sync::{Arc, Mutex};

use metrics::{CounterCell, GaugeCell, HistogramCell};

enum Handle {
    Counter(Arc<CounterCell>),
    Gauge(Arc<GaugeCell>),
    Histogram(Arc<HistogramCell>),
}

struct Inner {
    metrics: Mutex<HashMap<&'static str, Handle>>,
    sinks: Mutex<Vec<Arc<dyn EventSink>>>,
}

/// A registry of named metrics and an event bus, shared by `Clone`.
///
/// See the [crate docs](crate) for the full tour. A
/// [disabled](Registry::disabled) registry accepts every call as a
/// no-op, so instrumented code never branches on "is telemetry on".
#[derive(Clone)]
pub struct Registry {
    inner: Option<Arc<Inner>>,
}

impl Registry {
    /// An active registry.
    #[must_use]
    pub fn new() -> Self {
        Registry {
            inner: Some(Arc::new(Inner {
                metrics: Mutex::new(HashMap::new()),
                sinks: Mutex::new(Vec::new()),
            })),
        }
    }

    /// A no-op registry: metric handles do nothing, events are dropped,
    /// snapshots are empty. This is the [`Default`].
    #[must_use]
    pub fn disabled() -> Self {
        Registry { inner: None }
    }

    /// Whether this registry records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    // lint: std-sync-ok(zero-dependency crate policy; guard type of the std mutex above)
    fn lock_metrics(&self) -> Option<std::sync::MutexGuard<'_, HashMap<&'static str, Handle>>> {
        self.inner
            .as_ref()
            .map(|i| i.metrics.lock().unwrap_or_else(std::sync::PoisonError::into_inner))
    }

    /// The counter registered under `name` (created on first use).
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric
    /// kind.
    #[must_use]
    pub fn counter(&self, name: &'static str) -> Counter {
        let Some(mut metrics) = self.lock_metrics() else {
            return Counter::noop();
        };
        let handle = metrics.entry(name).or_insert_with(|| Handle::Counter(Arc::default()));
        match handle {
            Handle::Counter(cell) => Counter::active(Arc::clone(cell)),
            _ => panic!("metric '{name}' is registered with a different kind"),
        }
    }

    /// The gauge registered under `name` (created on first use).
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric
    /// kind.
    #[must_use]
    pub fn gauge(&self, name: &'static str) -> Gauge {
        let Some(mut metrics) = self.lock_metrics() else {
            return Gauge::noop();
        };
        let handle = metrics.entry(name).or_insert_with(|| Handle::Gauge(Arc::default()));
        match handle {
            Handle::Gauge(cell) => Gauge::active(Arc::clone(cell)),
            _ => panic!("metric '{name}' is registered with a different kind"),
        }
    }

    /// The log₂-bucketed histogram registered under `name` (created on
    /// first use).
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric
    /// kind.
    #[must_use]
    pub fn histogram(&self, name: &'static str) -> Histogram {
        let Some(mut metrics) = self.lock_metrics() else {
            return Histogram::noop();
        };
        let handle = metrics.entry(name).or_insert_with(|| Handle::Histogram(Arc::default()));
        match handle {
            Handle::Histogram(cell) => Histogram::active(Arc::clone(cell)),
            _ => panic!("metric '{name}' is registered with a different kind"),
        }
    }

    /// Installs an event sink; every subsequent [`emit`](Registry::emit)
    /// reaches it.
    pub fn add_sink(&self, sink: Arc<dyn EventSink>) {
        if let Some(inner) = &self.inner {
            inner
                .sinks
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push(sink);
        }
    }

    /// Broadcasts `event` to every installed sink (dropped when the
    /// registry is disabled or has no sinks).
    pub fn emit(&self, event: Event) {
        if let Some(inner) = &self.inner {
            let sinks = inner.sinks.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            for sink in sinks.iter() {
                sink.emit(&event);
            }
        }
    }

    /// Flushes every installed sink (e.g. the JSONL writer's buffer).
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            let sinks = inner.sinks.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            for sink in sinks.iter() {
                sink.flush();
            }
        }
    }

    /// Captures the current value of every registered metric.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::default();
        let Some(metrics) = self.lock_metrics() else {
            return snap;
        };
        for (&name, handle) in metrics.iter() {
            let value = match handle {
                Handle::Counter(c) => MetricValue::Counter(c.get()),
                Handle::Gauge(g) => MetricValue::Gauge(g.get()),
                Handle::Histogram(h) => MetricValue::Histogram(h.snapshot()),
            };
            snap.insert(name, value);
        }
        snap
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::disabled()
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "Registry(disabled)"),
            Some(_) => {
                let snap = self.snapshot();
                f.debug_struct("Registry").field("metrics", &snap.len()).finish()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share() {
        let reg = Registry::new();
        let a = reg.counter("acn.test.c");
        let b = reg.counter("acn.test.c");
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
        assert_eq!(reg.snapshot().counter("acn.test.c"), Some(5));
    }

    #[test]
    fn gauges_hold_latest_value() {
        let reg = Registry::new();
        let g = reg.gauge("acn.test.g");
        g.set(1.5);
        g.set(-0.25);
        assert_eq!(g.get(), -0.25);
        assert_eq!(reg.snapshot().gauge("acn.test.g"), Some(-0.25));
    }

    #[test]
    fn histogram_counts_and_sums() {
        let reg = Registry::new();
        let h = reg.histogram("acn.test.h");
        for v in [0u64, 1, 1, 7, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1033);
        let snap = reg.snapshot();
        let hs = snap.histogram("acn.test.h").expect("histogram present");
        assert_eq!(hs.buckets[bucket_of(0)], 1);
        assert_eq!(hs.buckets[bucket_of(1)], 2);
        assert_eq!(hs.buckets[bucket_of(7)], 1);
        assert_eq!(hs.buckets[bucket_of(1024)], 1);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_collisions_panic() {
        let reg = Registry::new();
        let _ = reg.counter("acn.test.kind");
        let _ = reg.gauge("acn.test.kind");
    }

    #[test]
    fn disabled_registry_is_inert() {
        let reg = Registry::disabled();
        assert!(!reg.is_enabled());
        let c = reg.counter("acn.test.noop");
        c.add(10);
        assert_eq!(c.get(), 0);
        let h = reg.histogram("acn.test.noop_h");
        h.record(3);
        assert_eq!(h.count(), 0);
        let sink = RingBufferSink::with_capacity(4);
        reg.add_sink(sink.clone());
        reg.emit(Event::new("ignored"));
        assert_eq!(sink.len(), 0);
        assert!(reg.snapshot().is_empty());
    }

    #[test]
    fn snapshot_diff_isolates_a_window() {
        let reg = Registry::new();
        let c = reg.counter("acn.test.window");
        let h = reg.histogram("acn.test.window_h");
        c.add(3);
        h.record(10);
        let before = reg.snapshot();
        c.add(9);
        h.record(20);
        h.record(2);
        let delta = reg.snapshot().diff(&before);
        assert_eq!(delta.counter("acn.test.window"), Some(9));
        let hd = delta.histogram("acn.test.window_h").expect("present");
        assert_eq!(hd.count, 2);
        assert_eq!(hd.sum, 22);
    }

    #[test]
    fn events_reach_all_sinks_in_order() {
        let reg = Registry::new();
        let a = RingBufferSink::with_capacity(8);
        let b = RingBufferSink::with_capacity(8);
        reg.add_sink(a.clone());
        reg.add_sink(b.clone());
        reg.emit(Event::new("x").at(1));
        reg.emit(Event::new("y").at(2).with("n", 3u64));
        for sink in [a, b] {
            let events = sink.events();
            assert_eq!(events.len(), 2);
            assert_eq!(events[0].kind, "x");
            assert_eq!(events[1].field("n"), Some(&Value::U64(3)));
        }
    }

    #[test]
    fn registry_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Registry>();
        assert_send_sync::<Counter>();
        assert_send_sync::<Gauge>();
        assert_send_sync::<Histogram>();
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let reg = Registry::new();
        let c = reg.counter("acn.test.mt");
        let h = reg.histogram("acn.test.mt_h");
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = c.clone();
            let h = h.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..1000u64 {
                    c.inc();
                    h.record(i);
                }
            }));
        }
        for handle in handles {
            handle.join().expect("worker panicked");
        }
        assert_eq!(c.get(), 4000);
        assert_eq!(h.count(), 4000);
        assert_eq!(h.sum(), 4 * (999 * 1000 / 2));
    }
}
