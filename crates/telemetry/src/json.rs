//! Tiny hand-rolled JSON emission helpers shared by events and
//! snapshots. Only what this crate needs: string escaping and finite
//! float rendering (non-finite floats become `null`).

use std::fmt::Write as _;

/// Appends `s` to `out` as a JSON string literal (with quotes).
pub(crate) fn push_str_literal(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` to `out` as a JSON number, or `null` when non-finite.
pub(crate) fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        let mut out = String::new();
        push_str_literal(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn floats_render_finite_or_null() {
        let mut out = String::new();
        push_f64(&mut out, 1.5);
        out.push(' ');
        push_f64(&mut out, f64::NAN);
        out.push(' ');
        push_f64(&mut out, f64::INFINITY);
        assert_eq!(out, "1.5 null null");
    }
}
