//! Property tests for the log₂ histogram (satellite of the
//! observability PR): bucket layout, sample placement, and count/sum
//! round-trips through `Snapshot::diff`.

use acn_telemetry::{bucket_bounds, bucket_of, Registry, BUCKET_COUNT};
use proptest::prelude::*;

proptest! {
    /// Bucket bounds tile the u64 range: monotone, contiguous, gap-free.
    #[test]
    fn bucket_bounds_are_monotone_and_contiguous(i in 1usize..BUCKET_COUNT) {
        let (prev_lo, prev_hi) = bucket_bounds(i - 1);
        let (lo, hi) = bucket_bounds(i);
        prop_assert!(prev_lo <= prev_hi, "bucket {} inverted", i - 1);
        prop_assert!(lo <= hi, "bucket {i} inverted");
        prop_assert_eq!(lo, prev_hi + 1, "gap or overlap between buckets {} and {}", i - 1, i);
    }

    /// Every sample lands in exactly the bucket whose bounds contain it.
    #[test]
    fn every_sample_falls_in_exactly_one_bucket(v in any::<u64>()) {
        let b = bucket_of(v);
        prop_assert!(b < BUCKET_COUNT);
        let (lo, hi) = bucket_bounds(b);
        prop_assert!(lo <= v && v <= hi, "{v} outside bucket {b} = [{lo}, {hi}]");
        // No other bucket contains it (bounds are contiguous, so it is
        // enough to check the neighbours).
        if b > 0 {
            let (_, prev_hi) = bucket_bounds(b - 1);
            prop_assert!(prev_hi < v);
        }
        if b + 1 < BUCKET_COUNT {
            let (next_lo, _) = bucket_bounds(b + 1);
            prop_assert!(v < next_lo);
        }
    }

    /// Recording arbitrary samples: count and sum survive the round trip
    /// through `Registry::snapshot` and `Snapshot::diff`, and the bucket
    /// vector accounts for every sample.
    ///
    /// Samples are capped at 2^56 so the aggregate sum cannot overflow
    /// `u64`: histogram sums (like all metric totals) assume the
    /// lifetime total fits in a `u64`, which every realistic
    /// duration/size series satisfies by a wide margin.
    #[test]
    fn count_and_sum_round_trip_through_snapshot_diff(
        warmup in proptest::collection::vec(0u64..(1 << 56), 0..20),
        samples in proptest::collection::vec(0u64..(1 << 56), 1..100),
    ) {
        let registry = Registry::new();
        let hist = registry.histogram("acn.test.prop_hist");
        for &v in &warmup {
            hist.record(v);
        }
        let before = registry.snapshot();
        for &v in &samples {
            hist.record(v);
        }
        let delta = registry.snapshot().diff(&before);
        let snap = delta.histogram("acn.test.prop_hist").expect("histogram in diff");
        prop_assert_eq!(snap.count, samples.len() as u64);
        let expected_sum: u64 = samples.iter().sum();
        prop_assert_eq!(snap.sum, expected_sum, "sum mismatch");
        prop_assert_eq!(
            snap.buckets.iter().sum::<u64>(),
            samples.len() as u64,
            "buckets must account for every sample"
        );
        // Each sample's bucket is non-empty in the delta.
        for &v in &samples {
            prop_assert!(snap.buckets[bucket_of(v)] > 0);
        }
    }
}
