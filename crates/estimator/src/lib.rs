//! Decentralized system-size and level estimation (paper Section 3.1).
//!
//! Each node `v` estimates the system size `N` purely from the ring
//! distances to its successors, in the two steps of the paper:
//!
//! 1. A coarse estimate of `log N`:
//!    `e_v = log2(1 / d(v, succ_1(v)))`.
//! 2. A refined estimate using `k = 4 * ceil(e_v)` successors:
//!    `n_v = k / d(v, succ_k(v))`.
//!
//! Lemma 3.2 of the paper shows that with high probability **every**
//! node's estimate lies within `[N/10, 10N]`; Lemma 3.3 then bounds the
//! derived *level estimates* `l_v = max{k : phi(k) < n_v}` within
//! `[l* - 4, l* + 4]` of the ideal level `l*`. The tests in this crate
//! check both statements empirically on seeded rings, and the
//! `exp_size_estimation` / `exp_level_estimates` harnesses in `acn-bench`
//! reproduce the corresponding experiment tables.
//!
//! # Example
//!
//! ```
//! use acn_overlay::Ring;
//! use acn_estimator::{estimate_size, level_estimate};
//!
//! let mut ring = Ring::new();
//! let mut seed = 9u64;
//! for _ in 0..500 {
//!     ring.add_random_node(&mut seed);
//! }
//! let node = ring.nodes().next().unwrap();
//! let est = estimate_size(&ring, node);
//! assert!(est.size >= 50.0 && est.size <= 5000.0);
//! let level = level_estimate(est.size);
//! assert!(level >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use acn_overlay::{NodeId, Ring};
use acn_topology::{level_for_size, PHI_MAX_LEVEL};

/// The smallest meaningful ring distance: one identifier step on the
/// `2^64`-point ring. Distances returned by [`Ring::walk_distance`] are
/// clamped here before any division so that degenerate rings (adjacent
/// or duplicate identifiers, float underflow in long walks) can never
/// drive `log_size` or `size` to infinity — which would otherwise
/// saturate the step-2 walk length at `usize::MAX` and send
/// [`level_estimate`] into an unbounded search.
const MIN_STEP: f64 = 1.0 / 18_446_744_073_709_551_616.0; // 2^-64

/// The outcome of a node's local size estimation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizeEstimate {
    /// Step 1: the coarse estimate `e_v` of `log2 N`.
    pub log_size: f64,
    /// The number of successors walked in step 2 (`k = 4 * ceil(e_v)`,
    /// at least 1).
    pub walk_length: usize,
    /// Step 2: the refined size estimate `n_v`.
    pub size: f64,
}

/// Runs the paper's two-step size estimation at `node`.
///
/// The only information consumed is the ring distance covered by walking
/// `k` successors — exactly what a real Chord node obtains by following
/// successor pointers ([`Ring::walk_distance`]).
///
/// # Panics
///
/// Panics if the ring is empty or does not contain `node`.
#[must_use]
pub fn estimate_size(ring: &Ring, node: NodeId) -> SizeEstimate {
    assert!(ring.contains(node), "estimate_size at unknown node {node}");
    // Step 1: e_v = log2(1 / d(v, succ_1(v))). The distance is clamped
    // into [2^-64, 1] — a full wrap of a singleton ring on the high end,
    // one identifier step on the low end — so log_size lies in [0, 64]
    // and the derived walk length is bounded even when successors sit on
    // adjacent identifiers.
    let d1 = ring.walk_distance(node, 1).clamp(MIN_STEP, 1.0);
    let log_size = (1.0 / d1).log2().max(0.0);
    // Step 2: k = 4 * ceil(e_v), clamped to at least 1 (singleton and
    // well-spread two-node rings take this branch: e_v rounds to 0 or 1).
    let walk_length = ((4.0 * log_size.ceil()) as usize).max(1);
    let dk = ring.walk_distance(node, walk_length).max(MIN_STEP);
    let size = (walk_length as f64 / dk).max(1.0);
    SizeEstimate { log_size, walk_length, size }
}

/// The level estimate `l_v` derived from a size estimate: the largest
/// level `k` with `phi(k) < n_v` (paper, "Local Level Estimates").
///
/// Capped at [`PHI_MAX_LEVEL`]: `phi` saturates there (`phi(45)` already
/// exceeds `10^38`, far beyond any representable system), so searching
/// higher levels is meaningless — and without the cap a non-finite or
/// astronomically large `size` (as a buggy or adversarial estimator
/// might produce) would spin this loop forever against the saturated
/// `phi`. Non-finite sizes map to the extremes: `+inf` to the cap,
/// `NaN` (no information) to level 0.
///
/// # Example
///
/// ```
/// use acn_estimator::level_estimate;
///
/// assert_eq!(level_estimate(1.0), 0);
/// assert_eq!(level_estimate(6.5), 1);  // phi(1) = 6 < 6.5
/// assert_eq!(level_estimate(30.0), 2); // phi(2) = 24 < 30
/// assert_eq!(level_estimate(f64::INFINITY), acn_topology::PHI_MAX_LEVEL);
/// ```
#[must_use]
pub fn level_estimate(size: f64) -> usize {
    // The NaN check comes first so an estimate carrying no information
    // acts like the smallest system rather than the largest.
    if size.is_nan() || size <= 1.0 {
        return 0;
    }
    // phi is integral; phi(k) < size  <=>  phi(k) < ceil(size) unless
    // size is integral — use the strict comparison on the ceiling minus
    // epsilon handling via direct f64 comparison against phi.
    let mut level = 0;
    while level < PHI_MAX_LEVEL && (acn_topology::phi(level + 1) as f64) < size {
        level += 1;
    }
    level
}

/// The *ideal* level `l*` for a true system size `n`: the largest level
/// `k` with `phi(k) < n`. This is what a globally informed planner would
/// pick (paper, "Local Level Estimates").
#[must_use]
pub fn ideal_level(n: usize) -> usize {
    level_for_size(n as u128)
}

/// Convenience: the level estimate a node would act on, end to end.
///
/// # Panics
///
/// Panics if the ring is empty or does not contain `node`.
#[must_use]
pub fn node_level(ring: &Ring, node: NodeId) -> usize {
    level_estimate(estimate_size(ring, node).size)
}

/// An estimator front-end that records telemetry for every estimate.
///
/// All handles are no-ops by [`Default`], so the instrumented entry
/// points are free when no registry is attached. Telemetry is
/// observation-only: the estimates returned are bit-identical to
/// [`estimate_size`] / [`node_level`].
///
/// Metrics (under `acn.estimator.*`):
///
/// - `size_estimate` (gauge) — the latest refined estimate `n_v`.
/// - `size_error` (gauge) — the latest relative error `|n_v - N| / N`
///   against the ring's true size (the simulator knows ground truth; a
///   real deployment would leave this gauge untouched).
/// - `level` (gauge) — the latest derived level estimate `l_v`.
/// - `walk_length` (histogram) — successors walked per estimate.
/// - `estimates` (counter) — estimates performed.
///
/// Each estimate also emits an `estimator.estimate` event carrying the
/// node, estimate, ground truth, relative error, and level.
#[derive(Debug, Default, Clone)]
pub struct InstrumentedEstimator {
    size: acn_telemetry::Gauge,
    error: acn_telemetry::Gauge,
    level: acn_telemetry::Gauge,
    walk_length: acn_telemetry::Histogram,
    estimates: acn_telemetry::Counter,
    registry: acn_telemetry::Registry,
}

impl InstrumentedEstimator {
    /// Registers the `acn.estimator.*` metrics with `registry`.
    #[must_use]
    pub fn attach(registry: &acn_telemetry::Registry) -> Self {
        InstrumentedEstimator {
            size: registry.gauge("acn.estimator.size_estimate"),
            error: registry.gauge("acn.estimator.size_error"),
            level: registry.gauge("acn.estimator.level"),
            walk_length: registry.histogram("acn.estimator.walk_length"),
            estimates: registry.counter("acn.estimator.estimates"),
            registry: registry.clone(),
        }
    }

    /// [`estimate_size`] plus telemetry (see the type docs).
    ///
    /// # Panics
    ///
    /// Panics if the ring is empty or does not contain `node`.
    pub fn estimate(&self, ring: &Ring, node: NodeId) -> SizeEstimate {
        self.estimate_at(ring, node, 0)
    }

    /// [`estimate`](Self::estimate) with an explicit event timestamp
    /// (e.g. the simulation clock).
    ///
    /// # Panics
    ///
    /// Panics if the ring is empty or does not contain `node`.
    pub fn estimate_at(&self, ring: &Ring, node: NodeId, t: u64) -> SizeEstimate {
        let est = estimate_size(ring, node);
        let truth = ring.len() as f64;
        let error = (est.size - truth).abs() / truth;
        let level = level_estimate(est.size);
        self.estimates.inc();
        self.size.set(est.size);
        self.error.set(error);
        self.level.set(level as f64);
        self.walk_length.record(est.walk_length as u64);
        self.registry.emit(
            acn_telemetry::Event::new("estimator.estimate")
                .at(t)
                .node(node.0)
                .with("size", est.size)
                .with("truth", truth)
                .with("error", error)
                .with("level", level as u64),
        );
        est
    }

    /// [`node_level`] plus telemetry (see the type docs).
    ///
    /// # Panics
    ///
    /// Panics if the ring is empty or does not contain `node`.
    pub fn node_level(&self, ring: &Ring, node: NodeId) -> usize {
        self.node_level_at(ring, node, 0)
    }

    /// [`node_level`](Self::node_level) with an explicit event
    /// timestamp (e.g. the simulation clock).
    ///
    /// # Panics
    ///
    /// Panics if the ring is empty or does not contain `node`.
    pub fn node_level_at(&self, ring: &Ring, node: NodeId, t: u64) -> usize {
        level_estimate(self.estimate_at(ring, node, t).size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded_ring(n: usize, seed: u64) -> Ring {
        let mut ring = Ring::new();
        let mut s = seed;
        for _ in 0..n {
            ring.add_random_node(&mut s);
        }
        ring
    }

    #[test]
    fn singleton_ring_estimates_one() {
        let mut ring = Ring::new();
        ring.add_node(NodeId(12345));
        let node = ring.nodes().next().unwrap();
        let est = estimate_size(&ring, node);
        assert_eq!(est.walk_length, 1);
        assert!((est.size - 1.0).abs() < 1e-9, "got {}", est.size);
        assert_eq!(node_level(&ring, node), 0);
    }

    #[test]
    fn two_node_ring_estimates_are_positive_and_finite() {
        let mut ring = Ring::new();
        ring.add_node(NodeId(0));
        ring.add_node(NodeId(1 << 63));
        for node in ring.nodes().collect::<Vec<_>>() {
            let est = estimate_size(&ring, node);
            assert!(est.size.is_finite() && est.size >= 1.0);
            // A well-spread two-node ring should estimate near 2, and
            // certainly derive a sane level.
            assert!(est.size <= 4.0, "two-node estimate {} way off", est.size);
            assert!(node_level(&ring, node) <= 1);
        }
    }

    #[test]
    fn adjacent_identifier_ring_stays_finite_and_terminates() {
        // Degenerate ring: two nodes one identifier step apart. Walking
        // from NodeId(0) to NodeId(1) covers 2^-64 of the ring — the
        // smallest possible distance. Before the clamps, this shape blew
        // log_size up toward infinity (and a hypothetical zero distance
        // saturated the step-2 walk at usize::MAX, an effective hang).
        let mut ring = Ring::new();
        ring.add_node(NodeId(0));
        ring.add_node(NodeId(1));
        for node in ring.nodes().collect::<Vec<_>>() {
            let est = estimate_size(&ring, node);
            assert!(est.log_size.is_finite() && est.log_size <= 64.0);
            assert!(est.walk_length <= 4 * 64, "walk {} unbounded", est.walk_length);
            assert!(est.size.is_finite() && est.size >= 1.0, "size {}", est.size);
            // The level must terminate and respect the phi cap.
            assert!(node_level(&ring, node) <= acn_topology::PHI_MAX_LEVEL);
        }
    }

    #[test]
    fn level_estimate_caps_at_phi_max_level() {
        use acn_topology::PHI_MAX_LEVEL;
        // Beyond phi's saturation point the search must stop at the cap
        // rather than spin on `phi(k) < size` forever.
        assert_eq!(level_estimate(f64::INFINITY), PHI_MAX_LEVEL);
        assert_eq!(level_estimate(f64::MAX), PHI_MAX_LEVEL);
        assert_eq!(level_estimate(1e300), PHI_MAX_LEVEL);
        // NaN carries no information: act like the smallest system.
        assert_eq!(level_estimate(f64::NAN), 0);
        assert_eq!(level_estimate(f64::NEG_INFINITY), 0);
        // Ordinary sizes are unaffected by the cap.
        assert_eq!(level_estimate(30.0), 2);
    }

    /// Lemma 3.2: with high probability every node's estimate lies in
    /// [N/10, 10N]. Checked over several seeds and sizes; with our seeds
    /// this holds for every node.
    #[test]
    fn lemma_3_2_estimates_within_factor_ten() {
        for &n in &[64usize, 256, 1024] {
            for seed in 0..5u64 {
                let ring = seeded_ring(n, seed * 1000 + 17);
                let mut worst_low = f64::INFINITY;
                let mut worst_high: f64 = 0.0;
                for node in ring.nodes().collect::<Vec<_>>() {
                    let est = estimate_size(&ring, node).size;
                    worst_low = worst_low.min(est / n as f64);
                    worst_high = worst_high.max(est / n as f64);
                }
                assert!(
                    worst_low >= 0.1,
                    "N={n} seed={seed}: worst underestimate ratio {worst_low}"
                );
                assert!(
                    worst_high <= 10.0,
                    "N={n} seed={seed}: worst overestimate ratio {worst_high}"
                );
            }
        }
    }

    /// Lemma 3.3: all level estimates in [l* - 4, l* + 4].
    #[test]
    fn lemma_3_3_level_estimates_near_ideal() {
        for &n in &[32usize, 128, 512, 2048] {
            for seed in 0..3u64 {
                let ring = seeded_ring(n, seed * 31 + 5);
                let lstar = ideal_level(n) as i64;
                for node in ring.nodes().collect::<Vec<_>>() {
                    let lv = node_level(&ring, node) as i64;
                    assert!(
                        (lv - lstar).abs() <= 4,
                        "N={n} seed={seed} node {node}: l_v={lv} l*={lstar}"
                    );
                }
            }
        }
    }

    #[test]
    fn instrumented_estimator_matches_plain_and_records_error() {
        let registry = acn_telemetry::Registry::new();
        let inst = InstrumentedEstimator::attach(&registry);
        let ring = seeded_ring(256, 7);
        let nodes: Vec<NodeId> = ring.nodes().collect();
        for &node in nodes.iter().take(10) {
            let plain = estimate_size(&ring, node);
            let traced = inst.estimate(&ring, node);
            assert_eq!(plain, traced, "telemetry must be observation-only");
            assert_eq!(inst.node_level(&ring, node), node_level(&ring, node));
        }
        let snap = registry.snapshot();
        assert_eq!(snap.counter("acn.estimator.estimates"), Some(20));
        let err = snap.gauge("acn.estimator.size_error").expect("error gauge");
        assert!((0.0..10.0).contains(&err), "relative error {err} out of range");
        let walks = snap.histogram("acn.estimator.walk_length").expect("walk histogram");
        assert_eq!(walks.count, 20);
        assert!(walks.sum > 0);
        assert!(snap.gauge("acn.estimator.level").is_some());
        assert!(snap.gauge("acn.estimator.size_estimate").is_some());
    }

    #[test]
    fn default_instrumented_estimator_is_a_noop() {
        let inst = InstrumentedEstimator::default();
        let ring = seeded_ring(64, 3);
        let node = ring.nodes().next().unwrap();
        assert_eq!(inst.estimate(&ring, node), estimate_size(&ring, node));
    }

    #[test]
    fn ideal_level_follows_phi() {
        assert_eq!(ideal_level(1), 0);
        assert_eq!(ideal_level(2), 0);
        assert_eq!(ideal_level(7), 1); // phi(1)=6 < 7
        assert_eq!(ideal_level(24), 1);
        assert_eq!(ideal_level(25), 2); // phi(2)=24 < 25
    }

    #[test]
    fn level_estimate_monotone_in_size() {
        let mut prev = 0;
        for s in 1..2000 {
            let l = level_estimate(s as f64);
            assert!(l >= prev);
            prev = l;
        }
    }

    #[test]
    fn clustered_identifiers_break_the_estimates() {
        // The paper's analysis *requires* uniformly random identifiers
        // (Section 1.4). This test documents that the requirement is
        // real: a ring whose nodes cluster in a tiny arc produces wildly
        // wrong size estimates, so deployments must not derive node ids
        // from correlated data.
        let n = 256usize;
        let mut ring = Ring::new();
        for i in 0..n {
            // All nodes within a 2^-20 fraction of the ring.
            ring.add_node(NodeId((i as u64) << 24));
        }
        let mut worst: f64 = 1.0;
        for node in ring.nodes().take(32).collect::<Vec<_>>() {
            let est = estimate_size(&ring, node).size;
            worst = worst.max(est / n as f64);
        }
        assert!(
            worst > 10.0,
            "clustered ids unexpectedly estimated well (worst ratio {worst})"
        );
    }

    #[test]
    fn walk_length_scales_with_log_n() {
        // k = 4*ceil(e_v) should be Theta(log N): check it grows and
        // stays within sane bounds on typical rings.
        for &n in &[64usize, 1024] {
            let ring = seeded_ring(n, 99);
            let logn = (n as f64).log2();
            let mut total = 0usize;
            let nodes: Vec<NodeId> = ring.nodes().collect();
            for &node in &nodes {
                let est = estimate_size(&ring, node);
                assert!(
                    est.walk_length <= (8.0 * logn) as usize + 8,
                    "N={n}: walk {} too long",
                    est.walk_length
                );
                total += est.walk_length;
            }
            let avg = total as f64 / nodes.len() as f64;
            assert!(avg >= 2.0 * logn, "N={n}: average walk {avg} too short");
        }
    }
}
