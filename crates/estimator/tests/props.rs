//! Property tests for the size estimator.

use acn_estimator::{estimate_size, ideal_level, level_estimate};
use acn_overlay::Ring;
use proptest::prelude::*;

proptest! {
    /// Estimates stay within the paper's factor-10 band for random rings
    /// of random sizes (Lemma 3.2 as a property).
    #[test]
    fn estimates_within_band(n in 8usize..512, seed in any::<u64>()) {
        let mut ring = Ring::new();
        let mut s = seed;
        for _ in 0..n {
            ring.add_random_node(&mut s);
        }
        for node in ring.nodes().take(16).collect::<Vec<_>>() {
            let est = estimate_size(&ring, node).size;
            prop_assert!(est >= n as f64 / 10.0, "n={n} est={est}");
            prop_assert!(est <= 10.0 * n as f64, "n={n} est={est}");
        }
    }

    /// Level estimates are monotone in the size estimate and consistent
    /// with the ideal level at integral points.
    #[test]
    fn level_estimate_monotone(a in 1u64..100_000, b in 1u64..100_000) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(level_estimate(lo as f64) <= level_estimate(hi as f64));
        prop_assert_eq!(level_estimate(lo as f64), ideal_level(lo as usize));
    }
}
