//! A deterministic discrete-event message-passing simulator.
//!
//! This crate is the execution substrate for the distributed runtime of
//! the adaptive counting network: each overlay node is a [`Process`], all
//! interaction happens through timestamped messages, and the simulator
//! delivers them in deterministic order from a seeded random latency
//! model. Links are FIFO per (sender, receiver) pair — the property the
//! merge-drain protocol of the paper's Section 2.2 relies on — and
//! asynchrony is otherwise unconstrained.
//!
//! The simulator is generic over the message type, so it carries no
//! application knowledge. Processes can be added and removed while the
//! simulation runs (node joins, leaves, and crashes); messages addressed
//! to absent processes are counted and dropped.
//!
//! # Delivery order and the `DeliveryPolicy` seam
//!
//! *Which pending event fires next* is decided by the simulator's
//! [`DeliveryPolicy`]:
//!
//! - [`DeliveryPolicy::Seeded`] (the default, and the zero-overhead
//!   fast path): events fire in the explicit total order documented on
//!   the internal heap key — `(time, destination, kind, sender/tag,
//!   sequence)`, with messages before timers at the same instant. The
//!   timestamps come from the seeded latency model, so runs are
//!   reproducible from the [`SimConfig::seed`].
//! - [`DeliveryPolicy::External`]: the environment — in this workspace,
//!   the `acn-check` distributed-protocol explorer — picks each
//!   delivery via [`Simulator::fire`] from the set returned by
//!   [`Simulator::enabled_events`]. The latency model still stamps
//!   every event (so [`Context::now`] stays meaningful), but the
//!   *order* is unconstrained except for per-link FIFO: only the
//!   oldest in-flight message of each `(from, to)` link is enabled.
//!   Time is taken from the fired event and may therefore run
//!   backwards across links; handlers only ever observe their own
//!   event's timestamp, which is what makes deliveries to different
//!   processes commute for the explorer's partial-order reduction.
//!
//! # Example
//!
//! ```
//! use acn_simnet::{Context, Process, ProcessId, SimConfig, Simulator};
//!
//! struct Relay;
//! impl Process<u32> for Relay {
//!     fn on_message(&mut self, ctx: &mut Context<'_, u32>, _from: ProcessId, msg: u32) {
//!         if msg > 0 {
//!             // Bounce the (decremented) message to the other process.
//!             let peer = if ctx.self_id() == ProcessId(1) { ProcessId(2) } else { ProcessId(1) };
//!             ctx.send(peer, msg - 1);
//!         }
//!     }
//! }
//!
//! let mut sim = Simulator::new(SimConfig::default());
//! sim.add_process(ProcessId(1), Relay);
//! sim.add_process(ProcessId(2), Relay);
//! sim.send_external(ProcessId(1), 10);
//! assert!(sim.run_until_idle(10_000));
//! assert_eq!(sim.stats().messages_delivered, 11);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, BinaryHeap};
use std::fmt;

use acn_sync::{RealSync, SyncApi};
use acn_telemetry::{Counter, Event as TelemetryEvent, Gauge, Histogram, Registry};
use acn_trace::{Span, Tracer, SYSTEM_TRACE};

/// Identifier of a process (the counting layer uses the overlay node id).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(pub u64);

impl ProcessId {
    /// The pseudo-sender used by [`Simulator::send_external`] for
    /// messages injected by the environment (clients, harnesses).
    pub const EXTERNAL: ProcessId = ProcessId(u64::MAX);
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == ProcessId::EXTERNAL {
            write!(f, "p(external)")
        } else {
            write!(f, "p{:x}", self.0)
        }
    }
}

/// Behaviour of a simulated node.
pub trait Process<M> {
    /// Handles a message delivered to this process.
    fn on_message(&mut self, ctx: &mut Context<'_, M>, from: ProcessId, msg: M);

    /// Handles a timer previously set with [`Context::set_timer`]. The
    /// default implementation ignores timers.
    fn on_timer(&mut self, ctx: &mut Context<'_, M>, tag: u64) {
        let _ = (ctx, tag);
    }
}

/// Configuration of the simulator's latency model and RNG seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Minimum one-way message latency, in simulated time units.
    pub base_latency: u64,
    /// Maximum extra random latency added per message.
    pub jitter: u64,
    /// Drop probability (per mille) for messages sent through
    /// [`Context::send_lossy`]. Reliable sends are never dropped.
    pub loss_per_mille: u32,
    /// Seed of the deterministic RNG driving latencies.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig { base_latency: 10, jitter: 10, loss_per_mille: 0, seed: 0xAC17 }
    }
}

/// Counters the simulator maintains.
///
/// Two counters track messages that never reach a handler, and they are
/// deliberately distinct:
///
/// - [`messages_dropped`](SimStats::messages_dropped) counts *absent
///   destination* drops: the message was enqueued (and consumed latency
///   randomness), but at delivery time no process was registered under
///   the destination id — the node had left, crashed, or never existed.
///   This applies to every send path, including
///   [`Simulator::send_external`].
/// - [`messages_lost`](SimStats::messages_lost) counts *loss-model*
///   drops: the message was sent through [`Context::send_lossy`] and the
///   configured [`SimConfig::loss_per_mille`] coin removed it at send
///   time, before it was ever enqueued. Reliable sends are never counted
///   here.
///
/// A lost message is decided at send time and consumes one RNG draw; a
/// dropped message is decided at delivery time and still advances the
/// link's FIFO clock.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Messages delivered to a live process.
    pub messages_delivered: u64,
    /// Messages dropped at delivery time because the destination process
    /// was absent (left, crashed, or never registered). See the type
    /// docs for how this differs from [`messages_lost`](Self::messages_lost).
    pub messages_dropped: u64,
    /// Lossy-channel messages removed at send time by the configured
    /// [`SimConfig::loss_per_mille`] rate. See the type docs for how
    /// this differs from [`messages_dropped`](Self::messages_dropped).
    pub messages_lost: u64,
    /// Timer events fired.
    pub timers_fired: u64,
    /// Events processed in total.
    pub events_processed: u64,
}

/// Pre-resolved telemetry handles for the simulator's hot path
/// (`acn.sim.*`). All handles are no-ops until
/// [`Simulator::attach_telemetry`] is called with an enabled registry.
#[derive(Debug, Default)]
struct SimMetrics {
    /// Per-message delivery latency (delivery time − send time), ticks.
    latency: Histogram,
    /// Event-queue depth sampled after every processed event.
    queue_depth: Gauge,
    /// Messages delivered to a live process.
    delivered: Counter,
    /// Timer events fired.
    timers_fired: Counter,
    /// Absent-destination drops (mirrors `SimStats::messages_dropped`).
    drops_absent: Counter,
    /// Loss-model drops (mirrors `SimStats::messages_lost`).
    drops_loss: Counter,
    /// Event stream for per-drop `sim.drop` events.
    registry: Registry,
}

impl SimMetrics {
    fn attach(registry: &Registry) -> Self {
        SimMetrics {
            latency: registry.histogram("acn.sim.latency"),
            queue_depth: registry.gauge("acn.sim.queue_depth"),
            delivered: registry.counter("acn.sim.delivered"),
            timers_fired: registry.counter("acn.sim.timers_fired"),
            drops_absent: registry.counter("acn.sim.drops_absent"),
            drops_loss: registry.counter("acn.sim.drops_loss"),
            registry: registry.clone(),
        }
    }
}

/// The per-handler view a process uses to interact with the world.
/// Sends and timers are buffered and applied when the handler returns,
/// which keeps handlers pure with respect to the event queue.
pub struct Context<'a, M> {
    self_id: ProcessId,
    now: u64,
    outbox: &'a mut Vec<(ProcessId, ProcessId, M, bool)>,
    timers: &'a mut Vec<(ProcessId, u64, u64)>,
    rng: &'a mut u64,
}

impl<'a, M> Context<'a, M> {
    /// The current simulated time.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// This process's identifier.
    #[must_use]
    pub fn self_id(&self) -> ProcessId {
        self.self_id
    }

    /// Sends `msg` to process `to` reliably (delivered after the
    /// configured latency, in FIFO order per link).
    pub fn send(&mut self, to: ProcessId, msg: M) {
        self.outbox.push((self.self_id, to, msg, false));
    }

    /// Sends `msg` over the *lossy* channel: it is dropped with the
    /// configured per-mille probability (deterministically, from the
    /// simulation RNG). Models an unreliable datagram fast path next to
    /// a reliable control plane.
    pub fn send_lossy(&mut self, to: ProcessId, msg: M) {
        self.outbox.push((self.self_id, to, msg, true));
    }

    /// Schedules `on_timer(tag)` on this process after `delay` time
    /// units.
    pub fn set_timer(&mut self, delay: u64, tag: u64) {
        self.timers.push((self.self_id, delay, tag));
    }

    /// A deterministic pseudo-random `u64` from the simulation's RNG
    /// stream (for randomized process behaviour that must stay
    /// reproducible).
    pub fn random(&mut self) -> u64 {
        splitmix(self.rng)
    }
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// How the simulator decides which pending event fires next.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeliveryPolicy {
    /// Timestamp order from the seeded latency model — the default and
    /// the zero-overhead fast path (a `BinaryHeap` pop per event).
    #[default]
    Seeded,
    /// The environment picks each delivery via [`Simulator::fire`]
    /// from [`Simulator::enabled_events`] (per-link FIFO heads plus
    /// every pending timer). [`Simulator::step`] falls back to the
    /// enabled event with the smallest sequence number, so a run that
    /// never calls `fire` is still deterministic.
    External,
}

/// One pending event, as exposed to an external scheduler
/// ([`DeliveryPolicy::External`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingEvent {
    /// Stable handle for [`Simulator::fire`] / [`Simulator::drop_pending`]
    /// (the internal sequence number; unique per event and deterministic
    /// given the same prefix of deliveries).
    pub key: u64,
    /// The destination process.
    pub to: ProcessId,
    /// The sender (`None` for timers).
    pub from: Option<ProcessId>,
    /// The latency-model timestamp of the event.
    pub time: u64,
    /// The timer tag (`None` for messages).
    pub timer_tag: Option<u64>,
    /// Whether the message rode the lossy datagram channel
    /// ([`Context::send_lossy`]); only such events may be removed by
    /// [`Simulator::drop_pending`]. Always `false` for timers.
    pub lossy: bool,
}

enum Payload<M> {
    Message { from: ProcessId, msg: M },
    Timer { tag: u64 },
}

struct Event<M> {
    time: u64,
    seq: u64,
    /// Simulated time the event was scheduled (for latency telemetry).
    sent_at: u64,
    to: ProcessId,
    /// Whether the message was sent on the lossy datagram channel
    /// (External-policy fault injection may drop it in flight).
    lossy: bool,
    payload: Payload<M>,
}

impl<M> Event<M> {
    fn pending(&self) -> PendingEvent {
        let (from, timer_tag) = match &self.payload {
            Payload::Message { from, .. } => (Some(*from), None),
            Payload::Timer { tag } => (None, Some(*tag)),
        };
        PendingEvent {
            key: self.seq,
            to: self.to,
            from,
            time: self.time,
            timer_tag,
            lossy: self.lossy,
        }
    }
}

impl<M> Event<M> {
    /// The documented total delivery order of the simulator
    /// (earliest-first under the seeded policy):
    ///
    /// 1. **time** — the latency-model timestamp;
    /// 2. **destination process id** — same-instant events are grouped
    ///    by receiver, ascending;
    /// 3. **kind** — at the same instant and receiver, *messages
    ///    deliver before timers* (in-flight data beats timeouts, so a
    ///    retransmission timer never races a same-tick ack spuriously);
    /// 4. **sender id** (messages) / **tag** (timers) — same-instant
    ///    arrivals from different links, and same-instant timers with
    ///    different tags, order by these explicit protocol-visible
    ///    values;
    /// 5. **sequence number** — the final disambiguator, reachable only
    ///    by genuinely identical events (two timers with the same
    ///    receiver, deadline, and tag), where either order is
    ///    indistinguishable to the process.
    ///
    /// Components 2–4 are what makes the order *insertion-order
    /// independent*: before this key existed, ties at the same
    /// timestamp fell through to the global sequence number, so the
    /// delivery order of same-tick events silently depended on the
    /// order in which a harness happened to iterate processes
    /// (`ProcessId`-incidental ordering). The regression test
    /// `tie_break_is_insertion_order_independent` pins the fix.
    fn key(&self) -> (u64, u64, u8, u64, u64) {
        let (kind, sub) = match &self.payload {
            Payload::Message { from, .. } => (0u8, from.0),
            Payload::Timer { tag } => (1u8, *tag),
        };
        (self.time, self.to.0, kind, sub, self.seq)
    }
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        // `seq` is unique per event, so equality (and `Ord::cmp ==
        // Equal`, which compares `key()` ending in `seq`) holds only
        // for the same event.
        self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap: reverse for earliest-first under
        // the explicit total order documented on [`Event::key`].
        other.key().cmp(&self.key())
    }
}

/// The discrete-event simulator.
pub struct Simulator<M, P> {
    /// Registered processes. A `BTreeMap` so that `process_ids()` has a
    /// deterministic (sorted) order: harnesses iterate it for sweeps
    /// like component migration, and a randomized order would leak
    /// nondeterminism into otherwise seeded runs.
    processes: BTreeMap<ProcessId, P>,
    /// Pending events under [`DeliveryPolicy::Seeded`]: a max-heap
    /// popped in the documented `(time, to, kind, sub, seq)` order.
    queue: BinaryHeap<Event<M>>,
    /// Pending events under [`DeliveryPolicy::External`], keyed by
    /// sequence number so an external scheduler can fire or drop any
    /// enabled event by stable handle.
    open: BTreeMap<u64, Event<M>>,
    policy: DeliveryPolicy,
    /// Last scheduled delivery time per (from, to) link, to enforce
    /// FIFO. A `BTreeMap` for the same determinism discipline as
    /// `processes`: simnet state must never depend on hash iteration
    /// order (enforced by `acn-lint`).
    link_clock: BTreeMap<(ProcessId, ProcessId), u64>,
    time: u64,
    seq: u64,
    rng: u64,
    config: SimConfig,
    stats: SimStats,
    metrics: SimMetrics,
    /// Wire-level causal spans (drops and losses), virtual-clock
    /// timestamps. Disabled (no-op) by default.
    tracer: Tracer,
    /// Self-profiling spans around the event-loop hot path, *monotonic*
    /// (wall-clock) timestamps from the `acn-sync` clock seam. Kept as
    /// a separate tracer so real-time profiles never mix with
    /// virtual-clock traces in one ring.
    self_profiler: Tracer,
    outbox: Vec<(ProcessId, ProcessId, M, bool)>,
    timer_requests: Vec<(ProcessId, u64, u64)>,
}

impl<M, P: Process<M>> Simulator<M, P> {
    /// A fresh simulator with the given configuration and the default
    /// [`DeliveryPolicy::Seeded`].
    #[must_use]
    pub fn new(config: SimConfig) -> Self {
        Self::with_policy(config, DeliveryPolicy::Seeded)
    }

    /// A fresh simulator with an explicit [`DeliveryPolicy`].
    #[must_use]
    pub fn with_policy(config: SimConfig, policy: DeliveryPolicy) -> Self {
        Simulator {
            processes: BTreeMap::new(),
            queue: BinaryHeap::new(),
            open: BTreeMap::new(),
            policy,
            link_clock: BTreeMap::new(),
            time: 0,
            seq: 0,
            rng: config.seed,
            config,
            stats: SimStats::default(),
            metrics: SimMetrics::default(),
            tracer: Tracer::disabled(),
            self_profiler: Tracer::disabled(),
            outbox: Vec::new(),
            timer_requests: Vec::new(),
        }
    }

    /// The delivery policy this simulator was created with.
    #[must_use]
    pub fn delivery_policy(&self) -> DeliveryPolicy {
        self.policy
    }

    /// Routes the simulator's telemetry into `registry`: the
    /// `acn.sim.latency` histogram (per-message delivery latency in
    /// ticks), the `acn.sim.queue_depth` gauge (event-queue depth after
    /// each event), the `acn.sim.delivered` / `acn.sim.timers_fired` /
    /// `acn.sim.drops_absent` / `acn.sim.drops_loss` counters, and a
    /// `sim.drop` event per dropped or lost message.
    ///
    /// Telemetry is strictly observation-only: attaching it changes no
    /// delivery order, consumes no randomness, and leaves
    /// [`SimStats`] identical to an untelemetered run.
    pub fn attach_telemetry(&mut self, registry: &Registry) {
        self.metrics = SimMetrics::attach(registry);
    }

    /// Routes the simulator's wire-level causal spans into `tracer`:
    /// one `sim.loss` span per lossy-channel drop and one
    /// `sim.drop_absent` span per absent-destination drop, both
    /// timestamped with the virtual clock. Observation-only, like
    /// [`attach_telemetry`](Self::attach_telemetry).
    pub fn attach_tracer(&mut self, tracer: &Tracer) {
        self.tracer = tracer.clone();
    }

    /// Routes *self-profiling* spans into `tracer`: one `sim.step`
    /// span per processed event, measured with **monotonic wall-clock
    /// nanoseconds** from the [`acn_sync`] clock seam (covering the
    /// `BinaryHeap` pop / `BTreeMap` scan, the handler, and the
    /// outbox flush). Keep this tracer separate from the one passed to
    /// [`attach_tracer`](Self::attach_tracer): its timestamps are real
    /// time, not virtual ticks, so the two must not share a ring.
    pub fn attach_self_profiler(&mut self, tracer: &Tracer) {
        self.self_profiler = tracer.clone();
    }

    /// The current simulated time.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.time
    }

    /// Simulation statistics so far.
    #[must_use]
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// Registers a process. Replaces (and returns) any previous process
    /// with the same id.
    pub fn add_process(&mut self, id: ProcessId, process: P) -> Option<P> {
        self.processes.insert(id, process)
    }

    /// Removes a process (leave/crash). In-flight messages to it will be
    /// dropped at delivery time.
    ///
    /// Also prunes every FIFO link clock touching `id`: the clocks exist
    /// only to order deliveries within one incarnation of a link, and
    /// keeping them alive after the endpoint left made `link_clock` grow
    /// monotonically under churn (entries for departed processes were
    /// never reclaimed). A later process reusing the same id is a *new*
    /// incarnation and starts its links fresh.
    pub fn remove_process(&mut self, id: ProcessId) -> Option<P> {
        self.link_clock.retain(|&(from, to), _| from != id && to != id);
        self.processes.remove(&id)
    }

    /// Whether a process is registered.
    #[must_use]
    pub fn contains(&self, id: ProcessId) -> bool {
        self.processes.contains_key(&id)
    }

    /// Shared access to a process (for assertions and measurements).
    #[must_use]
    pub fn process(&self, id: ProcessId) -> Option<&P> {
        self.processes.get(&id)
    }

    /// Exclusive access to a process (the harness mutating node state
    /// out-of-band, e.g. when transferring components on a planned
    /// leave).
    #[must_use]
    pub fn process_mut(&mut self, id: ProcessId) -> Option<&mut P> {
        self.processes.get_mut(&id)
    }

    /// Iterates over the registered process ids in ascending order
    /// (deterministic, so harness sweeps over processes are replayable).
    pub fn process_ids(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.processes.keys().copied()
    }

    /// Injects a message from the environment (sender =
    /// [`ProcessId::EXTERNAL`]); always reliable.
    pub fn send_external(&mut self, to: ProcessId, msg: M) {
        self.enqueue_message(ProcessId::EXTERNAL, to, msg, false);
    }

    /// Schedules a timer on a process from the environment.
    pub fn set_timer_external(&mut self, on: ProcessId, delay: u64, tag: u64) {
        let _ = self.schedule_timer(on, delay, tag);
    }

    /// Like [`set_timer_external`](Self::set_timer_external), but
    /// returns the event's stable key so an external scheduler
    /// ([`DeliveryPolicy::External`]) can [`fire`](Self::fire) it at a
    /// chosen point.
    pub fn schedule_timer(&mut self, on: ProcessId, delay: u64, tag: u64) -> u64 {
        let time = self.time + delay;
        let seq = self.next_seq();
        let sent_at = self.time;
        self.push_event(Event {
            time,
            seq,
            sent_at,
            to: on,
            lossy: false,
            payload: Payload::Timer { tag },
        });
        seq
    }

    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    /// Stores a pending event in whichever structure the policy uses.
    fn push_event(&mut self, event: Event<M>) {
        match self.policy {
            DeliveryPolicy::Seeded => self.queue.push(event),
            DeliveryPolicy::External => {
                self.open.insert(event.seq, event);
            }
        }
    }

    fn enqueue_message(&mut self, from: ProcessId, to: ProcessId, msg: M, lossy: bool) {
        // Send-time drops happen *before* the FIFO clock is touched: a
        // dropped message never occupies a delivery slot, so it must not
        // advance (and thereby delay) later messages on the same link.
        if lossy
            && self.config.loss_per_mille > 0
            && splitmix(&mut self.rng) % 1000 < u64::from(self.config.loss_per_mille)
        {
            self.stats.messages_lost += 1;
            self.metrics.drops_loss.inc();
            self.metrics.registry.emit(
                TelemetryEvent::new("sim.drop")
                    .at(self.time)
                    .node(to.0)
                    .with("cause", "loss")
                    .with("from", from.0),
            );
            if self.tracer.is_enabled() {
                self.tracer.record(
                    Span::new("sim.loss", SYSTEM_TRACE)
                        .at(self.time)
                        .node(to.0)
                        .with("from", from.0),
                );
            }
            return;
        }
        let latency = self.config.base_latency
            + if self.config.jitter == 0 { 0 } else { splitmix(&mut self.rng) % (self.config.jitter + 1) };
        let earliest = self.time + latency.max(1);
        // FIFO per link: never deliver before an earlier message on the
        // same (from, to) pair.
        let clock = self.link_clock.entry((from, to)).or_insert(0);
        let time = earliest.max(*clock + 1);
        *clock = time;
        let seq = self.next_seq();
        let sent_at = self.time;
        self.push_event(Event {
            time,
            seq,
            sent_at,
            to,
            lossy,
            payload: Payload::Message { from, msg },
        });
    }

    /// The pending events an external scheduler may fire next: the
    /// oldest in-flight message of every `(from, to)` link (per-link
    /// FIFO is the one ordering constraint the protocol layer relies
    /// on) plus every pending timer, in ascending key order.
    ///
    /// Under [`DeliveryPolicy::Seeded`] this returns at most the single
    /// event the next [`step`](Self::step) would deliver.
    #[must_use]
    pub fn enabled_events(&self) -> Vec<PendingEvent> {
        match self.policy {
            DeliveryPolicy::Seeded => self.queue.peek().map(Event::pending).into_iter().collect(),
            DeliveryPolicy::External => {
                // Oldest pending seq per link; timers are always enabled.
                let mut heads: BTreeMap<(ProcessId, ProcessId), u64> = BTreeMap::new();
                let mut timers: Vec<u64> = Vec::new();
                for (seq, event) in &self.open {
                    match &event.payload {
                        Payload::Message { from, .. } => {
                            heads.entry((*from, event.to)).or_insert(*seq);
                        }
                        Payload::Timer { .. } => timers.push(*seq),
                    }
                }
                let mut keys: Vec<u64> = heads.into_values().chain(timers).collect();
                keys.sort_unstable();
                keys.iter().map(|k| self.open[k].pending()).collect()
            }
        }
    }

    /// A deterministic snapshot of **every** pending event — not just
    /// the enabled FIFO heads — in the documented delivery order
    /// ([`Event::key`]), paired with the message payload (`None` for
    /// timers). External schedulers use this to fingerprint the whole
    /// transport state: in-flight messages behind their link heads and
    /// future-dated timers are state too.
    #[must_use]
    pub fn pending_snapshot(&self) -> Vec<(PendingEvent, Option<&M>)> {
        let mut events: Vec<&Event<M>> = self.queue.iter().chain(self.open.values()).collect();
        events.sort_by_key(|e| e.key());
        events
            .into_iter()
            .map(|e| {
                let payload = match &e.payload {
                    Payload::Message { msg, .. } => Some(msg),
                    Payload::Timer { .. } => None,
                };
                (e.pending(), payload)
            })
            .collect()
    }

    /// The per-link FIFO clocks: `(from, to) -> latest scheduled
    /// delivery time` on that link. Part of the transport state a
    /// fingerprint must cover, because each clock floors the timestamp
    /// of the link's next send.
    pub fn link_clocks(&self) -> impl Iterator<Item = ((ProcessId, ProcessId), u64)> + '_ {
        self.link_clock.iter().map(|(&link, &t)| (link, t))
    }

    /// Fires one pending event by key ([`DeliveryPolicy::External`]
    /// only). Returns `false` — without delivering anything — if the
    /// key is unknown or names a message that is not its link's FIFO
    /// head.
    pub fn fire(&mut self, key: u64) -> bool {
        debug_assert!(
            self.policy == DeliveryPolicy::External,
            "fire() requires DeliveryPolicy::External"
        );
        if !self.open.contains_key(&key) {
            return false;
        }
        // FIFO guard: a message may fire only if no older message is
        // pending on the same link.
        if let Payload::Message { from, .. } = &self.open[&key].payload {
            let (from, to) = (*from, self.open[&key].to);
            let is_head = !self.open.iter().any(|(&seq, e)| {
                seq < key
                    && e.to == to
                    && matches!(&e.payload, Payload::Message { from: f, .. } if *f == from)
            });
            if !is_head {
                return false;
            }
        }
        let event = self.open.remove(&key).expect("checked above");
        self.deliver(event);
        true
    }

    /// Removes a pending *lossy-channel message* without delivering it
    /// (explored fault injection: the datagram was lost in flight).
    /// Counts as [`SimStats::messages_lost`]. Returns `false` for
    /// unknown keys, timers, and reliable messages.
    pub fn drop_pending(&mut self, key: u64) -> bool {
        debug_assert!(
            self.policy == DeliveryPolicy::External,
            "drop_pending() requires DeliveryPolicy::External"
        );
        let droppable = self
            .open
            .get(&key)
            .is_some_and(|e| e.lossy && matches!(e.payload, Payload::Message { .. }));
        if !droppable {
            return false;
        }
        let event = self.open.remove(&key).expect("checked above");
        let Payload::Message { from, .. } = &event.payload else { unreachable!() };
        self.stats.messages_lost += 1;
        self.metrics.drops_loss.inc();
        self.metrics.registry.emit(
            TelemetryEvent::new("sim.drop")
                .at(self.time)
                .node(event.to.0)
                .with("cause", "loss")
                .with("from", from.0),
        );
        if self.tracer.is_enabled() {
            self.tracer.record(
                Span::new("sim.loss", SYSTEM_TRACE)
                    .at(self.time)
                    .node(event.to.0)
                    .with("from", from.0),
            );
        }
        true
    }

    /// Read access to a pending message's payload (for an external
    /// scheduler that wants to classify choices). `None` for timers
    /// and unknown keys.
    #[must_use]
    pub fn pending_payload(&self, key: u64) -> Option<&M> {
        match &self.open.get(&key)?.payload {
            Payload::Message { msg, .. } => Some(msg),
            Payload::Timer { .. } => None,
        }
    }

    /// Processes a single event. Returns `false` if the queue is empty.
    ///
    /// Under [`DeliveryPolicy::External`] the enabled event with the
    /// smallest key fires, so stepping without an external scheduler is
    /// still deterministic (but *not* timestamp-ordered).
    pub fn step(&mut self) -> bool {
        // Self-profiling (opt-in): one monotonic-clock span around the
        // whole event — the `BinaryHeap` pop (Seeded) or `BTreeMap`
        // head scan (External), the handler, and the outbox flush.
        let profile_start =
            if self.self_profiler.is_enabled() { Some(RealSync::monotonic_now()) } else { None };
        let event = match self.policy {
            DeliveryPolicy::Seeded => {
                let Some(event) = self.queue.pop() else {
                    return false;
                };
                debug_assert!(event.time >= self.time, "time went backwards");
                event
            }
            DeliveryPolicy::External => {
                let Some(head) = self.enabled_events().first().copied() else {
                    return false;
                };
                self.open.remove(&head.key).expect("enabled event is pending")
            }
        };
        let to = event.to;
        self.deliver(event);
        if let Some(start) = profile_start {
            self.self_profiler.record(
                Span::new("sim.step", SYSTEM_TRACE)
                    .between(start, RealSync::monotonic_now())
                    .node(to.0)
                    .with("pending", self.pending_events() as u64),
            );
        }
        true
    }

    /// Delivers one event: advances time to the event's own timestamp,
    /// runs the handler, and applies its buffered sends and timers.
    fn deliver(&mut self, event: Event<M>) {
        self.time = event.time;
        self.stats.events_processed += 1;
        // Take the process out to sidestep aliasing with the context.
        let Some(mut process) = self.processes.remove(&event.to) else {
            if let Payload::Message { from, .. } = &event.payload {
                self.stats.messages_dropped += 1;
                self.metrics.drops_absent.inc();
                self.metrics.registry.emit(
                    TelemetryEvent::new("sim.drop")
                        .at(self.time)
                        .node(event.to.0)
                        .with("cause", "absent")
                        .with("from", from.0),
                );
                if self.tracer.is_enabled() {
                    self.tracer.record(
                        Span::new("sim.drop_absent", SYSTEM_TRACE)
                            .at(self.time)
                            .node(event.to.0)
                            .with("from", from.0),
                    );
                }
            }
            self.metrics.queue_depth.set(self.pending_events() as f64);
            return;
        };
        {
            let mut ctx = Context {
                self_id: event.to,
                now: self.time,
                outbox: &mut self.outbox,
                timers: &mut self.timer_requests,
                rng: &mut self.rng,
            };
            match event.payload {
                Payload::Message { from, msg } => {
                    self.stats.messages_delivered += 1;
                    self.metrics.delivered.inc();
                    self.metrics.latency.record(event.time.saturating_sub(event.sent_at));
                    process.on_message(&mut ctx, from, msg);
                }
                Payload::Timer { tag } => {
                    self.stats.timers_fired += 1;
                    self.metrics.timers_fired.inc();
                    process.on_timer(&mut ctx, tag);
                }
            }
        }
        self.processes.insert(event.to, process);
        // Apply buffered sends and timers.
        let outbox = std::mem::take(&mut self.outbox);
        for (from, to, msg, lossy) in outbox {
            self.enqueue_message(from, to, msg, lossy);
        }
        let timers = std::mem::take(&mut self.timer_requests);
        for (on, delay, tag) in timers {
            let time = self.time + delay.max(1);
            let seq = self.next_seq();
            let sent_at = self.time;
            self.push_event(Event {
                time,
                seq,
                sent_at,
                to: on,
                lossy: false,
                payload: Payload::Timer { tag },
            });
        }
        self.metrics.queue_depth.set(self.pending_events() as f64);
    }

    /// Runs until the event queue is empty or `max_events` events have
    /// been processed. Returns `true` if the queue drained (the system is
    /// idle).
    pub fn run_until_idle(&mut self, max_events: u64) -> bool {
        for _ in 0..max_events {
            if !self.step() {
                return true;
            }
        }
        self.pending_events() == 0
    }

    /// The timestamp of the next event [`step`](Self::step) would fire,
    /// if any. Under [`DeliveryPolicy::External`] this is the smallest
    /// *enabled* key's timestamp, which need not be the globally
    /// earliest one.
    fn next_event_time(&self) -> Option<u64> {
        match self.policy {
            DeliveryPolicy::Seeded => self.queue.peek().map(|e| e.time),
            DeliveryPolicy::External => self.enabled_events().first().map(|e| e.time),
        }
    }

    /// Runs until simulated time reaches `deadline` or the queue drains.
    pub fn run_until(&mut self, deadline: u64) {
        while let Some(next) = self.next_event_time() {
            if next > deadline {
                break;
            }
            let _ = self.step();
        }
        self.time = self.time.max(deadline);
    }

    /// Number of events currently pending (either policy).
    #[must_use]
    pub fn pending_events(&self) -> usize {
        self.queue.len() + self.open.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Records every message it receives.
    struct Recorder {
        log: Rc<RefCell<Vec<(u64, ProcessId, u32)>>>,
    }

    impl Process<u32> for Recorder {
        fn on_message(&mut self, ctx: &mut Context<'_, u32>, from: ProcessId, msg: u32) {
            self.log.borrow_mut().push((ctx.now(), from, msg));
        }
        fn on_timer(&mut self, ctx: &mut Context<'_, u32>, tag: u64) {
            self.log.borrow_mut().push((ctx.now(), ctx.self_id(), tag as u32 + 1000));
        }
    }

    #[test]
    fn messages_arrive_in_fifo_order_per_link() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim: Simulator<u32, Recorder> =
            Simulator::new(SimConfig { base_latency: 5, jitter: 50, loss_per_mille: 0, seed: 3 });
        sim.add_process(ProcessId(1), Recorder { log: Rc::clone(&log) });
        for i in 0..100 {
            sim.send_external(ProcessId(1), i);
        }
        assert!(sim.run_until_idle(1000));
        let got: Vec<u32> = log.borrow().iter().map(|&(_, _, m)| m).collect();
        assert_eq!(got, (0..100).collect::<Vec<u32>>(), "FIFO violated");
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let log = Rc::new(RefCell::new(Vec::new()));
            let mut sim: Simulator<u32, Recorder> =
                Simulator::new(SimConfig { base_latency: 2, jitter: 17, loss_per_mille: 0, seed: 42 });
            for p in 0..4 {
                sim.add_process(ProcessId(p), Recorder { log: Rc::clone(&log) });
            }
            for i in 0..50 {
                sim.send_external(ProcessId(u64::from(i % 4)), i);
            }
            sim.run_until_idle(10_000);
            let result = log.borrow().clone();
            result
        };
        assert_eq!(run(), run());
    }

    struct PingPong {
        count: Rc<RefCell<u32>>,
    }

    impl Process<u32> for PingPong {
        fn on_message(&mut self, ctx: &mut Context<'_, u32>, from: ProcessId, msg: u32) {
            *self.count.borrow_mut() += 1;
            if msg > 0 && from != ProcessId::EXTERNAL {
                ctx.send(from, msg - 1);
            } else if msg > 0 {
                // Kick the ball to the peer process.
                let peer = if ctx.self_id() == ProcessId(1) { ProcessId(2) } else { ProcessId(1) };
                ctx.send(peer, msg - 1);
            }
        }
    }

    #[test]
    fn ping_pong_exchanges_the_right_number_of_messages() {
        let count = Rc::new(RefCell::new(0));
        let mut sim: Simulator<u32, PingPong> = Simulator::new(SimConfig::default());
        sim.add_process(ProcessId(1), PingPong { count: Rc::clone(&count) });
        sim.add_process(ProcessId(2), PingPong { count: Rc::clone(&count) });
        sim.send_external(ProcessId(1), 9);
        assert!(sim.run_until_idle(100));
        assert_eq!(*count.borrow(), 10);
        assert_eq!(sim.stats().messages_delivered, 10);
    }

    #[test]
    fn messages_to_absent_processes_are_dropped_and_counted() {
        let mut sim: Simulator<u32, PingPong> = Simulator::new(SimConfig::default());
        sim.send_external(ProcessId(7), 1);
        assert!(sim.run_until_idle(10));
        assert_eq!(sim.stats().messages_dropped, 1);
        assert_eq!(sim.stats().messages_delivered, 0);
    }

    #[test]
    fn timers_fire_at_the_right_time() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim: Simulator<u32, Recorder> =
            Simulator::new(SimConfig { base_latency: 1, jitter: 0, loss_per_mille: 0, seed: 1 });
        sim.add_process(ProcessId(1), Recorder { log: Rc::clone(&log) });
        sim.set_timer_external(ProcessId(1), 100, 7);
        sim.set_timer_external(ProcessId(1), 50, 3);
        assert!(sim.run_until_idle(10));
        let got = log.borrow().clone();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], (50, ProcessId(1), 1003));
        assert_eq!(got[1], (100, ProcessId(1), 1007));
    }

    #[test]
    fn run_until_respects_deadline() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim: Simulator<u32, Recorder> =
            Simulator::new(SimConfig { base_latency: 1, jitter: 0, loss_per_mille: 0, seed: 1 });
        sim.add_process(ProcessId(1), Recorder { log: Rc::clone(&log) });
        sim.set_timer_external(ProcessId(1), 10, 0);
        sim.set_timer_external(ProcessId(1), 1000, 1);
        sim.run_until(500);
        assert_eq!(log.borrow().len(), 1);
        assert_eq!(sim.now(), 500);
        sim.run_until(2000);
        assert_eq!(log.borrow().len(), 2);
    }

    #[test]
    fn remove_process_drops_future_messages() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim: Simulator<u32, Recorder> = Simulator::new(SimConfig::default());
        sim.add_process(ProcessId(1), Recorder { log: Rc::clone(&log) });
        sim.send_external(ProcessId(1), 1);
        sim.remove_process(ProcessId(1));
        assert!(sim.run_until_idle(10));
        assert!(log.borrow().is_empty());
        assert_eq!(sim.stats().messages_dropped, 1);
    }

    struct LossyRelay;
    impl Process<u32> for LossyRelay {
        fn on_message(&mut self, ctx: &mut Context<'_, u32>, _from: ProcessId, msg: u32) {
            if msg > 0 {
                ctx.send_lossy(ctx.self_id(), msg - 1);
            }
        }
    }

    #[test]
    fn lossy_channel_drops_deterministically() {
        let run = |loss| {
            let mut sim: Simulator<u32, LossyRelay> = Simulator::new(SimConfig {
                base_latency: 1,
                jitter: 0,
                loss_per_mille: loss,
                seed: 77,
            });
            sim.add_process(ProcessId(1), LossyRelay);
            sim.send_external(ProcessId(1), 10_000);
            assert!(sim.run_until_idle(100_000));
            sim.stats()
        };
        let clean = run(0);
        assert_eq!(clean.messages_lost, 0);
        assert_eq!(clean.messages_delivered, 10_001);
        let lossy = run(200);
        assert!(lossy.messages_lost > 0, "no losses at 20%");
        // The chain dies at the first loss, so deliveries shrink a lot.
        assert!(lossy.messages_delivered < clean.messages_delivered);
        // Determinism across runs.
        assert_eq!(run(200), lossy);
    }

    #[test]
    fn dropped_means_absent_destination_not_loss_model() {
        // A reliable send to a never-registered process: counted as
        // dropped (absent destination), never as lost.
        let mut sim: Simulator<u32, PingPong> = Simulator::new(SimConfig {
            base_latency: 1,
            jitter: 0,
            loss_per_mille: 1000, // full loss, but only for lossy sends
            seed: 5,
        });
        sim.send_external(ProcessId(9), 1);
        assert!(sim.run_until_idle(10));
        let stats = sim.stats();
        assert_eq!(stats.messages_dropped, 1, "absent destination counts as dropped");
        assert_eq!(stats.messages_lost, 0, "reliable sends never hit the loss model");
    }

    #[test]
    fn lost_means_loss_model_not_absent_destination() {
        // A lossy send to a *live* process under 100% loss: counted as
        // lost at send time, never as dropped.
        struct LossySender;
        impl Process<u32> for LossySender {
            fn on_message(&mut self, ctx: &mut Context<'_, u32>, _: ProcessId, msg: u32) {
                if msg > 0 {
                    ctx.send_lossy(ctx.self_id(), msg - 1);
                }
            }
        }
        let mut sim: Simulator<u32, LossySender> = Simulator::new(SimConfig {
            base_latency: 1,
            jitter: 0,
            loss_per_mille: 1000,
            seed: 5,
        });
        sim.add_process(ProcessId(1), LossySender);
        sim.send_external(ProcessId(1), 3);
        assert!(sim.run_until_idle(10));
        let stats = sim.stats();
        assert_eq!(stats.messages_delivered, 1, "the external injection still arrives");
        assert_eq!(stats.messages_lost, 1, "the lossy resend dies at send time");
        assert_eq!(stats.messages_dropped, 0, "a live destination never counts as dropped");
    }

    #[test]
    fn send_external_to_departed_process_is_dropped() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim: Simulator<u32, Recorder> = Simulator::new(SimConfig::default());
        sim.add_process(ProcessId(4), Recorder { log: Rc::clone(&log) });
        sim.send_external(ProcessId(4), 1);
        assert!(sim.run_until_idle(10));
        assert_eq!(sim.stats().messages_delivered, 1);
        // The node departs; a late external injection is dropped and
        // counted, not delivered and not "lost".
        sim.remove_process(ProcessId(4));
        sim.send_external(ProcessId(4), 2);
        assert!(sim.run_until_idle(10));
        let stats = sim.stats();
        assert_eq!(stats.messages_delivered, 1);
        assert_eq!(stats.messages_dropped, 1);
        assert_eq!(stats.messages_lost, 0);
        assert_eq!(log.borrow().len(), 1);
    }

    #[test]
    fn telemetry_mirrors_stats_and_tags_drop_causes() {
        use acn_telemetry::{RingBufferSink, Value};

        let registry = Registry::new();
        let sink = RingBufferSink::with_capacity(128);
        registry.add_sink(sink.clone());

        struct LossyForwarder;
        impl Process<u32> for LossyForwarder {
            fn on_message(&mut self, ctx: &mut Context<'_, u32>, _: ProcessId, msg: u32) {
                if msg > 0 {
                    ctx.send_lossy(ProcessId(2), msg - 1);
                }
            }
            fn on_timer(&mut self, _: &mut Context<'_, u32>, _: u64) {}
        }
        let mut sim: Simulator<u32, LossyForwarder> = Simulator::new(SimConfig {
            base_latency: 3,
            jitter: 4,
            loss_per_mille: 1000,
            seed: 11,
        });
        sim.attach_telemetry(&registry);
        sim.add_process(ProcessId(1), LossyForwarder);
        sim.send_external(ProcessId(1), 5); // delivered; lossy resend lost
        sim.send_external(ProcessId(3), 1); // absent: dropped
        sim.set_timer_external(ProcessId(1), 7, 0);
        assert!(sim.run_until_idle(100));

        let stats = sim.stats();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("acn.sim.delivered"), Some(stats.messages_delivered));
        assert_eq!(snap.counter("acn.sim.drops_absent"), Some(stats.messages_dropped));
        assert_eq!(snap.counter("acn.sim.drops_loss"), Some(stats.messages_lost));
        assert_eq!(snap.counter("acn.sim.timers_fired"), Some(stats.timers_fired));
        let latency = snap.histogram("acn.sim.latency").expect("latency histogram");
        assert_eq!(latency.count, stats.messages_delivered);
        assert!(latency.sum >= 3 * stats.messages_delivered, "latency >= base");
        assert_eq!(snap.gauge("acn.sim.queue_depth"), Some(0.0), "idle queue is empty");

        let drops = sink.events_of_kind("sim.drop");
        assert_eq!(drops.len() as u64, stats.messages_dropped + stats.messages_lost);
        assert!(drops.iter().any(|e| e.field("cause") == Some(&Value::Str("absent".into()))));
        assert!(drops.iter().any(|e| e.field("cause") == Some(&Value::Str("loss".into()))));
    }

    #[test]
    fn remove_process_prunes_link_clocks_under_churn() {
        // Regression: link clocks used to be retained forever, so a
        // churning system leaked one entry per (from, to) pair ever
        // used. After every leave, no clock may mention the departed id.
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim: Simulator<u32, Recorder> = Simulator::new(SimConfig::default());
        for i in 1..=64u64 {
            sim.add_process(ProcessId(i), Recorder { log: Rc::clone(&log) });
            sim.send_external(ProcessId(i), i as u32);
            assert!(sim.run_until_idle(100));
            assert!(sim.remove_process(ProcessId(i)).is_some());
            assert!(
                sim.link_clock.is_empty(),
                "stale link clocks survived churn: {:?}",
                sim.link_clock.keys().collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn remove_process_prunes_both_link_directions() {
        let count = Rc::new(RefCell::new(0));
        let mut sim: Simulator<u32, PingPong> = Simulator::new(SimConfig::default());
        sim.add_process(ProcessId(1), PingPong { count: Rc::clone(&count) });
        sim.add_process(ProcessId(2), PingPong { count: Rc::clone(&count) });
        sim.send_external(ProcessId(1), 8);
        assert!(sim.run_until_idle(100));
        assert!(
            sim.link_clock.keys().any(|&(f, _)| f == ProcessId(1)),
            "the rally must have populated 1->2"
        );
        sim.remove_process(ProcessId(1));
        assert!(
            sim.link_clock.keys().all(|&(f, t)| f != ProcessId(1) && t != ProcessId(1)),
            "clocks naming the departed process must be pruned"
        );
        // The peer's clocks not involving process 1 are untouched.
        sim.remove_process(ProcessId(2));
        assert!(sim.link_clock.is_empty());
    }

    #[test]
    fn send_time_losses_leave_fifo_clocks_untouched() {
        // A loss-model drop happens at send time, before the message
        // claims a FIFO slot: the link clock must not advance, and a
        // later reliable message must arrive at plain base latency
        // instead of being pushed out behind phantom deliveries.
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim: Simulator<u32, Recorder> = Simulator::new(SimConfig {
            base_latency: 4,
            jitter: 0,
            loss_per_mille: 1000, // every lossy send drops
            seed: 9,
        });
        sim.add_process(ProcessId(2), Recorder { log: Rc::clone(&log) });
        for i in 0..50 {
            sim.enqueue_message(ProcessId(1), ProcessId(2), i, true);
        }
        assert_eq!(sim.stats().messages_lost, 50);
        assert!(
            !sim.link_clock.contains_key(&(ProcessId(1), ProcessId(2))),
            "dropped sends must not reserve delivery slots"
        );
        sim.enqueue_message(ProcessId(1), ProcessId(2), 99, false);
        assert!(sim.run_until_idle(10));
        assert_eq!(log.borrow().as_slice(), &[(4, ProcessId(1), 99)]);
    }

    #[test]
    fn tie_break_is_insertion_order_independent() {
        // Same-timestamp deliveries must order by the explicit key
        // (time, to, kind, from/tag, seq), not by insertion order.
        // With jitter 0 every send at t=0 lands at t=base_latency, so
        // permuting the insertion order exercises the tie-break; the
        // two runs must produce identical delivery sequences.
        let run = |order: &[u32]| {
            let log = Rc::new(RefCell::new(Vec::new()));
            let mut sim: Simulator<u32, Recorder> = Simulator::new(SimConfig {
                base_latency: 7,
                jitter: 0,
                loss_per_mille: 0,
                seed: 1,
            });
            for p in 1..=3u64 {
                sim.add_process(ProcessId(p), Recorder { log: Rc::clone(&log) });
            }
            // Each op id encodes one environment action; apply them in
            // the permuted order.
            for &op in order {
                match op {
                    0 => sim.send_external(ProcessId(1), 10),
                    1 => sim.send_external(ProcessId(2), 20),
                    2 => sim.send_external(ProcessId(3), 30),
                    3 => sim.set_timer_external(ProcessId(1), 7, 5),
                    4 => sim.set_timer_external(ProcessId(2), 7, 6),
                    5 => sim.set_timer_external(ProcessId(3), 7, 4),
                    _ => unreachable!(),
                }
            }
            assert!(sim.run_until_idle(100));
            let result = log.borrow().clone();
            result
        };
        let forward = run(&[0, 1, 2, 3, 4, 5]);
        let permuted = run(&[5, 2, 4, 1, 3, 0]);
        assert_eq!(
            forward, permuted,
            "same-tick delivery order leaked the insertion order"
        );
        // And the documented order itself: ascending destination, with
        // the message delivered before the same-tick timer per process.
        let msgs: Vec<u32> = forward.iter().map(|&(_, _, m)| m).collect();
        assert_eq!(msgs, vec![10, 1005, 20, 1006, 30, 1004]);
    }

    #[test]
    fn context_random_is_deterministic() {
        struct R(Rc<RefCell<Vec<u64>>>);
        impl Process<u32> for R {
            fn on_message(&mut self, ctx: &mut Context<'_, u32>, _: ProcessId, _: u32) {
                let v = ctx.random();
                self.0.borrow_mut().push(v);
            }
        }
        let run = || {
            let log = Rc::new(RefCell::new(Vec::new()));
            let mut sim: Simulator<u32, R> = Simulator::new(SimConfig::default());
            sim.add_process(ProcessId(1), R(Rc::clone(&log)));
            for i in 0..10 {
                sim.send_external(ProcessId(1), i);
            }
            sim.run_until_idle(100);
            let result = log.borrow().clone();
            result
        };
        assert_eq!(run(), run());
    }
}
