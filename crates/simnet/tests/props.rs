//! Property tests for the discrete-event simulator.

use acn_simnet::{Context, Process, ProcessId, SimConfig, Simulator};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

struct Recorder {
    log: Rc<RefCell<Vec<(ProcessId, u32)>>>,
}

impl Process<u32> for Recorder {
    fn on_message(&mut self, ctx: &mut Context<'_, u32>, _from: ProcessId, msg: u32) {
        self.log.borrow_mut().push((ctx.self_id(), msg));
    }
}

proptest! {
    /// Per-destination FIFO holds for arbitrary send interleavings and
    /// jitter, and runs are deterministic.
    #[test]
    fn fifo_and_determinism(
        sends in proptest::collection::vec((0u64..4, any::<u32>()), 1..120),
        jitter in 0u64..60,
        seed in any::<u64>(),
    ) {
        let run = || {
            let log = Rc::new(RefCell::new(Vec::new()));
            let mut sim: Simulator<u32, Recorder> =
                Simulator::new(SimConfig { base_latency: 1, jitter, loss_per_mille: 0, seed });
            for p in 0..4 {
                sim.add_process(ProcessId(p), Recorder { log: Rc::clone(&log) });
            }
            for &(to, msg) in &sends {
                sim.send_external(ProcessId(to), msg);
            }
            prop_assert!(sim.run_until_idle(10_000));
            let result = log.borrow().clone();
            Ok(result)
        };
        let a = run()?;
        let b = run()?;
        prop_assert_eq!(&a, &b, "nondeterministic run");
        // FIFO per destination: the subsequence addressed to each process
        // preserves the send order.
        for p in 0..4 {
            let sent: Vec<u32> = sends
                .iter()
                .filter(|&&(to, _)| to == p)
                .map(|&(_, m)| m)
                .collect();
            let got: Vec<u32> = a
                .iter()
                .filter(|&&(pid, _)| pid == ProcessId(p))
                .map(|&(_, m)| m)
                .collect();
            prop_assert_eq!(sent, got, "FIFO violated for process {}", p);
        }
    }
}
