//! The synchronization abstraction layer of the workspace.
//!
//! The concurrent executors ([`SharedAdaptiveNetwork`] in `acn-core`,
//! [`AtomicNetworkCounter`] in `acn-bitonic`) are generic over a
//! [`SyncApi`]: the small set of primitives they actually use — a
//! mutex, a reader–writer lock, a 64-bit atomic with explicit
//! memory orderings, and an epoch-published immutable snapshot
//! ([`SyncSnapshot`], the safe-Rust equivalent of an atomic pointer
//! swap) that powers the executors' lock-free fast paths.
//!
//! Two implementations exist:
//!
//! - [`RealSync`] (this crate): zero-cost forwarding to `parking_lot`
//!   locks and `std::sync::atomic`. Every production path uses it; it
//!   is the default type parameter everywhere, so callers never see
//!   the abstraction.
//! - `VirtualSync` (in `acn-check`): routes every acquire/load/store
//!   through a cooperative single-threaded scheduler that *explores
//!   interleavings* — an in-repo model checker in the spirit of loom,
//!   built from scratch because the workspace is vendored/offline.
//!
//! The traits use GATs for the guard types so that both the
//! `parking_lot` guards and the checker's instrumented guards fit
//! without boxing.
//!
//! # Data bounds
//!
//! Lock payloads must satisfy [`SyncData`] (`Send + Hash + 'static`).
//! The `Hash` bound is what lets the model checker fingerprint the
//! whole shared state at every scheduling point for its
//! visited-state pruning; for `RealSync` it costs nothing (the real
//! lock types implement `Hash` as a no-op and never call `T::hash`).
//!
//! [`SharedAdaptiveNetwork`]: https://docs.rs/acn-core
//! [`AtomicNetworkCounter`]: https://docs.rs/acn-bitonic

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::hash::Hash;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

pub use std::sync::atomic::Ordering;

pub mod exchange;

pub use exchange::{ExchangeSlot, OfferOutcome};

/// Pads and aligns a value to (at least) a 128-byte cache-line
/// boundary so that two `CachePadded` neighbours in an array never
/// share a line.
///
/// 128 bytes covers both the 64-byte x86-64 line (and its adjacent-
/// line prefetcher, which drags pairs of lines) and the 128-byte
/// aarch64 line. The hot per-leaf atomics of the lock-free fast path
/// (`hops`, per-port arrival tallies, the per-wire entry/exit counts)
/// are wrapped in this: without it, independent counters allocated
/// side by side false-share lines and the throughput curve goes flat
/// even when the algorithmic contention is gone (E18's padding
/// microbench measures exactly this before/after).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in its own cache line.
    pub const fn new(value: T) -> CachePadded<T> {
        CachePadded { value }
    }

    /// Unwraps the value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    #[inline]
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T: Hash> Hash for CachePadded<T> {
    /// Padding is invisible to state fingerprints: hashes exactly as
    /// the wrapped value does.
    #[inline]
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.value.hash(state);
    }
}

/// Bounds required of data protected by a [`SyncApi`] lock.
///
/// `Hash` exists for the model checker's state fingerprinting;
/// `RealSync` never calls it.
pub trait SyncData: Send + Hash + 'static {}
impl<T: Send + Hash + 'static> SyncData for T {}

/// A 64-bit atomic with explicit memory orderings.
///
/// The checker's implementation *interprets* the orderings: `Relaxed`
/// loads may observe stale values unless a happens-before edge makes
/// the latest store visible, so choosing too-weak orderings is a
/// checkable bug rather than a latent one.
pub trait SyncAtomicU64: Send + Sync + 'static {
    /// A new atomic holding `value`.
    fn new(value: u64) -> Self;
    /// Atomically loads the value.
    fn load(&self, order: Ordering) -> u64;
    /// Atomically stores `value`.
    fn store(&self, value: u64, order: Ordering);
    /// Atomically adds `value`, returning the previous value.
    fn fetch_add(&self, value: u64, order: Ordering) -> u64;
    /// Atomically replaces the value with `new` if it equals
    /// `current`: `Ok(previous)` on success, `Err(actual)` on failure
    /// (the strong variant — no spurious failures). `failure` must not
    /// be `Release`/`AcqRel`, mirroring `std`.
    ///
    /// This is the **exchange primitive** behind the elimination layer
    /// (`ExchangeSlot`): under the model checker every `Cas` is a
    /// scheduling point with read-modify-write coherence, so
    /// pairing/timeout races are explored rather than assumed.
    fn compare_exchange(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64>;
}

/// A mutual-exclusion lock.
pub trait SyncMutex<T: SyncData>: Send + Sync + Sized + 'static {
    /// RAII guard; unlocks on drop.
    type Guard<'a>: DerefMut<Target = T>
    where
        Self: 'a;

    /// A new mutex protecting `value`.
    fn new(value: T) -> Self;

    /// A new mutex carrying a *lock-order rank*: whenever a thread
    /// acquires two ranked locks simultaneously it must take them in
    /// ascending rank order. `RealSync` ignores the rank; the model
    /// checker enforces it dynamically and reports the offending
    /// schedule on violation. The workspace convention is to rank
    /// per-component locks by the `ComponentId` total order.
    fn with_rank(value: T, rank: u64) -> Self {
        let _ = rank;
        Self::new(value)
    }

    /// Acquires the lock, blocking until available.
    fn lock(&self) -> Self::Guard<'_>;

    /// Attempts to acquire the lock without blocking.
    fn try_lock(&self) -> Option<Self::Guard<'_>>;
}

/// An epoch-published immutable snapshot: the safe-Rust equivalent
/// of an atomic pointer swap.
///
/// A snapshot cell holds an `Arc<T>`. Readers [`load`](Self::load) a
/// clone of the current `Arc` — a wait-free operation in spirit (the
/// real implementation is a short uncontended read-lock around a
/// refcount bump; no `T` is ever cloned) — and then work against the
/// immutable value with no further synchronization. Writers
/// [`store`](Self::store) a replacement `Arc`, after which new
/// readers observe the new value while in-flight readers keep their
/// (now stale) pin alive until they drop it.
///
/// The checker's implementation *interprets* publication: a `load`
/// may observe any value not yet ordered before the reader by a
/// happens-before edge, so fast paths that validate snapshots with a
/// separate epoch atomic get their stale-read retry logic explored
/// rather than assumed.
pub trait SyncSnapshot<T: SyncData + Sync>: Send + Sync + Sized + 'static {
    /// A new cell publishing `value`.
    fn new(value: Arc<T>) -> Self;
    /// Pins and returns the currently published value.
    fn load(&self) -> Arc<T>;
    /// Publishes `value`, replacing the current one. In-flight pins
    /// obtained from earlier [`load`](Self::load)s stay valid.
    fn store(&self, value: Arc<T>);
}

/// A reader–writer lock.
pub trait SyncRwLock<T: SyncData>: Send + Sync + Sized + 'static {
    /// Shared-read guard.
    type ReadGuard<'a>: Deref<Target = T>
    where
        Self: 'a;
    /// Exclusive-write guard.
    type WriteGuard<'a>: DerefMut<Target = T>
    where
        Self: 'a;

    /// A new lock protecting `value`.
    fn new(value: T) -> Self;
    /// Acquires shared read access.
    fn read(&self) -> Self::ReadGuard<'_>;
    /// Acquires exclusive write access.
    fn write(&self) -> Self::WriteGuard<'_>;
}

/// The family of synchronization primitives a concurrent executor is
/// built from.
pub trait SyncApi: Send + Sync + 'static {
    /// Whether telemetry may probe locks with `try_lock` before a
    /// blocking `lock` to count contention. The checker turns this
    /// off so that the observation probe does not double the visible
    /// operations per acquisition (telemetry is observation-only, so
    /// the explored behaviours are identical).
    const CONTENTION_PROBES: bool = true;

    /// The atomic 64-bit integer. `Hash` exists so atomics may live
    /// inside lock payloads and snapshot values (which must be
    /// fingerprintable by the checker); the real implementation
    /// hashes nothing — an atomic's momentary value is not part of
    /// any structure's logical identity.
    type AtomicU64: SyncAtomicU64 + Hash;
    /// The mutex. `Hash` feeds the checker's state fingerprints; the
    /// real implementation hashes nothing.
    type Mutex<T: SyncData>: SyncMutex<T> + Hash;
    /// The reader–writer lock (payloads are additionally `Sync`,
    /// since readers share them).
    type RwLock<T: SyncData + Sync>: SyncRwLock<T>;
    /// The epoch-published immutable snapshot cell (payloads are
    /// additionally `Sync`, since pinned readers share them).
    type Snapshot<T: SyncData + Sync>: SyncSnapshot<T>;

    /// A monotonic timestamp in implementation-defined units — the
    /// **clock seam** for tracing (`acn-trace`): span timestamps taken
    /// through this method are wall-clock nanoseconds under
    /// [`RealSync`] but a deterministic logical counter under the
    /// model checker's `VirtualSync`, so instrumented executors stay
    /// bit-reproducible when explored. Successive calls never go
    /// backwards; beyond that no relationship between the units of
    /// different `SyncApi` implementations is promised.
    ///
    /// This is deliberately the *only* sanctioned time source in trace
    /// construction outside simnet's virtual clock — the
    /// `trace-determinism` lint rejects ambient `Instant::now` there.
    fn monotonic_now() -> u64;
}

/// Production synchronization: `parking_lot` locks, `std` atomics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RealSync;

/// [`RealSync`]'s atomic: a transparent `std::sync::atomic::AtomicU64`.
#[derive(Debug, Default)]
pub struct RealAtomicU64(AtomicU64);

impl SyncAtomicU64 for RealAtomicU64 {
    #[inline]
    fn new(value: u64) -> Self {
        RealAtomicU64(AtomicU64::new(value))
    }

    #[inline]
    fn load(&self, order: Ordering) -> u64 {
        self.0.load(order)
    }

    #[inline]
    fn store(&self, value: u64, order: Ordering) {
        self.0.store(value, order)
    }

    #[inline]
    fn fetch_add(&self, value: u64, order: Ordering) -> u64 {
        self.0.fetch_add(value, order)
    }

    #[inline]
    fn compare_exchange(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        self.0.compare_exchange(current, new, success, failure)
    }
}

impl Hash for RealAtomicU64 {
    /// Production atomics contribute nothing to state fingerprints
    /// (fingerprinting is a checker concern); hashing is a no-op.
    #[inline]
    fn hash<H: std::hash::Hasher>(&self, _state: &mut H) {}
}

/// [`RealSync`]'s mutex: a transparent `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct RealMutex<T>(parking_lot::Mutex<T>);

impl<T: SyncData> SyncMutex<T> for RealMutex<T> {
    type Guard<'a>
        = parking_lot::MutexGuard<'a, T>
    where
        Self: 'a;

    #[inline]
    fn new(value: T) -> Self {
        RealMutex(parking_lot::Mutex::new(value))
    }

    #[inline]
    fn lock(&self) -> Self::Guard<'_> {
        self.0.lock()
    }

    #[inline]
    fn try_lock(&self) -> Option<Self::Guard<'_>> {
        self.0.try_lock()
    }
}

impl<T> Hash for RealMutex<T> {
    /// Production locks contribute nothing to state fingerprints
    /// (fingerprinting is a checker concern); hashing is a no-op.
    #[inline]
    fn hash<H: std::hash::Hasher>(&self, _state: &mut H) {}
}

/// [`RealSync`]'s reader–writer lock: a transparent
/// `parking_lot::RwLock`.
#[derive(Debug, Default)]
pub struct RealRwLock<T>(parking_lot::RwLock<T>);

impl<T: SyncData + Sync> SyncRwLock<T> for RealRwLock<T> {
    type ReadGuard<'a>
        = parking_lot::RwLockReadGuard<'a, T>
    where
        Self: 'a;
    type WriteGuard<'a>
        = parking_lot::RwLockWriteGuard<'a, T>
    where
        Self: 'a;

    #[inline]
    fn new(value: T) -> Self {
        RealRwLock(parking_lot::RwLock::new(value))
    }

    #[inline]
    fn read(&self) -> Self::ReadGuard<'_> {
        self.0.read()
    }

    #[inline]
    fn write(&self) -> Self::WriteGuard<'_> {
        self.0.write()
    }
}

/// [`RealSync`]'s snapshot cell: a `parking_lot::RwLock<Arc<T>>`.
///
/// `load` takes the read lock only long enough to clone the `Arc`
/// (a refcount bump — `T` itself is never copied); `store` takes the
/// write lock only long enough to swap the pointer. Neither side
/// holds the lock while the snapshot is *used*, so the cell behaves
/// like an atomic pointer swap without any `unsafe`.
#[derive(Debug)]
pub struct RealSnapshot<T>(parking_lot::RwLock<Arc<T>>);

impl<T: SyncData + Sync> SyncSnapshot<T> for RealSnapshot<T> {
    #[inline]
    fn new(value: Arc<T>) -> Self {
        RealSnapshot(parking_lot::RwLock::new(value))
    }

    #[inline]
    fn load(&self) -> Arc<T> {
        Arc::clone(&self.0.read())
    }

    #[inline]
    fn store(&self, value: Arc<T>) {
        *self.0.write() = value;
    }
}

impl SyncApi for RealSync {
    type AtomicU64 = RealAtomicU64;
    type Mutex<T: SyncData> = RealMutex<T>;
    type RwLock<T: SyncData + Sync> = RealRwLock<T>;
    type Snapshot<T: SyncData + Sync> = RealSnapshot<T>;

    /// Nanoseconds since the first call in this process (a process-
    /// local origin keeps the values small enough for log2 latency
    /// buckets while staying monotonic).
    fn monotonic_now() -> u64 {
        use std::sync::OnceLock;
        use std::time::Instant;
        static ORIGIN: OnceLock<Instant> = OnceLock::new();
        let origin = *ORIGIN.get_or_init(Instant::now);
        u64::try_from(origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// A tiny SyncApi-generic structure, exercised under RealSync the
    /// way the executors are.
    struct PaddedCounter<S: SyncApi> {
        fast: S::AtomicU64,
        slow: S::Mutex<u64>,
    }

    impl<S: SyncApi> PaddedCounter<S> {
        fn new() -> Self {
            PaddedCounter { fast: S::AtomicU64::new(0), slow: S::Mutex::new(0) }
        }

        fn bump(&self) -> u64 {
            let n = self.fast.fetch_add(1, Ordering::AcqRel);
            *self.slow.lock() += 1;
            n
        }
    }

    #[test]
    fn real_sync_round_trip() {
        let c: Arc<PaddedCounter<RealSync>> = Arc::new(PaddedCounter::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || (0..100).map(|_| c.bump()).max())
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.fast.load(Ordering::Acquire), 400);
        assert_eq!(*c.slow.lock(), 400);
    }

    #[test]
    fn try_lock_contends() {
        let m: RealMutex<u32> = SyncMutex::new(7);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(*m.try_lock().expect("free"), 7);
    }

    #[test]
    fn rwlock_readers_share() {
        let l: RealRwLock<Vec<u8>> = SyncRwLock::new(vec![1, 2]);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a, *b);
        drop((a, b));
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn ranked_mutex_defaults_to_plain() {
        let m: RealMutex<u8> = SyncMutex::with_rank(9, 42);
        assert_eq!(*m.lock(), 9);
    }

    #[test]
    fn snapshot_load_pins_while_store_publishes() {
        let cell: RealSnapshot<Vec<u64>> = SyncSnapshot::new(Arc::new(vec![1, 2, 3]));
        let pinned = cell.load();
        cell.store(Arc::new(vec![9]));
        // The old pin stays valid and immutable...
        assert_eq!(*pinned, vec![1, 2, 3]);
        // ...while new loads observe the published replacement.
        assert_eq!(*cell.load(), vec![9]);
    }

    #[test]
    fn snapshot_is_shared_across_threads() {
        let cell: Arc<RealSnapshot<u64>> = Arc::new(SyncSnapshot::new(Arc::new(0)));
        let handles: Vec<_> = (1..=4u64)
            .map(|i| {
                let cell = Arc::clone(&cell);
                std::thread::spawn(move || {
                    cell.store(Arc::new(i));
                    *cell.load()
                })
            })
            .collect();
        for h in handles {
            let seen = h.join().unwrap();
            assert!((1..=4).contains(&seen), "loads only ever see published values");
        }
        assert!((1..=4).contains(&*cell.load()));
    }

    #[test]
    fn atomic_orderings_forward() {
        let a = RealAtomicU64::new(5);
        assert_eq!(a.fetch_add(2, Ordering::SeqCst), 5);
        a.store(11, Ordering::Release);
        assert_eq!(a.load(Ordering::Acquire), 11);
    }
}
