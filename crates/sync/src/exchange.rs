//! The elimination / combining **exchange slot** — the `SyncApi`
//! primitive behind the diffracting layer in front of hot balancers.
//!
//! Under contention, two tokens that would otherwise fight over the
//! same leaf `fetch_add` can instead *pair off* at an exchange slot:
//! one side (the **waiter**) posts an offer carrying its token weight
//! and spins briefly; the other side (the **combiner**) absorbs the
//! offered weight into its own batched traversal and hands the
//! resulting values back through the slot. The network sees one
//! combined traversal instead of two contending ones — the classic
//! elimination/diffraction move (Shavit & Zemach), adapted here to
//! *weighted* tokens so it composes with the batched fast path.
//!
//! # Protocol
//!
//! The slot is a single tagged-state atomic plus a mutex-protected
//! payload cell. States: `EMPTY`, `OFFER(weight)`, `FULFILLED`.
//!
//! - [`ExchangeSlot::offer`]`(weight, patience)`: CAS `EMPTY →
//!   OFFER(weight)`; spin up to `patience` loads for `FULFILLED`; on
//!   timeout CAS `OFFER → EMPTY` to withdraw. If the withdrawal CAS
//!   fails a combiner has already committed — the payload is
//!   guaranteed present (see below) and the offer completes as an
//!   exchange after all.
//! - [`ExchangeSlot::fulfil`]`(weight, payload)`: **holding the
//!   payload mutex across the CAS**, CAS `OFFER(weight) → FULFILLED`
//!   and deposit the payload. Holding the mutex across the CAS is
//!   what makes fulfilment atomic from the waiter's point of view: a
//!   waiter that observes `FULFILLED` must acquire the same mutex to
//!   collect, so it blocks (boundedly) until the payload is in place.
//!   If the CAS fails — the waiter withdrew first, or another
//!   combiner won — the payload is handed back to the caller
//!   (`Err`), who keeps the speculatively-claimed values for its own
//!   stash instead of losing them.
//!
//! Every wait in the protocol is **bounded** (`patience` loads for
//! the waiter, one mutex acquisition for collection), which is what
//! lets `VirtualSync` exhaustively explore pairing, timeout, and
//! withdraw/fulfil races without diverging on an unbounded spin.

use crate::{Ordering, SyncApi, SyncAtomicU64, SyncData, SyncMutex};

/// Slot state: no offer posted.
const EMPTY: u64 = 0;
/// Slot state tag: an offer of weight `w` is encoded `(w << 2) | OFFER_TAG`.
const OFFER_TAG: u64 = 1;
/// Slot state: a combiner committed; the payload cell holds the values.
const FULFILLED: u64 = 2;

/// Encodes an offer of `weight` into the state word.
fn offer_word(weight: u64) -> u64 {
    debug_assert!(weight < (1 << 62), "offer weight overflows the state tag");
    (weight << 2) | OFFER_TAG
}

/// The outcome of [`ExchangeSlot::offer`].
#[derive(Debug, PartialEq, Eq)]
pub enum OfferOutcome<T> {
    /// A combiner absorbed the offered weight; here are the values it
    /// claimed on the offerer's behalf.
    Exchanged(T),
    /// Nobody took the offer within `patience`; it was withdrawn and
    /// the caller must traverse the network itself.
    TimedOut,
    /// The slot already carries someone else's offer (or an
    /// in-flight fulfilment); nothing was posted.
    Busy,
}

/// A single elimination slot exchanging token weight for a payload of
/// claimed values. See the [module docs](self) for the protocol.
pub struct ExchangeSlot<T: SyncData, S: SyncApi = crate::RealSync> {
    state: S::AtomicU64,
    payload: S::Mutex<Option<T>>,
}

impl<T: SyncData, S: SyncApi> Default for ExchangeSlot<T, S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: SyncData, S: SyncApi> ExchangeSlot<T, S> {
    /// A new, empty slot.
    pub fn new() -> Self {
        ExchangeSlot { state: S::AtomicU64::new(EMPTY), payload: S::Mutex::new(None) }
    }

    /// Posts an offer of `weight` tokens and waits up to `patience`
    /// state loads for a combiner. See [`OfferOutcome`].
    pub fn offer(&self, weight: u64, patience: usize) -> OfferOutcome<T> {
        let word = offer_word(weight);
        if self
            .state
            .compare_exchange(EMPTY, word, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return OfferOutcome::Busy;
        }
        for _ in 0..patience {
            if self.state.load(Ordering::Acquire) == FULFILLED {
                return OfferOutcome::Exchanged(self.collect());
            }
            std::hint::spin_loop();
        }
        // Timeout: withdraw. If the withdrawal CAS fails, a combiner
        // committed in the meantime (OFFER can only leave via us or a
        // fulfilling CAS) — collect the exchange after all.
        match self.state.compare_exchange(word, EMPTY, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => OfferOutcome::TimedOut,
            Err(state) => {
                debug_assert_eq!(state, FULFILLED, "offer can only be displaced by fulfilment");
                OfferOutcome::Exchanged(self.collect())
            }
        }
    }

    /// Returns the weight of the currently posted offer, if any — the
    /// combiner's cheap read-only probe before it commits to
    /// speculatively claiming extra values.
    pub fn pending_offer(&self) -> Option<u64> {
        let state = self.state.load(Ordering::Acquire);
        (state & 0b11 == OFFER_TAG).then_some(state >> 2)
    }

    /// Attempts to fulfil a pending offer of exactly `weight` with
    /// `payload`. `Ok(())` means the exchange committed and the
    /// offerer will collect `payload`; `Err(payload)` hands the
    /// payload back (the offer was withdrawn, changed, or already
    /// fulfilled) and the caller keeps the values.
    pub fn fulfil(&self, weight: u64, payload: T) -> Result<(), T> {
        // Hold the payload mutex across the CAS: a waiter that sees
        // FULFILLED collects under this same mutex, so it can never
        // observe the state change before the payload is deposited.
        let mut cell = self.payload.lock();
        match self.state.compare_exchange(
            offer_word(weight),
            FULFILLED,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => {
                debug_assert!(cell.is_none(), "fulfilled a slot that still carries a payload");
                *cell = Some(payload);
                Ok(())
            }
            Err(_) => Err(payload),
        }
    }

    /// Collects the deposited payload after observing `FULFILLED` and
    /// resets the slot to `EMPTY` for the next pairing.
    fn collect(&self) -> T {
        let payload =
            self.payload.lock().take().expect("FULFILLED slot must carry a payload");
        self.state.store(EMPTY, Ordering::Release);
        payload
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RealSync;
    use std::sync::Arc;

    type Slot = ExchangeSlot<Vec<u64>, RealSync>;

    #[test]
    fn offer_times_out_when_nobody_combines() {
        let slot: Slot = ExchangeSlot::new();
        assert_eq!(slot.offer(3, 4), OfferOutcome::TimedOut);
        // The slot is usable again afterwards.
        assert_eq!(slot.pending_offer(), None);
        assert_eq!(slot.offer(1, 0), OfferOutcome::TimedOut);
    }

    #[test]
    fn second_offer_finds_the_slot_busy() {
        let slot: Arc<Slot> = Arc::new(ExchangeSlot::new());
        let held = Arc::clone(&slot);
        let holder = std::thread::spawn(move || held.offer(2, 1 << 22));
        // Wait until the first offer is visibly posted.
        while slot.pending_offer().is_none() {
            std::hint::spin_loop();
        }
        assert_eq!(slot.offer(1, 1), OfferOutcome::Busy);
        // Release the holder by fulfilling it.
        assert_eq!(slot.fulfil(2, vec![10, 11]), Ok(()));
        assert_eq!(holder.join().unwrap(), OfferOutcome::Exchanged(vec![10, 11]));
    }

    #[test]
    fn fulfil_hands_payload_back_when_offer_is_gone() {
        let slot: Slot = ExchangeSlot::new();
        assert_eq!(slot.fulfil(5, vec![1]), Err(vec![1]));
        // Wrong weight is also a miss — the offer word mismatches.
        assert_eq!(slot.offer(3, 0), OfferOutcome::TimedOut);
        assert_eq!(slot.fulfil(4, vec![2]), Err(vec![2]));
    }

    #[test]
    fn pairing_round_trips_the_payload() {
        let slot: Arc<Slot> = Arc::new(ExchangeSlot::new());
        let offerer = {
            let slot = Arc::clone(&slot);
            std::thread::spawn(move || slot.offer(2, 1 << 22))
        };
        while slot.pending_offer() != Some(2) {
            std::hint::spin_loop();
        }
        assert_eq!(slot.fulfil(2, vec![40, 41]), Ok(()));
        assert_eq!(offerer.join().unwrap(), OfferOutcome::Exchanged(vec![40, 41]));
        // Slot fully reset.
        assert_eq!(slot.pending_offer(), None);
    }
}
