//! The adaptive periodic network runtime: mod-k components over a cut,
//! with exact profile-flow split/merge state transfer.

use std::collections::HashMap;

use crate::tree::{PCut, PId, PInfo, POutput, PTree};

/// Tokens a round-robin counter of the given width has emitted on
/// `port` after `tokens` tokens.
fn port_emissions(tokens: u64, width: usize, port: usize) -> u64 {
    (tokens + width as u64 - 1 - port as u64) / width as u64
}

/// A live component: a mod-`k` counter with its arrival profile.
#[derive(Debug, Clone, PartialEq, Eq)]
struct PComponent {
    width: usize,
    tokens: u64,
    arrivals: Vec<u64>,
}

impl PComponent {
    fn new(width: usize) -> Self {
        PComponent { width, tokens: 0, arrivals: vec![0; width] }
    }

    fn process(&mut self, port: usize) -> usize {
        self.arrivals[port] += 1;
        let out = (self.tokens % self.width as u64) as usize;
        self.tokens += 1;
        out
    }
}

/// An adaptive `PERIODIC[w]` counting network in one address space —
/// the generality demonstration for the paper's Section 1.2 remark.
///
/// # Example
///
/// ```
/// use acn_periodic::{AdaptivePeriodic, PId};
///
/// let mut net = AdaptivePeriodic::new(8);
/// // Split the root, then the middle block.
/// net.split(&PId::root()).unwrap();
/// net.split(&PId::root().child(1)).unwrap();
/// for t in 0..20usize {
///     assert_eq!(net.push(t % 8), t % 8);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct AdaptivePeriodic {
    tree: PTree,
    cut: PCut,
    components: HashMap<PId, PComponent>,
    output_counts: Vec<u64>,
}

impl AdaptivePeriodic {
    /// A new network of width `w`, starting as one root component.
    ///
    /// # Panics
    ///
    /// Panics if `w` is not a power of two or `w < 2`.
    #[must_use]
    pub fn new(w: usize) -> Self {
        Self::with_cut(w, PCut::root())
    }

    /// A new (zero-token) network over an explicit cut.
    ///
    /// # Panics
    ///
    /// Panics if the cut is invalid for the tree.
    #[must_use]
    pub fn with_cut(w: usize, cut: PCut) -> Self {
        let tree = PTree::new(w);
        assert!(cut.is_valid(&tree), "invalid cut");
        let components = cut
            .leaves()
            .iter()
            .map(|id| (id.clone(), PComponent::new(tree.info(id).expect("valid").width)))
            .collect();
        AdaptivePeriodic { tree, cut, components, output_counts: vec![0; w] }
    }

    /// The network width.
    #[must_use]
    pub fn width(&self) -> usize {
        self.tree.width()
    }

    /// The current cut.
    #[must_use]
    pub fn cut(&self) -> &PCut {
        &self.cut
    }

    /// Tokens exited per output wire (step sequence in quiescent states).
    #[must_use]
    pub fn output_counts(&self) -> &[u64] {
        &self.output_counts
    }

    /// Total tokens exited.
    #[must_use]
    pub fn total_exited(&self) -> u64 {
        self.output_counts.iter().sum()
    }

    /// The cut leaf owning `(node, port)` reached by descending the
    /// decomposition until a live component is hit.
    fn resolve_down(&self, mut node: PId, mut port: usize) -> (PId, usize) {
        loop {
            if self.cut.contains(&node) {
                return (node, port);
            }
            let info = self.tree.info(&node).expect("valid node");
            let (child, child_port) = self.tree.input_to_child(&info, port);
            node = node.child(child as u8);
            port = child_port;
        }
    }

    /// Routes one token from input wire `wire`; returns the output wire.
    ///
    /// Quiescent outputs are a deterministic function of per-component
    /// totals (components are port-blind), so sequential verification
    /// covers every asynchronous interleaving.
    ///
    /// # Panics
    ///
    /// Panics if `wire >= width`.
    pub fn push(&mut self, wire: usize) -> usize {
        assert!(wire < self.width(), "input wire out of range");
        let (mut owner, mut port) = self.resolve_down(PId::root(), wire);
        loop {
            let comp = self.components.get_mut(&owner).expect("cut leaf is live");
            let out = comp.process(port);
            // Walk up until the wire leaves a parent or exits the net.
            let mut node = owner;
            let mut out_port = out;
            loop {
                let Some(parent) = node.parent() else {
                    self.output_counts[out_port] += 1;
                    return out_port;
                };
                let child_index = node.child_index().expect("non-root") as usize;
                let pinfo = self.tree.info(&parent).expect("valid parent");
                match self.tree.child_output(&pinfo, child_index, out_port) {
                    POutput::Sibling { child, port: sibling_port } => {
                        let (next_owner, next_port) =
                            self.resolve_down(parent.child(child as u8), sibling_port);
                        owner = next_owner;
                        port = next_port;
                        break;
                    }
                    POutput::Parent { port: parent_port } => {
                        node = parent;
                        out_port = parent_port;
                    }
                }
            }
        }
    }

    /// Splits leaf `id`, transferring state exactly by flowing the
    /// arrival profile through the decomposition (children in index
    /// order, which is topological for every kind).
    ///
    /// # Errors
    ///
    /// Returns an error string if `id` is not a splittable leaf.
    pub fn split(&mut self, id: &PId) -> Result<(), String> {
        if !self.cut.contains(id) {
            return Err(format!("{id} is not a leaf of the cut"));
        }
        let info = self.tree.info(id).expect("leaf is valid");
        if info.width == 2 {
            return Err(format!("{id} is a balancer"));
        }
        let parent = self.components[id].clone();
        let arity = info.child_count();
        let child_infos: Vec<PInfo> = (0..arity as u8)
            .map(|c| self.tree.info(&id.child(c)).expect("valid child"))
            .collect();
        let mut tokens = vec![0u64; arity];
        let mut profiles: Vec<Vec<u64>> =
            child_infos.iter().map(|ci| vec![0u64; ci.width]).collect();
        for (port, &count) in parent.arrivals.iter().enumerate() {
            let (child, child_port) = self.tree.input_to_child(&info, port);
            profiles[child][child_port] += count;
            tokens[child] += count;
        }
        for child in 0..arity {
            let width = child_infos[child].width;
            for port in 0..width {
                let sent = port_emissions(tokens[child], width, port);
                if let POutput::Sibling { child: sibling, port: sibling_port } =
                    self.tree.child_output(&info, child, port)
                {
                    debug_assert!(sibling > child, "flow order violated");
                    profiles[sibling][sibling_port] += sent;
                    tokens[sibling] += sent;
                }
            }
        }
        self.cut.split(&self.tree, id);
        self.components.remove(id);
        for (c, (t, profile)) in tokens.into_iter().zip(profiles).enumerate() {
            let width = child_infos[c].width;
            self.components.insert(
                id.child(c as u8),
                PComponent { width, tokens: t, arrivals: profile },
            );
        }
        Ok(())
    }

    /// Merges the subtree under `id` back into one component
    /// (recursively merging deeper descendants first).
    ///
    /// # Errors
    ///
    /// Returns an error string if `id` is a leaf already or not covered
    /// by the cut.
    pub fn merge(&mut self, id: &PId) -> Result<(), String> {
        if self.cut.contains(id) {
            return Err(format!("{id} is already a leaf"));
        }
        let info = self.tree.info(id).ok_or_else(|| format!("{id} is invalid"))?;
        if info.width == 2 {
            return Err(format!("{id} is a balancer"));
        }
        let children = self.tree.children(id);
        for child in &children {
            if !self.cut.contains(child) {
                self.merge(child)?;
            }
        }
        let mut arrivals = vec![0u64; info.width];
        for (port, slot) in arrivals.iter_mut().enumerate() {
            let (child, child_port) = self.tree.input_to_child(&info, port);
            *slot = self.components[&children[child]].arrivals[child_port];
        }
        let tokens: u64 = arrivals.iter().sum();
        for child in &children {
            self.components.remove(child);
        }
        self.cut.merge(&self.tree, id);
        self.components
            .insert(id.clone(), PComponent { width: info.width, tokens, arrivals });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg(state: &mut u64) -> u64 {
        *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        *state >> 33
    }

    #[test]
    fn root_counts() {
        let mut net = AdaptivePeriodic::new(8);
        for t in 0..24usize {
            assert_eq!(net.push((t * 5) % 8), t % 8);
        }
    }

    #[test]
    fn all_cuts_of_p4_count() {
        let tree = PTree::new(4);
        for cut in PCut::enumerate_all(&tree) {
            let mut net = AdaptivePeriodic::with_cut(4, cut.clone());
            let mut seed = 5u64;
            for t in 0..32usize {
                let wire = (lcg(&mut seed) as usize) % 4;
                assert_eq!(net.push(wire), t % 4, "cut {cut}");
            }
        }
    }

    #[test]
    fn sampled_cuts_of_p8_and_p16_count() {
        for w in [8usize, 16] {
            let tree = PTree::new(w);
            let mut seed = w as u64 * 31 + 1;
            for trial in 0..40 {
                let mut net = AdaptivePeriodic::new(w);
                // Random splits to a random cut.
                for _ in 0..(lcg(&mut seed) % 12) {
                    let splittable: Vec<PId> = net
                        .cut()
                        .leaves()
                        .iter()
                        .filter(|l| tree.info(l).map(|i| i.width >= 4).unwrap_or(false))
                        .cloned()
                        .collect();
                    if splittable.is_empty() {
                        break;
                    }
                    let pick = splittable[(lcg(&mut seed) as usize) % splittable.len()].clone();
                    net.split(&pick).expect("splittable");
                }
                for t in 0..4 * w {
                    let wire = (lcg(&mut seed) as usize) % w;
                    assert_eq!(net.push(wire), t % w, "w={w} trial={trial} cut {}", net.cut());
                }
            }
        }
    }

    #[test]
    fn split_mid_stream_preserves_round_robin() {
        let w = 8;
        let root = PId::root();
        for warmup in 0..2 * w {
            let mut net = AdaptivePeriodic::new(w);
            for t in 0..warmup {
                assert_eq!(net.push(t % w), t % w);
            }
            net.split(&root).expect("root splits");
            net.split(&root.child(0)).expect("block splits");
            for t in warmup..warmup + 2 * w {
                assert_eq!(net.push((t * 3) % w), t % w, "warmup={warmup}");
            }
        }
    }

    #[test]
    fn merge_mid_stream_preserves_round_robin() {
        let w = 8;
        let root = PId::root();
        for warmup in 0..2 * w {
            let mut net = AdaptivePeriodic::new(w);
            net.split(&root).expect("root splits");
            net.split(&root.child(2)).expect("last block splits");
            for t in 0..warmup {
                assert_eq!(net.push(t % w), t % w);
            }
            net.merge(&root).expect("subtree merges");
            for t in warmup..warmup + 2 * w {
                assert_eq!(net.push((t * 5) % w), t % w, "warmup={warmup}");
            }
        }
    }

    #[test]
    fn reconfiguration_storm_keeps_counting() {
        let w = 16;
        let tree = PTree::new(w);
        let mut net = AdaptivePeriodic::new(w);
        let mut seed = 0xF00Du64;
        let mut pushed = 0usize;
        for _ in 0..500 {
            match lcg(&mut seed) % 4 {
                0 => {
                    let splittable: Vec<PId> = net
                        .cut()
                        .leaves()
                        .iter()
                        .filter(|l| tree.info(l).map(|i| i.width >= 4).unwrap_or(false))
                        .cloned()
                        .collect();
                    if !splittable.is_empty() {
                        let pick =
                            splittable[(lcg(&mut seed) as usize) % splittable.len()].clone();
                        net.split(&pick).expect("splittable");
                    }
                }
                1 => {
                    let parents: Vec<PId> =
                        net.cut().leaves().iter().filter_map(|l| l.parent()).collect();
                    if !parents.is_empty() {
                        let pick = parents[(lcg(&mut seed) as usize) % parents.len()].clone();
                        let _ = net.merge(&pick);
                    }
                }
                _ => {
                    let wire = (lcg(&mut seed) as usize) % w;
                    assert_eq!(net.push(wire), pushed % w, "after {pushed} pushes");
                    pushed += 1;
                }
            }
        }
        assert!(pushed > 100);
    }

    #[test]
    fn split_errors() {
        let mut net = AdaptivePeriodic::new(4);
        assert!(net.split(&PId::root().child(0)).is_err());
        net.split(&PId::root()).unwrap();
        // BLOCK[4] -> REV[4] is splittable; its balancer children are not.
        let rev = PId::root().child(0).child(0);
        net.split(&PId::root().child(0)).unwrap();
        net.split(&rev).unwrap();
        assert!(net.split(&rev.child(0)).is_err(), "balancers cannot split");
        assert!(net.merge(&rev.child(0)).is_err());
    }
}
