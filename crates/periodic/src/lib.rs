//! An **adaptive PERIODIC counting network** — the paper's generality
//! claim, made concrete.
//!
//! Section 1.2 of *Adaptive Counting Networks* remarks that "the same
//! technique can be used for any distributed data structure which can be
//! decomposed in a recursive way". The paper works out the bitonic
//! network only; this crate transfers the construction to the *other*
//! classical counting network, `PERIODIC[w]` of Dowd–Perl–Rudolph–Saks
//! (the one the paper's related-work section mentions alongside the
//! bitonic), and verifies empirically that the transfer is sound:
//!
//! - the recursive decomposition: `PERIODIC[w]` is `log w` `BLOCK[w]`
//!   networks in sequence; `BLOCK[k]` is a reversal layer `REV[k]`
//!   followed by two `BLOCK[k/2]`; `REV[k]` (the layer of balancers
//!   pairing wire `i` with wire `k-1-i`) splits into two pair-group
//!   halves; width-2 components are balancers;
//! - every component, whatever its kind, is the same mod-`k` round-robin
//!   counter as in the bitonic construction;
//! - any cut of the decomposition tree implements a counting network of
//!   width `w` (the Theorem 2.1 analogue — checked exhaustively for
//!   small `w` in this crate's tests and at scale by the `exp_generality`
//!   harness);
//! - splits and merges transfer state exactly with the same
//!   profile-flow technique as `acn-core`.
//!
//! # Example
//!
//! ```
//! use acn_periodic::{AdaptivePeriodic, PTree, PId};
//!
//! let mut net = AdaptivePeriodic::new(8);
//! assert_eq!(net.push(3), 0);
//! assert_eq!(net.push(7), 1);
//! // Split the root into its three chained BLOCK[8] components.
//! net.split(&PId::root()).unwrap();
//! assert_eq!(net.push(0), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod network;
mod tree;

pub use network::AdaptivePeriodic;
pub use tree::{PCut, PId, PKind, PTree};
