//! The recursive decomposition tree of `PERIODIC[w]`.

use std::collections::BTreeSet;
use std::fmt;

/// Component kinds of the periodic decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PKind {
    /// The whole `PERIODIC[w]` network (root only).
    Periodic,
    /// A `BLOCK[k]` network: a reversal layer followed by two half
    /// blocks.
    Block,
    /// A pair-group of the reversal layer: the balancers joining wire
    /// `i` with wire `k-1-i`.
    Rev,
}

impl PKind {
    /// Short tag used in display output.
    #[must_use]
    pub fn tag(self) -> char {
        match self {
            PKind::Periodic => 'P',
            PKind::Block => 'B',
            PKind::Rev => 'R',
        }
    }
}

/// Identifier of a periodic component: its path from the root.
///
/// (The bitonic crate's `ComponentId` caps child indices at 6; the
/// periodic root has `log2 w` children, so the type is separate.)
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PId {
    path: Vec<u8>,
}

impl PId {
    /// The root component, `PERIODIC[w]`.
    #[must_use]
    pub fn root() -> Self {
        PId { path: Vec::new() }
    }

    /// Builds an identifier from a path of child indices.
    #[must_use]
    pub fn from_path(path: impl Into<Vec<u8>>) -> Self {
        PId { path: path.into() }
    }

    /// The path of child indices.
    #[must_use]
    pub fn path(&self) -> &[u8] {
        &self.path
    }

    /// The level in the tree (root = 0).
    #[must_use]
    pub fn level(&self) -> usize {
        self.path.len()
    }

    /// The `index`-th child.
    #[must_use]
    pub fn child(&self, index: u8) -> Self {
        let mut path = self.path.clone();
        path.push(index);
        PId { path }
    }

    /// The parent, or `None` for the root.
    #[must_use]
    pub fn parent(&self) -> Option<Self> {
        if self.path.is_empty() {
            return None;
        }
        let mut path = self.path.clone();
        path.pop();
        Some(PId { path })
    }

    /// The child index within the parent.
    #[must_use]
    pub fn child_index(&self) -> Option<u8> {
        self.path.last().copied()
    }

    /// Whether `self` is a proper ancestor of `other`.
    #[must_use]
    pub fn is_ancestor_of(&self, other: &PId) -> bool {
        self.path.len() < other.path.len() && other.path.starts_with(&self.path)
    }
}

impl fmt::Display for PId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.path.is_empty() {
            return f.write_str("/");
        }
        for step in &self.path {
            write!(f, "/{step}")?;
        }
        Ok(())
    }
}

/// Resolved node information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PInfo {
    /// The node's kind.
    pub kind: PKind,
    /// Its width (number of input/output wires).
    pub width: usize,
    /// Its level (root = 0).
    pub level: usize,
}

impl PInfo {
    /// Number of children in the tree (0 for width-2 leaves).
    #[must_use]
    pub fn child_count(&self) -> usize {
        if self.width == 2 {
            return 0;
        }
        match self.kind {
            PKind::Periodic => self.width.trailing_zeros() as usize,
            PKind::Block => 3,
            PKind::Rev => 2,
        }
    }
}

/// Where a child's output wire leads within its parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum POutput {
    /// Into input `port` of sibling number `child`.
    Sibling {
        /// Sibling child index.
        child: usize,
        /// Sibling input port.
        port: usize,
    },
    /// Out of the parent on `port`.
    Parent {
        /// Parent output port.
        port: usize,
    },
}

/// The decomposition tree of `PERIODIC[w]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PTree {
    width: usize,
}

impl PTree {
    /// The tree for `PERIODIC[width]`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not a power of two or `width < 2`.
    #[must_use]
    pub fn new(width: usize) -> Self {
        assert!(
            width >= 2 && width.is_power_of_two(),
            "width must be a power of two >= 2, got {width}"
        );
        PTree { width }
    }

    /// The network width `w`.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Resolves an identifier, or `None` if the path is invalid.
    #[must_use]
    pub fn info(&self, id: &PId) -> Option<PInfo> {
        let mut kind = PKind::Periodic;
        let mut width = self.width;
        for (level, &step) in id.path().iter().enumerate() {
            if width == 2 {
                return None; // leaves have no children
            }
            let arity = PInfo { kind, width, level }.child_count();
            if usize::from(step) >= arity {
                return None;
            }
            match kind {
                PKind::Periodic => {
                    kind = PKind::Block; // width unchanged
                }
                PKind::Block => {
                    if step == 0 {
                        kind = PKind::Rev; // width unchanged
                    } else {
                        width /= 2; // half blocks
                    }
                }
                PKind::Rev => {
                    width /= 2;
                }
            }
        }
        Some(PInfo { kind, width, level: id.level() })
    }

    /// The children of `id` (empty for leaves).
    ///
    /// # Panics
    ///
    /// Panics if `id` is invalid.
    #[must_use]
    pub fn children(&self, id: &PId) -> Vec<PId> {
        let info = self.info(id).expect("invalid id");
        (0..info.child_count() as u8).map(|c| id.child(c)).collect()
    }

    /// Maps input port `port` of a decomposed node to
    /// `(child index, child port)`.
    ///
    /// # Panics
    ///
    /// Panics if the node is a leaf or `port` is out of range.
    #[must_use]
    pub fn input_to_child(&self, info: &PInfo, port: usize) -> (usize, usize) {
        assert!(info.width >= 4, "leaves are not decomposable");
        assert!(port < info.width, "port out of range");
        let k = info.width;
        match info.kind {
            // All input wires enter the first block.
            PKind::Periodic => (0, port),
            // All input wires enter the reversal layer (child 0).
            PKind::Block => (0, port),
            // Pair split: outer pairs to child 0, inner pairs to child 1,
            // preserving each child's own pair structure.
            PKind::Rev => {
                let quarter = k / 4;
                if port < quarter {
                    (0, port)
                } else if port < 3 * quarter {
                    (1, port - quarter)
                } else {
                    (0, port - k / 2)
                }
            }
        }
    }

    /// Maps output `port` of child number `child` of a decomposed node.
    ///
    /// # Panics
    ///
    /// Panics if the node is a leaf, or `child`/`port` are out of range.
    #[must_use]
    pub fn child_output(&self, info: &PInfo, child: usize, port: usize) -> POutput {
        assert!(info.width >= 4, "leaves are not decomposable");
        let arity = info.child_count();
        assert!(child < arity, "child out of range");
        let k = info.width;
        match info.kind {
            // Blocks chain: block i feeds block i+1; the last block's
            // outputs are the network outputs.
            PKind::Periodic => {
                assert!(port < k, "port out of range");
                if child + 1 < arity {
                    POutput::Sibling { child: child + 1, port }
                } else {
                    POutput::Parent { port }
                }
            }
            PKind::Block => {
                match child {
                    // Reversal layer output wire q feeds the half blocks.
                    0 => {
                        assert!(port < k, "port out of range");
                        if port < k / 2 {
                            POutput::Sibling { child: 1, port }
                        } else {
                            POutput::Sibling { child: 2, port: port - k / 2 }
                        }
                    }
                    1 => {
                        assert!(port < k / 2, "port out of range");
                        POutput::Parent { port }
                    }
                    _ => {
                        assert!(port < k / 2, "port out of range");
                        POutput::Parent { port: k / 2 + port }
                    }
                }
            }
            // Rev children output on their own wires (inverse of the
            // input split).
            PKind::Rev => {
                let quarter = k / 4;
                assert!(port < k / 2, "port out of range");
                match child {
                    0 => {
                        if port < quarter {
                            POutput::Parent { port }
                        } else {
                            POutput::Parent { port: port + k / 2 }
                        }
                    }
                    _ => POutput::Parent { port: quarter + port },
                }
            }
        }
    }
}

/// A cut of the periodic decomposition tree: an antichain of components
/// covering every root-to-leaf path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PCut {
    leaves: BTreeSet<PId>,
}

impl Default for PCut {
    fn default() -> Self {
        PCut::root()
    }
}

impl PCut {
    /// The trivial cut (the whole network as one component).
    #[must_use]
    pub fn root() -> Self {
        let mut leaves = BTreeSet::new();
        leaves.insert(PId::root());
        PCut { leaves }
    }

    /// The leaf components.
    #[must_use]
    pub fn leaves(&self) -> &BTreeSet<PId> {
        &self.leaves
    }

    /// Whether `id` is a leaf of the cut.
    #[must_use]
    pub fn contains(&self, id: &PId) -> bool {
        self.leaves.contains(id)
    }

    /// Splits leaf `id` into its children. Returns the children.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a splittable leaf of the cut.
    pub fn split(&mut self, tree: &PTree, id: &PId) -> Vec<PId> {
        assert!(self.leaves.contains(id), "{id} is not a leaf of the cut");
        let children = tree.children(id);
        assert!(!children.is_empty(), "{id} is a balancer");
        self.leaves.remove(id);
        for c in &children {
            self.leaves.insert(c.clone());
        }
        children
    }

    /// Merges the children of `id` back into `id`.
    ///
    /// # Panics
    ///
    /// Panics unless every child of `id` is a leaf of the cut.
    pub fn merge(&mut self, tree: &PTree, id: &PId) {
        let children = tree.children(id);
        assert!(
            !children.is_empty() && children.iter().all(|c| self.leaves.contains(c)),
            "children of {id} are not all leaves"
        );
        for c in &children {
            self.leaves.remove(c);
        }
        self.leaves.insert(id.clone());
    }

    /// Validates the antichain-cover property.
    #[must_use]
    pub fn is_valid(&self, tree: &PTree) -> bool {
        if !self.leaves.iter().all(|l| tree.info(l).is_some()) {
            return false;
        }
        fn walk(tree: &PTree, cut: &BTreeSet<PId>, id: &PId) -> bool {
            if cut.contains(id) {
                return !cut.iter().any(|l| id.is_ancestor_of(l));
            }
            let info = tree.info(id).expect("validated above");
            if info.width == 2 {
                return false;
            }
            (0..info.child_count() as u8).all(|c| walk(tree, cut, &id.child(c)))
        }
        walk(tree, &self.leaves, &PId::root())
    }

    /// Enumerates all cuts (use only for `w <= 8`; the count explodes).
    #[must_use]
    pub fn enumerate_all(tree: &PTree) -> Vec<PCut> {
        fn cuts_below(tree: &PTree, id: &PId) -> Vec<Vec<PId>> {
            let info = tree.info(id).expect("valid node");
            let mut all = vec![vec![id.clone()]];
            if info.width > 2 {
                let mut product: Vec<Vec<PId>> = vec![Vec::new()];
                for c in 0..info.child_count() as u8 {
                    let choices = cuts_below(tree, &id.child(c));
                    let mut next = Vec::new();
                    for base in &product {
                        for choice in &choices {
                            let mut combined = base.clone();
                            combined.extend(choice.iter().cloned());
                            next.push(combined);
                        }
                    }
                    product = next;
                }
                all.extend(product);
            }
            all
        }
        cuts_below(tree, &PId::root())
            .into_iter()
            .map(|leaves| PCut { leaves: leaves.into_iter().collect() })
            .collect()
    }
}

impl fmt::Display for PCut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, leaf) in self.leaves.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{leaf}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn info_kinds_and_widths() {
        let tree = PTree::new(8);
        let root = PId::root();
        let info = tree.info(&root).unwrap();
        assert_eq!((info.kind, info.width, info.child_count()), (PKind::Periodic, 8, 3));
        // Block children keep the width.
        let block = root.child(1);
        let info = tree.info(&block).unwrap();
        assert_eq!((info.kind, info.width, info.child_count()), (PKind::Block, 8, 3));
        // The block's reversal layer keeps the width; halves halve it.
        let rev = block.child(0);
        let info = tree.info(&rev).unwrap();
        assert_eq!((info.kind, info.width), (PKind::Rev, 8));
        let half = block.child(2);
        let info = tree.info(&half).unwrap();
        assert_eq!((info.kind, info.width), (PKind::Block, 4));
        // Invalid child indices.
        assert!(tree.info(&root.child(3)).is_none());
        assert!(tree.info(&rev.child(2)).is_none());
    }

    #[test]
    fn rev_port_maps_are_bijective_and_self_inverse() {
        let tree = PTree::new(16);
        for k in [4usize, 8, 16] {
            let info = PInfo { kind: PKind::Rev, width: k, level: 0 };
            let mut seen = std::collections::HashSet::new();
            for p in 0..k {
                let (c, q) = tree.input_to_child(&info, p);
                assert!(seen.insert((c, q)), "k={k} p={p} collides");
                // Output map is the inverse: the child's wire is the
                // parent's wire.
                match tree.child_output(&info, c, q) {
                    POutput::Parent { port } => assert_eq!(port, p, "k={k}"),
                    POutput::Sibling { .. } => panic!("rev children have no siblings"),
                }
            }
            assert_eq!(seen.len(), k);
        }
    }

    #[test]
    fn rev_children_preserve_pair_structure() {
        // Pair (j, k-1-j) must land on child ports (j', k/2-1-j').
        let tree = PTree::new(16);
        let k = 16;
        let info = PInfo { kind: PKind::Rev, width: k, level: 0 };
        for j in 0..k / 2 {
            let (c1, q1) = tree.input_to_child(&info, j);
            let (c2, q2) = tree.input_to_child(&info, k - 1 - j);
            assert_eq!(c1, c2, "pair ({j},{}) split across children", k - 1 - j);
            assert_eq!(q2, k / 2 - 1 - q1, "pair structure broken at {j}");
        }
    }

    #[test]
    fn block_and_periodic_wiring_cover_everything() {
        let tree = PTree::new(8);
        for (kind, arity) in [(PKind::Periodic, 3usize), (PKind::Block, 3)] {
            let info = PInfo { kind, width: 8, level: 0 };
            let mut fed = std::collections::HashSet::new();
            for p in 0..8 {
                fed.insert(tree.input_to_child(&info, p));
            }
            let mut parent_out = std::collections::HashSet::new();
            for child in 0..arity {
                let child_width = match (kind, child) {
                    (PKind::Block, 1 | 2) => 4,
                    _ => 8,
                };
                for q in 0..child_width {
                    match tree.child_output(&info, child, q) {
                        POutput::Sibling { child: c, port } => {
                            assert!(fed.insert((c, port)), "{kind:?} double-feeds ({c},{port})");
                        }
                        POutput::Parent { port } => {
                            assert!(parent_out.insert(port));
                        }
                    }
                }
            }
            assert_eq!(parent_out.len(), 8, "{kind:?} outputs");
        }
    }

    #[test]
    fn cut_split_merge_roundtrip() {
        let tree = PTree::new(8);
        let mut cut = PCut::root();
        let root = PId::root();
        let children = cut.split(&tree, &root);
        assert_eq!(children.len(), 3);
        assert!(cut.is_valid(&tree));
        cut.split(&tree, &root.child(1));
        assert!(cut.is_valid(&tree));
        cut.merge(&tree, &root.child(1));
        cut.merge(&tree, &root);
        assert_eq!(cut, PCut::root());
    }

    #[test]
    fn enumerate_counts() {
        // cuts(BLOCK[2]) = 1; cuts(REV[4]) = 2; cuts(BLOCK[4]) = 1 + 2 = 3;
        // cuts(REVGROUP[4]) = 2, cuts(REV[8]) = 1 + 4 = 5;
        // cuts(BLOCK[8]) = 1 + 5*3*3 = 46; cuts(P[8]) = 1 + 46^3 = 97337.
        let t4 = PTree::new(4);
        assert_eq!(PCut::enumerate_all(&t4).len(), 1 + 3 * 3);
        for cut in PCut::enumerate_all(&t4) {
            assert!(cut.is_valid(&t4), "{cut:?}");
        }
    }

    #[test]
    fn p4_root_has_two_blocks() {
        let tree = PTree::new(4);
        assert_eq!(tree.info(&PId::root()).unwrap().child_count(), 2);
    }
}
