//! Deterministic causal span tracing for the adaptive counting
//! network runtime.
//!
//! `acn-trace` sits directly on top of `acn-telemetry`: where the
//! telemetry layer aggregates (counters, gauges, log2 histograms),
//! this layer keeps *per-token causal history*. Every token already
//! carries a stable end-to-end id through the distributed runtime;
//! that id doubles as the **trace id**, and every hop the token takes
//! — balancer traversal, leaf `fetch_add`, wire send / deliver /
//! drop / retry, split/merge migration, stabilization step — records
//! a [`Span`] against it.
//!
//! Three consumers:
//!
//! 1. **End-to-end latency**: [`Tracer::open_trace`] /
//!    [`Tracer::close_trace`] fold closed traces into a log2
//!    histogram; [`Tracer::latency_summary`] extracts p50/p90/p99
//!    via `acn-telemetry`'s quantile estimator.
//! 2. **Flight recorder**: spans land in a bounded ring so that a
//!    failed model-checker oracle can dump the last N spans —
//!    causally ordered — alongside its replayable schedule.
//! 3. **Chrome `trace_event` export** ([`chrome`]): the same spans
//!    render as a `chrome://tracing` / Perfetto timeline.
//!
//! # Determinism
//!
//! Spans are data, never behaviour: recording one takes no lock the
//! traced code doesn't already imply, consumes no randomness, and
//! reads no ambient clock. Timestamps enter spans only through the
//! two sanctioned seams — simnet's virtual clock (`ctx.now()`) in the
//! distributed runtime, and `SyncApi::monotonic_now()` in the
//! concurrent executors (wall nanoseconds under `RealSync`, a logical
//! counter under the model checker's `VirtualSync`). The
//! `trace-determinism` lint enforces this: no `Instant::now` or
//! entropy source may appear in trace construction outside
//! `RealSync`. Consequently two runs of the same seed produce
//! bit-identical span DAGs (and the regression tests assert exactly
//! that).
//!
//! # Causal order
//!
//! Every recorded span gets a global sequence number assigned under
//! the recorder's lock, so the ring is totally ordered consistently
//! with program order at each site and with the happens-before edges
//! the traced operations themselves establish (a message's `send`
//! span is always sequenced before its `deliver` span, because the
//! simulator runs them in that order).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
// lint: std-sync-ok(acn-trace is zero-dependency by policy, like acn-telemetry; it cannot pull in parking_lot)
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use acn_telemetry::{bucket_of, HistogramSnapshot, BUCKET_COUNT};

/// The reserved trace id for spans that belong to the runtime itself
/// rather than to one token: split/merge migration, stabilization
/// steps, simulator self-profiling. `u64::MAX` so it can never
/// collide with a token id (tokens are numbered from zero).
pub const SYSTEM_TRACE: u64 = u64::MAX;

/// One causally-ordered hop in a trace.
///
/// `start == end` models an instant event (most virtual-clock hops);
/// a strictly larger `end` models a measured duration (executor
/// traversals, simulator self-profiling). Units are whatever clock
/// the recording site used — simulation ticks in the distributed
/// runtime, `SyncApi::monotonic_now()` units in the executors — and
/// are never mixed within one trace.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Span {
    /// The trace (token id, or [`SYSTEM_TRACE`]) this hop belongs to.
    pub trace: u64,
    /// What happened, under the `layer.verb` convention
    /// (`"token.send"`, `"net.migrate"`, `"exec.traverse"`, ...).
    pub kind: &'static str,
    /// The node / process the hop is attributed to, if any.
    pub node: Option<u64>,
    /// Timestamp the hop began.
    pub start: u64,
    /// Timestamp the hop ended (`>= start`).
    pub end: u64,
    /// Global causal sequence number, assigned by [`Tracer::record`].
    pub seq: u64,
    /// Ordered numeric detail (`("wire", 3)`, `("attempt", 1)`, ...).
    pub fields: Vec<(&'static str, u64)>,
}

impl Span {
    /// A new instant span of `kind` in `trace` at time zero.
    #[must_use]
    pub fn new(kind: &'static str, trace: u64) -> Self {
        Span { trace, kind, node: None, start: 0, end: 0, seq: 0, fields: Vec::new() }
    }

    /// Sets both timestamps to `t` (an instant event).
    #[must_use]
    pub fn at(mut self, t: u64) -> Self {
        self.start = t;
        self.end = t;
        self
    }

    /// Sets an explicit `[start, end]` interval.
    #[must_use]
    pub fn between(mut self, start: u64, end: u64) -> Self {
        self.start = start;
        self.end = end.max(start);
        self
    }

    /// Attributes the span to a node / process id.
    #[must_use]
    pub fn node(mut self, node: u64) -> Self {
        self.node = Some(node);
        self
    }

    /// Appends a `key = value` field.
    #[must_use]
    pub fn with(mut self, key: &'static str, value: u64) -> Self {
        self.fields.push((key, value));
        self
    }

    /// The first field named `key`, if present.
    #[must_use]
    pub fn field(&self, key: &str) -> Option<u64> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }

    /// The span's duration (`end - start`).
    #[must_use]
    pub fn duration(&self) -> u64 {
        self.end - self.start
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[seq {:>4}] t={}", self.seq, self.start)?;
        if self.end != self.start {
            write!(f, "..{}", self.end)?;
        }
        if self.trace == SYSTEM_TRACE {
            write!(f, " trace=system")?;
        } else {
            write!(f, " trace={}", self.trace)?;
        }
        if let Some(node) = self.node {
            write!(f, " node={node}")?;
        }
        write!(f, " {}", self.kind)?;
        for (k, v) in &self.fields {
            write!(f, " {k}={v}")?;
        }
        Ok(())
    }
}

/// End-to-end latency digest of the closed traces.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencySummary {
    /// Closed traces folded in.
    pub count: u64,
    /// Median end-to-end latency (clock units of the recording site).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl fmt::Display for LatencySummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} p50={:.0} p90={:.0} p99={:.0}",
            self.count, self.p50, self.p90, self.p99
        )
    }
}

/// Everything behind the recorder's single lock: the bounded span
/// ring, the open-trace table, and the closed-trace latency buckets.
#[derive(Debug)]
struct TraceState {
    /// Bounded flight-recorder ring, in `seq` (causal) order.
    ring: VecDeque<Span>,
    /// Spans evicted from the ring so far.
    dropped: u64,
    /// Next global sequence number.
    next_seq: u64,
    /// Trace id -> timestamp it was opened at.
    open: BTreeMap<u64, u64>,
    /// log2 latency buckets of closed traces.
    latency_buckets: Vec<u64>,
    latency_count: u64,
    latency_sum: u64,
}

#[derive(Debug)]
struct TracerInner {
    capacity: usize,
    /// Trace ids with `id & mask == 0` are sampled (0 = everything).
    sample_mask: u64,
    state: Mutex<TraceState>,
}

fn relock<'a, T>(
    r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// The span recorder: a cheap-to-clone handle that is a no-op when
/// disabled (the default), mirroring `acn_telemetry::Registry`.
///
/// Instrumented code holds a `Tracer` and guards expensive span
/// construction with [`Tracer::should_sample`]; everything recorded
/// lands in the bounded flight-recorder ring and (for
/// [`Tracer::open_trace`]d ids) the end-to-end latency histogram.
#[derive(Clone, Debug, Default)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl Tracer {
    /// The no-op tracer: every operation returns immediately.
    #[must_use]
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// An enabled tracer retaining the most recent `capacity` spans
    /// and sampling every trace.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self::with_sampling(capacity, 0)
    }

    /// An enabled tracer that samples one in `2^sample_log2` traces
    /// (by trace id low bits, so the choice is deterministic and all
    /// spans of one trace share a fate). [`SYSTEM_TRACE`] and
    /// explicitly recorded spans are always kept.
    #[must_use]
    pub fn with_sampling(capacity: usize, sample_log2: u32) -> Self {
        let sample_mask = (1u64 << sample_log2.min(63)) - 1;
        Tracer {
            inner: Some(Arc::new(TracerInner {
                capacity,
                sample_mask,
                state: Mutex::new(TraceState {
                    ring: VecDeque::new(),
                    dropped: 0,
                    next_seq: 0,
                    open: BTreeMap::new(),
                    latency_buckets: vec![0; BUCKET_COUNT],
                    latency_count: 0,
                    latency_sum: 0,
                }),
            })),
        }
    }

    /// Whether spans are being recorded at all.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether `trace` falls in the deterministic sample. Hot paths
    /// check this once before building any spans; disabled tracers
    /// sample nothing.
    #[must_use]
    pub fn should_sample(&self, trace: u64) -> bool {
        match &self.inner {
            None => false,
            Some(inner) => trace == SYSTEM_TRACE || trace & inner.sample_mask == 0,
        }
    }

    /// Records `span`, assigning its global causal sequence number.
    /// The oldest retained span is evicted when the ring is full
    /// (visible via [`Tracer::dropped`]).
    pub fn record(&self, mut span: Span) {
        let Some(inner) = &self.inner else { return };
        let mut state = relock(inner.state.lock());
        span.seq = state.next_seq;
        state.next_seq += 1;
        if inner.capacity == 0 {
            state.dropped += 1;
            return;
        }
        if state.ring.len() == inner.capacity {
            state.ring.pop_front();
            state.dropped += 1;
        }
        state.ring.push_back(span);
    }

    /// Marks `trace` as in flight since `t`. Reopening an already
    /// open trace keeps the earlier timestamp (first injection wins).
    pub fn open_trace(&self, trace: u64, t: u64) {
        let Some(inner) = &self.inner else { return };
        let mut state = relock(inner.state.lock());
        state.open.entry(trace).or_insert(t);
    }

    /// Closes `trace` at `t`, folding its end-to-end latency into the
    /// histogram; returns the latency, or `None` if the trace was not
    /// open (e.g. a duplicate exit — second close of the same id).
    pub fn close_trace(&self, trace: u64, t: u64) -> Option<u64> {
        let inner = self.inner.as_ref()?;
        let mut state = relock(inner.state.lock());
        let opened = state.open.remove(&trace)?;
        let latency = t.saturating_sub(opened);
        state.latency_buckets[bucket_of(latency)] += 1;
        state.latency_count += 1;
        state.latency_sum += latency;
        Some(latency)
    }

    /// Traces currently open (injected but not yet exited).
    #[must_use]
    pub fn open_traces(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| relock(i.state.lock()).open.len())
    }

    /// Traces closed into the latency histogram so far.
    #[must_use]
    pub fn closed_traces(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| relock(i.state.lock()).latency_count)
    }

    /// Spans evicted from the flight-recorder ring so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| relock(i.state.lock()).dropped)
    }

    /// All retained spans in causal (`seq`) order.
    #[must_use]
    pub fn spans(&self) -> Vec<Span> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |i| relock(i.state.lock()).ring.iter().cloned().collect())
    }

    /// Retained spans of `trace`, in causal order.
    #[must_use]
    pub fn spans_for(&self, trace: u64) -> Vec<Span> {
        self.inner.as_ref().map_or_else(Vec::new, |i| {
            relock(i.state.lock()).ring.iter().filter(|s| s.trace == trace).cloned().collect()
        })
    }

    /// The closed-trace latency histogram (log2 buckets), in the same
    /// shape `acn-telemetry` snapshots use so its quantile estimator
    /// applies directly.
    #[must_use]
    pub fn latency(&self) -> HistogramSnapshot {
        match &self.inner {
            None => HistogramSnapshot { count: 0, sum: 0, buckets: vec![0; BUCKET_COUNT] },
            Some(i) => {
                let state = relock(i.state.lock());
                HistogramSnapshot {
                    count: state.latency_count,
                    sum: state.latency_sum,
                    buckets: state.latency_buckets.clone(),
                }
            }
        }
    }

    /// p50/p90/p99 of closed-trace latency, or `None` when no trace
    /// has closed (or the tracer is disabled).
    #[must_use]
    pub fn latency_summary(&self) -> Option<LatencySummary> {
        let hist = self.latency();
        Some(LatencySummary {
            count: hist.count,
            p50: hist.p50()?,
            p90: hist.p90()?,
            p99: hist.p99()?,
        })
    }

    /// Checks the recorded stream against the trace schema: spans in
    /// strictly increasing causal order, every interval well-formed
    /// (`start <= end`), and no trace left open. Returns the first
    /// violation.
    ///
    /// # Errors
    ///
    /// A human-readable description of the violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        let Some(inner) = &self.inner else { return Ok(()) };
        let state = relock(inner.state.lock());
        let mut prev_seq: Option<u64> = None;
        for span in &state.ring {
            if span.end < span.start {
                return Err(format!("span not well-formed (end < start): {span}"));
            }
            if let Some(prev) = prev_seq {
                if span.seq <= prev {
                    return Err(format!(
                        "causal order violated: seq {} follows seq {prev}",
                        span.seq
                    ));
                }
            }
            prev_seq = Some(span.seq);
        }
        if let Some((&trace, &t)) = state.open.iter().next() {
            return Err(format!(
                "{} trace(s) left open, first: trace {trace} opened at t={t}",
                state.open.len()
            ));
        }
        Ok(())
    }

    /// Discards retained spans and open traces (the latency histogram
    /// is kept — it summarizes the run, not the window).
    pub fn clear(&self) {
        if let Some(inner) = &self.inner {
            let mut state = relock(inner.state.lock());
            state.ring.clear();
            state.open.clear();
        }
    }
}

/// Renders `spans` as an indented, causally-ordered flight-recorder
/// dump (one span per line) — what the model checker prints alongside
/// a failed oracle.
#[must_use]
pub fn format_spans(spans: &[Span]) -> String {
    let mut out = String::new();
    for span in spans {
        out.push_str("    ");
        let _ = fmt::Write::write_fmt(&mut out, format_args!("{span}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_is_inert() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        assert!(!t.should_sample(0));
        t.record(Span::new("x", 1));
        t.open_trace(1, 0);
        assert_eq!(t.close_trace(1, 5), None);
        assert!(t.spans().is_empty());
        assert_eq!(t.latency_summary(), None);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn spans_are_causally_ordered_and_bounded() {
        let t = Tracer::new(3);
        for i in 0..5u64 {
            t.record(Span::new("hop", i).at(i * 10));
        }
        let spans = t.spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(t.dropped(), 2);
        let seqs: Vec<u64> = spans.iter().map(|s| s.seq).collect();
        assert_eq!(seqs, [2, 3, 4], "ring keeps the newest spans in causal order");
        assert!(t.validate().is_ok());
        assert_eq!(t.spans_for(3).len(), 1);
    }

    #[test]
    fn open_close_folds_latency() {
        let t = Tracer::new(16);
        for (id, start, end) in [(1u64, 0u64, 10u64), (2, 5, 6), (3, 7, 1000)] {
            t.open_trace(id, start);
            assert_eq!(t.close_trace(id, end), Some(end - start));
        }
        // A duplicate close is a no-op (the collector's dedup path).
        assert_eq!(t.close_trace(1, 99), None);
        let summary = t.latency_summary().expect("3 closed traces");
        assert_eq!(summary.count, 3);
        assert!(summary.p50 >= 1.0 && summary.p50 <= 15.0, "p50 {}", summary.p50);
        assert!(summary.p99 >= 512.0, "p99 {}", summary.p99);
        assert_eq!(t.open_traces(), 0);
        assert_eq!(t.closed_traces(), 3);
    }

    #[test]
    fn reopening_keeps_the_first_timestamp() {
        let t = Tracer::new(4);
        t.open_trace(7, 10);
        t.open_trace(7, 50);
        assert_eq!(t.close_trace(7, 110), Some(100));
    }

    #[test]
    fn sampling_is_by_trace_id() {
        let t = Tracer::with_sampling(64, 2); // 1 in 4
        let sampled: Vec<u64> = (0..8).filter(|&i| t.should_sample(i)).collect();
        assert_eq!(sampled, [0, 4]);
        assert!(t.should_sample(SYSTEM_TRACE), "system spans always kept");
    }

    #[test]
    fn validate_reports_open_traces_and_bad_intervals() {
        let t = Tracer::new(4);
        t.open_trace(3, 1);
        let err = t.validate().expect_err("open trace");
        assert!(err.contains("trace 3"), "{err}");
        assert_eq!(t.close_trace(3, 2), Some(1));
        assert!(t.validate().is_ok());
    }

    #[test]
    fn display_shows_the_full_hop() {
        let mut s = Span::new("token.send", 5).at(42).node(2).with("to", 3).with("attempt", 1);
        s.seq = 9;
        let line = s.to_string();
        assert!(line.contains("trace=5"), "{line}");
        assert!(line.contains("node=2"), "{line}");
        assert!(line.contains("token.send to=3 attempt=1"), "{line}");
        let sys = Span::new("net.migrate", SYSTEM_TRACE).at(1);
        assert!(sys.to_string().contains("trace=system"));
    }

    #[test]
    fn clear_keeps_the_latency_digest() {
        let t = Tracer::new(4);
        t.open_trace(1, 0);
        t.record(Span::new("hop", 1).at(1));
        t.close_trace(1, 2);
        t.clear();
        assert!(t.spans().is_empty());
        assert_eq!(t.closed_traces(), 1);
    }
}
