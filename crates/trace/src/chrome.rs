//! Chrome `trace_event` export: renders recorded [`Span`]s as the
//! JSON object format `chrome://tracing` and Perfetto load natively.
//!
//! Mapping:
//!
//! - each span becomes one event named after its kind, with the trace
//!   id and all numeric fields under `args`;
//! - `pid` is always 0 (one traced process), `tid` is the span's node
//!   id (so each node gets its own timeline row; node-less spans land
//!   on a synthetic "runtime" row);
//! - instant spans (`start == end`) render as phase `"i"` (thread
//!   scope), measured spans as complete events (`"X"`) with `dur`;
//! - timestamps pass through unscaled. Chrome interprets `ts` as
//!   microseconds; for virtual-clock traces that reads as "one tick =
//!   one microsecond", which keeps relative layout exact.
//!
//! The export location honours the `ACN_TRACE_DIR` environment
//! variable (falling back to `target/trace/` in the workspace), the
//! same convention `ACN_TELEMETRY_DIR` uses for JSONL artifacts.

use std::fs;
use std::io;
use std::path::PathBuf;

use crate::{Span, SYSTEM_TRACE};

/// The timeline row used for spans without a node attribution.
const RUNTIME_TID: u64 = 999_999;

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = std::fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders `spans` as one Chrome `trace_event` JSON object
/// (`{"traceEvents": [...]}`), ready for `chrome://tracing` or
/// Perfetto.
#[must_use]
pub fn to_chrome_json(spans: &[Span]) -> String {
    let mut out = String::with_capacity(64 + spans.len() * 96);
    out.push_str("{\"traceEvents\":[");
    for (i, span) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        push_json_str(&mut out, span.kind);
        out.push_str(",\"cat\":\"acn\"");
        let tid = span.node.unwrap_or(RUNTIME_TID);
        if span.end > span.start {
            let _ = std::fmt::Write::write_fmt(
                &mut out,
                format_args!(
                    ",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{tid}",
                    span.start,
                    span.end - span.start
                ),
            );
        } else {
            let _ = std::fmt::Write::write_fmt(
                &mut out,
                format_args!(
                    ",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":0,\"tid\":{tid}",
                    span.start
                ),
            );
        }
        out.push_str(",\"args\":{\"seq\":");
        let _ = std::fmt::Write::write_fmt(&mut out, format_args!("{}", span.seq));
        if span.trace != SYSTEM_TRACE {
            let _ =
                std::fmt::Write::write_fmt(&mut out, format_args!(",\"trace\":{}", span.trace));
        }
        for (key, value) in &span.fields {
            out.push(',');
            push_json_str(&mut out, key);
            let _ = std::fmt::Write::write_fmt(&mut out, format_args!(":{value}"));
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

/// Where trace artifacts go: `$ACN_TRACE_DIR` if set, else
/// `target/trace/` relative to the current directory.
#[must_use]
pub fn artifact_dir() -> PathBuf {
    std::env::var_os("ACN_TRACE_DIR")
        .map_or_else(|| PathBuf::from("target/trace"), PathBuf::from)
}

/// Writes `spans` as `<artifact_dir()>/<name>.trace.json` (creating
/// the directory) and returns the path.
///
/// # Errors
///
/// Any I/O error from creating the directory or writing the file.
pub fn write_artifact(name: &str, spans: &[Span]) -> io::Result<PathBuf> {
    let dir = artifact_dir();
    fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.trace.json"));
    fs::write(&path, to_chrome_json(spans))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chrome_json_shape_is_stable() {
        let mut measured = Span::new("exec.traverse", 4).between(10, 25).node(1).with("hops", 3);
        measured.seq = 7;
        let mut instant = Span::new("token.exit", 4).at(30).node(2).with("wire", 5);
        instant.seq = 8;
        let json = to_chrome_json(&[measured, instant]);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains(
            "{\"name\":\"exec.traverse\",\"cat\":\"acn\",\"ph\":\"X\",\"ts\":10,\"dur\":15,\
             \"pid\":0,\"tid\":1,\"args\":{\"seq\":7,\"trace\":4,\"hops\":3}}"
        ), "{json}");
        assert!(json.contains("\"ph\":\"i\",\"s\":\"t\",\"ts\":30"), "{json}");
    }

    #[test]
    fn system_spans_omit_the_trace_arg_and_get_the_runtime_row() {
        let json = to_chrome_json(&[Span::new("net.split", SYSTEM_TRACE).at(1)]);
        assert!(!json.contains("\"trace\":"), "{json}");
        assert!(json.contains("\"tid\":999999"), "{json}");
    }

    #[test]
    fn write_artifact_round_trips() {
        let dir = std::env::temp_dir().join(format!("acn-trace-test-{}", std::process::id()));
        // The env var is process-global; restore it to keep other
        // tests in this binary unaffected.
        let prev = std::env::var_os("ACN_TRACE_DIR");
        std::env::set_var("ACN_TRACE_DIR", &dir);
        let path = write_artifact("unit", &[Span::new("x", 1).at(0)]).expect("write");
        match prev {
            Some(v) => std::env::set_var("ACN_TRACE_DIR", v),
            None => std::env::remove_var("ACN_TRACE_DIR"),
        }
        let text = std::fs::read_to_string(&path).expect("read back");
        assert!(text.contains("\"traceEvents\""));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
