//! Property tests for the concurrent runtime: random token /
//! split / merge interleavings driven through the lock-free fast path
//! and checked against the quiescent counting-network oracles
//! (Theorem 2.1: every cut counts; DESIGN.md §8: reconfiguration
//! preserves the step property).

use std::sync::Arc;

use acn_core::SharedAdaptiveNetwork;
use acn_topology::ComponentId;
use proptest::prelude::*;

/// The quiescent step property over per-wire output counts:
/// `0 <= counts[i] - counts[j] <= 1` for every `i < j`.
fn step_violation(counts: &[u64]) -> Option<String> {
    for i in 0..counts.len() {
        for j in (i + 1)..counts.len() {
            let d = counts[i] as i64 - counts[j] as i64;
            if !(0..=1).contains(&d) {
                return Some(format!("wires {i},{j}: counts {counts:?}"));
            }
        }
    }
    None
}

/// A reconfiguration target derived from a fuzz byte and the network's
/// *current* cut: a live leaf (for splits) or a live leaf's parent (for
/// merges). Both are always valid `T_w` nodes; the operation itself may
/// still fail (unsplittable balancer leaf, children not all leaves, a
/// racing reconfiguration changed the cut first, ...) and the
/// properties deliberately ignore those errors — the oracle is that
/// counting stays correct no matter which reconfigurations actually
/// land.
fn fuzz_target(net: &SharedAdaptiveNetwork, a: u8, merge: bool) -> Option<ComponentId> {
    let cut = net.cut();
    let leaves: Vec<&ComponentId> = cut.leaves().iter().collect();
    let leaf = leaves[a as usize % leaves.len()];
    if merge { leaf.parent() } else { Some(leaf.clone()) }
}

proptest! {
    /// Sequential oracle: tokens interleaved with arbitrary (often
    /// failing) split/merge requests must hand out exactly 0, 1, 2, ...
    /// in order, keep the structure consistent after every operation,
    /// and leave step-property output counts at quiescence.
    #[test]
    fn random_token_reconfig_sequences_count(
        logw in 1u32..4,
        ops in proptest::collection::vec(
            (0u8..3, any::<u8>(), any::<u8>(), 1u8..10),
            1..32,
        ),
    ) {
        let w = 1usize << logw;
        let net = SharedAdaptiveNetwork::new(w);
        let mut expected = 0u64;
        let mut wire = 0usize;
        for &(kind, a, b, batch) in &ops {
            match kind {
                0 => {
                    for _ in 0..batch {
                        let v = net.next_value(wire);
                        prop_assert_eq!(v, expected, "token {} got {}", expected, v);
                        expected += 1;
                        wire = (wire + 1) % w;
                    }
                }
                1 => {
                    if let Some(id) = fuzz_target(&net, a.wrapping_add(b), false) {
                        let _ = net.split(&id);
                    }
                }
                _ => {
                    if let Some(id) = fuzz_target(&net, a.wrapping_add(b), true) {
                        let _ = net.merge(&id);
                    }
                }
            }
            prop_assert!(net.structure_consistent(), "inconsistent after op {:?}", kind);
        }
        let counts = net.output_counts();
        prop_assert_eq!(counts.iter().sum::<u64>(), expected);
        prop_assert!(step_violation(&counts).is_none(), "{:?}", step_violation(&counts));
    }

    /// Concurrent oracle: real threads race tokens through the
    /// lock-free path while the main thread fires random
    /// reconfigurations. At quiescence the handed-out values must be
    /// exactly `0..total` (no duplicate, no skip) and the output counts
    /// a step — whatever interleaving the hardware produced.
    #[test]
    fn concurrent_tokens_with_random_reconfigs_stay_dense(
        logw in 1u32..4,
        per_thread in 8usize..48,
        reconfigs in proptest::collection::vec(
            (any::<bool>(), any::<u8>(), any::<u8>()),
            0..10,
        ),
    ) {
        let w = 1usize << logw;
        let net = Arc::new(SharedAdaptiveNetwork::new(w));
        let threads = 3usize;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let net = Arc::clone(&net);
                std::thread::spawn(move || {
                    (0..per_thread).map(|i| net.next_value((t + i) % w)).collect::<Vec<u64>>()
                })
            })
            .collect();
        for &(split, a, b) in &reconfigs {
            if let Some(id) = fuzz_target(&net, a.wrapping_add(b), !split) {
                let _ = if split { net.split(&id) } else { net.merge(&id) };
            }
        }
        let mut all: Vec<u64> = Vec::new();
        for h in handles {
            all.extend(h.join().expect("token thread panicked"));
        }
        all.sort_unstable();
        let total = (threads * per_thread) as u64;
        prop_assert_eq!(all, (0..total).collect::<Vec<u64>>());
        let counts = net.output_counts();
        prop_assert_eq!(counts.iter().sum::<u64>(), total);
        prop_assert!(step_violation(&counts).is_none(), "{:?}", step_violation(&counts));
        prop_assert!(net.structure_consistent());
    }
}
