//! Producer/consumer matching with two back-to-back counting networks
//! (paper Section 1.1, "Applications").
//!
//! Producers asynchronously announce resources ("supply tokens") and
//! consumers asynchronously request them ("request tokens"); the
//! synchronization problem is to match each request with exactly one
//! supply. As the paper describes, two counting networks solve it
//! without locks or queues: each side's tokens get consecutive slot
//! numbers from its own network, and equal slots match.
//!
//! Both networks here are *adaptive*, so the matcher's parallelism can
//! be resized on both sides independently while matching runs.

use std::collections::HashMap;

use acn_topology::ComponentId;

use crate::local::{AdaptError, LocalAdaptiveNetwork};

/// Which side of the matcher an operation addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// The producer (supply) network.
    Supply,
    /// The consumer (request) network.
    Request,
}

/// The result of offering a supply or request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatchOutcome<S, R> {
    /// The item met its counterpart: here is the pair.
    Matched {
        /// The slot number both sides drew.
        slot: u64,
        /// The supplied item.
        supply: S,
        /// The requesting item.
        request: R,
    },
    /// The counterpart has not arrived yet; the item is parked under its
    /// slot.
    Pending {
        /// The slot number the item drew.
        slot: u64,
    },
}

/// A producer/consumer matcher built from two adaptive counting
/// networks.
///
/// # Example
///
/// ```
/// use acn_core::matching::{MatchMaker, MatchOutcome};
///
/// let mut m: MatchMaker<&str, &str> = MatchMaker::new(8);
/// assert!(matches!(m.supply("cpu-slice", 0), MatchOutcome::Pending { slot: 0 }));
/// match m.request("job-1", 5) {
///     MatchOutcome::Matched { slot, supply, request } => {
///         assert_eq!((slot, supply, request), (0, "cpu-slice", "job-1"));
///     }
///     MatchOutcome::Pending { .. } => panic!("expected a match"),
/// }
/// ```
#[derive(Debug, Clone)]
pub struct MatchMaker<S, R> {
    supply_net: LocalAdaptiveNetwork,
    request_net: LocalAdaptiveNetwork,
    pending_supply: HashMap<u64, S>,
    pending_request: HashMap<u64, R>,
    matched: u64,
}

impl<S, R> MatchMaker<S, R> {
    /// A matcher whose two networks have width `w`.
    ///
    /// # Panics
    ///
    /// Panics if `w` is not a power of two or `w < 2`.
    #[must_use]
    pub fn new(w: usize) -> Self {
        MatchMaker {
            supply_net: LocalAdaptiveNetwork::new(w),
            request_net: LocalAdaptiveNetwork::new(w),
            pending_supply: HashMap::new(),
            pending_request: HashMap::new(),
            matched: 0,
        }
    }

    /// Offers a resource on input wire `wire` of the supply network.
    ///
    /// # Panics
    ///
    /// Panics if `wire` is out of range.
    pub fn supply(&mut self, item: S, wire: usize) -> MatchOutcome<S, R> {
        let slot = self.supply_net.next_value(wire);
        match self.pending_request.remove(&slot) {
            Some(request) => {
                self.matched += 1;
                MatchOutcome::Matched { slot, supply: item, request }
            }
            None => {
                self.pending_supply.insert(slot, item);
                MatchOutcome::Pending { slot }
            }
        }
    }

    /// Requests a resource on input wire `wire` of the request network.
    ///
    /// # Panics
    ///
    /// Panics if `wire` is out of range.
    pub fn request(&mut self, item: R, wire: usize) -> MatchOutcome<S, R> {
        let slot = self.request_net.next_value(wire);
        match self.pending_supply.remove(&slot) {
            Some(supply) => {
                self.matched += 1;
                MatchOutcome::Matched { slot, supply, request: item }
            }
            None => {
                self.pending_request.insert(slot, item);
                MatchOutcome::Pending { slot }
            }
        }
    }

    /// Splits a component of one side's network (resize under load).
    ///
    /// # Errors
    ///
    /// Propagates [`AdaptError`] from the underlying network.
    pub fn split(&mut self, side: Side, id: &ComponentId) -> Result<(), AdaptError> {
        self.net_mut(side).split(id)
    }

    /// Merges a subtree of one side's network.
    ///
    /// # Errors
    ///
    /// Propagates [`AdaptError`] from the underlying network.
    pub fn merge(&mut self, side: Side, id: &ComponentId) -> Result<(), AdaptError> {
        self.net_mut(side).merge(id)
    }

    fn net_mut(&mut self, side: Side) -> &mut LocalAdaptiveNetwork {
        match side {
            Side::Supply => &mut self.supply_net,
            Side::Request => &mut self.request_net,
        }
    }

    /// Matches completed so far.
    #[must_use]
    pub fn matched(&self) -> u64 {
        self.matched
    }

    /// Supplies waiting for a request.
    #[must_use]
    pub fn outstanding_supplies(&self) -> usize {
        self.pending_supply.len()
    }

    /// Requests waiting for a supply.
    #[must_use]
    pub fn outstanding_requests(&self) -> usize {
        self.pending_request.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg(state: &mut u64) -> u64 {
        *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        *state >> 33
    }

    #[test]
    fn supplies_and_requests_pair_in_slot_order() {
        let mut m: MatchMaker<u64, u64> = MatchMaker::new(4);
        // Three supplies first.
        for i in 0..3u64 {
            assert!(matches!(m.supply(100 + i, i as usize % 4), MatchOutcome::Pending { .. }));
        }
        // Requests drain them in slot order.
        for i in 0..3u64 {
            match m.request(200 + i, (i as usize * 3) % 4) {
                MatchOutcome::Matched { slot, supply, request } => {
                    assert_eq!(slot, i);
                    assert_eq!(supply, 100 + i);
                    assert_eq!(request, 200 + i);
                }
                MatchOutcome::Pending { .. } => panic!("expected match {i}"),
            }
        }
        assert_eq!(m.matched(), 3);
        assert_eq!(m.outstanding_supplies(), 0);
        assert_eq!(m.outstanding_requests(), 0);
    }

    #[test]
    fn every_item_matches_exactly_once_under_random_interleaving() {
        let mut m: MatchMaker<u64, u64> = MatchMaker::new(8);
        let mut seed = 0x3A7C4u64;
        let mut supplies = 0u64;
        let mut requests = 0u64;
        let mut matches = Vec::new();
        for _ in 0..400 {
            let wire = (lcg(&mut seed) as usize) % 8;
            if lcg(&mut seed).is_multiple_of(2) {
                if let MatchOutcome::Matched { slot, supply, request } =
                    m.supply(supplies, wire)
                {
                    matches.push((slot, supply, request));
                }
                supplies += 1;
            } else {
                if let MatchOutcome::Matched { slot, supply, request } =
                    m.request(requests, wire)
                {
                    matches.push((slot, supply, request));
                }
                requests += 1;
            }
        }
        // Matched count is the min of the two sides.
        assert_eq!(m.matched(), supplies.min(requests));
        // Every slot matched exactly once, and the pairing is by arrival
        // order on each side (slot i pairs the i-th supply with the i-th
        // request).
        matches.sort_by_key(|&(slot, _, _)| slot);
        for (expected, (slot, supply, request)) in matches.iter().enumerate() {
            assert_eq!(*slot, expected as u64);
            assert_eq!(*supply, *slot, "supply slot order violated");
            assert_eq!(*request, *slot, "request slot order violated");
        }
    }

    #[test]
    fn matching_survives_network_resizes() {
        let mut m: MatchMaker<u64, u64> = MatchMaker::new(8);
        let root = ComponentId::root();
        let mut next_supply = 0u64;
        let mut next_request = 0u64;
        let mut matched = 0u64;
        for round in 0..6 {
            // Resize one side per round.
            match round % 4 {
                0 => m.split(Side::Supply, &root).unwrap(),
                1 => m.split(Side::Request, &root).unwrap(),
                2 => m.merge(Side::Supply, &root).unwrap(),
                _ => m.merge(Side::Request, &root).unwrap(),
            }
            for i in 0..5u64 {
                if matches!(
                    m.supply(next_supply, (i as usize) % 8),
                    MatchOutcome::Matched { .. }
                ) {
                    matched += 1;
                }
                next_supply += 1;
                if matches!(
                    m.request(next_request, (i as usize * 5) % 8),
                    MatchOutcome::Matched { .. }
                ) {
                    matched += 1;
                }
                next_request += 1;
            }
        }
        assert_eq!(matched, m.matched());
        assert_eq!(m.matched(), 30, "all pairs must match across resizes");
        assert_eq!(m.outstanding_supplies(), 0);
        assert_eq!(m.outstanding_requests(), 0);
    }
}
