//! A single-address-space adaptive counting network.
//!
//! [`LocalAdaptiveNetwork`] keeps the full component map of one cut of
//! `T_w` in memory. It is the reference implementation of the paper's
//! semantics: tokens can be driven one *component hop* at a time
//! ([`inject`](LocalAdaptiveNetwork::inject) /
//! [`advance`](LocalAdaptiveNetwork::advance)), and the network can be
//! reconfigured (split/merge) **while tokens are in flight** — exactly
//! the interleavings a distributed deployment produces. It is used to
//! validate Theorem 2.1 (every cut counts) and the split/merge state
//! transfer, and it doubles as the fastest way to embed an adaptive
//! counting network inside a single process.

use std::collections::HashMap;
use std::fmt;

use acn_topology::{
    input_port_of, network_input_address, resolve_output, ComponentId, Cut, CutError,
    OutputDestination, Tree, WireAddress, WiringStyle,
};

use crate::component::{merge_components, split_component, Component, TransferError};

/// Errors from adaptive-network reconfiguration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdaptError {
    /// The underlying cut operation failed.
    Cut(CutError),
    /// The state transfer must wait for in-flight tokens to drain
    /// (see [`TransferError`]); retry after advancing traffic.
    Deferred(ComponentId, TransferError),
}

impl fmt::Display for AdaptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdaptError::Cut(e) => write!(f, "{e}"),
            AdaptError::Deferred(id, why) => {
                write!(f, "reconfiguration of {id} deferred: {why}")
            }
        }
    }
}

impl std::error::Error for AdaptError {}

impl From<CutError> for AdaptError {
    fn from(e: CutError) -> Self {
        AdaptError::Cut(e)
    }
}

/// The position of an in-flight token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenPos {
    /// Travelling on a wire, about to enter the component that owns it.
    OnWire(WireAddress),
    /// Exited the network on this output wire.
    Exited(usize),
}

/// An adaptive `BITONIC[w]` counting network in one address space.
///
/// # Example
///
/// ```
/// use acn_core::LocalAdaptiveNetwork;
/// use acn_topology::ComponentId;
///
/// let mut net = LocalAdaptiveNetwork::new(8);
/// // Sequential tokens exit on consecutive wires no matter where they
/// // enter.
/// assert_eq!(net.push(3), 0);
/// assert_eq!(net.push(7), 1);
/// net.split(&ComponentId::root()).unwrap();
/// assert_eq!(net.push(1), 2);
/// ```
#[derive(Debug, Clone)]
pub struct LocalAdaptiveNetwork {
    tree: Tree,
    style: WiringStyle,
    cut: Cut,
    components: HashMap<ComponentId, Component>,
    input_counts: Vec<u64>,
    output_counts: Vec<u64>,
}

impl LocalAdaptiveNetwork {
    /// A new network of width `w`, starting as a single root component
    /// (the paper's initial configuration).
    ///
    /// # Panics
    ///
    /// Panics if `w` is not a power of two or `w < 2`.
    #[must_use]
    pub fn new(w: usize) -> Self {
        Self::with_style(w, WiringStyle::Ahs)
    }

    /// A new network with an explicit wiring style (the non-default style
    /// exists only for the wiring ablation experiment).
    ///
    /// # Panics
    ///
    /// Panics if `w` is not a power of two or `w < 2`.
    #[must_use]
    pub fn with_style(w: usize, style: WiringStyle) -> Self {
        Self::with_cut(w, Cut::root(), style)
    }

    /// A new (zero-token) network over an explicit cut.
    ///
    /// # Panics
    ///
    /// Panics if the cut is invalid for `T_w`.
    #[must_use]
    pub fn with_cut(w: usize, cut: Cut, style: WiringStyle) -> Self {
        let tree = Tree::new(w);
        assert!(cut.is_valid(&tree), "invalid cut for width {w}");
        let components = cut
            .leaves()
            .iter()
            .map(|id| (id.clone(), Component::new(&tree, id)))
            .collect();
        LocalAdaptiveNetwork {
            tree,
            style,
            cut,
            components,
            input_counts: vec![0; w],
            output_counts: vec![0; w],
        }
    }

    /// Builds a local view of an externally captured network state: the
    /// components of one cut (their ids define the cut), the client-side
    /// input ledger, and the output ledger. The distributed model
    /// checker imports a quiescent deployment through this to run
    /// [`crate::stabilize::audit`] / [`crate::stabilize::stabilize`]
    /// against the real protocol state.
    ///
    /// # Panics
    ///
    /// Panics if the component ids do not form a valid cut of `T_w`, or
    /// if a ledger's length is not `w`.
    #[must_use]
    pub fn from_snapshot(
        w: usize,
        style: WiringStyle,
        components: Vec<Component>,
        input_counts: Vec<u64>,
        output_counts: Vec<u64>,
    ) -> Self {
        assert_eq!(input_counts.len(), w, "input ledger must have width {w}");
        assert_eq!(output_counts.len(), w, "output ledger must have width {w}");
        let cut = Cut::from_leaves(components.iter().map(|c| c.id().clone()));
        let mut net = Self::with_cut(w, cut, style);
        for comp in components {
            net.replace_component(comp);
        }
        net.input_counts = input_counts;
        net.output_counts = output_counts;
        net
    }

    /// The network width `w`.
    #[must_use]
    pub fn width(&self) -> usize {
        self.tree.width()
    }

    /// The decomposition tree.
    #[must_use]
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// The wiring style in use.
    #[must_use]
    pub fn style(&self) -> WiringStyle {
        self.style
    }

    /// The current cut.
    #[must_use]
    pub fn cut(&self) -> &Cut {
        &self.cut
    }

    /// The live component for `id`, if it is a leaf of the current cut.
    #[must_use]
    pub fn component(&self, id: &ComponentId) -> Option<&Component> {
        self.components.get(id)
    }

    /// Iterates over the live components.
    pub fn components(&self) -> impl Iterator<Item = &Component> {
        self.components.values()
    }

    /// Tokens that have exited on each output wire. In every quiescent
    /// state this vector has the step property.
    #[must_use]
    pub fn output_counts(&self) -> &[u64] {
        &self.output_counts
    }

    /// Tokens injected per network input wire (the client-side ledger;
    /// trusted input for [`stabilize`](crate::stabilize)).
    #[must_use]
    pub fn input_counts(&self) -> &[u64] {
        &self.input_counts
    }

    /// Total tokens that have exited the network.
    #[must_use]
    pub fn total_exited(&self) -> u64 {
        self.output_counts.iter().sum()
    }

    /// Starts a token on network input wire `wire` without advancing it,
    /// recording it in the client-side input ledger.
    ///
    /// # Panics
    ///
    /// Panics if `wire >= w`.
    #[must_use]
    pub fn inject(&mut self, wire: usize) -> TokenPos {
        self.input_counts[wire] += 1;
        TokenPos::OnWire(network_input_address(&self.tree, wire, self.style))
    }

    /// Advances an in-flight token by one component hop. Exited tokens
    /// stay exited.
    pub fn advance(&mut self, pos: TokenPos) -> TokenPos {
        let TokenPos::OnWire(addr) = pos else { return pos };
        let owner = addr
            .owner_under(&self.cut)
            .expect("valid cut covers every wire");
        let in_port = input_port_of(&self.tree, &owner, &addr, self.style);
        let component = self
            .components
            .get_mut(&owner)
            .expect("cut leaf has a live component");
        let port = component.process_token(in_port);
        match resolve_output(&self.tree, &owner, port, self.style) {
            OutputDestination::Wire(next) => TokenPos::OnWire(next),
            OutputDestination::NetworkOutput(out) => {
                self.output_counts[out] += 1;
                TokenPos::Exited(out)
            }
        }
    }

    /// Routes one token from input wire `wire` all the way through,
    /// returning the output wire it exits on.
    ///
    /// # Panics
    ///
    /// Panics if `wire >= w`.
    pub fn push(&mut self, wire: usize) -> usize {
        let mut pos = self.inject(wire);
        loop {
            pos = self.advance(pos);
            if let TokenPos::Exited(out) = pos {
                return out;
            }
        }
    }

    /// Distributed-counter semantics (paper Section 1.1): routes a token
    /// and returns the counter value `out + w * (tokens previously exited
    /// on out)`. Sequential calls return 0, 1, 2, ...
    ///
    /// # Panics
    ///
    /// Panics if `wire >= w`.
    pub fn next_value(&mut self, wire: usize) -> u64 {
        let out = self.push(wire);
        let round = self.output_counts[out] - 1;
        out as u64 + round * self.width() as u64
    }

    /// Splits leaf component `id` into its children, transferring state
    /// exactly (paper Section 2.2). Safe while tokens are in flight
    /// *towards* the component; fails if tokens merged over earlier are
    /// still in flight *inside* it.
    ///
    /// # Errors
    ///
    /// Returns [`AdaptError::Cut`] if `id` is not a splittable leaf of
    /// the current cut, and [`AdaptError::Deferred`] if in-flight
    /// traffic makes an exact transfer impossible right now.
    pub fn split(&mut self, id: &ComponentId) -> Result<(), AdaptError> {
        // Validate via the cut first so the component map stays in sync.
        let mut cut = self.cut.clone();
        cut.split(&self.tree, id)?;
        let children = split_component(&self.tree, &self.components[id], self.style)
            .map_err(|why| AdaptError::Deferred(id.clone(), why))?;
        self.components.remove(id).expect("leaf has a component");
        for child in children {
            self.components.insert(child.id().clone(), child);
        }
        self.cut = cut;
        Ok(())
    }

    /// Merges the subtree under `id` back into a single component,
    /// recursively merging deeper descendants first (paper Section 2.2).
    /// Safe while tokens are in flight.
    ///
    /// # Errors
    ///
    /// Returns [`AdaptError::Cut`] if `id` is already a leaf or not
    /// covered by the current cut.
    pub fn merge(&mut self, id: &ComponentId) -> Result<(), AdaptError> {
        if self.cut.contains(id) {
            return Err(CutError::NotALeaf(id.clone()).into());
        }
        let children_ids = self.tree.children(id);
        if children_ids.is_empty() {
            return Err(CutError::ChildrenNotLeaves(id.clone()).into());
        }
        // Every child must be covered by the cut at or below it; merge
        // grandchildren first.
        for child in &children_ids {
            if !self.cut.contains(child) {
                self.merge(child)?;
            }
        }
        let children: Vec<&Component> = children_ids
            .iter()
            .map(|c| self.components.get(c).expect("merged child exists"))
            .collect();
        let children_owned: Vec<Component> = children.into_iter().cloned().collect();
        let parent = merge_components(&self.tree, id, &children_owned, self.style)
            .map_err(|why| AdaptError::Deferred(id.clone(), why))?;
        for c in &children_ids {
            self.components.remove(c);
        }
        self.components.insert(id.clone(), parent);
        self.cut.merge(&self.tree, id).expect("children are leaves now");
        Ok(())
    }

    /// Reconfigures to exactly `target` by splitting and merging as
    /// needed. Safe while tokens are in flight.
    ///
    /// # Panics
    ///
    /// Panics if `target` is invalid for `T_w`.
    pub fn reconfigure(&mut self, target: &Cut) {
        assert!(target.is_valid(&self.tree), "invalid target cut");
        // Merge everything that is deeper than the target.
        let to_merge: Vec<ComponentId> = target
            .leaves()
            .iter()
            .filter(|t| !self.cut.contains(t) && self.cut.leaves().iter().any(|l| t.is_ancestor_of(l)))
            .cloned()
            .collect();
        for id in to_merge {
            self.merge(&id).expect("target ancestor is mergeable");
        }
        // Split everything that is shallower.
        loop {
            let to_split: Vec<ComponentId> = self
                .cut
                .leaves()
                .iter()
                .filter(|l| !target.contains(l))
                .cloned()
                .collect();
            if to_split.is_empty() {
                break;
            }
            for id in to_split {
                self.split(&id).expect("leaf above target is splittable");
            }
        }
        debug_assert_eq!(&self.cut, target);
    }

    /// Exclusive access to a live component (fault injection and the
    /// stabilization layer).
    #[must_use]
    pub fn component_mut(&mut self, id: &ComponentId) -> Option<&mut Component> {
        self.components.get_mut(id)
    }

    /// Overwrites the per-output-wire exit ledger (stabilization resets
    /// it to match the recovered state).
    pub(crate) fn set_output_counts(&mut self, counts: Vec<u64>) {
        assert_eq!(counts.len(), self.output_counts.len());
        self.output_counts = counts;
    }

    /// Replaces a live component wholesale (stabilization).
    pub(crate) fn replace_component(&mut self, comp: Component) {
        assert!(self.cut.contains(comp.id()), "replacement must be a cut leaf");
        self.components.insert(comp.id().clone(), comp);
    }

    /// Internal consistency check: the component map matches the cut.
    #[must_use]
    pub fn is_consistent(&self) -> bool {
        self.cut.is_valid(&self.tree)
            && self.components.len() == self.cut.leaves().len()
            && self.cut.leaves().iter().all(|l| self.components.contains_key(l))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acn_topology::Cut;

    fn lcg(state: &mut u64) -> u64 {
        *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        *state >> 33
    }

    #[test]
    fn sequential_tokens_exit_round_robin_from_any_wire() {
        for w in [2usize, 4, 8, 16] {
            let mut net = LocalAdaptiveNetwork::new(w);
            for t in 0..3 * w {
                assert_eq!(net.push(t % w), t % w, "w={w} t={t}");
            }
        }
    }

    #[test]
    fn all_cuts_of_t8_count_sequentially() {
        // Theorem 2.1, exhaustively for w = 8: every one of the 65 cuts
        // yields a counting network.
        let tree = Tree::new(8);
        for cut in Cut::enumerate_all(&tree) {
            let mut net = LocalAdaptiveNetwork::with_cut(8, cut.clone(), WiringStyle::Ahs);
            let mut seed = 7u64;
            for t in 0..64 {
                let wire = (lcg(&mut seed) as usize) % 8;
                assert_eq!(net.push(wire), t % 8, "cut {cut} t={t}");
            }
        }
    }

    #[test]
    fn split_preserves_round_robin_mid_stream() {
        let root = ComponentId::root();
        for w in [4usize, 8, 16] {
            for warmup in 0..w {
                let mut net = LocalAdaptiveNetwork::new(w);
                for t in 0..warmup {
                    assert_eq!(net.push(t % w), t % w);
                }
                net.split(&root).unwrap();
                assert!(net.is_consistent());
                for t in warmup..warmup + 2 * w {
                    assert_eq!(net.push((t * 3) % w), t % w, "w={w} warmup={warmup}");
                }
            }
        }
    }

    #[test]
    fn merge_preserves_round_robin_mid_stream() {
        let root = ComponentId::root();
        for w in [4usize, 8, 16] {
            for warmup in 0..w {
                let mut net = LocalAdaptiveNetwork::new(w);
                net.split(&root).unwrap();
                for t in 0..warmup {
                    assert_eq!(net.push(t % w), t % w);
                }
                net.merge(&root).unwrap();
                assert!(net.is_consistent());
                for t in warmup..warmup + 2 * w {
                    assert_eq!(net.push((t * 5) % w), t % w, "w={w} warmup={warmup}");
                }
            }
        }
    }

    #[test]
    fn deep_split_merge_storm_keeps_counting() {
        // Random walk over cuts of T_16 with tokens interleaved.
        let w = 16;
        let tree = Tree::new(w);
        let mut net = LocalAdaptiveNetwork::new(w);
        let mut seed = 0xDEADBEEFu64;
        let mut expected = 0u64;
        for round in 0..400 {
            match lcg(&mut seed) % 3 {
                0 => {
                    // Split a random splittable leaf.
                    let candidates: Vec<ComponentId> = net
                        .cut()
                        .leaves()
                        .iter()
                        .filter(|l| tree.info(l).unwrap().width >= 4)
                        .cloned()
                        .collect();
                    if !candidates.is_empty() {
                        let pick = candidates[(lcg(&mut seed) as usize) % candidates.len()].clone();
                        net.split(&pick).unwrap();
                    }
                }
                1 => {
                    // Merge a random mergeable parent.
                    let parents: Vec<ComponentId> = net
                        .cut()
                        .leaves()
                        .iter()
                        .filter_map(|l| l.parent())
                        .collect();
                    if !parents.is_empty() {
                        let pick = parents[(lcg(&mut seed) as usize) % parents.len()].clone();
                        let _ = net.merge(&pick);
                    }
                }
                _ => {}
            }
            assert!(net.is_consistent(), "round {round}");
            // Push a couple of tokens and check global round-robin.
            for _ in 0..(lcg(&mut seed) % 4) {
                let wire = (lcg(&mut seed) as usize) % w;
                let out = net.push(wire);
                assert_eq!(out as u64, expected % w as u64, "round {round}");
                expected += 1;
            }
        }
        assert!(expected > 100, "storm pushed too few tokens");
    }

    #[test]
    fn interleaved_tokens_with_reconfiguration_keep_step_property() {
        // Tokens advance one hop at a time; splits and merges happen
        // between hops. In every quiescent state the output counts must
        // have the step property (and because the interleaving covers
        // arbitrary concurrency, this is the distributed correctness
        // argument in miniature).
        let w = 8;
        let tree = Tree::new(w);
        for seed0 in 0..10u64 {
            let mut net = LocalAdaptiveNetwork::new(w);
            let mut seed = seed0 * 997 + 1;
            let mut in_flight: Vec<TokenPos> = Vec::new();
            for _ in 0..600 {
                match lcg(&mut seed) % 10 {
                    0 => {
                        let candidates: Vec<ComponentId> = net
                            .cut()
                            .leaves()
                            .iter()
                            .filter(|l| tree.info(l).unwrap().width >= 4)
                            .cloned()
                            .collect();
                        if let Some(pick) =
                            candidates.get((lcg(&mut seed) as usize) % candidates.len().max(1))
                        {
                            // May fail with TokensInFlight right after a
                            // merge over in-flight tokens; that is the
                            // intended guard.
                            let _ = net.split(&pick.clone());
                        }
                    }
                    1 => {
                        let parents: Vec<ComponentId> =
                            net.cut().leaves().iter().filter_map(|l| l.parent()).collect();
                        if let Some(pick) =
                            parents.get((lcg(&mut seed) as usize) % parents.len().max(1))
                        {
                            let _ = net.merge(&pick.clone());
                        }
                    }
                    2..=4 => {
                        let wire = (lcg(&mut seed) as usize) % w;
                        in_flight.push(net.inject(wire));
                    }
                    _ => {
                        if !in_flight.is_empty() {
                            let i = (lcg(&mut seed) as usize) % in_flight.len();
                            let pos = in_flight[i].clone();
                            let next = net.advance(pos);
                            if matches!(next, TokenPos::Exited(_)) {
                                in_flight.swap_remove(i);
                            } else {
                                in_flight[i] = next;
                            }
                        }
                    }
                }
            }
            // Drain to quiescence.
            while let Some(pos) = in_flight.pop() {
                let mut pos = pos;
                loop {
                    pos = net.advance(pos);
                    if matches!(pos, TokenPos::Exited(_)) {
                        break;
                    }
                }
            }
            let counts = net.output_counts();
            assert!(
                acn_bitonic::step::is_step_sequence(counts),
                "seed {seed0}: {counts:?}"
            );
        }
    }

    #[test]
    fn next_value_is_dense_sequentially() {
        let mut net = LocalAdaptiveNetwork::new(8);
        net.split(&ComponentId::root()).unwrap();
        let got: Vec<u64> = (0..30).map(|t| net.next_value(t % 8)).collect();
        assert_eq!(got, (0..30).collect::<Vec<u64>>());
    }

    #[test]
    fn reconfigure_reaches_target_cut_and_keeps_counting() {
        let w = 16;
        let tree = Tree::new(w);
        let mut net = LocalAdaptiveNetwork::new(w);
        let mut expected = 0u64;
        for level in [2usize, 0, 3, 1, 0, 2] {
            let target = Cut::uniform(&tree, level);
            net.reconfigure(&target);
            assert_eq!(net.cut(), &target, "level {level}");
            assert!(net.is_consistent());
            for _ in 0..10 {
                assert_eq!(net.push((expected as usize * 7) % w) as u64, expected % w as u64);
                expected += 1;
            }
        }
    }

    #[test]
    fn ablation_zero_init_split_breaks_counting() {
        // DESIGN.md experiment A1: replacing the simulation-based split
        // initialization with zeroed children loses the round-robin
        // offset whenever x != 0.
        let w = 8;
        let tree = Tree::new(w);
        let root = ComponentId::root();
        let mut net = LocalAdaptiveNetwork::new(w);
        for t in 0..3 {
            assert_eq!(net.push(0), t);
        }
        // Manual "naive split": replace the root with fresh children.
        let mut broken = LocalAdaptiveNetwork::with_cut(
            w,
            {
                let mut c = Cut::root();
                c.split(&tree, &root).unwrap();
                c
            },
            WiringStyle::Ahs,
        );
        // Copy the exit ledger so the comparison is fair.
        broken.output_counts.copy_from_slice(net.output_counts());
        // The naive network restarts at wire 0 instead of wire 3.
        let out = broken.push(0);
        assert_ne!(out, 3, "zero-init unexpectedly preserved the offset");
        assert!(!acn_bitonic::step::is_step_sequence(broken.output_counts()));
        // Whereas the real split continues correctly.
        net.split(&root).unwrap();
        assert_eq!(net.push(0), 3);
    }

    #[test]
    fn split_errors_on_non_leaf() {
        let mut net = LocalAdaptiveNetwork::new(8);
        let bogus = ComponentId::from_path(vec![0]);
        assert!(net.split(&bogus).is_err());
        assert!(net.merge(&ComponentId::root()).is_err());
    }
}
