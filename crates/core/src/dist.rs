//! The distributed, message-passing runtime of the adaptive counting
//! network, executing on the deterministic simulator of [`acn_simnet`].
//!
//! Every overlay node is a [`NodeProc`]; all interaction is via
//! [`Msg`] messages. The runtime implements, faithfully to the paper:
//!
//! - **token routing** (Section 3.5): tokens carry the cut-independent
//!   wire address of their destination; senders guess the live owner
//!   from a per-node cache and walk the ancestor name chain on a miss
//!   (each guess is one DHT lookup in a real deployment). Tokens ride a
//!   *lossy* datagram channel: each send carries a GUID, receivers
//!   acknowledge accepted sends, and senders retransmit obligations
//!   that stay silent (the control plane is reliable, like TCP next to
//!   a fast datagram path). Exactly-once *traversal and counting* is
//!   then enforced by three dedup layers, each catching a duplicate
//!   class the previous one structurally cannot: per-receiver GUID
//!   suppression (same-node retransmit races), a travelling
//!   per-component `(token, wire)` idempotency ledger ([`SeenTokens`] —
//!   a retried obligation re-routed to a *different* node after a
//!   reconfiguration, while the delayed original is still in flight;
//!   found by the schedule explorer in `acn-check`), and collector-side
//!   end-to-end token-id dedup as the last line for the counting
//!   oracle;
//! - **splitting** (Section 2.2): the host freezes the component,
//!   installs initialized children at their hash owners, then removes
//!   the component and re-routes anything buffered meanwhile;
//! - **merging** (Section 2.2): the node that split a component
//!   coordinates the merge — children are frozen and collected
//!   (recursively merging grandchildren first), the parent is
//!   reconstructed from the output-side children's counters, installed,
//!   and only then are the frozen children discarded and their buffered
//!   tokens re-routed;
//! - **distributed decisions** (Section 3.2): a periodic local timer
//!   re-estimates the system size from successor distances and enforces
//!   the invariant "every component on `v` is at level `>= l_v`";
//! - **churn** (Section 3.4): joins migrate components to their new hash
//!   owners; graceful leaves hand components and pending merge
//!   obligations to the successor; crashes lose state, and a repair
//!   sweep re-covers the cut (the \[HT03\]-style stabilization hook).
//!
//! Exited tokens are reported to a collector process which serves as the
//! measurement endpoint for the experiments.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::hash::{Hash, Hasher};
use std::rc::Rc;

use acn_overlay::{NodeId, Ring};
use acn_simnet::{Context, DeliveryPolicy, Process, ProcessId, SimConfig, Simulator};
use acn_telemetry::{Counter, Event as TelemetryEvent, Histogram, Registry};
use acn_trace::{Span, Tracer, SYSTEM_TRACE};
use acn_topology::{
    input_port_of, network_input_address, resolve_output, ComponentId, Cut, OutputDestination,
    Tree, WireAddress, WiringStyle,
};

use crate::component::{merge_components, split_component, Component};

/// Timer tags used by [`NodeProc`].
const TIMER_LEVEL: u64 = 0;
const TIMER_RETRY: u64 = 1;
/// The failure-detector lease tick: each node monitors its ring
/// predecessor (the unique node whose successor it is), pinging it
/// when it has been silent for a lease period and suspecting it after
/// [`FD_STRIKE_LIMIT`] consecutive silent ticks.
const TIMER_FD: u64 = 3;

/// Consecutive silent failure-detector ticks before a node suspects
/// its monitored predecessor. Each tick is one `level_period`, so
/// detection takes at most `FD_STRIKE_LIMIT + 1` periods after the
/// crash — far above the simulated RTT, so a live-but-slow peer is
/// never falsely suspected under seeded delivery.
const FD_STRIKE_LIMIT: u32 = 3;

/// Default bound on tokens a *remote sender* may park in one frozen
/// component's buffer. Past it the receiver sheds with a backpressure
/// NACK ([`Msg::TokenBusy`]) and the sender retries under backoff.
/// Locally re-routed tokens (buffer drains, client injections) are
/// exempt — they have no sender to push back on — so the buffer stays
/// bounded by wire admission plus a bounded local refill.
const DEFAULT_FROZEN_BUFFER_CAP: usize = 64;

/// Base of the harness-injected "force a split now" timer tags: the
/// low bits carry the packed [`ComponentId`] (see
/// [`force_split_tag`]). The distributed model checker schedules these
/// so reconfiguration happens at *explored* points instead of waiting
/// for the estimator-driven level tick.
const TIMER_FORCE_SPLIT_BASE: u64 = 1 << 48;
/// Base of the "force a merge now" timer tags (see [`force_merge_tag`]).
const TIMER_FORCE_MERGE_BASE: u64 = 2 << 48;
/// Mask extracting the packed component id from a force tag.
const FORCE_TAG_ID_MASK: u64 = (1 << 48) - 1;

/// The timer tag that makes the receiving [`NodeProc`] start splitting
/// hosted component `id` (no-op if it does not host `id` live and
/// unfrozen). Harness/checker use; deterministic and explorable, unlike
/// the estimator-driven level tick.
#[must_use]
pub fn force_split_tag(id: &ComponentId) -> u64 {
    TIMER_FORCE_SPLIT_BASE | id.to_u64()
}

/// The timer tag that makes the receiving [`NodeProc`] start merging
/// split component `id` (no-op unless `id` is on its split list with no
/// merge already in flight). Harness/checker use.
#[must_use]
pub fn force_merge_tag(id: &ComponentId) -> u64 {
    TIMER_FORCE_MERGE_BASE | id.to_u64()
}

/// Sentinel for "first try, use the cache" probing attempts.
const ATTEMPT_CACHED: u8 = u8::MAX;

/// The process id of the measurement collector.
pub const COLLECTOR: ProcessId = ProcessId(u64::MAX - 1);

/// Messages of the distributed runtime.
#[derive(Debug, Clone)]
pub enum Msg {
    /// A client asks the receiving node to inject a token on this input
    /// wire (clients may contact any node, paper Section 1.4).
    ClientInject {
        /// Network input wire, `0..w`.
        wire: usize,
    },
    /// A token travelling towards the component owning `addr`. Tokens
    /// ride the **lossy** channel (an unreliable datagram fast path);
    /// delivery is guaranteed end to end by acknowledgement,
    /// retransmission, and two dedup layers: a per-receiver GUID check
    /// (suppresses a retransmission racing its own ack at the *same*
    /// node) and a collector-side `token` check (suppresses the copy
    /// that escapes to a *different* path when a timed-out obligation
    /// is re-routed after reconfiguration while the original send is
    /// still in flight — a race the schedule explorer found; see
    /// `Collector`).
    Token {
        /// Per-send obligation identifier (receiver-side duplicate
        /// suppression and ack/nack correlation). Fresh per forward,
        /// stable across retransmissions of the same obligation.
        guid: u64,
        /// Stable end-to-end identity of the injected token: assigned
        /// once at injection, preserved across forwards, buffering,
        /// migration, and retransmission. The collector counts each
        /// `token` at most once.
        token: u64,
        /// The cut-independent destination wire.
        addr: WireAddress,
        /// Simulated time at which the token entered the network.
        injected_at: u64,
        /// Probe progress: `ATTEMPT_CACHED` for the cached guess,
        /// otherwise an index into the canonical candidate chain.
        attempt: u8,
        /// Inter-node forwards this token has taken so far (telemetry:
        /// the `acn.dist.routing_hops` histogram at network output).
        hops: u64,
    },
    /// The receiver accepted (processed or buffered) the token; the
    /// sender releases its retransmission obligation. Reliable.
    TokenAck {
        /// The accepted token.
        guid: u64,
    },
    /// The receiver hosts no live candidate for the token's wire; the
    /// sender advances the probe. Reliable.
    TokenNack {
        /// The rejected token.
        guid: u64,
        /// Echo of the token's end-to-end identity.
        token: u64,
        /// Echo of the token's destination.
        addr: WireAddress,
        /// Echo of the injection time.
        injected_at: u64,
        /// Echo of the failed attempt.
        attempt: u8,
    },
    /// A token exited the network (sent to [`COLLECTOR`]).
    Exit {
        /// The network output wire.
        wire: usize,
        /// End-to-end token identity (collector-side exactly-once
        /// dedup).
        token: u64,
        /// When the token was injected (for latency accounting).
        injected_at: u64,
        /// Inter-node forwards the token took end to end.
        hops: u64,
    },
    /// Install a component on the receiver (split child or merge
    /// result).
    Install {
        /// The full component state to install.
        comp: Component,
        /// The travelling `(token, addr)` idempotency ledger: the
        /// parent's ledger for split children, the union of the
        /// children's for a merge result.
        seen: SeenTokens,
    },
    /// Acknowledges an [`Msg::Install`].
    InstallAck {
        /// The installed component.
        id: ComponentId,
    },
    /// Merge protocol: freeze `id` and report its state to the
    /// coordinator merging `parent`.
    FreezeCollect {
        /// The child component to freeze.
        id: ComponentId,
        /// The component being reconstructed.
        parent: ComponentId,
    },
    /// Reply to [`Msg::FreezeCollect`] with the frozen state.
    CollectReply {
        /// The frozen child's full state.
        comp: Component,
        /// The frozen child's travelling idempotency ledger (unioned
        /// into the merge result's).
        seen: SeenTokens,
        /// The component being reconstructed.
        parent: ComponentId,
    },
    /// The receiver neither hosts `id` nor can reconstruct it right now.
    CollectMissing {
        /// The requested child.
        id: ComponentId,
        /// The component being reconstructed.
        parent: ComponentId,
    },
    /// The merge coordinator is done: drop the frozen child and re-route
    /// its buffered tokens.
    RemoveFrozen {
        /// The frozen child to remove.
        id: ComponentId,
    },
    /// The merge was deferred (unsettled traffic): unfreeze the child in
    /// place and process its buffered tokens.
    AbortFreeze {
        /// The frozen child to release.
        id: ComponentId,
    },
    /// Failure-detector liveness probe: the sender has not heard from
    /// the receiver for a lease period.
    Ping,
    /// Liveness reply to [`Msg::Ping`].
    Pong,
    /// Epoch-stamped membership gossip. Both sets grow monotonically
    /// (node ids are never reused), so merging is a plain set union and
    /// every node's view epoch `|known| + |dead|` only moves forward —
    /// a state-based CRDT that converges regardless of delivery order.
    ViewGossip {
        /// Every node the sender has ever known.
        known: BTreeSet<NodeId>,
        /// Tombstones: nodes the sender knows to be crashed or departed.
        dead: BTreeSet<NodeId>,
    },
    /// Rescue sweep: the coordinator (the suspector of a crash) asks a
    /// peer for the slice of the cut it covers.
    RescueQuery,
    /// Reply to [`Msg::RescueQuery`]: components this node covers —
    /// hosted ones plus in-flight obligations (pending split children,
    /// merge parents awaiting install) — with their frozen flags.
    RescueReport {
        /// `(component, frozen)` for everything this node covers.
        covered: Vec<(ComponentId, bool)>,
    },
    /// Install a freshly initialized replacement component for a
    /// subtree orphaned by a crash. Token history of the lost component
    /// is gone by definition; the receiver installs only if nothing it
    /// hosts already overlaps the subtree, and acknowledges either way.
    RescueInstall {
        /// The replacement component (freshly initialized).
        comp: Component,
    },
    /// Acknowledges a [`Msg::RescueInstall`].
    RescueAck {
        /// The replacement component's id.
        id: ComponentId,
    },
    /// Backpressure NACK: the receiver's covering component is frozen
    /// and its buffer is full. The sender keeps the obligation and
    /// retries under escalated backoff.
    TokenBusy {
        /// The shed token's obligation id.
        guid: u64,
    },
    /// Hand a component to its current hash owner (view-driven
    /// migration). Carries the travelling idempotency ledger and the
    /// frozen-buffer backlog; the sender keeps a copy until
    /// [`Msg::MigrateAck`] so a crash of the target cannot lose it.
    Migrate {
        /// The migrating component.
        comp: Component,
        /// Its travelling `(token, addr)` idempotency ledger.
        seen: SeenTokens,
        /// Tokens that were buffered at the component.
        buffer: Vec<BufferedToken>,
    },
    /// Acknowledges a [`Msg::Migrate`]; the sender drops its copy.
    MigrateAck {
        /// The migrated component.
        id: ComponentId,
    },
    /// The sender hosts `child` frozen for a merge whose coordinator
    /// died. The receiver is the current hash owner of `parent`: it
    /// either adopts the merge obligation or, if it already hosts the
    /// parent live, tells the sender to drop the leftover child.
    MergeOrphan {
        /// The frozen child orphaned by the coordinator's crash.
        child: ComponentId,
        /// The merge parent whose coordinator died.
        parent: ComponentId,
    },
    /// Split-list obligations handed to the receiver (the entries'
    /// current hash owner) by a gracefully departing node.
    SplitListHandoff {
        /// The handed-off split-list entries.
        entries: Vec<ComponentId>,
    },
}

/// Pre-resolved telemetry handles for the distributed runtime
/// (`acn.dist.*`). All handles are no-ops until
/// [`Deployment::attach_telemetry`] wires in an enabled registry.
#[derive(Debug, Default)]
pub(crate) struct DistMetrics {
    /// Inter-node hops a token took before exiting (recorded at the
    /// network output).
    routing_hops: Histogram,
    /// Duration of completed splits (freeze → parent removed), ticks.
    split_duration: Histogram,
    /// Duration of completed merges (begin → parent live), ticks.
    merge_duration: Histogram,
    /// Mirrors `World::splits_done`.
    splits: Counter,
    /// Mirrors `World::merges_done`.
    merges: Counter,
    /// Merges aborted (unsettled traffic / stalled collection).
    merge_aborts: Counter,
    /// Mirrors `World::token_nacks`.
    nacks: Counter,
    /// Mirrors `World::token_retransmits`.
    retransmits: Counter,
    /// Mirrors `World::duplicate_traversal_drops`.
    dup_traversals: Counter,
    /// Mirrors `World::dht_lookups`.
    dht_lookups: Counter,
    /// Tokens drained from frozen buffers when a merge discards its
    /// children.
    merge_drained: Counter,
    /// Tokens drained from the parent's buffer when a split completes.
    split_drained: Counter,
    /// Components migrated to a new hash owner (churn sweeps).
    migrations: Counter,
    /// Node crashes injected by the harness.
    crashes: Counter,
    /// Components re-installed by cut repair after crashes.
    /// Level-estimate changes observed at `level_tick` (the adaptivity
    /// signal of paper Section 3.2).
    level_changes: Counter,
    /// Failure-detector pings sent (`acn.dist.fd.pings`).
    fd_pings: Counter,
    /// Crash suspicions raised (`acn.dist.fd.suspects`).
    fd_suspects: Counter,
    /// Virtual time from harness crash to first in-protocol suspicion
    /// (`acn.dist.fd.detection_latency`).
    fd_detection_latency: Histogram,
    /// Membership gossip messages sent (`acn.dist.fd.gossip`).
    fd_gossip: Counter,
    /// Rescue sweeps started (`acn.dist.rescue.sweeps`).
    rescue_sweeps: Counter,
    /// Replacement components installed by rescue sweeps
    /// (`acn.dist.rescue.installs`).
    rescue_installs: Counter,
    /// Virtual time from sweep start to last install ack
    /// (`acn.dist.rescue.duration`).
    rescue_duration: Histogram,
    /// Leftover duplicate components discarded during a sweep
    /// (`acn.dist.rescue.duplicate_discards`).
    rescue_discards: Counter,
    /// Retry-timer delays actually armed, jitter included
    /// (`acn.dist.backoff.interval`).
    backoff_interval: Histogram,
    /// Backoff escalations — unproductive retry rounds or backpressure
    /// NACKs doubling the interval (`acn.dist.backoff.escalations`).
    backoff_escalations: Counter,
    /// Backoff resets on acknowledged progress
    /// (`acn.dist.backoff.resets`).
    backoff_resets: Counter,
    /// Tokens shed with a backpressure NACK at a full frozen buffer
    /// (`acn.dist.backoff.sheds`).
    busy_sheds: Counter,
    /// Instrumented size/level estimation (`acn.estimator.*`).
    estimator: acn_estimator::InstrumentedEstimator,
    /// Event stream for `split.*` / `merge.*` / `dist.*` events.
    registry: Registry,
}

impl DistMetrics {
    fn attach(registry: &Registry) -> Self {
        DistMetrics {
            routing_hops: registry.histogram("acn.dist.routing_hops"),
            split_duration: registry.histogram("acn.dist.split_duration"),
            merge_duration: registry.histogram("acn.dist.merge_duration"),
            splits: registry.counter("acn.dist.splits"),
            merges: registry.counter("acn.dist.merges"),
            merge_aborts: registry.counter("acn.dist.merge_aborts"),
            nacks: registry.counter("acn.dist.token_nacks"),
            retransmits: registry.counter("acn.dist.token_retransmits"),
            dup_traversals: registry.counter("acn.dist.duplicate_traversal_drops"),
            dht_lookups: registry.counter("acn.dist.dht_lookups"),
            merge_drained: registry.counter("acn.dist.merge_drained_tokens"),
            split_drained: registry.counter("acn.dist.split_drained_tokens"),
            migrations: registry.counter("acn.dist.component_migrations"),
            crashes: registry.counter("acn.dist.crashes"),
            level_changes: registry.counter("acn.dist.level_changes"),
            fd_pings: registry.counter("acn.dist.fd.pings"),
            fd_suspects: registry.counter("acn.dist.fd.suspects"),
            fd_detection_latency: registry.histogram("acn.dist.fd.detection_latency"),
            fd_gossip: registry.counter("acn.dist.fd.gossip"),
            rescue_sweeps: registry.counter("acn.dist.rescue.sweeps"),
            rescue_installs: registry.counter("acn.dist.rescue.installs"),
            rescue_duration: registry.histogram("acn.dist.rescue.duration"),
            rescue_discards: registry.counter("acn.dist.rescue.duplicate_discards"),
            backoff_interval: registry.histogram("acn.dist.backoff.interval"),
            backoff_escalations: registry.counter("acn.dist.backoff.escalations"),
            backoff_resets: registry.counter("acn.dist.backoff.resets"),
            busy_sheds: registry.counter("acn.dist.backoff.sheds"),
            estimator: acn_estimator::InstrumentedEstimator::attach(registry),
            registry: registry.clone(),
        }
    }
}

/// Global state shared by all processes of one simulation: the overlay
/// ring (authoritative membership), the decomposition tree, and
/// aggregate statistics.
#[derive(Debug)]
pub struct World {
    /// The decomposition tree of the network.
    pub tree: Tree,
    /// Wiring style (AHS unless running the wiring ablation).
    pub style: WiringStyle,
    /// The overlay ring.
    pub ring: Ring,
    /// DHT ownership queries performed (each is `O(log N)` routing hops
    /// in a real deployment).
    pub dht_lookups: u64,
    /// Split operations completed.
    pub splits_done: u64,
    /// Merge operations completed.
    pub merges_done: u64,
    /// Token NACKs (stale routing guesses).
    pub token_nacks: u64,
    /// Token retransmissions after loss or silence.
    pub token_retransmits: u64,
    /// Duplicate token copies dropped by a component's travelling
    /// `(token, addr)` ledger (a re-routed retransmission raced its
    /// merely-delayed original).
    pub duplicate_traversal_drops: u64,
    /// Harness-stamped crash log: node -> virtual crash time. Ground
    /// truth for the detection-latency oracle and metric; no protocol
    /// path reads it.
    pub crashed: BTreeMap<NodeId, u64>,
    /// First in-protocol suspicion per crashed/suspected node (min over
    /// detectors). The recovery oracle checks every entry of `crashed`
    /// appears here within the detection budget.
    pub detections: BTreeMap<NodeId, u64>,
    /// Next globally unique per-send obligation id.
    next_guid: u64,
    /// Next globally unique end-to-end token id.
    next_token_id: u64,
    /// Test-only mutation switch: when set, receivers skip the
    /// GUID-dedup branch of the token handler, so a retransmission that
    /// races its ack is processed twice. Exists solely so the
    /// distributed model checker can prove it would catch the bug
    /// (mutation testing); never set in production paths. Disabling
    /// this layer alone is masked by the collector's end-to-end dedup —
    /// [`Deployment::test_disable_token_dedup`] removes both.
    mutation_no_ack_dedup: bool,
    /// Pre-resolved `acn.dist.*` telemetry handles (no-ops by default).
    pub(crate) metrics: DistMetrics,
    /// Causal span recorder (no-op by default). Trace ids are the
    /// stable end-to-end token ids; timestamps are the simulator's
    /// virtual clock, so recorded span DAGs are deterministic per seed.
    pub(crate) tracer: Tracer,
}

impl World {
    /// Creates the shared world for a network of width `w` over `ring`.
    #[must_use]
    pub fn new(w: usize, ring: Ring) -> Rc<RefCell<World>> {
        Rc::new(RefCell::new(World {
            tree: Tree::new(w),
            style: WiringStyle::Ahs,
            ring,
            dht_lookups: 0,
            splits_done: 0,
            merges_done: 0,
            token_nacks: 0,
            token_retransmits: 0,
            duplicate_traversal_drops: 0,
            crashed: BTreeMap::new(),
            detections: BTreeMap::new(),
            next_guid: 0,
            next_token_id: 0,
            mutation_no_ack_dedup: false,
            metrics: DistMetrics::default(),
            tracer: Tracer::disabled(),
        }))
    }

    /// Disables the receiver-side GUID dedup of the token channel.
    ///
    /// This is a **deliberately planted bug** for mutation-testing the
    /// distributed model checker (`acn-check`): with dedup off, a
    /// retransmission racing its own ack is processed twice and the
    /// exactly-once oracle must catch it with a replayable schedule.
    #[doc(hidden)]
    pub fn test_disable_ack_dedup(&mut self) {
        self.mutation_no_ack_dedup = true;
    }

    /// Allocates a globally unique per-send obligation id.
    pub fn fresh_guid(&mut self) -> u64 {
        self.next_guid += 1;
        self.next_guid
    }

    /// Allocates a stable end-to-end token identity (assigned once at
    /// injection; the collector counts each at most once).
    pub fn fresh_token_id(&mut self) -> u64 {
        self.next_token_id += 1;
        self.next_token_id
    }

    /// The current hash owner of component `id` per the harness's
    /// ground-truth ring. Boot and harness paths only: protocol hot
    /// paths resolve ownership against each node's *local membership
    /// view* ([`NodeProc::owner_of`]), which is all a real node can see.
    #[must_use]
    pub fn host_of(&mut self, id: &ComponentId) -> NodeId {
        self.dht_lookups += 1;
        self.metrics.dht_lookups.inc();
        self.ring.owner_of_name(self.tree.preorder_index(id))
    }

    /// Records an in-protocol crash suspicion (min-merged across
    /// detectors, so gossip adoption order cannot change the record).
    pub(crate) fn note_detection(&mut self, node: NodeId, at: u64) {
        self.metrics.fd_suspects.inc();
        let first = !self.detections.contains_key(&node);
        let entry = self.detections.entry(node).or_insert(at);
        if at < *entry {
            *entry = at;
        }
        if first {
            if let Some(&crashed_at) = self.crashed.get(&node) {
                self.metrics.fd_detection_latency.record(at.saturating_sub(crashed_at));
            }
            self.metrics.registry.emit(
                TelemetryEvent::new("fd.suspect").at(at).node(node.0),
            );
        }
    }
}

/// A token awaiting end-to-end acknowledgement. (The probe attempt is
/// not stored: a timed-out obligation restarts probing from the cache.)
#[derive(Debug, Clone)]
struct UnackedToken {
    token: u64,
    addr: WireAddress,
    injected_at: u64,
    sent_at: u64,
    hops: u64,
}

/// A token buffered at a frozen component:
/// `(token, addr, injected_at, hops)`.
pub type BufferedToken = (u64, WireAddress, u64, u64);

/// A token in flight: its stable end-to-end identity plus destination
/// and provenance, threaded through routing, sending, and
/// retransmission (an [`UnackedToken`] is a `TokenFlight` plus the
/// send time backing the retry timer).
struct TokenFlight {
    /// Stable end-to-end token id (see [`Msg::Token`]).
    token: u64,
    /// Cut-independent destination wire.
    addr: WireAddress,
    /// Injection time (for latency accounting).
    injected_at: u64,
    /// Inter-node forwards taken so far.
    hops: u64,
}

/// Per-component idempotency ledger: `(token, addr)` pairs this
/// component (or its decomposition-lineage ancestors) has already
/// consumed. A feed-forward network processes each token at each wire
/// address at most once, so a repeat is always a duplicate copy — the
/// re-route of a timed-out retransmission racing its merely-delayed
/// original. The ledger **travels with the component**: split children
/// inherit the parent's ledger, a merge takes the union of the
/// children's, and migration carries it — so whichever node ends up
/// hosting the covering component can recognize the second copy, which
/// per-node receiver state cannot (the copies may land on different
/// nodes). Keying on `(token, addr)` rather than `token` alone keeps a
/// merge from swallowing a token that legitimately passed one child's
/// region and is still in flight towards a sibling's. (A real
/// deployment would expire entries; the simulation keeps them all.)
pub type SeenTokens = BTreeSet<(u64, WireAddress)>;

/// A hosted component plus its runtime bookkeeping.
#[derive(Debug, Clone)]
struct Hosted {
    comp: Component,
    frozen: bool,
    /// The remote coordinator that froze this component (a
    /// `FreezeCollect` sender or nested-merge requester), if any.
    /// `None` for locally driven freezes. When the freezer is later
    /// tombstoned, the merge obligation is orphaned and this node
    /// nudges the parent's current hash owner ([`Msg::MergeOrphan`])
    /// instead of waiting forever.
    frozen_by: Option<ProcessId>,
    /// Tokens buffered while frozen.
    buffer: Vec<BufferedToken>,
    /// The travelling `(token, addr)` idempotency ledger.
    seen: SeenTokens,
}

/// An in-progress split at its coordinator.
#[derive(Debug, Clone)]
struct SplitOp {
    /// Children still awaiting install acks, with their full state so
    /// a stalled install (target crashed) can be re-sent to the
    /// child's *new* hash owner.
    pending: BTreeMap<ComponentId, Component>,
    /// The parent's idempotency ledger (children inherit it), kept for
    /// re-sent installs.
    seen: SeenTokens,
    /// Ticks without an install ack (re-drive trigger).
    stalled_rounds: u32,
    /// When the split froze the parent (telemetry: split duration).
    started_at: u64,
}

/// A component handed off to its new owner, retained until the
/// [`Msg::MigrateAck`] so a crash of the target cannot lose it.
#[derive(Debug, Clone)]
struct MigratingComponent {
    comp: Component,
    seen: SeenTokens,
    buffer: Vec<BufferedToken>,
    /// When the hand-off was (last) sent; stale entries are re-sent to
    /// the *current* view owner by the retry timer.
    sent_at: u64,
}

/// An in-progress rescue sweep at its coordinator (the node that
/// suspected a crash). The sweep is global: it reassembles the whole
/// covered cut from peer reports, discards leftover duplicates, and
/// installs fresh components over every uncovered subtree — so a sweep
/// triggered by one crash also heals holes left by earlier ones (e.g.
/// a previous coordinator that died mid-sweep).
#[derive(Debug, Clone)]
struct RescueOp {
    /// When the sweep started (telemetry: rescue duration).
    started_at: u64,
    /// Peers still to report their covered slice.
    pending: BTreeSet<NodeId>,
    /// Covered components reported so far: id -> (reporter, frozen).
    covered: BTreeMap<ComponentId, (NodeId, bool)>,
    /// Replacement installs awaiting acks: id -> last target.
    installs: BTreeMap<ComponentId, NodeId>,
    /// Failure-detector ticks without progress (re-drive trigger).
    stalled_rounds: u32,
}

/// An in-progress merge at its coordinator.
#[derive(Debug, Clone)]
struct MergeOp {
    /// When the merge was started (telemetry: merge duration).
    started_at: u64,
    /// Collected child states (with their idempotency ledgers), by
    /// child index.
    collected: Vec<Option<(Component, SeenTokens)>>,
    /// The process that reported each child (for `RemoveFrozen`).
    reporters: Vec<Option<ProcessId>>,
    /// Collection rounds that made no progress (stall detector).
    stalled_rounds: u32,
    /// Set while waiting for a remote install ack of the parent.
    awaiting_install: bool,
    /// For nested merges: reply to this coordinator when reconstructed.
    requester: Option<(ProcessId, ComponentId)>,
}

/// One overlay node of the distributed adaptive counting network.
#[derive(Debug)]
pub struct NodeProc {
    world: Rc<RefCell<World>>,
    node: NodeId,
    components: BTreeMap<ComponentId, Hosted>,
    /// Components this node split and has not merged back yet (the
    /// paper's per-node split list).
    split_list: BTreeSet<ComponentId>,
    splits: BTreeMap<ComponentId, SplitOp>,
    merges: BTreeMap<ComponentId, MergeOp>,
    /// Tokens this node is responsible for until acknowledged:
    /// guid -> (addr, injected_at, attempt of the outstanding send,
    /// send time; `sent` false while the probe chain is exhausted).
    unacked: BTreeMap<u64, UnackedToken>,
    /// GUIDs of tokens this node has accepted (duplicate suppression).
    seen: BTreeSet<u64>,
    /// Merge collections to retry (child is mid-reconfiguration).
    stuck_collects: Vec<(ComponentId, ComponentId)>,
    /// Whether a retry timer is already armed.
    retry_armed: bool,
    /// Last known owner level per wire address (the Section 3.5 cache).
    cache: BTreeMap<WireAddress, usize>,
    /// Current level estimate `l_v`.
    level: usize,
    /// Period of the level-maintenance timer.
    level_period: u64,
    /// Whether the node has gracefully departed (still NACKs tokens so
    /// none are lost while senders re-resolve).
    departed: bool,
    /// Membership CRDT: every node ever known. Monotone (ids are never
    /// reused), so the view epoch `|known| + |dead|` only grows and
    /// gossip merge is a plain union.
    view_known: BTreeSet<NodeId>,
    /// Membership CRDT: tombstones for crashed/departed nodes.
    view_dead: BTreeSet<NodeId>,
    /// Materialized ring over `known - dead`: what *this node believes*
    /// the membership is. All hot-path ownership lookups resolve here —
    /// never against the harness's ground-truth `World::ring`.
    view_ring: Ring,
    /// Virtual time each peer was last heard from (any message counts
    /// as a heartbeat; explicit pings fill idle gaps).
    last_heard: BTreeMap<NodeId, u64>,
    /// The predecessor currently being monitored (strikes reset when
    /// the view changes it).
    fd_target: Option<NodeId>,
    /// Consecutive silent failure-detector ticks for `fd_target`.
    fd_strikes: u32,
    /// In-progress rescue sweep this node coordinates.
    rescue: Option<RescueOp>,
    /// A suspicion arrived while a sweep was running: run another
    /// sweep when the current one completes.
    rescue_again: bool,
    /// Components handed off and awaiting [`Msg::MigrateAck`].
    migrating: BTreeMap<ComponentId, MigratingComponent>,
    /// Current retry backoff interval (0 = base `level_period/4 + 1`);
    /// doubled on unproductive retries and backpressure NACKs up to
    /// one `level_period`, reset to base on acknowledged progress.
    retry_interval: u64,
    /// Private splitmix64 stream for retry jitter. Seeded from the
    /// node id, advanced only by this node's own arms — part of the
    /// canonical state digest, unlike the shared sim RNG.
    jitter_rng: u64,
    /// Bound on remotely sent tokens parked in one frozen buffer.
    frozen_buffer_cap: usize,
}

impl NodeProc {
    /// Creates the process for overlay node `node`.
    #[must_use]
    pub fn new(world: Rc<RefCell<World>>, node: NodeId, level_period: u64) -> Self {
        NodeProc {
            world,
            node,
            components: BTreeMap::new(),
            split_list: BTreeSet::new(),
            splits: BTreeMap::new(),
            merges: BTreeMap::new(),
            unacked: BTreeMap::new(),
            seen: BTreeSet::new(),
            stuck_collects: Vec::new(),
            retry_armed: false,
            cache: BTreeMap::new(),
            level: 0,
            level_period,
            departed: false,
            view_known: BTreeSet::from([node]),
            view_dead: BTreeSet::new(),
            view_ring: {
                let mut r = Ring::new();
                r.add_node(node);
                r
            },
            last_heard: BTreeMap::new(),
            fd_target: None,
            fd_strikes: 0,
            rescue: None,
            rescue_again: false,
            migrating: BTreeMap::new(),
            retry_interval: 0,
            jitter_rng: node.0 ^ 0x9E37_79B9_7F4A_7C15,
            frozen_buffer_cap: DEFAULT_FROZEN_BUFFER_CAP,
        }
    }

    /// Seeds the initial membership view (bootstrap/join contact list).
    pub fn seed_view(&mut self, nodes: impl IntoIterator<Item = NodeId>) {
        self.view_known.extend(nodes);
        self.view_known.insert(self.node);
        self.rebuild_view_ring();
    }

    /// This node's membership epoch: `|known| + |dead|`. Both sets are
    /// monotone, so the epoch totally orders a single node's view
    /// history and a gossip merge never moves it backwards.
    #[must_use]
    pub fn view_epoch(&self) -> u64 {
        (self.view_known.len() + self.view_dead.len()) as u64
    }

    /// Whether `n` is live in this node's view.
    #[must_use]
    pub fn view_live(&self, n: NodeId) -> bool {
        self.view_known.contains(&n) && !self.view_dead.contains(&n)
    }

    /// Whether `n` is tombstoned in this node's view.
    #[must_use]
    pub fn view_dead_contains(&self, n: NodeId) -> bool {
        self.view_dead.contains(&n)
    }

    /// Whether this node is currently coordinating a rescue sweep.
    #[must_use]
    pub fn rescue_active(&self) -> bool {
        self.rescue.is_some()
    }

    /// In-flight split operations this node coordinates.
    #[must_use]
    pub fn splits_in_flight(&self) -> usize {
        self.splits.len()
    }

    /// In-flight merge operations this node coordinates.
    #[must_use]
    pub fn merges_in_flight(&self) -> usize {
        self.merges.len()
    }

    /// Overrides the per-component frozen-buffer capacity (tests drive
    /// the backpressure path with tiny caps).
    pub fn set_frozen_buffer_cap(&mut self, cap: usize) {
        self.frozen_buffer_cap = cap.max(1);
    }

    fn rebuild_view_ring(&mut self) {
        let mut ring = Ring::new();
        for &n in &self.view_known {
            if !self.view_dead.contains(&n) {
                ring.add_node(n);
            }
        }
        self.view_ring = ring;
    }

    /// Union-merges a gossiped view into the local one. Returns whether
    /// anything changed (the re-broadcast trigger).
    fn merge_view(&mut self, known: &BTreeSet<NodeId>, dead: &BTreeSet<NodeId>) -> bool {
        let before = self.view_epoch();
        self.view_known.extend(known.iter().copied());
        self.view_known.extend(dead.iter().copied());
        self.view_dead.extend(dead.iter().copied());
        let changed = self.view_epoch() != before;
        if changed {
            self.rebuild_view_ring();
        }
        changed
    }

    /// Gossips the local view to every known peer. Sent only on change,
    /// so each membership event costs O(N^2) messages before every
    /// view converges and the wave dies out. Tombstoned peers are
    /// included deliberately: a ghost (departed, or falsely suspected)
    /// may still hold frozen state whose coordinator just died, and it
    /// needs the tombstone to nudge the orphan back into the protocol.
    /// Sends to genuinely crashed processes are dropped by the plane.
    fn broadcast_view(&mut self, ctx: &mut Context<'_, Msg>) {
        let peers: Vec<NodeId> =
            self.view_known.iter().copied().filter(|&n| n != self.node).collect();
        self.world.borrow().metrics.fd_gossip.add(peers.len() as u64);
        for peer in peers {
            ctx.send(
                ProcessId(peer.0),
                Msg::ViewGossip {
                    known: self.view_known.clone(),
                    dead: self.view_dead.clone(),
                },
            );
        }
    }

    /// The hash owner of component `id` per this node's *local view*
    /// (one DHT lookup in a real deployment). Falls back to self when
    /// the view ring is empty (an excommunicated ghost with no live
    /// peers left — nothing useful to do but keep the state).
    fn owner_of(&mut self, id: &ComponentId) -> NodeId {
        let name = {
            let mut w = self.world.borrow_mut();
            w.dht_lookups += 1;
            w.metrics.dht_lookups.inc();
            w.tree.preorder_index(id)
        };
        if self.view_ring.is_empty() {
            self.node
        } else {
            self.view_ring.owner_of_name(name)
        }
    }

    /// The overlay node this process represents.
    #[must_use]
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// Whether this node has gracefully departed.
    #[must_use]
    pub fn departed(&self) -> bool {
        self.departed
    }

    /// Installs a component directly with an empty idempotency ledger
    /// (bootstrap and crash repair — where token history is gone by
    /// definition).
    pub fn install_component(&mut self, comp: Component) {
        self.install_component_with_seen(comp, SeenTokens::new());
    }

    /// Installs a component carrying its travelling `(token, addr)`
    /// ledger (split inheritance, merge union, migration).
    pub fn install_component_with_seen(&mut self, comp: Component, seen: SeenTokens) {
        self.components.insert(
            comp.id().clone(),
            Hosted { comp, frozen: false, frozen_by: None, buffer: Vec::new(), seen },
        );
    }

    /// The live components on this node with their frozen flags.
    pub fn components(&self) -> impl Iterator<Item = (&ComponentId, bool)> {
        self.components.iter().map(|(id, h)| (id, h.frozen))
    }

    /// The hosted components with their full state, frozen flag, and
    /// buffered-token count (the distributed checker's oracles import
    /// these to audit conservation and ledger legality).
    pub fn hosted_components(
        &self,
    ) -> impl Iterator<Item = (&ComponentId, &Component, bool, usize)> {
        self.components.iter().map(|(id, h)| (id, &h.comp, h.frozen, h.buffer.len()))
    }

    /// Number of token obligations still awaiting end-to-end acks (the
    /// checker's leaked-retransmit oracle).
    #[must_use]
    pub fn unacked_count(&self) -> usize {
        self.unacked.len()
    }

    /// Removes and returns an unfrozen hosted component with its
    /// buffered tokens and idempotency ledger (harness-side migration
    /// on churn).
    pub fn take_component(
        &mut self,
        id: &ComponentId,
    ) -> Option<(Component, Vec<BufferedToken>, SeenTokens)> {
        if self.components.get(id).map(|h| h.frozen).unwrap_or(true) {
            return None;
        }
        self.components.remove(id).map(|h| (h.comp, h.buffer, h.seen))
    }

    /// The split list (components this node is responsible for merging).
    #[must_use]
    pub fn split_list(&self) -> &BTreeSet<ComponentId> {
        &self.split_list
    }

    /// Adds entries to the split list (successor hand-off on leave).
    pub fn extend_split_list(&mut self, items: impl IntoIterator<Item = ComponentId>) {
        self.split_list.extend(items);
    }

    /// Whether a merge of `id` is currently coordinated by this node.
    #[must_use]
    pub fn has_merge_in_progress(&self, id: &ComponentId) -> bool {
        self.merges.contains_key(id)
    }

    /// Drains the split list (departure hand-off).
    pub fn drain_split_list(&mut self) -> Vec<ComponentId> {
        let items: Vec<ComponentId> = self.split_list.iter().cloned().collect();
        self.split_list.clear();
        items
    }

    /// Marks the node as departed: it tombstones itself in its own
    /// view (so its migration sweeps shed every component to the
    /// remaining owners) and NACKs tokens so senders re-resolve.
    pub fn depart(&mut self) {
        self.departed = true;
        self.view_dead.insert(self.node);
        self.rebuild_view_ring();
    }

    /// Debug rendering of in-flight operations (diagnostics).
    #[must_use]
    pub fn ops_debug(&self) -> String {
        let merges: Vec<String> = self
            .merges
            .iter()
            .map(|(id, op)| {
                let collected: Vec<usize> = op
                    .collected
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| c.is_some())
                    .map(|(i, _)| i)
                    .collect();
                format!(
                    "merge {id}: collected {collected:?} awaiting_install={} requester={:?}",
                    op.awaiting_install,
                    op.requester.as_ref().map(|(p, g)| format!("{p}/{g}"))
                )
            })
            .collect();
        let splits: Vec<String> = self
            .splits
            .iter()
            .map(|(id, op)| format!("split {id}: pending {:?}", op.pending.len()))
            .collect();
        format!(
            "retry_armed={} unacked={} stuck_collects={:?} splits={splits:?} merges={merges:?}",
            self.retry_armed,
            self.unacked.len(),
            self.stuck_collects
                .iter()
                .map(|(c, p)| format!("{c} for {p}"))
                .collect::<Vec<_>>(),
        )
    }

    /// Whether the node currently has reconfiguration operations or
    /// unresolved tokens in flight.
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        self.splits.is_empty()
            && self.merges.is_empty()
            && self.unacked.is_empty()
            && self.stuck_collects.is_empty()
            && self.migrating.is_empty()
            && self.rescue.is_none()
    }

    /// Arms the retry timer with the current backoff interval plus
    /// deterministic seeded jitter. The base interval far exceeds the
    /// simulated RTT, so a retransmission never races a still-pending
    /// ack; escalation only widens that margin.
    fn arm_retry(&mut self, ctx: &mut Context<'_, Msg>) {
        if self.retry_armed {
            return;
        }
        self.retry_armed = true;
        let base = self.level_period / 4 + 1;
        let interval = self.retry_interval.max(base);
        let jitter = acn_overlay::splitmix64(&mut self.jitter_rng) % (interval / 4 + 1);
        let delay = interval + jitter;
        self.world.borrow().metrics.backoff_interval.record(delay);
        ctx.set_timer(delay, TIMER_RETRY);
    }

    /// Doubles the retry backoff (cap: one level period).
    fn escalate_backoff(&mut self) {
        let base = self.level_period / 4 + 1;
        self.retry_interval = (self.retry_interval.max(base) * 2).min(self.level_period);
        self.world.borrow().metrics.backoff_escalations.inc();
    }

    /// Resets the backoff to base on acknowledged progress.
    fn reset_backoff(&mut self) {
        if self.retry_interval != 0 {
            self.retry_interval = 0;
            self.world.borrow().metrics.backoff_resets.inc();
        }
    }

    /// The hosted candidate (if any) covering `addr`.
    fn hosted_candidate(&self, addr: &WireAddress) -> Option<ComponentId> {
        addr.candidates().find(|c| self.components.contains_key(c))
    }

    /// Like [`route_token`](Self::route_token), but keeps an existing
    /// obligation id when the token must be forwarded remotely.
    fn route_token_with_guid(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        guid: u64,
        token: u64,
        addr: WireAddress,
        injected_at: u64,
        hops: u64,
    ) {
        if self.hosted_candidate(&addr).is_some() && !self.departed {
            // The original send may still be in flight (silence is not
            // proof of loss): this local copy and the in-flight one now
            // race on *different* paths, where no receiver-side GUID
            // check can see both. The collector's end-to-end `token`
            // dedup is what keeps the count exactly-once.
            self.route_token(ctx, token, addr, injected_at, hops);
        } else {
            let flight = TokenFlight { token, addr, injected_at, hops };
            self.send_token(ctx, Some(guid), flight, ATTEMPT_CACHED);
        }
    }

    /// Routes a token: processes it locally as long as this node hosts
    /// the next owner, then sends it on (or to the collector). `hops` is
    /// how many inter-node forwards the token has already taken.
    fn route_token(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        token: u64,
        mut addr: WireAddress,
        injected_at: u64,
        hops: u64,
    ) {
        let tracer = self.world.borrow().tracer.clone();
        let traced = tracer.should_sample(token);
        loop {
            match self.hosted_candidate(&addr) {
                Some(id) => {
                    let (tree, style, dedup) = {
                        let w = self.world.borrow();
                        (w.tree, w.style, !w.mutation_no_ack_dedup)
                    };
                    let hosted = self.components.get_mut(&id).expect("candidate is hosted");
                    if hosted.frozen {
                        if traced {
                            tracer.record(
                                Span::new("token.buffer", token)
                                    .at(ctx.now())
                                    .node(self.node.0)
                                    .with("level", id.level() as u64),
                            );
                        }
                        hosted.buffer.push((token, addr, injected_at, hops));
                        return;
                    }
                    if dedup && !hosted.seen.insert((token, addr.clone())) {
                        // This component (or its lineage) already
                        // consumed this token at this wire: the copy is
                        // a re-routed retransmission whose original was
                        // delayed, not lost. Dropping it here keeps the
                        // balancer states — and hence the step property
                        // — exactly as if the token traversed once.
                        let mut w = self.world.borrow_mut();
                        w.duplicate_traversal_drops += 1;
                        w.metrics.dup_traversals.inc();
                        if traced {
                            w.tracer.record(
                                Span::new("token.dup_drop", token)
                                    .at(ctx.now())
                                    .node(self.node.0)
                                    .with("level", id.level() as u64),
                            );
                        }
                        return;
                    }
                    let in_port = input_port_of(&tree, &id, &addr, style);
                    let port = hosted.comp.process_token(in_port);
                    if traced {
                        tracer.record(
                            Span::new("token.route", token)
                                .at(ctx.now())
                                .node(self.node.0)
                                .with("level", id.level() as u64)
                                .with("in_port", in_port.map_or(u64::MAX, |p| p as u64))
                                .with("out_port", port as u64),
                        );
                    }
                    match resolve_output(&tree, &id, port, style) {
                        OutputDestination::NetworkOutput(wire) => {
                            self.world.borrow().metrics.routing_hops.record(hops);
                            if traced {
                                tracer.record(
                                    Span::new("token.exit", token)
                                        .at(ctx.now())
                                        .node(self.node.0)
                                        .with("wire", wire as u64)
                                        .with("hops", hops),
                                );
                            }
                            ctx.send(COLLECTOR, Msg::Exit { wire, token, injected_at, hops });
                            return;
                        }
                        OutputDestination::Wire(next) => addr = next,
                    }
                }
                None => {
                    let flight = TokenFlight { token, addr, injected_at, hops };
                    self.send_token(ctx, None, flight, ATTEMPT_CACHED);
                    return;
                }
            }
        }
    }

    /// Sends a token towards a guessed owner of its wire address,
    /// registering the retransmission obligation under `guid` (a fresh
    /// one if `None`). `attempt` is `ATTEMPT_CACHED` for the
    /// cache-directed first try, otherwise an index into the canonical
    /// (deepest-first) chain.
    fn send_token(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        guid: Option<u64>,
        flight: TokenFlight,
        attempt: u8,
    ) {
        let TokenFlight { token, addr, injected_at, hops } = flight;
        let guid = guid.unwrap_or_else(|| self.world.borrow_mut().fresh_guid());
        let candidates: Vec<ComponentId> = addr.candidates().collect();
        let mut attempt = attempt;
        loop {
            let guess = if attempt == ATTEMPT_CACHED {
                let level = self
                    .cache
                    .get(&addr)
                    .copied()
                    .unwrap_or(self.level)
                    .min(candidates.len() - 1);
                // candidates[i] has level (max_level - i): deepest first.
                candidates[candidates.len() - 1 - level].clone()
            } else if (attempt as usize) < candidates.len() {
                candidates[attempt as usize].clone()
            } else {
                // Chain exhausted (reconfiguration window): keep the
                // obligation and let the retry timer start over.
                self.unacked.insert(
                    guid,
                    UnackedToken { token, addr, injected_at, sent_at: ctx.now(), hops },
                );
                self.arm_retry(ctx);
                return;
            };
            let host = self.owner_of(&guess);
            if ProcessId(host.0) == ctx.self_id() && !self.components.contains_key(&guess) {
                // We own this name and know it is dead; skip ahead.
                attempt = if attempt == ATTEMPT_CACHED { 0 } else { attempt + 1 };
                continue;
            }
            self.cache.insert(addr.clone(), guess.level());
            self.unacked.insert(
                guid,
                UnackedToken { token, addr: addr.clone(), injected_at, sent_at: ctx.now(), hops },
            );
            self.arm_retry(ctx);
            {
                let w = self.world.borrow();
                if w.tracer.should_sample(token) {
                    w.tracer.record(
                        Span::new("token.send", token)
                            .at(ctx.now())
                            .node(self.node.0)
                            .with("to", host.0)
                            .with("guid", guid)
                            .with("hops", hops),
                    );
                }
            }
            ctx.send_lossy(
                ProcessId(host.0),
                Msg::Token { guid, token, addr, injected_at, attempt, hops },
            );
            return;
        }
    }

    /// Begins splitting hosted component `id`. Defers (no-op) if the
    /// component's traffic has not settled; the next level tick retries.
    fn start_split(&mut self, ctx: &mut Context<'_, Msg>, id: &ComponentId) {
        let (tree, style) = {
            let w = self.world.borrow();
            (w.tree, w.style)
        };
        let children = {
            let hosted = self.components.get(id).expect("split target is hosted");
            debug_assert!(!hosted.frozen);
            match split_component(&tree, &hosted.comp, style) {
                Ok(children) => children,
                Err(_) => return, // transient; retry at the next tick
            }
        };
        let hosted = self.components.get_mut(id).expect("split target is hosted");
        hosted.frozen = true;
        // Children inherit the parent's idempotency ledger: the parent
        // covered their regions, so any token it consumed must not be
        // consumed again by a child processing a delayed duplicate.
        let parent_seen = hosted.seen.clone();
        self.world.borrow().metrics.registry.emit(
            TelemetryEvent::new("split.begin")
                .at(ctx.now())
                .node(self.node.0)
                .component(id.to_string())
                .with("level", id.level() as u64),
        );
        let mut op = SplitOp {
            pending: BTreeMap::new(),
            seen: parent_seen.clone(),
            stalled_rounds: 0,
            started_at: ctx.now(),
        };
        let mut local_installs = Vec::new();
        for child in children {
            let host = self.owner_of(child.id());
            if ProcessId(host.0) == ctx.self_id() {
                local_installs.push(child);
            } else {
                op.pending.insert(child.id().clone(), child.clone());
                ctx.send(
                    ProcessId(host.0),
                    Msg::Install { comp: child, seen: parent_seen.clone() },
                );
            }
        }
        for child in local_installs {
            self.install_component_with_seen(child, parent_seen.clone());
        }
        if op.pending.is_empty() {
            self.finish_split(ctx, id.clone(), op.started_at);
        } else {
            self.splits.insert(id.clone(), op);
        }
    }

    /// All children installed: drop the parent and re-route its buffer.
    fn finish_split(&mut self, ctx: &mut Context<'_, Msg>, id: ComponentId, started_at: u64) {
        let hosted = self.components.remove(&id).expect("split parent is hosted");
        let drained = hosted.buffer.len() as u64;
        {
            let mut w = self.world.borrow_mut();
            w.splits_done += 1;
            w.metrics.splits.inc();
            w.metrics.split_drained.add(drained);
            let duration = ctx.now().saturating_sub(started_at);
            w.metrics.split_duration.record(duration);
            w.metrics.registry.emit(
                TelemetryEvent::new("split.end")
                    .at(ctx.now())
                    .node(self.node.0)
                    .component(id.to_string())
                    .with("duration", duration)
                    .with("drained", drained),
            );
            if w.tracer.is_enabled() {
                w.tracer.record(
                    Span::new("net.split", SYSTEM_TRACE)
                        .between(started_at, ctx.now())
                        .node(self.node.0)
                        .with("level", id.level() as u64)
                        .with("drained", drained),
                );
            }
        }
        self.split_list.insert(id);
        for (token, addr, injected_at, hops) in hosted.buffer {
            self.route_token(ctx, token, addr, injected_at, hops);
        }
    }

    /// Begins merging split component `id` back together.
    fn start_merge(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        id: &ComponentId,
        requester: Option<(ProcessId, ComponentId)>,
    ) {
        let tree = self.world.borrow().tree;
        let children = tree.children(id);
        let arity = children.len();
        self.world.borrow().metrics.registry.emit(
            TelemetryEvent::new("merge.begin")
                .at(ctx.now())
                .node(self.node.0)
                .component(id.to_string())
                .with("level", id.level() as u64)
                .with("nested", requester.is_some()),
        );
        self.merges.insert(
            id.clone(),
            MergeOp {
                started_at: ctx.now(),
                collected: vec![None; arity],
                reporters: vec![None; arity],
                stalled_rounds: 0,
                awaiting_install: false,
                requester,
            },
        );
        for child in children {
            self.collect_child(ctx, &child, id);
        }
    }

    /// Asks for (or locally performs) the freeze-and-collect of one
    /// child of an in-progress merge.
    fn collect_child(&mut self, ctx: &mut Context<'_, Msg>, child: &ComponentId, parent: &ComponentId) {
        if let Some(hosted) = self.components.get_mut(child) {
            if self.splits.contains_key(child) {
                // Mid-split: retry once the split finishes.
                self.stuck_collects.push((child.clone(), parent.clone()));
                self.arm_retry(ctx);
                return;
            }
            hosted.frozen = true;
            let comp = hosted.comp.clone();
            let seen = hosted.seen.clone();
            let me = ctx.self_id();
            self.record_collect(ctx, comp, seen, parent, me);
        } else if self.split_list.contains(child) {
            let me = ctx.self_id();
            if let Some(op) = self.merges.get_mut(child) {
                // Already merging it for ourselves: attach the requester.
                op.requester = Some((me, parent.clone()));
            } else {
                self.start_merge(ctx, &child.clone(), Some((me, parent.clone())));
            }
        } else {
            let host = self.owner_of(child);
            if ProcessId(host.0) == ctx.self_id() {
                // We own the name but have nothing: transient window.
                self.stuck_collects.push((child.clone(), parent.clone()));
                self.arm_retry(ctx);
            } else {
                ctx.send(
                    ProcessId(host.0),
                    Msg::FreezeCollect { id: child.clone(), parent: parent.clone() },
                );
            }
        }
    }

    /// Records a collected child state; completes the merge when all
    /// children have reported.
    fn record_collect(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        comp: Component,
        seen: SeenTokens,
        parent: &ComponentId,
        reporter: ProcessId,
    ) {
        let Some(op) = self.merges.get_mut(parent) else { return };
        if op.awaiting_install {
            return;
        }
        let index = comp.id().child_index().expect("child has an index") as usize;
        op.collected[index] = Some((comp, seen));
        op.reporters[index] = Some(reporter);
        op.stalled_rounds = 0;
        if op.collected.iter().all(Option::is_some) {
            self.complete_merge(ctx, parent.clone());
        }
    }

    /// All children collected: reconstruct the parent.
    fn complete_merge(&mut self, ctx: &mut Context<'_, Msg>, parent: ComponentId) {
        let (tree, style) = {
            let w = self.world.borrow();
            (w.tree, w.style)
        };
        let (merged, merged_seen, nested_requester) = {
            let op = self.merges.get(&parent).expect("merge in progress");
            let children: Vec<Component> = op
                .collected
                .iter()
                .map(|c| c.clone().expect("all collected").0)
                .collect();
            // The merge result inherits the union of the children's
            // idempotency ledgers: it covers all their regions.
            let mut merged_seen = SeenTokens::new();
            for c in op.collected.iter() {
                merged_seen.extend(c.as_ref().expect("all collected").1.iter().cloned());
            }
            match merge_components(&tree, &parent, &children, style) {
                Ok(m) => (m, merged_seen, op.requester.clone()),
                Err(_) => {
                    // Unsettled traffic: release the children and retry
                    // at a later tick.
                    self.abort_merge(ctx, &parent);
                    return;
                }
            }
        };
        if let Some((req_pid, grandparent)) = nested_requester {
            // Reconstruct locally, frozen, and report upward; the
            // requester will `RemoveFrozen` us like any other child.
            let frozen_by = (req_pid != ctx.self_id()).then_some(req_pid);
            self.components.insert(
                parent.clone(),
                Hosted {
                    comp: merged.clone(),
                    frozen: true,
                    frozen_by,
                    buffer: Vec::new(),
                    seen: merged_seen.clone(),
                },
            );
            let started_at = self.cleanup_merge(ctx, &parent);
            self.split_list.remove(&parent);
            self.note_merge_done(ctx, &parent, started_at);
            if req_pid == ctx.self_id() {
                let me = ctx.self_id();
                self.record_collect(ctx, merged, merged_seen, &grandparent, me);
            } else {
                ctx.send(
                    req_pid,
                    Msg::CollectReply { comp: merged, seen: merged_seen, parent: grandparent },
                );
            }
            return;
        }
        // Top-level merge: install the parent at its current hash owner
        // per the local view.
        let host = self.owner_of(&parent);
        if ProcessId(host.0) == ctx.self_id() {
            self.install_component_with_seen(merged, merged_seen);
            let started_at = self.cleanup_merge(ctx, &parent);
            self.split_list.remove(&parent);
            self.note_merge_done(ctx, &parent, started_at);
        } else {
            self.merges
                .get_mut(&parent)
                .expect("merge in progress")
                .awaiting_install = true;
            ctx.send(ProcessId(host.0), Msg::Install { comp: merged, seen: merged_seen });
        }
    }

    /// After the parent is live, dismiss the frozen children. Returns
    /// the time the merge started (for duration telemetry).
    fn cleanup_merge(&mut self, ctx: &mut Context<'_, Msg>, parent: &ComponentId) -> u64 {
        let op = self.merges.remove(parent).expect("merge in progress");
        for (index, reporter) in op.reporters.iter().enumerate() {
            let child = parent.child(index as u8);
            let reporter = reporter.expect("all children reported");
            if reporter == ctx.self_id() {
                self.remove_frozen(ctx, &child);
            } else {
                ctx.send(reporter, Msg::RemoveFrozen { id: child });
            }
        }
        op.started_at
    }

    /// Records a completed merge: counters, duration histogram, and the
    /// `merge.end` event.
    fn note_merge_done(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        parent: &ComponentId,
        started_at: u64,
    ) {
        let mut w = self.world.borrow_mut();
        w.merges_done += 1;
        w.metrics.merges.inc();
        let duration = ctx.now().saturating_sub(started_at);
        w.metrics.merge_duration.record(duration);
        w.metrics.registry.emit(
            TelemetryEvent::new("merge.end")
                .at(ctx.now())
                .node(self.node.0)
                .component(parent.to_string())
                .with("duration", duration),
        );
        if w.tracer.is_enabled() {
            w.tracer.record(
                Span::new("net.merge", SYSTEM_TRACE)
                    .between(started_at, ctx.now())
                    .node(self.node.0)
                    .with("level", parent.level() as u64),
            );
        }
    }

    /// Aborts an in-progress merge: children are unfrozen in place and
    /// their buffered tokens resume; a nested requester is told to
    /// retry.
    fn abort_merge(&mut self, ctx: &mut Context<'_, Msg>, parent: &ComponentId) {
        let op = self.merges.remove(parent).expect("merge in progress");
        {
            let w = self.world.borrow();
            w.metrics.merge_aborts.inc();
            w.metrics.registry.emit(
                TelemetryEvent::new("merge.abort")
                    .at(ctx.now())
                    .node(self.node.0)
                    .component(parent.to_string()),
            );
        }
        for (index, reporter) in op.reporters.iter().enumerate() {
            let child = parent.child(index as u8);
            let Some(reporter) = *reporter else { continue };
            if reporter == ctx.self_id() {
                self.release_frozen(ctx, &child);
            } else {
                ctx.send(reporter, Msg::AbortFreeze { id: child });
            }
        }
        if let Some((req_pid, grandparent)) = op.requester {
            if req_pid == ctx.self_id() {
                self.stuck_collects.push((parent.clone(), grandparent));
                self.arm_retry(ctx);
            } else {
                ctx.send(
                    req_pid,
                    Msg::CollectMissing { id: parent.clone(), parent: grandparent },
                );
            }
        }
    }

    /// Unfreezes a component in place and processes its buffered tokens.
    fn release_frozen(&mut self, ctx: &mut Context<'_, Msg>, id: &ComponentId) {
        if let Some(hosted) = self.components.get_mut(id) {
            hosted.frozen = false;
            hosted.frozen_by = None;
            let buffered = std::mem::take(&mut hosted.buffer);
            for (token, addr, injected_at, hops) in buffered {
                self.route_token(ctx, token, addr, injected_at, hops);
            }
        }
    }

    /// Drops a frozen component and re-routes its buffered tokens (the
    /// merge-drain step of the protocol).
    fn remove_frozen(&mut self, ctx: &mut Context<'_, Msg>, id: &ComponentId) {
        if let Some(hosted) = self.components.remove(id) {
            self.world.borrow().metrics.merge_drained.add(hosted.buffer.len() as u64);
            for (token, addr, injected_at, hops) in hosted.buffer {
                self.route_token(ctx, token, addr, injected_at, hops);
            }
        }
    }

    /// The level-maintenance tick: re-estimate, split what is too
    /// coarse, merge what is too fine (paper Section 3.2), shed
    /// components whose view-owner changed, and re-drive stalled
    /// operations.
    fn level_tick(&mut self, ctx: &mut Context<'_, Msg>) {
        if self.departed || !self.view_live(self.node) {
            // Ghost (departed or excommunicated): no adaptivity
            // decisions, but keep shedding state and finishing
            // in-flight obligations, re-arming only while any remain.
            self.migration_sweep(ctx);
            self.redrive_splits(ctx);
            self.redrive_merges(ctx);
            if !(self.components.is_empty()
                && self.splits.is_empty()
                && self.merges.is_empty()
                && self.migrating.is_empty())
            {
                ctx.set_timer(self.level_period, TIMER_LEVEL);
            }
            return;
        }
        {
            let w = self.world.borrow();
            let level = w
                .metrics
                .estimator
                .node_level_at(&self.view_ring, self.node, ctx.now())
                .min(w.tree.max_level());
            if level != self.level {
                w.metrics.level_changes.inc();
                w.metrics.registry.emit(
                    TelemetryEvent::new("dist.level_change")
                        .at(ctx.now())
                        .node(self.node.0)
                        .with("from", self.level as u64)
                        .with("to", level as u64),
                );
            }
            self.level = level;
        }
        // Splitting rule.
        let to_split: Vec<ComponentId> = self
            .components
            .iter()
            .filter(|(id, hosted)| {
                !hosted.frozen && hosted.comp.width() >= 4 && id.level() < self.level
            })
            .map(|(id, _)| id.clone())
            .collect();
        for id in to_split {
            self.start_split(ctx, &id);
        }
        // Zombie split-list entries: if we host the component itself
        // live, someone (typically a departed node's ghost) already
        // completed the merge — drop the duplicated obligation.
        let zombies: Vec<ComponentId> = self
            .split_list
            .iter()
            .filter(|id| self.components.contains_key(*id))
            .cloned()
            .collect();
        for id in zombies {
            self.split_list.remove(&id);
            if self.merges.contains_key(&id) {
                self.abort_merge(ctx, &id);
            }
        }
        // Merging rule.
        let to_merge: Vec<ComponentId> = self
            .split_list
            .iter()
            .filter(|id| id.level() >= self.level && !self.merges.contains_key(*id))
            .cloned()
            .collect();
        for id in to_merge {
            self.start_merge(ctx, &id, None);
        }
        self.redrive_splits(ctx);
        self.redrive_merges(ctx);
        self.migration_sweep(ctx);
        ctx.set_timer(self.level_period, TIMER_LEVEL);
    }

    /// Re-sends `Install`s for split children whose ack is overdue
    /// (the original target crashed): ownership is recomputed against
    /// the current view, and a child we now own is installed locally.
    fn redrive_splits(&mut self, ctx: &mut Context<'_, Msg>) {
        let stalled: Vec<ComponentId> = self
            .splits
            .iter_mut()
            .filter_map(|(id, op)| {
                op.stalled_rounds += 1;
                (op.stalled_rounds > 2).then(|| id.clone())
            })
            .collect();
        for parent in stalled {
            let (children, seen) = {
                let op = self.splits.get_mut(&parent).expect("listed above");
                op.stalled_rounds = 0;
                (op.pending.clone(), op.seen.clone())
            };
            for (cid, comp) in children {
                let host = self.owner_of(&cid);
                if ProcessId(host.0) == ctx.self_id() {
                    self.install_component_with_seen(comp, seen.clone());
                    let op = self.splits.get_mut(&parent).expect("still present");
                    op.pending.remove(&cid);
                    if op.pending.is_empty() {
                        let op = self.splits.remove(&parent).expect("present");
                        self.finish_split(ctx, parent.clone(), op.started_at);
                        break;
                    }
                } else {
                    // Re-send; the receiver installs if absent and acks
                    // either way, so a duplicate is harmless.
                    ctx.send(
                        ProcessId(host.0),
                        Msg::Install { comp, seen: seen.clone() },
                    );
                }
            }
        }
    }

    /// Re-drives stalled merges: children migrate under churn, so a
    /// FreezeCollect can land on a node that no longer (or does not
    /// yet) host the child. Re-request every still-missing child;
    /// merges that stall for many rounds are aborted — a genuinely
    /// merged-away ("zombie") obligation is then dropped, while a
    /// real one is retried from scratch with fresh topology.
    fn redrive_merges(&mut self, ctx: &mut Context<'_, Msg>) {
        let in_progress: Vec<ComponentId> = self
            .merges
            .iter()
            .filter(|(_, op)| !op.awaiting_install)
            .map(|(id, _)| id.clone())
            .collect();
        for parent in in_progress {
            let (missing, progressed): (Vec<ComponentId>, bool) = {
                let op = self.merges.get_mut(&parent).expect("listed above");
                let missing: Vec<ComponentId> = op
                    .collected
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| c.is_none())
                    .map(|(i, _)| parent.child(i as u8))
                    .collect();
                if missing.is_empty() {
                    continue;
                }
                op.stalled_rounds += 1;
                (missing, op.stalled_rounds <= 8)
            };
            if progressed {
                for child in missing {
                    self.collect_child(ctx, &child, &parent);
                }
            } else {
                let collected_any = self
                    .merges
                    .get(&parent)
                    .map(|op| op.collected.iter().any(Option::is_some))
                    .unwrap_or(false);
                self.abort_merge(ctx, &parent);
                if !collected_any {
                    // No child was ever found: the obligation is stale
                    // (the merge happened elsewhere). Correctness does
                    // not depend on the entry — worst case the network
                    // stays finer than ideal.
                    self.split_list.remove(&parent);
                }
            }
        }
    }

    /// Hands every unfrozen component whose view-owner is not this
    /// node to that owner. The component is retained in `migrating`
    /// until acked, so a crash of the target cannot lose it. This is
    /// the in-protocol replacement for the old harness
    /// `migrate_components` sweep: it runs on every level tick and
    /// after every view change.
    fn migration_sweep(&mut self, ctx: &mut Context<'_, Msg>) {
        if self.view_ring.is_empty() {
            return; // no live peer to shed to; keep the state
        }
        let ids: Vec<ComponentId> = self
            .components
            .iter()
            .filter(|(_, h)| !h.frozen)
            .map(|(id, _)| id.clone())
            .collect();
        for id in ids {
            let owner = self.owner_of(&id);
            if owner == self.node && !self.departed {
                continue;
            }
            if ProcessId(owner.0) == ctx.self_id() {
                continue; // excommunicated with nowhere else to go
            }
            if self.migrating.contains_key(&id) {
                continue; // already in flight; the retry timer re-sends
            }
            let Some((comp, buffer, seen)) = self.take_component(&id) else { continue };
            {
                let w = self.world.borrow();
                w.metrics.migrations.inc();
                w.metrics.registry.emit(
                    TelemetryEvent::new("dist.migrate")
                        .at(ctx.now())
                        .node(owner.0)
                        .component(id.to_string())
                        .with("from", self.node.0),
                );
                if w.tracer.is_enabled() {
                    w.tracer.record(
                        Span::new("net.migrate", SYSTEM_TRACE)
                            .at(ctx.now())
                            .node(owner.0)
                            .with("from", self.node.0)
                            .with("level", id.level() as u64),
                    );
                }
            }
            self.migrating.insert(
                id,
                MigratingComponent {
                    comp: comp.clone(),
                    seen: seen.clone(),
                    buffer: buffer.clone(),
                    sent_at: ctx.now(),
                },
            );
            ctx.send(ProcessId(owner.0), Msg::Migrate { comp, seen, buffer });
            self.arm_retry(ctx);
        }
    }

    /// The failure-detector tick: monitor the view predecessor, ping
    /// it when silent for a lease period, suspect it after
    /// [`FD_STRIKE_LIMIT`] consecutive silent ticks. Any received
    /// message counts as a heartbeat (`last_heard`), so explicit pings
    /// only flow when the link is otherwise idle.
    fn fd_tick(&mut self, ctx: &mut Context<'_, Msg>) {
        let period = self.level_period;
        self.redrive_rescue(ctx);
        if self.departed || !self.view_live(self.node) {
            // Ghosts keep the lease timer only while they still have
            // cleanup (a rescue they coordinate) to finish.
            if self.rescue.is_some() {
                ctx.set_timer(period, TIMER_FD);
            }
            return;
        }
        let pred = self.view_ring.predecessor(self.node);
        if pred != self.node {
            if self.fd_target != Some(pred) {
                self.fd_target = Some(pred);
                self.fd_strikes = 0;
            }
            let now = ctx.now();
            let fresh = self
                .last_heard
                .get(&pred)
                .is_some_and(|&t| now.saturating_sub(t) < period);
            if fresh {
                self.fd_strikes = 0;
            } else {
                self.fd_strikes += 1;
                if self.fd_strikes >= FD_STRIKE_LIMIT {
                    self.fd_strikes = 0;
                    self.suspect(ctx, pred);
                } else {
                    self.world.borrow().metrics.fd_pings.inc();
                    ctx.send(ProcessId(pred.0), Msg::Ping);
                }
            }
        }
        ctx.set_timer(period, TIMER_FD);
    }

    /// Declares `dead` crashed: tombstone it, gossip the new view, and
    /// coordinate a rescue sweep. Only the suspector coordinates —
    /// every node monitors exactly its predecessor, so each crash has
    /// exactly one rescue coordinator (its successor at detection
    /// time); if that coordinator dies mid-sweep, *its* suspector's
    /// sweep re-covers everything, because sweeps are global.
    fn suspect(&mut self, ctx: &mut Context<'_, Msg>, dead: NodeId) {
        if self.view_dead.contains(&dead) {
            return;
        }
        self.view_known.insert(dead);
        self.view_dead.insert(dead);
        self.rebuild_view_ring();
        self.world.borrow_mut().note_detection(dead, ctx.now());
        {
            let w = self.world.borrow();
            if w.tracer.is_enabled() {
                w.tracer.record(
                    Span::new("fd.suspect", SYSTEM_TRACE)
                        .at(ctx.now())
                        .node(self.node.0)
                        .with("dead", dead.0)
                        .with("epoch", self.view_epoch()),
                );
            }
        }
        self.broadcast_view(ctx);
        self.after_view_change(ctx);
        self.start_rescue_sweep(ctx);
    }

    /// Reacts to an adopted view change: self-excommunication check,
    /// orphaned-merge nudges, and an ownership sweep.
    fn after_view_change(&mut self, ctx: &mut Context<'_, Msg>) {
        if self.view_dead.contains(&self.node) && !self.departed {
            // We were (falsely or not) declared dead: stop claiming
            // ownership and shed state like a graceful leaver, so the
            // network converges to a single host per component.
            self.departed = true;
            self.rebuild_view_ring();
        }
        // Components frozen for a coordinator that is now tombstoned:
        // the merge will never complete. Nudge the parent's current
        // owner to adopt (or disown) the obligation.
        let orphans: Vec<(ComponentId, ComponentId)> = self
            .components
            .iter()
            .filter_map(|(id, h)| match h.frozen_by {
                Some(pid) if self.view_dead.contains(&NodeId(pid.0)) => {
                    id.parent().map(|p| (id.clone(), p))
                }
                _ => None,
            })
            .collect();
        for (child, parent) in orphans {
            let owner = self.owner_of(&parent);
            if ProcessId(owner.0) == ctx.self_id() {
                self.adopt_merge_orphan(ctx, None, child, parent);
            } else {
                ctx.send(ProcessId(owner.0), Msg::MergeOrphan { child, parent });
            }
        }
        self.migration_sweep(ctx);
    }

    /// Handles a [`Msg::MergeOrphan`] nudge as the parent's hash owner
    /// (`reporter` is `None` when the orphaned child is local).
    fn adopt_merge_orphan(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        reporter: Option<ProcessId>,
        child: ComponentId,
        parent: ComponentId,
    ) {
        if let Some(h) = self.components.get(&parent) {
            if !h.frozen {
                // The parent is already live (the dead coordinator got
                // its install out before crashing): the frozen child is
                // a leftover duplicate of a region the parent covers.
                match reporter {
                    Some(pid) => ctx.send(pid, Msg::RemoveFrozen { id: child }),
                    None => self.remove_frozen(ctx, &child),
                }
            }
            return;
        }
        self.split_list.insert(parent.clone());
        if !self.merges.contains_key(&parent) {
            self.start_merge(ctx, &parent, None);
        }
        if let Some(pid) = reporter {
            // The orphaned child lives on the reporter (typically a
            // ghost), not at its hash owner — collect it directly so
            // the merge does not stall probing an owner that has
            // nothing. `FreezeCollect` re-homes `frozen_by` to us.
            ctx.send(pid, Msg::FreezeCollect { id: child, parent });
        }
    }

    /// Everything this node *covers* for a rescue sweep: hosted
    /// components plus invisible in-flight obligations (split children
    /// whose installs are pending, merge parents awaiting install,
    /// rescue installs in flight, migrating hand-offs) — so a
    /// concurrent sweep never installs a duplicate over them.
    fn covered_report(&self) -> Vec<(ComponentId, bool)> {
        let mut covered: Vec<(ComponentId, bool)> = self
            .components
            .iter()
            .map(|(id, h)| (id.clone(), h.frozen))
            .collect();
        for op in self.splits.values() {
            covered.extend(op.pending.keys().map(|id| (id.clone(), false)));
        }
        for (parent, op) in &self.merges {
            if op.awaiting_install {
                covered.push((parent.clone(), false));
            }
        }
        if let Some(op) = &self.rescue {
            covered.extend(op.installs.keys().map(|id| (id.clone(), false)));
        }
        covered.extend(self.migrating.keys().map(|id| (id.clone(), false)));
        covered
    }

    /// Whether accepting a *fresh* copy of `id` would double-cover a
    /// region this node already covers through something else: an
    /// unfrozen resident, a pending split-child install, an in-flight
    /// hand-off, or an active split of `id` itself. A positive answer
    /// means the incoming copy is a stale duplicate of an obligation
    /// already discharged (install/migrate retransmits race their
    /// acks), and installing it would resurrect a component on top of
    /// its own live descendants — an invalid cut. Frozen residents are
    /// deliberately ignored: a merge-parent install legitimately lands
    /// on a node still holding children it froze for that very merge.
    fn accepting_would_double_cover(&self, id: &ComponentId) -> bool {
        let hit = self.splits.contains_key(id)
            || self
                .components
                .iter()
                .filter(|(_, h)| !h.frozen)
                .map(|(c, _)| c)
                .chain(self.splits.values().flat_map(|op| op.pending.keys()))
                .chain(self.migrating.keys())
                .any(|c| c != id && (c.is_ancestor_of(id) || id.is_ancestor_of(c)));
        hit
    }

    /// Starts (or queues) a global rescue sweep: collect every peer's
    /// covered slice, then re-cover the holes.
    fn start_rescue_sweep(&mut self, ctx: &mut Context<'_, Msg>) {
        if self.rescue.is_some() {
            self.rescue_again = true;
            return;
        }
        let peers: BTreeSet<NodeId> =
            self.view_ring.nodes().filter(|&n| n != self.node).collect();
        let mut op = RescueOp {
            started_at: ctx.now(),
            pending: peers.clone(),
            covered: BTreeMap::new(),
            installs: BTreeMap::new(),
            stalled_rounds: 0,
        };
        for (id, frozen) in self.covered_report() {
            op.covered.insert(id, (self.node, frozen));
        }
        self.rescue = Some(op);
        {
            let w = self.world.borrow();
            w.metrics.rescue_sweeps.inc();
            w.metrics.registry.emit(
                TelemetryEvent::new("rescue.begin").at(ctx.now()).node(self.node.0),
            );
            if w.tracer.is_enabled() {
                w.tracer.record(
                    Span::new("rescue.begin", SYSTEM_TRACE)
                        .at(ctx.now())
                        .node(self.node.0)
                        .with("peers", peers.len() as u64),
                );
            }
        }
        // Make sure the sweep gets re-driven even if this node's FD
        // lease timer is the only thing keeping time.
        ctx.set_timer(self.level_period, TIMER_FD);
        if peers.is_empty() {
            self.finalize_rescue(ctx);
        } else {
            for p in peers {
                ctx.send(ProcessId(p.0), Msg::RescueQuery);
            }
        }
    }

    /// Records a peer's covered slice; finalizes once all have
    /// reported.
    fn on_rescue_report(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        from: ProcessId,
        covered: Vec<(ComponentId, bool)>,
    ) {
        let reporter = NodeId(from.0);
        let done = {
            let Some(op) = &mut self.rescue else { return };
            if !op.pending.remove(&reporter) {
                return; // stale or duplicate report
            }
            for (id, frozen) in covered {
                op.covered.insert(id, (reporter, frozen));
            }
            op.stalled_rounds = 0;
            op.pending.is_empty()
        };
        if done {
            self.finalize_rescue(ctx);
        }
    }

    /// All reports in: discard leftover duplicates, walk the tree for
    /// uncovered maximal subtrees, and install fresh replacements at
    /// their view-owners. Lost token history is gone by definition —
    /// the bounded step-deviation after crashes is what the crash
    /// experiments measure.
    fn finalize_rescue(&mut self, ctx: &mut Context<'_, Msg>) {
        let Some(mut op) = self.rescue.take() else { return };
        // The sweep's self-coverage was snapshotted when it started;
        // components can land here while reports are in flight
        // (migration shed from a departing peer, split-child installs).
        // Refresh local coverage so the walk below doesn't resurrect an
        // ancestor of something we now host.
        for (id, h) in &self.components {
            op.covered.insert(id.clone(), (self.node, h.frozen));
        }
        for id in self
            .splits
            .values()
            .flat_map(|s| s.pending.keys())
            .chain(self.migrating.keys())
        {
            op.covered.insert(id.clone(), (self.node, false));
        }
        // A *frozen* covered id under a *live* covered proper ancestor
        // is a merge leftover (the coordinator died between installing
        // the parent and dismissing the children): drop it. Split
        // children under their frozen parent are live, so they are
        // never discarded; the frozen split parent itself has no
        // covered ancestor.
        let discards: Vec<(ComponentId, NodeId)> = op
            .covered
            .iter()
            .filter(|(id, (_, frozen))| {
                *frozen
                    && id.ancestors().any(|a| {
                        op.covered.get(&a).is_some_and(|(_, afrozen)| !afrozen)
                    })
            })
            .map(|(id, (reporter, _))| (id.clone(), *reporter))
            .collect();
        for (id, reporter) in discards {
            self.world.borrow().metrics.rescue_discards.inc();
            if reporter == self.node {
                self.remove_frozen(ctx, &id);
            } else {
                ctx.send(ProcessId(reporter.0), Msg::RemoveFrozen { id });
            }
        }
        // Uncovered maximal subtrees (same walk the old harness
        // `repair` did, but over the *reported* cut).
        let tree = self.world.borrow().tree;
        let mut to_install: Vec<ComponentId> = Vec::new();
        let mut stack = vec![ComponentId::root()];
        while let Some(id) = stack.pop() {
            if op.covered.contains_key(&id)
                || id.ancestors().any(|a| op.covered.contains_key(&a))
            {
                continue;
            }
            let covered_below = op.covered.keys().any(|l| id.is_ancestor_of(l));
            if !covered_below {
                to_install.push(id);
                continue;
            }
            let info = tree.info(&id).expect("valid node");
            for c in 0..info.child_count() as u8 {
                stack.push(id.child(c));
            }
        }
        for id in to_install {
            let owner = self.owner_of(&id);
            {
                let w = self.world.borrow();
                w.metrics.rescue_installs.inc();
                w.metrics.registry.emit(
                    TelemetryEvent::new("rescue.install")
                        .at(ctx.now())
                        .node(owner.0)
                        .component(id.to_string()),
                );
                if w.tracer.is_enabled() {
                    w.tracer.record(
                        Span::new("rescue.install", SYSTEM_TRACE)
                            .at(ctx.now())
                            .node(owner.0)
                            .with("level", id.level() as u64),
                    );
                }
            }
            if ProcessId(owner.0) == ctx.self_id() && !self.departed {
                self.install_component(Component::new(&tree, &id));
            } else {
                op.installs.insert(id.clone(), owner);
                ctx.send(
                    ProcessId(owner.0),
                    Msg::RescueInstall { comp: Component::new(&tree, &id) },
                );
            }
        }
        if op.installs.is_empty() {
            self.rescue_done(ctx, op.started_at);
        } else {
            self.rescue = Some(op);
        }
    }

    /// The sweep is complete (all replacement installs acked).
    fn rescue_done(&mut self, ctx: &mut Context<'_, Msg>, started_at: u64) {
        {
            let w = self.world.borrow();
            let duration = ctx.now().saturating_sub(started_at);
            w.metrics.rescue_duration.record(duration);
            w.metrics.registry.emit(
                TelemetryEvent::new("rescue.end")
                    .at(ctx.now())
                    .node(self.node.0)
                    .with("duration", duration),
            );
            if w.tracer.is_enabled() {
                w.tracer.record(
                    Span::new("rescue.end", SYSTEM_TRACE)
                        .between(started_at, ctx.now())
                        .node(self.node.0),
                );
            }
        }
        if self.rescue_again {
            self.rescue_again = false;
            self.start_rescue_sweep(ctx);
        }
    }

    /// Re-drives a stalled rescue sweep from the FD tick: prune
    /// reporters that died since, re-query the stragglers, and re-send
    /// pending installs to their *current* view-owners.
    fn redrive_rescue(&mut self, ctx: &mut Context<'_, Msg>) {
        let (requery, reinstall, finalize) = {
            let dead = self.view_dead.clone();
            let Some(op) = &mut self.rescue else { return };
            op.stalled_rounds += 1;
            if op.stalled_rounds <= 2 {
                return;
            }
            op.stalled_rounds = 0;
            op.pending.retain(|n| !dead.contains(n));
            let requery: Vec<NodeId> = op.pending.iter().copied().collect();
            let reinstall: Vec<ComponentId> = if requery.is_empty() {
                op.installs.keys().cloned().collect()
            } else {
                Vec::new()
            };
            (requery, reinstall, op.pending.is_empty() && op.installs.is_empty())
        };
        if finalize {
            self.finalize_rescue(ctx);
            return;
        }
        for p in requery {
            ctx.send(ProcessId(p.0), Msg::RescueQuery);
        }
        let tree = self.world.borrow().tree;
        for id in reinstall {
            let owner = self.owner_of(&id);
            if ProcessId(owner.0) == ctx.self_id() && !self.departed {
                // The install was computed at finalize time; state may
                // have moved since (a migration landed, a split
                // started). Same refusal the remote handler applies.
                if !self.accepting_would_double_cover(&id) {
                    self.install_component(Component::new(&tree, &id));
                }
                if let Some(op) = &mut self.rescue {
                    op.installs.remove(&id);
                    if op.pending.is_empty() && op.installs.is_empty() {
                        let started_at = op.started_at;
                        self.rescue = None;
                        self.rescue_done(ctx, started_at);
                    }
                }
            } else {
                if let Some(op) = &mut self.rescue {
                    op.installs.insert(id.clone(), owner);
                }
                ctx.send(
                    ProcessId(owner.0),
                    Msg::RescueInstall { comp: Component::new(&tree, &id) },
                );
            }
        }
    }
}

impl Process<Msg> for NodeProc {
    fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: ProcessId, msg: Msg) {
        // Every protocol message doubles as a heartbeat: the failure
        // detector only sends explicit pings over otherwise-idle links.
        if from != ProcessId::EXTERNAL && from != COLLECTOR && from != ctx.self_id() {
            self.last_heard.insert(NodeId(from.0), ctx.now());
        }
        match msg {
            Msg::ClientInject { wire } => {
                let (tree, style) = {
                    let w = self.world.borrow();
                    (w.tree, w.style)
                };
                let addr = network_input_address(&tree, wire, style);
                let now = ctx.now();
                let token = self.world.borrow_mut().fresh_token_id();
                {
                    let w = self.world.borrow();
                    if w.tracer.should_sample(token) {
                        w.tracer.open_trace(token, now);
                        w.tracer.record(
                            Span::new("token.inject", token)
                                .at(now)
                                .node(self.node.0)
                                .with("wire", wire as u64),
                        );
                    }
                }
                if self.departed {
                    let flight = TokenFlight { token, addr, injected_at: now, hops: 0 };
                    self.send_token(ctx, None, flight, ATTEMPT_CACHED);
                } else {
                    self.route_token(ctx, token, addr, now, 0);
                }
            }
            Msg::Token { guid, token, addr, injected_at, attempt, hops } => {
                let dedup = !self.world.borrow().mutation_no_ack_dedup;
                let tracer = self.world.borrow().tracer.clone();
                let traced = tracer.should_sample(token);
                if dedup && self.seen.contains(&guid) {
                    // Duplicate (retransmission raced the ack): already
                    // accepted; just re-acknowledge.
                    if traced {
                        tracer.record(
                            Span::new("token.dup_recv", token)
                                .at(ctx.now())
                                .node(self.node.0)
                                .with("guid", guid),
                        );
                    }
                    ctx.send(from, Msg::TokenAck { guid });
                } else if self.departed || self.hosted_candidate(&addr).is_none() {
                    {
                        let mut w = self.world.borrow_mut();
                        w.token_nacks += 1;
                        w.metrics.nacks.inc();
                    }
                    if traced {
                        tracer.record(
                            Span::new("token.nack", token)
                                .at(ctx.now())
                                .node(self.node.0)
                                .with("guid", guid),
                        );
                    }
                    if from == ProcessId::EXTERNAL {
                        // Re-injected buffer token with no live sender:
                        // adopt the obligation ourselves.
                        let flight = TokenFlight { token, addr, injected_at, hops };
                        self.send_token(ctx, Some(guid), flight, attempt);
                    } else {
                        ctx.send(from, Msg::TokenNack { guid, token, addr, injected_at, attempt });
                    }
                } else if from != ProcessId::EXTERNAL
                    && self
                        .hosted_candidate(&addr)
                        .and_then(|id| self.components.get(&id))
                        .is_some_and(|h| {
                            h.frozen && h.buffer.len() >= self.frozen_buffer_cap
                        })
                {
                    // Backpressure: the owning component is frozen and
                    // its buffer is at capacity. Shed the token back to
                    // the sender instead of queueing unboundedly — the
                    // sender keeps the obligation, escalates its
                    // backoff, and retries after the freeze drains.
                    self.world.borrow().metrics.busy_sheds.inc();
                    if traced {
                        tracer.record(
                            Span::new("token.busy", token)
                                .at(ctx.now())
                                .node(self.node.0)
                                .with("guid", guid),
                        );
                    }
                    ctx.send(from, Msg::TokenBusy { guid });
                } else {
                    self.seen.insert(guid);
                    if traced {
                        tracer.record(
                            Span::new("token.deliver", token)
                                .at(ctx.now())
                                .node(self.node.0)
                                .with("from", from.0)
                                .with("guid", guid)
                                .with("hops", hops + 1),
                        );
                    }
                    ctx.send(from, Msg::TokenAck { guid });
                    // Accepting the forward counts as one routing hop.
                    self.route_token(ctx, token, addr, injected_at, hops + 1);
                }
            }
            Msg::TokenAck { guid } => {
                if self.unacked.remove(&guid).is_some() {
                    self.reset_backoff();
                }
            }
            Msg::TokenNack { guid, token, addr, injected_at, attempt } => {
                let Some(t) = self.unacked.remove(&guid) else {
                    // Stale NACK for an obligation already satisfied
                    // through a different path.
                    return;
                };
                let next = if attempt == ATTEMPT_CACHED { 0 } else { attempt + 1 };
                let flight = TokenFlight { token, addr, injected_at, hops: t.hops };
                self.send_token(ctx, Some(guid), flight, next);
            }
            Msg::Install { comp, seen } => {
                // Install-if-absent: a crash re-drive can duplicate an
                // Install whose original (and its ack) were merely
                // slow. The resident copy may already have processed
                // tokens, so it must not be clobbered; likewise a
                // stale duplicate must not resurrect a region we since
                // split or re-covered. Ack either way — the sender's
                // obligation is discharged by the region being
                // covered, not by this exact copy landing.
                let id = comp.id().clone();
                if !self.components.contains_key(&id)
                    && !self.accepting_would_double_cover(&id)
                {
                    self.install_component_with_seen(comp, seen);
                }
                ctx.send(from, Msg::InstallAck { id });
            }
            Msg::InstallAck { id } => {
                // Split-child ack?
                if let Some(parent) = id.parent() {
                    if let Some(op) = self.splits.get_mut(&parent) {
                        op.pending.remove(&id);
                        if op.pending.is_empty() {
                            let op = self.splits.remove(&parent).expect("present");
                            self.finish_split(ctx, parent, op.started_at);
                        }
                        return;
                    }
                }
                // Merge-parent ack?
                if self.merges.get(&id).map(|op| op.awaiting_install).unwrap_or(false) {
                    let started_at = self.cleanup_merge(ctx, &id);
                    self.split_list.remove(&id);
                    self.note_merge_done(ctx, &id, started_at);
                }
            }
            Msg::FreezeCollect { id, parent } => {
                if self.components.contains_key(&id) && !self.splits.contains_key(&id) {
                    let hosted = self.components.get_mut(&id).expect("hosted");
                    hosted.frozen = true;
                    // Remember who froze us: if the coordinator crashes
                    // before the merge completes, the tombstone adoption
                    // nudges the parent's new owner to take over.
                    hosted.frozen_by = (from != ctx.self_id()).then_some(from);
                    let comp = hosted.comp.clone();
                    let seen = hosted.seen.clone();
                    ctx.send(from, Msg::CollectReply { comp, seen, parent });
                } else if self.split_list.contains(&id) {
                    if let Some(op) = self.merges.get_mut(&id) {
                        op.requester = Some((from, parent));
                    } else {
                        self.start_merge(ctx, &id, Some((from, parent)));
                    }
                } else {
                    ctx.send(from, Msg::CollectMissing { id, parent });
                }
            }
            Msg::CollectReply { comp, seen, parent } => {
                self.record_collect(ctx, comp, seen, &parent, from);
            }
            Msg::CollectMissing { id, parent } => {
                // Transient window (split in progress / migration):
                // retry after a delay.
                self.stuck_collects.push((id, parent));
                self.arm_retry(ctx);
            }
            Msg::RemoveFrozen { id } => {
                self.remove_frozen(ctx, &id);
            }
            Msg::AbortFreeze { id } => {
                self.release_frozen(ctx, &id);
            }
            Msg::Ping => {
                ctx.send(from, Msg::Pong);
            }
            Msg::Pong => {
                // The heartbeat refresh at the top of `on_message`
                // already cleared the strike window.
            }
            Msg::ViewGossip { known, dead } => {
                if self.merge_view(&known, &dead) {
                    self.broadcast_view(ctx);
                    self.after_view_change(ctx);
                }
            }
            Msg::RescueQuery => {
                let covered = self.covered_report();
                ctx.send(from, Msg::RescueReport { covered });
            }
            Msg::RescueReport { covered } => {
                self.on_rescue_report(ctx, from, covered);
            }
            Msg::RescueInstall { comp } => {
                // Silence (no ack) when we cannot host: the
                // coordinator's re-drive resolves the current owner.
                if self.departed || !self.view_live(self.node) {
                    return;
                }
                let id = comp.id().clone();
                if !self.components.contains_key(&id)
                    && !self.accepting_would_double_cover(&id)
                {
                    self.install_component(comp);
                }
                ctx.send(from, Msg::RescueAck { id });
            }
            Msg::RescueAck { id } => {
                let done = {
                    let Some(op) = &mut self.rescue else { return };
                    op.installs.remove(&id);
                    op.stalled_rounds = 0;
                    op.pending.is_empty() && op.installs.is_empty()
                };
                if done {
                    let started_at = self.rescue.take().expect("checked above").started_at;
                    self.rescue_done(ctx, started_at);
                }
            }
            Msg::TokenBusy { guid } => {
                // The receiver shed our token under backpressure: the
                // obligation stays ours. Make it immediately eligible
                // for the next retry pass and widen the retry interval.
                if let Some(t) = self.unacked.get_mut(&guid) {
                    t.sent_at = ctx.now().saturating_sub(self.level_period);
                    self.escalate_backoff();
                    self.arm_retry(ctx);
                }
            }
            Msg::Migrate { comp, seen, buffer } => {
                if self.departed || !self.view_live(self.node) {
                    // Cannot adopt: stay silent so the sender's retry
                    // re-resolves ownership against a fresher view.
                    return;
                }
                let id = comp.id().clone();
                match self.components.get_mut(&id) {
                    Some(h) => {
                        // Double cover: a rescue installed a fresh
                        // replacement while the authentic copy was in
                        // flight. Keep the resident, union the ledgers
                        // (so delayed duplicates still drop), and
                        // re-route the travelling buffer.
                        h.seen.extend(seen);
                    }
                    None => {
                        // A retransmitted hand-off can race its own
                        // ack: if we accepted the first copy and have
                        // since split (or re-shed) the component, the
                        // region is already covered and this copy is
                        // stale — ack so the sender drops the
                        // obligation, but do not resurrect it.
                        if !self.accepting_would_double_cover(&id) {
                            self.install_component_with_seen(comp, seen);
                        }
                    }
                }
                ctx.send(from, Msg::MigrateAck { id });
                for (token, addr, injected_at, hops) in buffer {
                    self.route_token(ctx, token, addr, injected_at, hops);
                }
            }
            Msg::MigrateAck { id } => {
                if self.migrating.remove(&id).is_some() {
                    self.reset_backoff();
                }
            }
            Msg::MergeOrphan { child, parent } => {
                self.adopt_merge_orphan(ctx, Some(from), child, parent);
            }
            Msg::SplitListHandoff { entries } => {
                self.split_list.extend(entries);
            }
            Msg::Exit { .. } => {
                debug_assert!(false, "Exit delivered to a node");
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, tag: u64) {
        match tag {
            TIMER_LEVEL => self.level_tick(ctx),
            TIMER_FD => self.fd_tick(ctx),
            TIMER_RETRY => {
                self.retry_armed = false;
                // Retransmit every token obligation that has been silent
                // for longer than the retry interval (lost message, or
                // an exhausted probe chain waiting out a reconfiguration
                // window). The interval far exceeds the simulated RTT,
                // so a retransmission never races a still-pending ack.
                let timeout = self.level_period / 4;
                let now = ctx.now();
                let stale: Vec<u64> = self
                    .unacked
                    .iter()
                    .filter(|(_, t)| now.saturating_sub(t.sent_at) >= timeout)
                    .map(|(&g, _)| g)
                    .collect();
                if !stale.is_empty() {
                    // A full interval elapsed without an ack: widen the
                    // next one (reset happens on the first ack).
                    self.escalate_backoff();
                }
                for guid in stale {
                    let t = self.unacked.remove(&guid).expect("listed above");
                    {
                        let mut w = self.world.borrow_mut();
                        w.token_retransmits += 1;
                        w.metrics.retransmits.inc();
                        if w.tracer.should_sample(t.token) {
                            w.tracer.record(
                                Span::new("token.retry", t.token)
                                    .at(now)
                                    .node(self.node.0)
                                    .with("guid", guid)
                                    .with("silent_for", now.saturating_sub(t.sent_at)),
                            );
                        }
                    }
                    if self.departed {
                        let flight = TokenFlight {
                            token: t.token,
                            addr: t.addr,
                            injected_at: t.injected_at,
                            hops: t.hops,
                        };
                        self.send_token(ctx, Some(guid), flight, ATTEMPT_CACHED);
                    } else {
                        // Re-route: we may host the owner by now. The
                        // timed-out send may *still* arrive (silence is
                        // not loss), so the stable `t.token` identity
                        // travels with both copies and the collector
                        // counts it once.
                        self.route_token_with_guid(
                            ctx,
                            guid,
                            t.token,
                            t.addr,
                            t.injected_at,
                            t.hops,
                        );
                    }
                }
                let collects = std::mem::take(&mut self.stuck_collects);
                for (child, parent) in collects {
                    if self.merges.contains_key(&parent) {
                        self.collect_child(ctx, &child, &parent);
                    }
                }
                // Unacked migrations: the target may have crashed
                // before acking. Re-resolve against the current view —
                // ownership may even have swung back to us.
                let stale_migrations: Vec<ComponentId> = self
                    .migrating
                    .iter()
                    .filter(|(_, m)| now.saturating_sub(m.sent_at) >= timeout)
                    .map(|(id, _)| id.clone())
                    .collect();
                for id in stale_migrations {
                    let owner = self.owner_of(&id);
                    if ProcessId(owner.0) == ctx.self_id() {
                        if self.departed || !self.view_live(self.node) {
                            continue; // nowhere to shed to yet; keep holding
                        }
                        let m = self.migrating.remove(&id).expect("listed above");
                        self.install_component_with_seen(m.comp, m.seen);
                        for (token, addr, injected_at, hops) in m.buffer {
                            self.route_token(ctx, token, addr, injected_at, hops);
                        }
                    } else {
                        let m = self.migrating.get_mut(&id).expect("listed above");
                        m.sent_at = now;
                        let (comp, seen, buffer) =
                            (m.comp.clone(), m.seen.clone(), m.buffer.clone());
                        ctx.send(ProcessId(owner.0), Msg::Migrate { comp, seen, buffer });
                    }
                }
                if !self.unacked.is_empty()
                    || !self.stuck_collects.is_empty()
                    || !self.migrating.is_empty()
                {
                    self.arm_retry(ctx);
                }
            }
            tag if tag & TIMER_FORCE_SPLIT_BASE != 0 => {
                let id = ComponentId::from_u64(tag & FORCE_TAG_ID_MASK);
                let splittable = self
                    .components
                    .get(&id)
                    .map(|h| !h.frozen && h.comp.width() >= 4)
                    .unwrap_or(false);
                if splittable && !self.splits.contains_key(&id) && !self.departed {
                    self.start_split(ctx, &id);
                }
            }
            tag if tag & TIMER_FORCE_MERGE_BASE != 0 => {
                let id = ComponentId::from_u64(tag & FORCE_TAG_ID_MASK);
                if self.split_list.contains(&id)
                    && !self.merges.contains_key(&id)
                    && !self.departed
                {
                    self.start_merge(ctx, &id, None);
                }
            }
            _ => {}
        }
    }
}

/// The measurement endpoint: records every exited token — **at most
/// once per end-to-end token identity**.
///
/// The per-receiver GUID dedup in the token handler only suppresses a
/// retransmission that lands on the *same* node as the original send.
/// After a reconfiguration, a timed-out obligation may be re-routed
/// along a different path while the original (merely delayed, not
/// lost) copy is still in flight to the old destination; the two
/// copies then reach *different* receivers and both are accepted. The
/// schedule explorer found exactly this interleaving (a retry timer
/// preempting a pending delivery), so exactly-once counting is
/// enforced end to end here, where every copy of a token converges.
#[derive(Debug, Default)]
pub struct Collector {
    /// Exits per output wire.
    pub counts: Vec<u64>,
    /// Total latency (exit time - inject time) across tokens.
    pub total_latency: u64,
    /// Maximum single-token latency.
    pub max_latency: u64,
    /// Duplicate exits suppressed (same token identity seen twice: a
    /// re-routed retransmission raced the delayed original).
    pub duplicate_drops: u64,
    /// End-to-end token identities already counted.
    seen: BTreeSet<u64>,
    /// Test-only mutation switch mirroring
    /// [`World::test_disable_ack_dedup`]: skip the end-to-end dedup so
    /// the model checker can prove it would catch its removal.
    mutation_no_dedup: bool,
    /// Telemetry: end-to-end token latency distribution.
    latency_hist: Histogram,
    /// Telemetry: tokens collected.
    exits: Counter,
    /// Telemetry: mirrors `duplicate_drops`.
    dup_drops: Counter,
    /// Tracing: closes each token's trace on its first (counted) exit.
    tracer: Tracer,
}

impl Collector {
    /// A collector for a width-`w` network.
    #[must_use]
    pub fn new(w: usize) -> Self {
        Collector {
            counts: vec![0; w],
            total_latency: 0,
            max_latency: 0,
            duplicate_drops: 0,
            seen: BTreeSet::new(),
            mutation_no_dedup: false,
            latency_hist: Histogram::default(),
            exits: Counter::default(),
            dup_drops: Counter::default(),
            tracer: Tracer::disabled(),
        }
    }

    /// Routes the collector's measurements into `registry`
    /// (`acn.dist.token_latency` histogram, `acn.dist.exits` and
    /// `acn.dist.duplicate_exit_drops` counters).
    pub fn attach_telemetry(&mut self, registry: &Registry) {
        self.latency_hist = registry.histogram("acn.dist.token_latency");
        self.exits = registry.counter("acn.dist.exits");
        self.dup_drops = registry.counter("acn.dist.duplicate_exit_drops");
    }

    /// Total tokens collected.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

impl Process<Msg> for Collector {
    fn on_message(&mut self, ctx: &mut Context<'_, Msg>, _from: ProcessId, msg: Msg) {
        if let Msg::Exit { wire, token, injected_at, hops: _ } = msg {
            if !self.mutation_no_dedup && !self.seen.insert(token) {
                // Second exit of the same injected token: a re-routed
                // retransmission raced the delayed original. Count once.
                self.duplicate_drops += 1;
                self.dup_drops.inc();
                if self.tracer.should_sample(token) {
                    self.tracer.record(
                        Span::new("token.dup_exit", token)
                            .at(ctx.now())
                            .with("wire", wire as u64),
                    );
                }
                return;
            }
            self.counts[wire] += 1;
            let latency = ctx.now().saturating_sub(injected_at);
            self.total_latency += latency;
            self.max_latency = self.max_latency.max(latency);
            self.exits.inc();
            self.latency_hist.record(latency);
            if self.tracer.should_sample(token) {
                self.tracer.close_trace(token, ctx.now());
                self.tracer.record(
                    Span::new("token.count", token)
                        .at(ctx.now())
                        .with("wire", wire as u64)
                        .with("latency", latency),
                );
            }
        }
    }
}

/// Either a node or the collector — the single process type the
/// simulator hosts.
///
/// The variants differ in size (`NodeProc` is much larger than
/// `Collector`), but there is exactly one `Proc` per simulated
/// process and they live in the simulator's process map, so the
/// per-variant waste is bounded and boxing would only add an
/// indirection on every message dispatch.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum Proc {
    /// An overlay node.
    Node(NodeProc),
    /// The measurement collector.
    Collector(Collector),
}

impl Process<Msg> for Proc {
    fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: ProcessId, msg: Msg) {
        match self {
            Proc::Node(n) => n.on_message(ctx, from, msg),
            Proc::Collector(c) => c.on_message(ctx, from, msg),
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, tag: u64) {
        match self {
            Proc::Node(n) => n.on_timer(ctx, tag),
            Proc::Collector(c) => c.on_timer(ctx, tag),
        }
    }
}

/// Why a [`Deployment::crash_node`] request was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashError {
    /// The target is the only live node: crashing it would leave no
    /// suspector and no rescue target, so the deployment could never
    /// recover. Chaos harnesses skip the action instead of aborting.
    LastLiveNode,
}

impl std::fmt::Display for CrashError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CrashError::LastLiveNode => {
                write!(f, "refusing to crash the last live node (unrecoverable)")
            }
        }
    }
}

impl std::error::Error for CrashError {}

/// A fully wired distributed deployment: simulator + world + helpers.
/// This is the harness the integration tests and experiments drive.
pub struct Deployment {
    /// The discrete-event simulator.
    pub sim: Simulator<Msg, Proc>,
    /// The shared world.
    pub world: Rc<RefCell<World>>,
    /// Period of the per-node level timers.
    pub level_period: u64,
    seed: u64,
}

impl Deployment {
    /// Boots a deployment of width `w` with `n` overlay nodes: the ring
    /// is created, every node gets a process and a level timer, the root
    /// component is installed at its hash owner, and a collector is
    /// registered.
    #[must_use]
    pub fn new(w: usize, n: usize, seed: u64) -> Self {
        Self::with_loss(w, n, seed, 0)
    }

    /// Boots a deployment whose *token* channel drops the given per-mille
    /// fraction of messages (the control plane stays reliable); the
    /// ack/retransmit/dedup layer guarantees exactly-once token delivery
    /// regardless.
    #[must_use]
    pub fn with_loss(w: usize, n: usize, seed: u64, loss_per_mille: u32) -> Self {
        Self::with_sim(
            w,
            n,
            seed,
            SimConfig { base_latency: 5, jitter: 10, loss_per_mille, seed },
            DeliveryPolicy::Seeded,
        )
    }

    /// Boots a deployment with an explicit simulator configuration and
    /// [`DeliveryPolicy`]. The distributed model checker uses this with
    /// `jitter == 0`, `loss_per_mille == 0`, and
    /// [`DeliveryPolicy::External`] so every timestamp is a
    /// deterministic function of the delivery sequence alone (losses
    /// are then modelled as explicit in-flight drop choices).
    #[must_use]
    pub fn with_sim(
        w: usize,
        n: usize,
        seed: u64,
        config: SimConfig,
        policy: DeliveryPolicy,
    ) -> Self {
        let mut ring = Ring::new();
        let mut s = seed;
        for _ in 0..n {
            ring.add_random_node(&mut s);
        }
        let world = World::new(w, ring);
        let mut sim = Simulator::with_policy(config, policy);
        let level_period = 2_000;
        let nodes: Vec<NodeId> = world.borrow().ring.nodes().collect();
        for (i, node) in nodes.iter().enumerate() {
            let mut proc = NodeProc::new(Rc::clone(&world), *node, level_period);
            // Boot membership is configuration, not failure recovery:
            // every node starts with the full initial view. Everything
            // after boot (joins, leaves, crashes) travels via
            // `ViewGossip` and the failure detector.
            proc.seed_view(nodes.iter().copied());
            sim.add_process(ProcessId(node.0), Proc::Node(proc));
            // Stagger the level timers.
            sim.set_timer_external(
                ProcessId(node.0),
                1 + (i as u64 * 37) % level_period,
                TIMER_LEVEL,
            );
            // Stagger the failure-detector lease timers on a different
            // phase so fd and level ticks interleave.
            sim.set_timer_external(
                ProcessId(node.0),
                level_period / 2 + (i as u64 * 53) % level_period,
                TIMER_FD,
            );
        }
        sim.add_process(COLLECTOR, Proc::Collector(Collector::new(w)));
        // Install the root component at its owner.
        let root = ComponentId::root();
        let owner = world.borrow_mut().host_of(&root);
        let tree = world.borrow().tree;
        if let Some(Proc::Node(np)) = sim.process_mut(ProcessId(owner.0)) {
            np.install_component(Component::new(&tree, &root));
        }
        Deployment { sim, world, level_period, seed: s }
    }

    /// Routes the whole deployment's telemetry into `registry`: the
    /// simulator's `acn.sim.*` metrics, the runtime's `acn.dist.*`
    /// metrics and `split.*`/`merge.*`/`dist.*` events, and the
    /// collector's token measurements.
    ///
    /// Telemetry is observation-only: an attached deployment produces
    /// bit-identical [`SimStats`](acn_simnet::SimStats), counters, and
    /// token outcomes to a detached one (pinned by the determinism
    /// regression test in the root crate).
    pub fn attach_telemetry(&mut self, registry: &Registry) {
        self.sim.attach_telemetry(registry);
        self.world.borrow_mut().metrics = DistMetrics::attach(registry);
        if let Some(Proc::Collector(c)) = self.sim.process_mut(COLLECTOR) {
            c.attach_telemetry(registry);
        }
    }

    /// Routes the whole deployment's causal spans into `tracer`: every
    /// token hop (inject, route, buffer, send, deliver, nack, retry,
    /// exit, count) plus the `net.split`/`net.merge`/`net.migrate`
    /// system spans, all timestamped with the simulator's virtual
    /// clock, and the simulator's own wire-level spans.
    ///
    /// Like [`attach_telemetry`](Self::attach_telemetry), tracing is
    /// observation-only: an attached deployment produces bit-identical
    /// outcomes to a detached one.
    pub fn attach_tracer(&mut self, tracer: &Tracer) {
        self.sim.attach_tracer(tracer);
        self.world.borrow_mut().tracer = tracer.clone();
        if let Some(Proc::Collector(c)) = self.sim.process_mut(COLLECTOR) {
            c.tracer = tracer.clone();
        }
    }

    /// Disables **both** token-dedup layers — the receiver-side GUID
    /// check and the collector's end-to-end identity check.
    ///
    /// This is a **deliberately planted bug** for mutation-testing the
    /// distributed model checker (`acn-check`): with the defenses off,
    /// a retransmission racing its own ack is counted twice and the
    /// exactly-once oracle must catch it with a replayable schedule.
    /// (Disabling only one layer is masked by the other — that is the
    /// point of defense in depth.)
    #[doc(hidden)]
    pub fn test_disable_token_dedup(&mut self) {
        self.world.borrow_mut().test_disable_ack_dedup();
        if let Some(Proc::Collector(c)) = self.sim.process_mut(COLLECTOR) {
            c.mutation_no_dedup = true;
        }
    }

    /// Sets every node's frozen-buffer capacity (tests drive the
    /// backpressure shed path with tiny caps).
    pub fn set_frozen_buffer_cap(&mut self, cap: usize) {
        let pids: Vec<ProcessId> = self.sim.process_ids().filter(|p| *p != COLLECTOR).collect();
        for pid in pids {
            if let Some(Proc::Node(np)) = self.sim.process_mut(pid) {
                np.set_frozen_buffer_cap(cap);
            }
        }
    }

    /// Injects a token on input wire `wire` via a uniformly random node.
    pub fn inject(&mut self, wire: usize) {
        let nodes: Vec<NodeId> = self.world.borrow().ring.nodes().collect();
        let pick = nodes[(acn_overlay::splitmix64(&mut self.seed) as usize) % nodes.len()];
        self.sim.send_external(ProcessId(pick.0), Msg::ClientInject { wire });
    }

    /// The collector's state.
    ///
    /// # Panics
    ///
    /// Panics if the collector process is missing.
    #[must_use]
    pub fn collector(&self) -> &Collector {
        match self.sim.process(COLLECTOR) {
            Some(Proc::Collector(c)) => c,
            _ => panic!("collector process missing"),
        }
    }

    /// Runs the simulation for `duration` time units.
    pub fn run_for(&mut self, duration: u64) {
        let deadline = self.sim.now() + duration;
        self.sim.run_until(deadline);
    }

    /// The union of live (unfrozen) components across all nodes as a
    /// [`Cut`], plus a flag telling whether any reconfiguration is still
    /// in flight.
    #[must_use]
    pub fn live_cut(&self) -> (Cut, bool) {
        let mut leaves = Vec::new();
        let mut busy = false;
        for pid in self.sim.process_ids().collect::<Vec<_>>() {
            if let Some(Proc::Node(np)) = self.sim.process(pid) {
                busy |= !np.is_quiet();
                for (id, frozen) in np.components() {
                    if frozen {
                        busy = true;
                    } else {
                        leaves.push(id.clone());
                    }
                }
            }
        }
        (Cut::from_leaves(leaves), busy)
    }

    /// Node join: adds an overlay node and process, then announces it
    /// to its ring successor via [`Msg::ViewGossip`] (Section 3.4
    /// "Node Joins"). Membership and component hand-off propagate
    /// entirely in-protocol: the successor's gossip floods the new
    /// view, and every node's next migration sweep sheds the
    /// components the newcomer now owns.
    pub fn join_node(&mut self) -> NodeId {
        let node = {
            let mut w = self.world.borrow_mut();
            w.ring.add_random_node(&mut self.seed)
        };
        let proc = NodeProc::new(Rc::clone(&self.world), node, self.level_period);
        self.sim.add_process(ProcessId(node.0), Proc::Node(proc));
        self.sim.set_timer_external(ProcessId(node.0), 1, TIMER_LEVEL);
        self.sim.set_timer_external(ProcessId(node.0), 1 + self.level_period / 2, TIMER_FD);
        let succ = self.world.borrow().ring.successor(node);
        if succ != node {
            self.sim.send_external(
                ProcessId(succ.0),
                Msg::ViewGossip {
                    known: BTreeSet::from([node]),
                    dead: BTreeSet::new(),
                },
            );
        }
        node
    }

    /// Graceful leave: migrates the node's components and split list to
    /// the new owners, removes it from the ring, and leaves a departed
    /// ghost that NACKs stragglers (Section 3.4 "Node Leaves").
    ///
    /// A leaving node first finishes its pending reconfiguration
    /// business (the paper's "before leaving, the node has to move all
    /// the components it currently holds" implies completing in-flight
    /// splits/merges): departing while hosting a frozen mid-merge
    /// component would strand that merge, because its coordinator keeps
    /// asking the component's *hash owner* while the ghost holds the
    /// frozen state.
    pub fn leave_node(&mut self, node: NodeId) {
        for _ in 0..100 {
            let busy = match self.sim.process(ProcessId(node.0)) {
                Some(Proc::Node(np)) => {
                    !np.is_quiet() || np.components().any(|(_, frozen)| frozen)
                }
                _ => false,
            };
            if !busy {
                break;
            }
            let period = self.level_period;
            self.run_for(period);
        }
        {
            let mut w = self.world.borrow_mut();
            assert!(w.ring.len() > 1, "cannot remove the last node");
            w.ring.remove_node(node);
        }
        // Hand off the split list to the ring successor via a protocol
        // message — except entries whose merge is already in flight
        // here: the departed ghost finishes those itself (handing them
        // off too would duplicate the obligation).
        let entries: Vec<ComponentId> = match self.sim.process_mut(ProcessId(node.0)) {
            Some(Proc::Node(np)) => {
                let drained = np.drain_split_list();
                let (in_flight, transfer): (Vec<ComponentId>, Vec<ComponentId>) =
                    drained.into_iter().partition(|id| np.has_merge_in_progress(id));
                np.extend_split_list(in_flight);
                transfer
            }
            _ => Vec::new(),
        };
        let succ = self.world.borrow().ring.successor_of_point(node.0);
        if !entries.is_empty() {
            self.sim
                .send_external(ProcessId(succ.0), Msg::SplitListHandoff { entries });
        }
        if let Some(Proc::Node(np)) = self.sim.process_mut(ProcessId(node.0)) {
            np.depart();
        }
        // Announce the departure: the successor adopts the tombstone
        // and gossip floods it; every node's next migration sweep then
        // routes around the leaver, and the ghost sheds its own
        // components to the new owners.
        self.sim.send_external(
            ProcessId(succ.0),
            Msg::ViewGossip {
                known: BTreeSet::from([node]),
                dead: BTreeSet::from([node]),
            },
        );
        self.migrate_components();
    }

    /// Crash: the node vanishes with all its state (components are
    /// lost). Detection and recovery are in-protocol — the crashed
    /// node's view successor suspects it after missed heartbeats and
    /// coordinates a rescue sweep; keep the simulation running (e.g.
    /// via [`settle`](Deployment::settle)) and the cut re-covers
    /// itself.
    ///
    /// # Errors
    ///
    /// Returns [`CrashError::LastLiveNode`] when `node` is the only
    /// live node left: with every peer gone there is no suspector and
    /// no rescue target, so the deployment would be unrecoverable.
    /// Chaos sweeps treat this as a skipped action, not a panic.
    pub fn crash_node(&mut self, node: NodeId) -> Result<(), CrashError> {
        if self.world.borrow().ring.len() <= 1 {
            return Err(CrashError::LastLiveNode);
        }
        let lost_components = match self.sim.process(ProcessId(node.0)) {
            Some(Proc::Node(np)) => np.components().count() as u64,
            _ => 0,
        };
        {
            let mut w = self.world.borrow_mut();
            w.ring.remove_node(node);
            w.metrics.crashes.inc();
            let now = self.sim.now();
            w.crashed.insert(node, now);
            w.metrics.registry.emit(
                TelemetryEvent::new("dist.crash")
                    .at(now)
                    .node(node.0)
                    .with("lost_components", lost_components),
            );
        }
        self.sim.remove_process(ProcessId(node.0));
        Ok(())
    }

    /// Test-only wrapper: component placement is in-protocol now (each
    /// node's per-tick migration sweep sheds what its local view says
    /// it no longer owns), so this just advances the simulation far
    /// enough for a round of sweeps to run.
    pub fn migrate_components(&mut self) {
        self.run_for(2 * self.level_period);
    }

    /// Test-only wrapper: cut repair after crashes is in-protocol now
    /// (failure detection → view gossip → rescue sweep), so this just
    /// advances the simulation until the network is quiescent with a
    /// valid cut (or a generous budget runs out). Kept so older
    /// experiments read naturally; it performs no installs itself.
    pub fn repair(&mut self) {
        self.settle(64);
    }

    /// Runs in level-period slices until the network is quiescent (live
    /// cut valid, no frozen components, no pending operations). Returns
    /// `false` if the budget ran out.
    pub fn settle(&mut self, max_rounds: usize) -> bool {
        for _ in 0..max_rounds {
            self.run_for(self.level_period);
            let (cut, busy) = self.live_cut();
            let tree = self.world.borrow().tree;
            if !busy && cut.is_valid(&tree) {
                return true;
            }
        }
        false
    }
}

/// Accumulator for [`Deployment::canonical_fingerprint`]: a running
/// hash plus first-encounter renaming maps for the two allocator-issued
/// id spaces (per-send GUIDs and end-to-end token ids). Renaming is a
/// bijection, so two states that differ only in *which* raw ids their
/// tokens drew — e.g. the same protocol state reached after injecting
/// tokens in a different order — digest to the same value, while states
/// that differ in any causal respect keep distinct digests (up to hash
/// collisions, which at worst hide a schedule from an explorer that
/// treats the digest as "already seen").
struct StateDigest {
    h: std::collections::hash_map::DefaultHasher,
    /// Raw GUID -> canonical index, in digest-encounter order.
    guids: BTreeMap<u64, u64>,
    /// Raw token id -> canonical index, in digest-encounter order.
    tokens: BTreeMap<u64, u64>,
}

impl StateDigest {
    fn new() -> Self {
        StateDigest {
            h: std::collections::hash_map::DefaultHasher::new(),
            guids: BTreeMap::new(),
            tokens: BTreeMap::new(),
        }
    }

    /// Folds one machine word into the digest.
    fn word(&mut self, w: u64) {
        w.hash(&mut self.h);
    }

    /// Folds any hashable value into the digest. Only for values free
    /// of allocator-issued ids (components, addresses, caches).
    fn item<T: Hash + ?Sized>(&mut self, t: &T) {
        t.hash(&mut self.h);
    }

    /// Folds a per-send GUID under the canonical renaming.
    fn guid(&mut self, g: u64) {
        let next = self.guids.len() as u64;
        let renamed = *self.guids.entry(g).or_insert(next);
        self.word(renamed);
    }

    /// Folds an end-to-end token id under the canonical renaming.
    fn token(&mut self, t: u64) {
        let next = self.tokens.len() as u64;
        let renamed = *self.tokens.entry(t).or_insert(next);
        self.word(renamed);
    }

    fn finish(self) -> u64 {
        self.h.finish()
    }
}

/// Folds a travelling idempotency ledger (token ids renamed).
fn digest_seen(seen: &SeenTokens, d: &mut StateDigest) {
    d.word(seen.len() as u64);
    for (token, addr) in seen {
        d.token(*token);
        d.item(addr);
    }
}

impl Msg {
    /// Folds the message into a [`StateDigest`], renaming GUIDs and
    /// token ids. Variants are tagged so field coincidences between
    /// different message kinds cannot collide.
    fn digest(&self, d: &mut StateDigest) {
        match self {
            Msg::ClientInject { wire } => {
                d.word(0);
                d.word(*wire as u64);
            }
            Msg::Token { guid, token, addr, injected_at, attempt, hops } => {
                d.word(1);
                d.guid(*guid);
                d.token(*token);
                d.item(addr);
                d.word(*injected_at);
                d.word(u64::from(*attempt));
                d.word(*hops);
            }
            Msg::TokenAck { guid } => {
                d.word(2);
                d.guid(*guid);
            }
            Msg::TokenNack { guid, token, addr, injected_at, attempt } => {
                d.word(3);
                d.guid(*guid);
                d.token(*token);
                d.item(addr);
                d.word(*injected_at);
                d.word(u64::from(*attempt));
            }
            Msg::Exit { wire, token, injected_at, hops } => {
                d.word(4);
                d.word(*wire as u64);
                d.token(*token);
                d.word(*injected_at);
                d.word(*hops);
            }
            Msg::Install { comp, seen } => {
                d.word(5);
                d.item(comp);
                digest_seen(seen, d);
            }
            Msg::InstallAck { id } => {
                d.word(6);
                d.item(id);
            }
            Msg::FreezeCollect { id, parent } => {
                d.word(7);
                d.item(id);
                d.item(parent);
            }
            Msg::CollectReply { comp, seen, parent } => {
                d.word(8);
                d.item(comp);
                digest_seen(seen, d);
                d.item(parent);
            }
            Msg::CollectMissing { id, parent } => {
                d.word(9);
                d.item(id);
                d.item(parent);
            }
            Msg::RemoveFrozen { id } => {
                d.word(10);
                d.item(id);
            }
            Msg::AbortFreeze { id } => {
                d.word(11);
                d.item(id);
            }
            Msg::Ping => d.word(12),
            Msg::Pong => d.word(13),
            Msg::ViewGossip { known, dead } => {
                d.word(14);
                d.item(known);
                d.item(dead);
            }
            Msg::RescueQuery => d.word(15),
            Msg::RescueReport { covered } => {
                d.word(16);
                d.word(covered.len() as u64);
                for (id, frozen) in covered {
                    d.item(id);
                    d.word(u64::from(*frozen));
                }
            }
            Msg::RescueInstall { comp } => {
                d.word(17);
                d.item(comp);
            }
            Msg::RescueAck { id } => {
                d.word(18);
                d.item(id);
            }
            Msg::TokenBusy { guid } => {
                d.word(19);
                d.guid(*guid);
            }
            Msg::Migrate { comp, seen, buffer } => {
                d.word(20);
                d.item(comp);
                digest_seen(seen, d);
                d.word(buffer.len() as u64);
                for (token, addr, injected_at, hops) in buffer {
                    d.token(*token);
                    d.item(addr);
                    d.word(*injected_at);
                    d.word(*hops);
                }
            }
            Msg::MigrateAck { id } => {
                d.word(21);
                d.item(id);
            }
            Msg::MergeOrphan { child, parent } => {
                d.word(22);
                d.item(child);
                d.item(parent);
            }
            Msg::SplitListHandoff { entries } => {
                d.word(23);
                d.item(entries);
            }
        }
    }
}

impl World {
    /// Folds the protocol-relevant world state: topology, membership,
    /// and mutation switches — not the statistics counters or the
    /// GUID/token allocators (the renaming quotient exists precisely
    /// to forget allocator positions).
    fn digest(&self, d: &mut StateDigest) {
        d.item(&self.tree);
        d.item(&self.style);
        d.word(self.ring.len() as u64);
        for n in self.ring.nodes() {
            d.word(n.0);
        }
        // Crash and detection logs fold in *with timestamps*: the
        // recovery oracles' verdicts depend on both, so two states
        // that differ only in when a crash was detected must not be
        // memoized as one.
        d.word(self.crashed.len() as u64);
        for (n, t) in &self.crashed {
            d.word(n.0);
            d.word(*t);
        }
        d.word(self.detections.len() as u64);
        for (n, t) in &self.detections {
            d.word(n.0);
            d.word(*t);
        }
        d.word(u64::from(self.mutation_no_ack_dedup));
    }
}

impl NodeProc {
    /// Folds every field that influences this node's future behaviour.
    /// Excludes `world` (digested once by the deployment) and
    /// `level_period` (a deployment constant).
    fn digest(&self, d: &mut StateDigest) {
        d.word(self.node.0);
        d.word(self.level as u64);
        d.word(u64::from(self.departed));
        d.word(u64::from(self.retry_armed));
        d.word(self.components.len() as u64);
        for (id, hosted) in &self.components {
            d.item(id);
            d.item(&hosted.comp);
            d.word(u64::from(hosted.frozen));
            d.word(hosted.frozen_by.map_or(u64::MAX, |p| p.0));
            d.word(hosted.buffer.len() as u64);
            for (token, addr, injected_at, hops) in &hosted.buffer {
                d.token(*token);
                d.item(addr);
                d.word(*injected_at);
                d.word(*hops);
            }
            digest_seen(&hosted.seen, d);
        }
        d.item(&self.split_list);
        d.word(self.splits.len() as u64);
        for (id, op) in &self.splits {
            d.item(id);
            d.item(&op.pending);
            digest_seen(&op.seen, d);
            d.word(u64::from(op.stalled_rounds));
        }
        d.word(self.merges.len() as u64);
        for (id, op) in &self.merges {
            d.item(id);
            d.word(op.collected.len() as u64);
            for entry in &op.collected {
                match entry {
                    Some((comp, seen)) => {
                        d.word(1);
                        d.item(comp);
                        digest_seen(seen, d);
                    }
                    None => d.word(0),
                }
            }
            d.word(op.reporters.len() as u64);
            for r in &op.reporters {
                d.word(r.map_or(u64::MAX, |p| p.0));
            }
            d.word(u64::from(op.stalled_rounds));
            d.word(u64::from(op.awaiting_install));
            match &op.requester {
                Some((pid, cid)) => {
                    d.word(1);
                    d.word(pid.0);
                    d.item(cid);
                }
                None => d.word(0),
            }
        }
        d.word(self.unacked.len() as u64);
        for (guid, u) in &self.unacked {
            d.guid(*guid);
            d.token(u.token);
            d.item(&u.addr);
            d.word(u.injected_at);
            d.word(u.sent_at);
            d.word(u.hops);
        }
        d.word(self.seen.len() as u64);
        for g in &self.seen {
            d.guid(*g);
        }
        d.word(self.stuck_collects.len() as u64);
        for (id, parent) in &self.stuck_collects {
            d.item(id);
            d.item(parent);
        }
        d.item(&self.cache);
        // Failure-detector and membership state. `last_heard` carries
        // raw timestamps: freshness decisions depend on them, so they
        // must split states that would behave differently.
        d.item(&self.view_known);
        d.item(&self.view_dead);
        d.word(self.last_heard.len() as u64);
        for (n, t) in &self.last_heard {
            d.word(n.0);
            d.word(*t);
        }
        d.word(self.fd_target.map_or(u64::MAX, |n| n.0));
        d.word(u64::from(self.fd_strikes));
        match &self.rescue {
            Some(op) => {
                d.word(1);
                d.word(op.started_at);
                d.item(&op.pending);
                d.word(op.covered.len() as u64);
                for (id, (n, frozen)) in &op.covered {
                    d.item(id);
                    d.word(n.0);
                    d.word(u64::from(*frozen));
                }
                d.word(op.installs.len() as u64);
                for (id, n) in &op.installs {
                    d.item(id);
                    d.word(n.0);
                }
                d.word(u64::from(op.stalled_rounds));
            }
            None => d.word(0),
        }
        d.word(u64::from(self.rescue_again));
        d.word(self.migrating.len() as u64);
        for (id, m) in &self.migrating {
            d.item(id);
            d.item(&m.comp);
            digest_seen(&m.seen, d);
            d.word(m.buffer.len() as u64);
            for (token, addr, injected_at, hops) in &m.buffer {
                d.token(*token);
                d.item(addr);
                d.word(*injected_at);
                d.word(*hops);
            }
            d.word(m.sent_at);
        }
        d.word(self.retry_interval);
        d.word(self.jitter_rng);
        d.word(self.frozen_buffer_cap as u64);
    }
}

impl Collector {
    /// Folds the exactly-once state: per-wire counts, the dedup ledger
    /// (token ids renamed), the duplicate tally the oracles read, and
    /// the mutation switch. Latency aggregates are telemetry-only and
    /// excluded.
    fn digest(&self, d: &mut StateDigest) {
        d.word(self.counts.len() as u64);
        for c in &self.counts {
            d.word(*c);
        }
        d.word(self.duplicate_drops);
        d.word(u64::from(self.mutation_no_dedup));
        d.word(self.seen.len() as u64);
        for t in &self.seen {
            d.token(*t);
        }
    }
}

impl Deployment {
    /// A canonical fingerprint of the complete deployment state: the
    /// world (topology, membership, mutation switches), the simulator
    /// clock, per-link delivery clocks, every pending event (headers in
    /// the canonical delivery order, payloads digested structurally —
    /// raw queue sequence numbers, which encode allocation order rather
    /// than behaviour, are excluded), and every process's protocol
    /// state.
    ///
    /// GUIDs and end-to-end token ids are renamed to first-encounter
    /// indices, so two states identical up to a bijective renaming of
    /// those allocator-issued ids — the id-symmetry quotient — produce
    /// the same fingerprint. The distributed schedule explorer keys its
    /// cross-execution memoization on this value; statistics counters
    /// and telemetry aggregates are deliberately excluded so observation
    /// never splits equivalence classes.
    #[must_use]
    pub fn canonical_fingerprint(&self) -> u64 {
        let mut d = StateDigest::new();
        self.world.borrow().digest(&mut d);
        d.word(self.level_period);
        d.word(self.sim.now());
        let clocks: Vec<((ProcessId, ProcessId), u64)> = self.sim.link_clocks().collect();
        d.word(clocks.len() as u64);
        for ((a, b), t) in clocks {
            d.word(a.0);
            d.word(b.0);
            d.word(t);
        }
        let pending = self.sim.pending_snapshot();
        d.word(pending.len() as u64);
        for (ev, payload) in pending {
            d.word(ev.time);
            d.word(ev.to.0);
            d.word(ev.from.map_or(u64::MAX, |f| f.0));
            d.word(ev.timer_tag.map_or(u64::MAX, |t| t));
            d.word(u64::from(ev.lossy));
            match payload {
                Some(m) => {
                    d.word(1);
                    m.digest(&mut d);
                }
                None => d.word(0),
            }
        }
        let pids: Vec<ProcessId> = self.sim.process_ids().collect();
        d.word(pids.len() as u64);
        for pid in pids {
            d.word(pid.0);
            match self.sim.process(pid) {
                Some(Proc::Node(np)) => {
                    d.word(1);
                    np.digest(&mut d);
                }
                Some(Proc::Collector(c)) => {
                    d.word(2);
                    c.digest(&mut d);
                }
                None => d.word(0),
            }
        }
        d.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acn_bitonic::step::is_step_sequence;

    #[test]
    fn single_node_deployment_counts() {
        let mut d = Deployment::new(8, 1, 7);
        for i in 0..24 {
            d.inject(i % 8);
        }
        d.run_for(50_000);
        let c = d.collector();
        assert_eq!(c.total(), 24);
        assert!(is_step_sequence(&c.counts), "{:?}", c.counts);
    }

    #[test]
    fn deployment_self_organizes_and_counts() {
        let mut d = Deployment::new(64, 32, 13);
        assert!(d.settle(50), "network did not settle");
        assert!(d.world.borrow().splits_done > 0, "no splits happened");
        let (cut, _) = d.live_cut();
        assert!(cut.is_valid(&d.world.borrow().tree), "invalid live cut: {cut}");
        let mut seed = 5u64;
        for _ in 0..200 {
            let wire = (acn_overlay::splitmix64(&mut seed) as usize) % 64;
            d.inject(wire);
        }
        d.run_for(200_000);
        let c = d.collector();
        assert_eq!(c.total(), 200, "tokens lost or duplicated");
        assert!(is_step_sequence(&c.counts), "{:?}", c.counts);
    }

    #[test]
    fn tokens_survive_reconfiguration() {
        let mut d = Deployment::new(32, 24, 99);
        let mut injected = 0u64;
        let mut seed = 1u64;
        for _ in 0..40 {
            for _ in 0..5 {
                let wire = (acn_overlay::splitmix64(&mut seed) as usize) % 32;
                d.inject(wire);
                injected += 1;
            }
            d.run_for(500); // interleave with reconfiguration
        }
        assert!(d.settle(100), "network did not settle");
        d.run_for(100_000);
        let c = d.collector();
        assert_eq!(c.total(), injected, "token conservation violated");
        assert!(is_step_sequence(&c.counts), "{:?}", c.counts);
    }

    #[test]
    fn join_and_leave_churn() {
        let mut d = Deployment::new(64, 4, 21);
        assert!(d.settle(50));
        let mut injected = 0u64;
        let mut seed = 3u64;
        for _ in 0..30 {
            let wire = (acn_overlay::splitmix64(&mut seed) as usize) % 64;
            d.inject(wire);
            injected += 1;
        }
        // Grow to 40 nodes.
        for _ in 0..36 {
            d.join_node();
            d.run_for(300);
        }
        assert!(d.settle(100), "did not settle after joins");
        assert!(d.world.borrow().splits_done > 0, "growth did not split");
        for _ in 0..30 {
            let wire = (acn_overlay::splitmix64(&mut seed) as usize) % 64;
            d.inject(wire);
            injected += 1;
        }
        // Shrink back to 6 nodes (graceful leaves).
        let victims: Vec<NodeId> = d.world.borrow().ring.nodes().take(34).collect();
        for v in victims {
            d.leave_node(v);
            d.run_for(300);
            d.migrate_components();
        }
        assert!(d.settle(200), "did not settle after leaves");
        assert!(d.world.borrow().merges_done > 0, "shrink did not merge");
        for _ in 0..30 {
            let wire = (acn_overlay::splitmix64(&mut seed) as usize) % 64;
            d.inject(wire);
            injected += 1;
        }
        d.run_for(300_000);
        let c = d.collector();
        assert_eq!(c.total(), injected, "token conservation violated");
        assert!(is_step_sequence(&c.counts), "{:?}", c.counts);
    }

    #[test]
    fn crash_and_repair() {
        let mut d = Deployment::new(16, 8, 55);
        assert!(d.settle(50));
        let mut injected = 0u64;
        let mut seed = 9u64;
        for _ in 0..40 {
            let wire = (acn_overlay::splitmix64(&mut seed) as usize) % 16;
            d.inject(wire);
            injected += 1;
        }
        d.run_for(100_000);
        assert_eq!(d.collector().total(), injected);
        // Crash a node that hosts at least one component.
        let victim = {
            let pids: Vec<ProcessId> =
                d.sim.process_ids().filter(|p| *p != COLLECTOR).collect();
            let mut victim = None;
            for pid in pids {
                if let Some(Proc::Node(np)) = d.sim.process(pid) {
                    if np.components().next().is_some() && !np.departed() {
                        victim = Some(np.node_id());
                        break;
                    }
                }
            }
            victim.expect("some node hosts a component")
        };
        d.crash_node(victim).expect("not the last node");
        d.repair();
        let (cut, _) = d.live_cut();
        assert!(cut.is_valid(&d.world.borrow().tree), "repair left an invalid cut: {cut}");
        // Counting resumes and new tokens are conserved.
        let before_new = d.collector().total();
        let mut new_tokens = 0u64;
        for _ in 0..40 {
            let wire = (acn_overlay::splitmix64(&mut seed) as usize) % 16;
            d.inject(wire);
            new_tokens += 1;
        }
        assert!(d.settle(100));
        d.run_for(200_000);
        let c = d.collector();
        assert!(
            c.total() >= before_new + new_tokens,
            "post-repair tokens lost: {} vs {}",
            c.total(),
            before_new + new_tokens
        );
        // The lost component forgot a bounded amount of round-robin
        // offset: the counts may deviate from a step sequence by at most
        // the lost width.
        let max = *c.counts.iter().max().unwrap();
        let min = *c.counts.iter().min().unwrap();
        assert!(max - min <= 1 + 16, "crash deviation too large: {:?}", c.counts);
    }

    #[test]
    fn join_storm_without_settling() {
        // 30 joins with no settling in between, traffic interleaved.
        let mut d = Deployment::new(32, 2, 0x5707);
        let mut seed = 11u64;
        let mut injected = 0u64;
        for burst in 0..30 {
            d.join_node();
            if burst % 2 == 0 {
                d.inject((acn_overlay::splitmix64(&mut seed) as usize) % 32);
                injected += 1;
            }
            d.run_for(73); // deliberately not a multiple of anything
        }
        assert!(d.settle(300), "join storm did not settle");
        d.run_for(200_000);
        let c = d.collector();
        assert_eq!(c.total(), injected, "token conservation violated");
        assert!(is_step_sequence(&c.counts), "{:?}", c.counts);
        assert!(d.world.borrow().splits_done > 0);
    }

    #[test]
    fn crash_during_reconfiguration() {
        // Crash a component-hosting node while the network is still
        // splitting/merging; repair must restore a valid cut and new
        // traffic must flow.
        let mut d = Deployment::new(32, 4, 0xCAFE);
        d.run_for(2_500); // mid-reconfiguration, deliberately unsettled
        for _ in 0..12 {
            d.join_node();
            d.run_for(400);
        }
        // Crash the first node that hosts any component.
        let victim = d
            .sim
            .process_ids()
            .filter(|p| *p != COLLECTOR)
            .find_map(|pid| match d.sim.process(pid) {
                Some(Proc::Node(np))
                    if np.components().next().is_some() && !np.departed() =>
                {
                    Some(np.node_id())
                }
                _ => None,
            })
            .expect("someone hosts a component");
        d.crash_node(victim).expect("not the last node");
        // Let in-flight protocol messages to the dead node drain, then
        // repair and settle.
        d.run_for(20_000);
        d.repair();
        assert!(d.settle(300), "network did not settle after crash+repair");
        let (cut, _) = d.live_cut();
        assert!(cut.is_valid(&d.world.borrow().tree), "invalid cut after repair: {cut}");
        // New traffic flows and is conserved.
        let before = d.collector().total();
        let mut seed = 3u64;
        for _ in 0..25 {
            d.inject((acn_overlay::splitmix64(&mut seed) as usize) % 32);
        }
        d.run_for(300_000);
        assert_eq!(d.collector().total(), before + 25, "post-crash tokens lost");
    }

    #[test]
    fn crash_last_node_is_recoverable_error() {
        let mut d = Deployment::new(8, 1, 42);
        let node = d.world.borrow().ring.nodes().next().expect("one node");
        assert_eq!(d.crash_node(node), Err(CrashError::LastLiveNode));
        // The refused crash left the deployment fully functional.
        d.inject(0);
        d.run_for(50_000);
        assert_eq!(d.collector().total(), 1);
    }

    #[test]
    fn crash_recovers_in_protocol_without_repair() {
        let mut d = Deployment::new(16, 4, 0xBEEF);
        assert!(d.settle(50));
        let victim = d
            .sim
            .process_ids()
            .filter(|p| *p != COLLECTOR)
            .find_map(|pid| match d.sim.process(pid) {
                Some(Proc::Node(np))
                    if np.components().next().is_some() && !np.departed() =>
                {
                    Some(np.node_id())
                }
                _ => None,
            })
            .expect("someone hosts a component");
        d.crash_node(victim).expect("not the last node");
        // No repair()/migrate_components(): the failure detector must
        // suspect the crash and the rescue sweep must re-cover the cut
        // purely via protocol messages.
        assert!(d.settle(100), "in-protocol recovery did not converge");
        let w = d.world.borrow();
        let detected_at = *w.detections.get(&victim).expect("crash went undetected");
        let crashed_at = w.crashed[&victim];
        assert!(
            detected_at - crashed_at <= 16 * d.level_period,
            "detection took {} periods",
            (detected_at - crashed_at) / d.level_period
        );
        drop(w);
        let (cut, _) = d.live_cut();
        assert!(cut.is_valid(&d.world.borrow().tree), "cut not re-covered: {cut}");
        // Counting still works end to end.
        let before = d.collector().total();
        for i in 0..16 {
            d.inject(i % 16);
        }
        d.run_for(200_000);
        assert_eq!(d.collector().total(), before + 16, "post-rescue tokens lost");
    }

    #[test]
    fn tiny_frozen_buffer_cap_conserves_tokens() {
        // With a capacity-1 frozen buffer, reconfiguration windows shed
        // tokens back to their senders (TokenBusy); backoff + retry
        // must still deliver every one exactly once.
        let mut d = Deployment::new(32, 6, 0x77);
        d.set_frozen_buffer_cap(1);
        let mut seed = 1u64;
        let mut injected = 0u64;
        for i in 0..120u64 {
            d.inject((acn_overlay::splitmix64(&mut seed) as usize) % 32);
            injected += 1;
            d.run_for(97);
            if i % 40 == 20 {
                d.join_node();
            }
        }
        assert!(d.settle(300), "did not settle under backpressure");
        d.run_for(300_000);
        let c = d.collector();
        assert_eq!(c.total(), injected, "token conservation violated under shed");
        assert!(is_step_sequence(&c.counts), "{:?}", c.counts);
    }

    #[test]
    fn leave_everything_back_to_one_node() {
        // Shrink all the way down to a single node: the network must end
        // as (at most a few) coarse components on that node.
        let mut d = Deployment::new(16, 12, 0x0E0);
        assert!(d.settle(100));
        let mut seed = 9u64;
        for _ in 0..30 {
            d.inject((acn_overlay::splitmix64(&mut seed) as usize) % 16);
        }
        d.run_for(100_000);
        let victims: Vec<NodeId> = d.world.borrow().ring.nodes().take(11).collect();
        for v in victims {
            d.leave_node(v);
            d.run_for(500);
            d.migrate_components();
        }
        assert!(d.settle(300), "did not settle at N=1");
        let (cut, _) = d.live_cut();
        assert!(cut.is_valid(&d.world.borrow().tree));
        assert_eq!(cut.leaves().len(), 1, "N=1 must converge to the root: {cut}");
        for _ in 0..10 {
            d.inject((acn_overlay::splitmix64(&mut seed) as usize) % 16);
        }
        d.run_for(100_000);
        assert_eq!(d.collector().total(), 40);
        assert!(is_step_sequence(&d.collector().counts));
    }

    #[test]
    fn lossy_tokens_are_delivered_exactly_once() {
        // 15% token loss: the ack/retransmit/dedup layer must still
        // deliver every token exactly once, with the step property.
        let mut d = Deployment::with_loss(32, 16, 0x1055, 150);
        assert!(d.settle(100));
        let mut seed = 5u64;
        let mut injected = 0u64;
        for _ in 0..40 {
            for _ in 0..4 {
                d.inject((acn_overlay::splitmix64(&mut seed) as usize) % 32);
                injected += 1;
            }
            d.run_for(400);
        }
        assert!(d.settle(400), "lossy deployment did not settle");
        d.run_for(400_000);
        let c = d.collector();
        assert_eq!(c.total(), injected, "exactly-once delivery violated");
        assert!(is_step_sequence(&c.counts), "{:?}", c.counts);
        let world = d.world.borrow();
        assert!(world.token_retransmits > 0, "loss never exercised retransmission");
        assert!(d.sim.stats().messages_lost > 0, "the lossy channel never dropped");
    }

    #[test]
    fn lossy_tokens_survive_churn() {
        let mut d = Deployment::with_loss(32, 4, 0x1056, 100);
        assert!(d.settle(100));
        let mut seed = 7u64;
        let mut injected = 0u64;
        for round in 0..30 {
            if round % 3 == 0 {
                d.join_node();
            }
            for _ in 0..3 {
                d.inject((acn_overlay::splitmix64(&mut seed) as usize) % 32);
                injected += 1;
            }
            d.run_for(600);
        }
        assert!(d.settle(400), "lossy churn did not settle");
        d.run_for(400_000);
        let c = d.collector();
        assert_eq!(c.total(), injected, "exactly-once delivery violated under churn");
        assert!(is_step_sequence(&c.counts), "{:?}", c.counts);
    }

    #[test]
    fn latency_accounting() {
        let mut d = Deployment::new(16, 16, 77);
        assert!(d.settle(50));
        for i in 0..50 {
            d.inject(i % 16);
        }
        d.run_for(200_000);
        let c = d.collector();
        assert_eq!(c.total(), 50);
        assert!(c.max_latency >= c.total_latency / 50);
    }
}
