//! A thread-safe shared-memory adaptive counting network.
//!
//! Counting networks were born as shared-memory structures (the paper's
//! lineage runs through Aspnes–Herlihy–Shavit and diffracting trees);
//! [`SharedAdaptiveNetwork`] brings the *adaptive* construction into that
//! setting, in one of two execution modes fixed at construction
//! ([`ExecMode`]):
//!
//! - **Lock-free** (the default): a component *is* one mod-k
//!   round-robin counter (paper §3), so the token hot path is reduced
//!   to exactly that — one `fetch_add` per component crossed, against
//!   an **epoch-published immutable snapshot** of the cut
//!   ([`acn_sync::SyncSnapshot`]). Tokens never touch the structure
//!   RwLock or any per-component mutex. Split/merge stays on a slow
//!   writer path that *drains* in-flight tokens (a read–write gate),
//!   *harvests* the snapshot's atomic counter residues back into the
//!   authoritative [`Component`] states (an exact batch transfer —
//!   round-robin output is oblivious to arrival order), applies the
//!   reconfiguration, and publishes a fresh snapshot under a bumped
//!   epoch. Stale snapshot pins are detected by epoch validation and
//!   retried (`acn.conc.snapshot_retries`). See `DESIGN.md` §8 for the
//!   protocol and why residue transfer preserves the step property.
//! - **Locked** ([`SharedAdaptiveNetwork::new_locked`]): the PR-2 era
//!   path — tokens traverse under a structure read lock with
//!   **per-component mutexes**. Kept as the benchmark baseline
//!   (`exp_throughput`) and as a second model-checked implementation
//!   of the same specification.
//!
//! # Synchronization abstraction
//!
//! The network is generic over [`SyncApi`]: production code uses the
//! default [`RealSync`] (parking_lot + std atomics, zero-cost), while
//! `acn-check`'s `VirtualSync` routes every primitive through a
//! schedule-exploring model checker. Per-component locks are *ranked*
//! by the `ComponentId` total order (pre-order over `T_w`), declaring
//! the workspace lock order; the checker enforces it dynamically.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use acn_core::SharedAdaptiveNetwork;
//!
//! let net = Arc::new(SharedAdaptiveNetwork::new(8));
//! let workers: Vec<_> = (0..4)
//!     .map(|t| {
//!         let net = Arc::clone(&net);
//!         std::thread::spawn(move || (0..100).map(|i| net.next_value((t + i) % 8)).count())
//!     })
//!     .collect();
//! for w in workers {
//!     w.join().unwrap();
//! }
//! assert_eq!(net.total_exited(), 400);
//! ```

use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use acn_sync::{
    CachePadded, Ordering, RealSync, SyncApi, SyncAtomicU64, SyncMutex, SyncRwLock,
    SyncSnapshot,
};
use acn_telemetry::{Counter, Histogram, Registry};
use acn_trace::{Span, Tracer};

use acn_topology::{
    input_port_of, network_input_address, resolve_output, ComponentId, Cut, CutError,
    OutputDestination, Tree, WiringStyle,
};

use crate::component::{merge_components, port_emissions, split_component, Component};
use crate::local::AdaptError;

/// The lock-protected structure: the cut and its live components.
///
/// `BTreeMap` (not `HashMap`) so that iteration — and therefore lock
/// acquisition order, migration sweeps, and checker fingerprints — is
/// deterministic in the declared `ComponentId` order. (`acn-lint`
/// forbids hash collections in this module; PR 1 hit exactly this bug
/// class in the simulator.)
struct Structure<S: SyncApi> {
    cut: Cut,
    components: BTreeMap<ComponentId, S::Mutex<Component>>,
}

impl<S: SyncApi> Hash for Structure<S> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.cut.hash(state);
        self.components.hash(state);
    }
}

/// The lock-order rank of a component lock: its position in the
/// `ComponentId` total order, approximated by the pre-order index the
/// id would have in a deep tree. Ranks only need to be monotone in the
/// declared order for the checker's dynamic lock-order verification,
/// and `ComponentId`s order lexicographically by path, so encoding the
/// path bytes into a u64 (most-significant-first) preserves the order
/// for all depths that fit.
fn lock_rank(id: &ComponentId) -> u64 {
    let mut rank: u64 = 0;
    for (i, &step) in id.path().iter().take(8).enumerate() {
        // Child indices are < 8 for every component kind; one octal
        // digit per level keeps lexicographic order. Deeper levels tie,
        // which is still a valid (coarser) order declaration.
        rank |= u64::from(step + 1) << (56 - 8 * i);
    }
    rank
}

/// How tokens traverse the network; fixed at construction.
///
/// The two modes may not be mixed on one instance: the lock-free path
/// accumulates per-epoch residues in snapshot atomics that the locked
/// path would not see, and vice versa.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecMode {
    /// Per-token structure read lock + per-component mutexes.
    Locked,
    /// Epoch-published snapshot; one `fetch_add` per component crossed.
    LockFree,
}

/// Where a leaf's output port sends a token, precomputed at snapshot
/// build time so the hot path does no topology resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum FastRoute {
    /// An internal wire into another leaf of the same snapshot.
    Leaf { leaf: usize, port: usize },
    /// A network output wire.
    Exit(usize),
}

/// One live leaf component, reduced to its fast-path essentials: an
/// atomic round-robin counter plus an atomic arrival profile.
///
/// `base_tokens` is the component's authoritative counter at snapshot
/// build time; the j-th fast-path token through this leaf (j =
/// `hops.fetch_add(1)`) leaves on output port
/// `(base_tokens + j) mod width` — exactly what
/// [`Component::process_token`] would have computed, because a
/// component's output behaviour depends only on its counter, never on
/// arrival order. The arrival profile is tallied so the writer's
/// harvest can replay the batch into the [`Component`] exactly.
/// The hot per-leaf atomics are individually cache-line padded
/// ([`CachePadded`]): `hops` and each per-port arrival tally get their
/// own line, so tokens contending on *different* leaves (or different
/// ports of one leaf) never false-share. Before padding, the leaves of
/// a freshly built snapshot sat back to back in one `Vec` allocation
/// and the 1→8-thread throughput curve was flat (see E18's padding
/// microbench and DESIGN.md §12).
struct FastLeaf<S: SyncApi> {
    id: ComponentId,
    width: usize,
    base_tokens: u64,
    hops: CachePadded<S::AtomicU64>,
    arrivals: Vec<CachePadded<S::AtomicU64>>,
    routes: Vec<FastRoute>,
}

/// An immutable routing snapshot of the cut, published via
/// [`SyncSnapshot`] and validated against the network epoch.
struct FastSnapshot<S: SyncApi> {
    /// The epoch this snapshot was published under. A pinned token
    /// whose snapshot epoch differs from the network's current epoch
    /// loaded a stale snapshot and must retry.
    epoch: u64,
    /// Network input wire -> (leaf index, input port).
    entries: Vec<(usize, usize)>,
    /// The cut's leaves in `ComponentId` order.
    leaves: Vec<FastLeaf<S>>,
}

impl<S: SyncApi> Hash for FastLeaf<S> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.id.hash(state);
        self.width.hash(state);
        self.base_tokens.hash(state);
        self.hops.hash(state);
        self.arrivals.hash(state);
        self.routes.hash(state);
    }
}

impl<S: SyncApi> Hash for FastSnapshot<S> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.epoch.hash(state);
        self.entries.hash(state);
        self.leaves.hash(state);
    }
}

/// Telemetry handles for the shared runtime (all no-ops by default).
#[derive(Debug, Default)]
struct ConcMetrics {
    /// `acn.conc.traversal_depth` — components crossed per token.
    traversal_depth: Histogram,
    /// `acn.conc.lock_contention` — component-lock acquisitions that had
    /// to wait because another token held the lock.
    lock_contention: Counter,
    /// `acn.conc.tokens` — tokens routed through the network.
    tokens: Counter,
    /// `acn.conc.splits` / `acn.conc.merges` — reconfigurations applied.
    splits: Counter,
    merges: Counter,
    /// `acn.conc.fastpath_hits` — tokens that completed a traversal on
    /// the lock-free snapshot path (validated pin, no locks taken).
    fastpath_hits: Counter,
    /// `acn.conc.snapshot_retries` — pinned snapshots that failed
    /// epoch validation (a reconfiguration won the race) and retried.
    snapshot_retries: Counter,
    /// `acn.exec.batch_flushes` — batched traversals executed
    /// ([`SharedAdaptiveNetwork::push_batch`] /
    /// [`SharedAdaptiveNetwork::next_batch`] calls with nonzero weight).
    batch_flushes: Counter,
    /// `acn.exec.batch_tokens` — tokens carried by batched traversals
    /// (`batch_tokens / batch_flushes` = mean realized batch size).
    batch_tokens: Counter,
}

impl ConcMetrics {
    fn attach(registry: &Registry) -> Self {
        ConcMetrics {
            traversal_depth: registry.histogram("acn.conc.traversal_depth"),
            lock_contention: registry.counter("acn.conc.lock_contention"),
            tokens: registry.counter("acn.conc.tokens"),
            splits: registry.counter("acn.conc.splits"),
            merges: registry.counter("acn.conc.merges"),
            fastpath_hits: registry.counter("acn.conc.fastpath_hits"),
            snapshot_retries: registry.counter("acn.conc.snapshot_retries"),
            batch_flushes: registry.counter("acn.exec.batch_flushes"),
            batch_tokens: registry.counter("acn.exec.batch_tokens"),
        }
    }

    /// Locks `mutex` on behalf of a **token** (locked mode only),
    /// counting the acquisition as contended when another token held
    /// the lock. The probe is folded into a single acquisition path:
    /// an uncontended `try_lock` *is* the acquisition (one touch of
    /// the mutex), and only a contended acquisition falls back to the
    /// blocking `lock` after bumping the counter.
    ///
    /// Writer-side (slow path) acquisitions — harvest, snapshot build,
    /// split/merge transfer — deliberately do **not** go through this
    /// probe: they are serialized under the structure write lock, so
    /// probing them would double-touch mutexes that cannot contend and
    /// pollute `acn.conc.lock_contention` with writer noise, which
    /// must stay an accurate token-vs-token signal now that the fast
    /// path takes no component locks at all. Under the model checker
    /// (`CONTENTION_PROBES == false`) the probe is skipped so the
    /// observation does not double the explored operations.
    fn lock<'a, S: SyncApi>(
        &self,
        mutex: &'a S::Mutex<Component>,
    ) -> <S::Mutex<Component> as SyncMutex<Component>>::Guard<'a> {
        if S::CONTENTION_PROBES {
            if let Some(guard) = mutex.try_lock() {
                return guard;
            }
            self.lock_contention.inc();
        }
        mutex.lock()
    }
}

/// A concurrent adaptive counting network for one address space.
///
/// Cloneable via `Arc`; see the module docs for the locking discipline.
/// Generic over [`SyncApi`] (default [`RealSync`]) so the same code is
/// both the production executor and the model-checked artifact.
pub struct SharedAdaptiveNetwork<S: SyncApi = RealSync> {
    tree: Tree,
    style: WiringStyle,
    mode: ExecMode,
    structure: S::RwLock<Structure<S>>,
    /// The drain gate (lock-free mode): every fast-path token holds a
    /// read pin for the duration of its traversal; a reconfiguring
    /// writer takes it exclusively, which blocks until in-flight
    /// tokens finish and stalls new ones — the quiescent point at
    /// which snapshot residues are harvested and a new snapshot is
    /// published. The payload carries no data.
    gate: S::RwLock<u64>,
    /// The published routing snapshot (lock-free mode).
    snapshot: S::Snapshot<FastSnapshot<S>>,
    /// The current epoch; bumped with every published snapshot.
    epoch: S::AtomicU64,
    /// Per-wire arrival/exit tallies, cache-line padded: adjacent
    /// wires are hammered by different threads, and unpadded they
    /// false-share (same flat-scaling failure as the leaf atomics).
    input_counts: Vec<CachePadded<S::AtomicU64>>,
    output_counts: Vec<CachePadded<S::AtomicU64>>,
    metrics: ConcMetrics,
    /// Sampled `exec.traverse` spans with monotonic timestamps from the
    /// [`SyncApi`] clock seam. Disabled (one branch per token) unless
    /// [`attach_tracer`](Self::attach_tracer) is called.
    tracer: Tracer,
}

impl SharedAdaptiveNetwork<RealSync> {
    /// A new lock-free shared network of width `w`, starting as one
    /// component.
    ///
    /// # Panics
    ///
    /// Panics if `w` is not a power of two or `w < 2`.
    #[must_use]
    pub fn new(w: usize) -> Self {
        Self::new_in(w)
    }

    /// A new shared network of width `w` on the locked (per-component
    /// mutex) path — the benchmark baseline.
    ///
    /// # Panics
    ///
    /// Panics if `w` is not a power of two or `w < 2`.
    #[must_use]
    pub fn new_locked(w: usize) -> Self {
        Self::new_locked_in(w)
    }
}

impl<S: SyncApi> SharedAdaptiveNetwork<S> {
    /// A new lock-free shared network of width `w` under an explicit
    /// [`SyncApi`] (the model checker instantiates this with
    /// `VirtualSync`).
    ///
    /// # Panics
    ///
    /// Panics if `w` is not a power of two or `w < 2`.
    #[must_use]
    pub fn new_in(w: usize) -> Self {
        Self::with_mode_in(w, ExecMode::LockFree)
    }

    /// A new locked-mode shared network of width `w` under an explicit
    /// [`SyncApi`].
    ///
    /// # Panics
    ///
    /// Panics if `w` is not a power of two or `w < 2`.
    #[must_use]
    pub fn new_locked_in(w: usize) -> Self {
        Self::with_mode_in(w, ExecMode::Locked)
    }

    fn with_mode_in(w: usize, mode: ExecMode) -> Self {
        let tree = Tree::new(w);
        let cut = Cut::root();
        let components: BTreeMap<ComponentId, S::Mutex<Component>> = cut
            .leaves()
            .iter()
            .map(|id| {
                (id.clone(), S::Mutex::with_rank(Component::new(&tree, id), lock_rank(id)))
            })
            .collect();
        let structure = Structure { cut, components };
        let snapshot = Self::build_snapshot(&tree, WiringStyle::Ahs, &structure, 0);
        SharedAdaptiveNetwork {
            tree,
            style: WiringStyle::Ahs,
            mode,
            structure: S::RwLock::new(structure),
            gate: S::RwLock::new(0),
            snapshot: S::Snapshot::new(Arc::new(snapshot)),
            epoch: S::AtomicU64::new(0),
            input_counts: (0..w).map(|_| CachePadded::new(S::AtomicU64::new(0))).collect(),
            output_counts: (0..w).map(|_| CachePadded::new(S::AtomicU64::new(0))).collect(),
            metrics: ConcMetrics::default(),
            tracer: Tracer::disabled(),
        }
    }

    /// The execution mode this network was constructed in.
    #[must_use]
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Registers this network's metrics (`acn.conc.*`) with `registry`.
    ///
    /// Call before sharing the network across threads (it needs `&mut`).
    /// Telemetry is observation-only: routed values and step-property
    /// behaviour are identical with or without a registry attached.
    pub fn attach_telemetry(&mut self, registry: &Registry) {
        self.metrics = ConcMetrics::attach(registry);
    }

    /// Routes sampled `exec.traverse` spans (one per sampled token,
    /// timestamped with [`SyncApi::monotonic_now`]) into `tracer`.
    ///
    /// Call before sharing the network across threads (it needs `&mut`).
    /// A token's pseudo trace id is `arrival * width + wire`, so a
    /// sampling mask of `2^k - 1` keeps roughly one token in `2^k`;
    /// use [`Tracer::with_sampling`] to bound the fast-path overhead
    /// (the disabled/unsampled cost is a single branch per token).
    pub fn attach_tracer(&mut self, tracer: &Tracer) {
        self.tracer = tracer.clone();
    }

    /// The network width.
    #[must_use]
    pub fn width(&self) -> usize {
        self.tree.width()
    }

    /// A snapshot of the current cut.
    #[must_use]
    pub fn cut(&self) -> Cut {
        self.structure.read().cut.clone()
    }

    /// Whether the installed component set is exactly the cut's leaf
    /// set — the split/merge atomicity invariant (a token must never
    /// observe a half-installed child set). The model checker asserts
    /// this at every quiescent point.
    #[must_use]
    pub fn structure_consistent(&self) -> bool {
        let structure = self.structure.read();
        structure.components.len() == structure.cut.leaves().len()
            && structure.cut.leaves().iter().all(|id| structure.components.contains_key(id))
    }

    /// Routes one token from `wire` to an output wire. Many threads may
    /// push concurrently; the quiescent per-wire exit counts always have
    /// the step property.
    ///
    /// # Panics
    ///
    /// Panics if `wire >= width`.
    pub fn push(&self, wire: usize) -> usize {
        // lint: relaxed-ok(per-wire arrival tally; only read at quiescence, where the caller's join/sync supplies the edge)
        let arrival = self.input_counts[wire].fetch_add(1, Ordering::Relaxed);
        self.metrics.tokens.inc();
        let span = self.start_traverse_span(wire, arrival);
        let out = self.route_token(wire);
        self.finish_traverse_span(span, out);
        // lint: relaxed-ok(RMWs on one location totally order in the modification order; cross-wire step claims hold only at quiescence)
        self.output_counts[out].fetch_add(1, Ordering::Relaxed);
        out
    }

    /// The single [`ExecMode`] dispatch point for scalar traversals:
    /// every token-routing entry (`push`, `next_value`) funnels
    /// through here, so mode selection lives in exactly one place.
    #[inline]
    fn route_token(&self, wire: usize) -> usize {
        match self.mode {
            ExecMode::Locked => self.traverse_locked(wire),
            ExecMode::LockFree => self.traverse_fast(wire),
        }
    }

    /// The single [`ExecMode`] dispatch point for **batched**
    /// traversals: routes `weight` tokens from `wire` at once,
    /// accumulating how many exit on each output wire into `exits`
    /// (which must be zero-initialized, `width` long).
    fn route_batch(&self, wire: usize, weight: u64, exits: &mut [u64]) {
        match self.mode {
            ExecMode::Locked => {
                // The locked path has no weighted traversal (every hop
                // takes a component mutex anyway); a batch is just the
                // sequential replay.
                for _ in 0..weight {
                    exits[self.traverse_locked(wire)] += 1;
                }
            }
            ExecMode::LockFree => self.traverse_fast_batch(wire, weight, exits),
        }
    }

    /// Routes `weight` tokens from `wire` in one batched traversal —
    /// on the lock-free path: **one snapshot pin and one `fetch_add`
    /// per leaf crossed** for the whole batch, instead of `weight`
    /// full traversals. Returns the per-output-wire exit counts (sum
    /// = `weight`). Quiescent totals keep the step property: a batch
    /// is indistinguishable from `weight` back-to-back tokens because
    /// round-robin output depends only on the counter, never on
    /// arrival order (DESIGN.md §12).
    ///
    /// # Panics
    ///
    /// Panics if `wire >= width`.
    pub fn push_batch(&self, wire: usize, weight: u64) -> Vec<u64> {
        let mut exits = vec![0u64; self.width()];
        if weight == 0 {
            return exits;
        }
        // lint: relaxed-ok(per-wire arrival tally; only read at quiescence, where the caller's join/sync supplies the edge)
        self.input_counts[wire].fetch_add(weight, Ordering::Relaxed);
        self.metrics.tokens.add(weight);
        self.metrics.batch_flushes.inc();
        self.metrics.batch_tokens.add(weight);
        self.route_batch(wire, weight, &mut exits);
        for (out, &count) in exits.iter().enumerate() {
            if count > 0 {
                // lint: relaxed-ok(RMWs on one location totally order in the modification order; cross-wire step claims hold only at quiescence)
                self.output_counts[out].fetch_add(count, Ordering::Relaxed);
            }
        }
        exits
    }

    /// Batched [`next_value`](Self::next_value): claims `weight`
    /// distinct counter values in one traversal and returns them
    /// (unordered). Concurrent batches never overlap, and at
    /// quiescence the union of all handed-out values is dense — but
    /// values *within and across* in-flight batches may be claimed out
    /// of real-time order, so a batched counter is quiescently
    /// consistent rather than linearizable (the standard trade of
    /// batched id allocation; see DESIGN.md §12).
    ///
    /// # Panics
    ///
    /// Panics if `wire >= width`.
    pub fn next_batch(&self, wire: usize, weight: u64) -> Vec<u64> {
        let mut values = Vec::with_capacity(weight as usize);
        if weight == 0 {
            return values;
        }
        // lint: relaxed-ok(per-wire arrival tally; only read at quiescence, where the caller's join/sync supplies the edge)
        self.input_counts[wire].fetch_add(weight, Ordering::Relaxed);
        self.metrics.tokens.add(weight);
        self.metrics.batch_flushes.inc();
        self.metrics.batch_tokens.add(weight);
        let mut exits = vec![0u64; self.width()];
        self.route_batch(wire, weight, &mut exits);
        let w = self.width() as u64;
        for (out, &count) in exits.iter().enumerate() {
            if count == 0 {
                continue;
            }
            // lint: relaxed-ok(the rounds come from this wire's own RMW modification order, which alone determines the handed-out values)
            let round = self.output_counts[out].fetch_add(count, Ordering::Relaxed);
            for j in 0..count {
                values.push(out as u64 + (round + j) * w);
            }
        }
        values
    }

    /// Distributed-counter semantics: routes a token and returns
    /// `out + w * round`. Concurrent calls hand out distinct values with
    /// no gaps once quiescent.
    ///
    /// # Panics
    ///
    /// Panics if `wire >= width`.
    pub fn next_value(&self, wire: usize) -> u64 {
        // lint: relaxed-ok(per-wire arrival tally; only read at quiescence, where the caller's join/sync supplies the edge)
        let arrival = self.input_counts[wire].fetch_add(1, Ordering::Relaxed);
        self.metrics.tokens.inc();
        let span = self.start_traverse_span(wire, arrival);
        let out = self.route_token(wire);
        // lint: relaxed-ok(the round comes from this wire's own RMW modification order, which alone determines the handed-out value)
        let round = self.output_counts[out].fetch_add(1, Ordering::Relaxed);
        let value = out as u64 + round * self.width() as u64;
        // The span must close *after* the round claim: the fetch_add
        // above is the linearization point of a single-component
        // counter, and the history oracle reconstructs invocation/
        // response intervals (and the handed-out value) from these
        // spans. Closing early would shrink the interval past the
        // effect and break the real-time precedence order.
        if let Some((trace, start)) = span {
            self.tracer.record(
                Span::new("exec.traverse", trace)
                    .between(start, S::monotonic_now())
                    .with("out", out as u64)
                    .with("value", value),
            );
        }
        value
    }

    /// Opens a sampled `exec.traverse` span for the token that is the
    /// `arrival`-th on `wire`: `Some((trace, start))` if the token is
    /// sampled, `None` (a single branch when tracing is disabled)
    /// otherwise. The pseudo trace id interleaves wires so any
    /// power-of-two sampling mask stays uniform across wires.
    #[inline]
    fn start_traverse_span(&self, wire: usize, arrival: u64) -> Option<(u64, u64)> {
        let trace = arrival * self.width() as u64 + wire as u64;
        if self.tracer.should_sample(trace) {
            Some((trace, S::monotonic_now()))
        } else {
            None
        }
    }

    /// Closes a span opened by
    /// [`start_traverse_span`](Self::start_traverse_span).
    #[inline]
    fn finish_traverse_span(&self, span: Option<(u64, u64)>, out: usize) {
        if let Some((trace, start)) = span {
            self.tracer.record(
                Span::new("exec.traverse", trace)
                    .between(start, S::monotonic_now())
                    .with("out", out as u64),
            );
        }
    }

    /// The locked traversal: a structure read lock for the duration,
    /// per-component mutexes per hop. Returns the exit wire.
    fn traverse_locked(&self, wire: usize) -> usize {
        let structure = self.structure.read();
        let mut addr = network_input_address(&self.tree, wire, self.style);
        let mut depth = 0u64;
        loop {
            let owner = addr.owner_under(&structure.cut).expect("valid cut");
            let in_port = input_port_of(&self.tree, &owner, &addr, self.style);
            let out_port = {
                let mut comp = self.metrics.lock::<S>(&structure.components[&owner]);
                comp.process_token(in_port)
            };
            depth += 1;
            match resolve_output(&self.tree, &owner, out_port, self.style) {
                OutputDestination::Wire(next) => addr = next,
                OutputDestination::NetworkOutput(out) => {
                    self.metrics.traversal_depth.record(depth);
                    return out;
                }
            }
        }
    }

    /// The lock-free traversal: pin the published snapshot, validate
    /// its epoch, then cross the cut with one `fetch_add` per leaf.
    /// Returns the exit wire.
    ///
    /// Protocol notes (`DESIGN.md` §8):
    /// - The snapshot is loaded *before* the gate pin, so the load
    ///   races reconfiguration and may be stale; the epoch check under
    ///   the pin detects that (the pin synchronizes with the last
    ///   writer's gate release, so the epoch load reads the installed
    ///   epoch, and no writer can bump it while any pin is held).
    ///   A failed validation retries; the pin acquired during the
    ///   retry happens-after the interfering writer, so the reloaded
    ///   snapshot is current and the loop takes at most one retry per
    ///   reconfiguration raced.
    /// - Per-leaf, the arrival tally precedes the hop claim; at the
    ///   harvest quiescent point both sums agree (every token either
    ///   did both or neither — the gate guarantees it).
    fn traverse_fast(&self, wire: usize) -> usize {
        loop {
            let snap = self.snapshot.load();
            let pin = self.gate.read();
            if snap.epoch != self.epoch.load(Ordering::Acquire) {
                self.metrics.snapshot_retries.inc();
                drop(pin);
                continue;
            }
            self.metrics.fastpath_hits.inc();
            let (mut leaf_idx, mut port) = snap.entries[wire];
            let mut depth = 0u64;
            loop {
                let leaf = &snap.leaves[leaf_idx];
                // lint: relaxed-ok(per-epoch arrival tally; read only at the harvest quiescent point, where the gate write acquisition supplies the edge)
                leaf.arrivals[port].fetch_add(1, Ordering::Relaxed);
                // lint: relaxed-ok(the output port comes from this leaf's own RMW modification order, which alone determines it; harvest reads under the gate edge)
                let hop = leaf.hops.fetch_add(1, Ordering::Relaxed);
                let out_port = ((leaf.base_tokens + hop) % leaf.width as u64) as usize;
                depth += 1;
                match leaf.routes[out_port] {
                    FastRoute::Leaf { leaf: next, port: next_port } => {
                        leaf_idx = next;
                        port = next_port;
                    }
                    FastRoute::Exit(out) => {
                        self.metrics.traversal_depth.record(depth);
                        drop(pin);
                        return out;
                    }
                }
            }
        }
    }

    /// The weighted lock-free traversal: carries `weight` tokens
    /// through the pinned snapshot with **one `fetch_add` per leaf
    /// crossed** (two with the arrival tally), however large the
    /// batch.
    ///
    /// The batch claims positions `[h, h + k)` of a leaf's
    /// modification order atomically (`hops.fetch_add(k)`), and
    /// round-robin output is a pure function of position, so the
    /// tokens leaving on output port `q` number
    /// `port_emissions(base + h + k, width, q) -
    ///  port_emissions(base + h, width, q)` — the same delta
    /// arithmetic [`Component::absorb_batch`] uses, which is why the
    /// writer's residue harvest stays exact under weighted tokens
    /// with **no changes**: arrivals and hops are bumped by equal
    /// totals, and absorb only ever looks at sums.
    ///
    /// Downstream weights are accumulated per (leaf, port) and
    /// processed in increasing leaf index: snapshot routes only ever
    /// point at strictly higher leaf indices (leaves are in
    /// `ComponentId` pre-order and wires flow down the cut;
    /// [`build_snapshot`](Self::build_snapshot) asserts it), so a
    /// single in-order sweep settles the whole batch.
    fn traverse_fast_batch(&self, wire: usize, weight: u64, exits: &mut [u64]) {
        loop {
            let snap = self.snapshot.load();
            let pin = self.gate.read();
            if snap.epoch != self.epoch.load(Ordering::Acquire) {
                self.metrics.snapshot_retries.inc();
                drop(pin);
                continue;
            }
            self.metrics.fastpath_hits.add(weight);
            // Pending weight per (leaf, port), settled in index order.
            let mut pending: Vec<Vec<u64>> =
                snap.leaves.iter().map(|l| vec![0u64; l.width]).collect();
            let (leaf0, port0) = snap.entries[wire];
            pending[leaf0][port0] = weight;
            let mut depth = 0u64;
            for leaf_idx in leaf0..snap.leaves.len() {
                let leaf = &snap.leaves[leaf_idx];
                let total: u64 = pending[leaf_idx].iter().sum();
                if total == 0 {
                    continue;
                }
                depth += 1;
                for (port, &k) in pending[leaf_idx].iter().enumerate() {
                    if k > 0 {
                        // lint: relaxed-ok(per-epoch arrival tally; read only at the harvest quiescent point, where the gate write acquisition supplies the edge)
                        leaf.arrivals[port].fetch_add(k, Ordering::Relaxed);
                    }
                }
                // lint: relaxed-ok(the claimed position range comes from this leaf's own RMW modification order, which alone determines the outputs; harvest reads under the gate edge)
                let h = leaf.hops.fetch_add(total, Ordering::Relaxed);
                let before = leaf.base_tokens + h;
                for (q, route) in leaf.routes.iter().enumerate() {
                    let emitted = port_emissions(before + total, leaf.width, q)
                        - port_emissions(before, leaf.width, q);
                    if emitted == 0 {
                        continue;
                    }
                    match *route {
                        FastRoute::Leaf { leaf: next, port } => {
                            debug_assert!(next > leaf_idx, "snapshot routes flow forward");
                            pending[next][port] += emitted;
                        }
                        FastRoute::Exit(out) => exits[out] += emitted,
                    }
                }
            }
            // One depth sample per batch: leaves crossed by the batch
            // (its widest token path), not per token.
            self.metrics.traversal_depth.record(depth);
            drop(pin);
            return;
        }
    }

    /// Splits leaf `id`, blocking until in-flight tokens drain (the
    /// write lock waits out all readers, so the transfer is exact).
    ///
    /// # Errors
    ///
    /// Returns [`AdaptError::Cut`] if `id` is not a splittable leaf.
    pub fn split(&self, id: &ComponentId) -> Result<(), AdaptError> {
        let mut structure = self.structure.write();
        match self.mode {
            ExecMode::Locked => {
                Self::split_locked(&self.tree, self.style, &mut structure, id)?;
            }
            ExecMode::LockFree => {
                // Drain: block until every pinned token completes its
                // traversal; new tokens stall at the gate (or fail
                // epoch validation and retry after we release it).
                let drain = self.gate.write();
                self.harvest_into(&mut structure);
                let result = Self::split_locked(&self.tree, self.style, &mut structure, id);
                // Republish even on error: the harvest rebased the
                // authoritative components, so the outstanding
                // snapshot's `base_tokens` are stale either way.
                self.publish(&structure);
                drop(drain);
                result?;
            }
        }
        self.metrics.splits.inc();
        Ok(())
    }

    fn split_locked(
        tree: &Tree,
        style: WiringStyle,
        structure: &mut Structure<S>,
        id: &ComponentId,
    ) -> Result<(), AdaptError> {
        let mut cut = structure.cut.clone();
        cut.split(tree, id).map_err(AdaptError::Cut)?;
        // Compute the transfer before touching the map so a deferred
        // transfer leaves the structure untouched. (Under the write lock
        // the network is quiescent, so deferral cannot actually happen —
        // this is belt and braces.)
        let children = {
            let parent = structure.components[id].lock();
            split_component(tree, &parent, style)
                .map_err(|why| AdaptError::Deferred(id.clone(), why))?
        };
        structure.components.remove(id);
        for child in children {
            let rank = lock_rank(child.id());
            structure
                .components
                .insert(child.id().clone(), S::Mutex::with_rank(child, rank));
        }
        structure.cut = cut;
        Ok(())
    }

    /// Merges the subtree under `id` back into one component (recursive,
    /// like [`LocalAdaptiveNetwork::merge`]).
    ///
    /// # Errors
    ///
    /// Returns [`AdaptError::Cut`] if `id` is a leaf already or not
    /// covered by the cut.
    ///
    /// [`LocalAdaptiveNetwork::merge`]: crate::LocalAdaptiveNetwork::merge
    pub fn merge(&self, id: &ComponentId) -> Result<(), AdaptError> {
        let mut structure = self.structure.write();
        match self.mode {
            ExecMode::Locked => {
                Self::merge_locked(&self.tree, self.style, &mut structure, id)?;
            }
            ExecMode::LockFree => {
                let drain = self.gate.write();
                self.harvest_into(&mut structure);
                let result = Self::merge_locked(&self.tree, self.style, &mut structure, id);
                self.publish(&structure);
                drop(drain);
                result?;
            }
        }
        self.metrics.merges.inc();
        Ok(())
    }

    /// Folds the outstanding snapshot's per-epoch counter residues back
    /// into the authoritative components. Called at the drain quiescent
    /// point (gate held exclusively): the gate write acquisition
    /// happens-after every drained token's release, so the relaxed
    /// per-leaf tallies read exactly.
    ///
    /// The batch transfer is exact because a component's output
    /// behaviour depends only on its counter: `n` fast-path tokens
    /// through a leaf with arrival profile `deltas` leave the
    /// [`Component`] in precisely the state `n` sequential
    /// `process_token` calls would have ([`Component::absorb_batch`]).
    fn harvest_into(&self, structure: &mut Structure<S>) {
        let snap = self.snapshot.load();
        debug_assert_eq!(
            snap.epoch,
            self.epoch.load(Ordering::Acquire),
            "harvest must run against the installed snapshot"
        );
        for leaf in &snap.leaves {
            let deltas: Vec<u64> =
                leaf.arrivals.iter().map(|a| a.load(Ordering::Acquire)).collect();
            let n: u64 = deltas.iter().sum();
            if n == 0 {
                continue;
            }
            debug_assert_eq!(
                n,
                leaf.hops.load(Ordering::Acquire),
                "drained tokens tally arrivals and hops equally"
            );
            let mut comp = structure
                .components
                .get(&leaf.id)
                .expect("snapshot mirrors the structure")
                .lock();
            debug_assert_eq!(comp.tokens(), leaf.base_tokens, "snapshot base out of date");
            comp.absorb_batch(&deltas);
        }
    }

    /// Builds and installs a fresh snapshot for the (post-harvest,
    /// post-reconfiguration) structure under the next epoch. Runs with
    /// the gate held exclusively, so no token is pinned.
    fn publish(&self, structure: &Structure<S>) {
        let epoch = self.epoch.load(Ordering::Acquire) + 1;
        let snap = Self::build_snapshot(&self.tree, self.style, structure, epoch);
        self.snapshot.store(Arc::new(snap));
        self.epoch.store(epoch, Ordering::Release);
    }

    /// Reduces the cut to its immutable fast-path form: per-leaf atomic
    /// round-robin counters with fully precomputed routing.
    fn build_snapshot(
        tree: &Tree,
        style: WiringStyle,
        structure: &Structure<S>,
        epoch: u64,
    ) -> FastSnapshot<S> {
        let index: BTreeMap<ComponentId, usize> = structure
            .cut
            .leaves()
            .iter()
            .enumerate()
            .map(|(i, id)| (id.clone(), i))
            .collect();
        let leaves: Vec<FastLeaf<S>> = structure
            .cut
            .leaves()
            .iter()
            .map(|id| {
                let comp = structure.components[id].lock();
                assert_eq!(
                    comp.floating(),
                    0,
                    "shared-memory reconfigurations are quiescent, so components \
                     never owe in-flight tokens"
                );
                let width = comp.width();
                let routes = (0..width)
                    .map(|out_port| match resolve_output(tree, id, out_port, style) {
                        OutputDestination::Wire(next) => {
                            let owner = next.owner_under(&structure.cut).expect("valid cut");
                            let port = input_port_of(tree, &owner, &next, style)
                                .expect("cut-boundary wire maps to an input port");
                            FastRoute::Leaf { leaf: index[&owner], port }
                        }
                        OutputDestination::NetworkOutput(out) => FastRoute::Exit(out),
                    })
                    .collect();
                FastLeaf {
                    id: id.clone(),
                    width,
                    base_tokens: comp.tokens(),
                    hops: CachePadded::new(S::AtomicU64::new(0)),
                    arrivals: (0..width)
                        .map(|_| CachePadded::new(S::AtomicU64::new(0)))
                        .collect(),
                    routes,
                }
            })
            .collect();
        // The batched traversal settles pending weights in one
        // in-order sweep, which is sound because internal wires only
        // ever point at strictly later leaves (leaves are in
        // `ComponentId` pre-order — topological for every wiring).
        for (i, leaf) in leaves.iter().enumerate() {
            for route in &leaf.routes {
                if let FastRoute::Leaf { leaf: next, .. } = route {
                    assert!(*next > i, "snapshot routes must flow forward: {i} -> {next}");
                }
            }
        }
        let entries = (0..tree.width())
            .map(|wire| {
                let addr = network_input_address(tree, wire, style);
                let owner = addr.owner_under(&structure.cut).expect("valid cut");
                let port = input_port_of(tree, &owner, &addr, style)
                    .expect("network input maps to an input port");
                (index[&owner], port)
            })
            .collect();
        FastSnapshot { epoch, entries, leaves }
    }

    fn merge_locked(
        tree: &Tree,
        style: WiringStyle,
        structure: &mut Structure<S>,
        id: &ComponentId,
    ) -> Result<(), AdaptError> {
        if structure.cut.contains(id) {
            return Err(AdaptError::Cut(CutError::NotALeaf(id.clone())));
        }
        let children_ids = tree.children(id);
        if children_ids.is_empty() {
            return Err(AdaptError::Cut(CutError::ChildrenNotLeaves(id.clone())));
        }
        for child in &children_ids {
            if !structure.cut.contains(child) {
                Self::merge_locked(tree, style, structure, child)?;
            }
        }
        let children: Vec<Component> = children_ids
            .iter()
            .map(|c| structure.components[c].lock().clone())
            .collect();
        let parent = merge_components(tree, id, &children, style)
            .map_err(|why| AdaptError::Deferred(id.clone(), why))?;
        for c in &children_ids {
            structure.components.remove(c);
        }
        let rank = lock_rank(id);
        structure.components.insert(id.clone(), S::Mutex::with_rank(parent, rank));
        structure.cut.merge(tree, id).expect("children are leaves now");
        Ok(())
    }

    /// Tokens that exited per output wire (quiescent snapshots have the
    /// step property). `Acquire` pairs with the caller's quiescence
    /// protocol (thread join or stronger); the per-wire RMWs themselves
    /// stay `Relaxed`.
    #[must_use]
    pub fn output_counts(&self) -> Vec<u64> {
        self.output_counts.iter().map(|c| c.load(Ordering::Acquire)).collect()
    }

    /// Tokens that arrived per input wire (diagnostic; exact once
    /// quiescent).
    #[must_use]
    pub fn input_counts(&self) -> Vec<u64> {
        self.input_counts.iter().map(|c| c.load(Ordering::Acquire)).collect()
    }

    /// Total tokens that exited.
    #[must_use]
    pub fn total_exited(&self) -> u64 {
        self.output_counts.iter().map(|c| c.load(Ordering::Acquire)).sum()
    }

    /// A monotone contention indicator: the sum of the counters that
    /// tick when the fast path collides with reconfiguration
    /// (`acn.conc.snapshot_retries`) or tokens wait on component locks
    /// (`acn.conc.lock_contention`). Reads zero when no telemetry
    /// registry is attached. The sharded front-end's adaptive batch
    /// sizing treats a rising signal as pressure to grow batches.
    #[must_use]
    pub fn contention_signal(&self) -> u64 {
        self.metrics.snapshot_retries.get() + self.metrics.lock_contention.get()
    }
}

impl<S: SyncApi> std::fmt::Debug for SharedAdaptiveNetwork<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let structure = self.structure.read();
        f.debug_struct("SharedAdaptiveNetwork")
            .field("width", &self.tree.width())
            .field("components", &structure.cut.leaves().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sequential_behaviour_matches_local() {
        let shared = SharedAdaptiveNetwork::new(16);
        let mut local = crate::LocalAdaptiveNetwork::new(16);
        let root = ComponentId::root();
        for t in 0..10usize {
            assert_eq!(shared.push(t % 16), local.push(t % 16));
        }
        shared.split(&root).unwrap();
        local.split(&root).unwrap();
        for t in 10..30usize {
            assert_eq!(shared.push((t * 3) % 16), local.push((t * 3) % 16));
        }
        shared.merge(&root).unwrap();
        local.merge(&root).unwrap();
        for t in 30..40usize {
            assert_eq!(shared.push(t % 16), local.push(t % 16));
        }
    }

    #[test]
    fn concurrent_values_are_distinct_and_dense() {
        let net = Arc::new(SharedAdaptiveNetwork::new(8));
        net.split(&ComponentId::root()).unwrap();
        let mut handles = Vec::new();
        for t in 0..8usize {
            let net = Arc::clone(&net);
            handles.push(std::thread::spawn(move || {
                (0..200).map(|i| net.next_value((t + i) % 8)).collect::<Vec<u64>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker panicked"))
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..1600u64).collect::<Vec<u64>>());
    }

    #[test]
    fn concurrent_pushes_with_live_reconfiguration() {
        let net = Arc::new(SharedAdaptiveNetwork::new(16));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut handles = Vec::new();
        for t in 0..4usize {
            let net = Arc::clone(&net);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                let mut n = 0u64;
                // lint: relaxed-ok(test stop flag; any stale read only runs one more harmless iteration)
                while !stop.load(Ordering::Relaxed) {
                    let _ = net.push((t * 5 + n as usize) % 16);
                    n += 1;
                }
                n
            }));
        }
        // Reconfigure while traffic flows.
        let root = ComponentId::root();
        for _ in 0..30 {
            net.split(&root).expect("split at quiescence");
            net.split(&root.child(0)).expect("split at quiescence");
            net.merge(&root).expect("merge at quiescence");
        }
        // lint: relaxed-ok(test stop flag; workers observe it eventually, exactness is not required)
        stop.store(true, Ordering::Relaxed);
        let pushed: u64 = handles.into_iter().map(|h| h.join().expect("worker")).sum();
        assert_eq!(net.total_exited(), pushed, "token conservation");
        let counts = net.output_counts();
        assert!(
            acn_bitonic::step::is_step_sequence(&counts),
            "step property violated: {counts:?}"
        );
        assert!(net.structure_consistent(), "components must mirror the cut");
    }

    #[test]
    fn telemetry_counts_tokens_depth_and_reconfigurations() {
        let registry = Registry::new();
        let mut net = SharedAdaptiveNetwork::new(8);
        net.attach_telemetry(&registry);
        let net = Arc::new(net);
        let root = ComponentId::root();
        net.split(&root).unwrap();
        for t in 0..40usize {
            net.push(t % 8);
        }
        net.merge(&root).unwrap();
        for t in 0..10usize {
            let _ = net.next_value(t % 8);
        }
        let snap = registry.snapshot();
        assert_eq!(snap.counter("acn.conc.tokens"), Some(50));
        assert_eq!(snap.counter("acn.conc.splits"), Some(1));
        assert_eq!(snap.counter("acn.conc.merges"), Some(1));
        let depth = snap.histogram("acn.conc.traversal_depth").expect("depth histogram");
        assert_eq!(depth.count, 50);
        // Every token crosses at least one component; under the split cut
        // a token crosses two.
        assert!(depth.sum >= 50 + 40, "sum {} too small", depth.sum);
        // No contention in a single-threaded run.
        assert_eq!(snap.counter("acn.conc.lock_contention"), Some(0));
    }

    #[test]
    fn locked_and_lockfree_modes_agree() {
        // Both executors are implementations of the same specification;
        // a deterministic single-threaded run must agree exactly,
        // across reconfigurations.
        let fast = SharedAdaptiveNetwork::new(16);
        let locked = SharedAdaptiveNetwork::new_locked(16);
        assert_eq!(fast.mode(), ExecMode::LockFree);
        assert_eq!(locked.mode(), ExecMode::Locked);
        let root = ComponentId::root();
        for t in 0..20usize {
            assert_eq!(fast.push((t * 7) % 16), locked.push((t * 7) % 16));
        }
        fast.split(&root).unwrap();
        locked.split(&root).unwrap();
        for t in 0..20usize {
            assert_eq!(fast.next_value(t % 16), locked.next_value(t % 16));
        }
        fast.split(&root.child(0)).unwrap();
        locked.split(&root.child(0)).unwrap();
        for t in 0..20usize {
            assert_eq!(fast.push((t * 3) % 16), locked.push((t * 3) % 16));
        }
        fast.merge(&root).unwrap();
        locked.merge(&root).unwrap();
        for t in 0..20usize {
            assert_eq!(fast.next_value(t % 16), locked.next_value(t % 16));
        }
        assert_eq!(fast.output_counts(), locked.output_counts());
    }

    #[test]
    fn fastpath_telemetry_counts_hits_and_retries() {
        let registry = Registry::new();
        let mut net = SharedAdaptiveNetwork::new(8);
        net.attach_telemetry(&registry);
        let root = ComponentId::root();
        net.split(&root).unwrap();
        for t in 0..24usize {
            net.push(t % 8);
        }
        let snap = registry.snapshot();
        assert_eq!(snap.counter("acn.conc.fastpath_hits"), Some(24));
        // Single-threaded: no reconfiguration ever races a pin.
        assert_eq!(snap.counter("acn.conc.snapshot_retries"), Some(0));
        // And no token touched a component lock.
        assert_eq!(snap.counter("acn.conc.lock_contention"), Some(0));
    }

    #[test]
    fn contention_probe_counts_exactly_one_wait() {
        // Regression (ISSUE 3 satellite): the probe must be folded into
        // a single acquisition path — an uncontended lock is one touch
        // and zero contention; a contended lock counts exactly once.
        let registry = Registry::new();
        let metrics = ConcMetrics::attach(&registry);
        let tree = Tree::new(4);
        let mutex: Arc<<RealSync as SyncApi>::Mutex<Component>> =
            Arc::new(SyncMutex::new(Component::new(&tree, &ComponentId::root())));

        // Uncontended: no contention counted.
        drop(metrics.lock::<RealSync>(&mutex));
        assert_eq!(registry.snapshot().counter("acn.conc.lock_contention"), Some(0));

        // Contended: hold the lock elsewhere while a probe acquires.
        let guard = mutex.lock();
        let waiter = {
            let mutex = Arc::clone(&mutex);
            let metrics = ConcMetrics::attach(&registry);
            std::thread::spawn(move || {
                drop(metrics.lock::<RealSync>(&mutex));
            })
        };
        // Let the waiter reach the blocking acquisition, then release.
        while registry.snapshot().counter("acn.conc.lock_contention") != Some(1) {
            std::thread::yield_now();
        }
        drop(guard);
        waiter.join().unwrap();
        assert_eq!(registry.snapshot().counter("acn.conc.lock_contention"), Some(1));
    }

    #[test]
    fn lock_ranks_follow_component_order() {
        let ids = [
            ComponentId::root(),
            ComponentId::from_path(vec![0]),
            ComponentId::from_path(vec![0, 1]),
            ComponentId::from_path(vec![1]),
            ComponentId::from_path(vec![4]),
            ComponentId::from_path(vec![5, 3]),
        ];
        for a in &ids {
            for b in &ids {
                if a < b {
                    assert!(
                        lock_rank(a) < lock_rank(b),
                        "rank order must follow ComponentId order: {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn batched_traversal_matches_sequential_replay() {
        // A weight-n batch must be indistinguishable (in exit counts
        // and subsequent behaviour) from n sequential pushes on a twin
        // network — round-robin output is oblivious to arrival order.
        let batched = SharedAdaptiveNetwork::new(8);
        let twin = SharedAdaptiveNetwork::new(8);
        let root = ComponentId::root();
        batched.split(&root).unwrap();
        twin.split(&root).unwrap();

        let exits = batched.push_batch(3, 10);
        let mut expect = vec![0u64; 8];
        for _ in 0..10 {
            expect[twin.push(3)] += 1;
        }
        assert_eq!(exits, expect);
        assert_eq!(exits.iter().sum::<u64>(), 10);

        // Scalar tokens after the batch still agree hop for hop.
        for t in 0..16usize {
            assert_eq!(batched.push(t % 8), twin.push(t % 8));
        }
        assert_eq!(batched.output_counts(), twin.output_counts());

        // And a batch after a reconfiguration (exact residue harvest
        // of the weighted arrivals) still agrees.
        batched.merge(&root).unwrap();
        twin.merge(&root).unwrap();
        let exits = batched.push_batch(1, 7);
        let mut expect = vec![0u64; 8];
        for _ in 0..7 {
            expect[twin.push(1)] += 1;
        }
        assert_eq!(exits, expect);
    }

    #[test]
    fn next_batch_values_are_dense_with_mixed_scalars() {
        let net = SharedAdaptiveNetwork::new(8);
        net.split(&ComponentId::root()).unwrap();
        let mut all = net.next_batch(0, 5);
        all.push(net.next_value(3));
        all.extend(net.next_batch(6, 4));
        all.push(net.next_value(1));
        all.extend(net.next_batch(2, 1));
        all.sort_unstable();
        assert_eq!(all, (0..12u64).collect::<Vec<u64>>());
        let counts = net.output_counts();
        assert!(
            acn_bitonic::step::is_step_sequence(&counts),
            "step property violated: {counts:?}"
        );
    }

    #[test]
    fn locked_mode_batches_agree_with_lockfree() {
        let fast = SharedAdaptiveNetwork::new(8);
        let locked = SharedAdaptiveNetwork::new_locked(8);
        let root = ComponentId::root();
        fast.split(&root).unwrap();
        locked.split(&root).unwrap();
        for (wire, weight) in [(0usize, 6u64), (5, 1), (3, 9), (3, 0), (7, 4)] {
            assert_eq!(fast.push_batch(wire, weight), locked.push_batch(wire, weight));
        }
        let mut a = fast.next_batch(2, 5);
        let mut b = locked.next_batch(2, 5);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert_eq!(fast.output_counts(), locked.output_counts());
    }

    #[test]
    fn batch_telemetry_counts_flushes_and_tokens() {
        let registry = Registry::new();
        let mut net = SharedAdaptiveNetwork::new(8);
        net.attach_telemetry(&registry);
        net.split(&ComponentId::root()).unwrap();
        let _ = net.push_batch(0, 12);
        let _ = net.next_batch(4, 8);
        let _ = net.push_batch(1, 0); // zero-weight: not a flush
        let snap = registry.snapshot();
        assert_eq!(snap.counter("acn.exec.batch_flushes"), Some(2));
        assert_eq!(snap.counter("acn.exec.batch_tokens"), Some(20));
        // Batched tokens count as fast-path hits and tokens too.
        assert_eq!(snap.counter("acn.conc.fastpath_hits"), Some(20));
        assert_eq!(snap.counter("acn.conc.tokens"), Some(20));
    }

    #[test]
    fn concurrent_batches_with_live_reconfiguration() {
        let net = Arc::new(SharedAdaptiveNetwork::new(16));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut handles = Vec::new();
        for t in 0..4usize {
            let net = Arc::clone(&net);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                let mut values = Vec::new();
                let mut n = 0u64;
                // lint: relaxed-ok(test stop flag; any stale read only runs one more harmless iteration)
                while !stop.load(Ordering::Relaxed) {
                    values.extend(net.next_batch((t * 5 + n as usize) % 16, 1 + n % 7));
                    n += 1;
                }
                values
            }));
        }
        let root = ComponentId::root();
        for _ in 0..20 {
            net.split(&root).expect("split at quiescence");
            net.merge(&root).expect("merge at quiescence");
        }
        // lint: relaxed-ok(test stop flag; workers observe it eventually, exactness is not required)
        stop.store(true, Ordering::Relaxed);
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker panicked"))
            .collect();
        all.sort_unstable();
        let expect: Vec<u64> = (0..all.len() as u64).collect();
        assert_eq!(all, expect, "batched values must be distinct and dense");
        assert!(net.structure_consistent());
    }

    #[test]
    fn send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SharedAdaptiveNetwork>();
    }
}
