//! A thread-safe shared-memory adaptive counting network.
//!
//! Counting networks were born as shared-memory structures (the paper's
//! lineage runs through Aspnes–Herlihy–Shavit and diffracting trees);
//! [`SharedAdaptiveNetwork`] brings the *adaptive* construction into that
//! setting. Tokens from many threads traverse the component graph with
//! **per-component locks** — concurrent tokens in different components
//! proceed in parallel, exactly like tokens on different nodes of the
//! distributed deployment — while reconfiguration (split/merge) takes
//! the structure lock exclusively, which also makes every
//! reconfiguration point quiescent (so state transfer is always exact
//! and never deferred).
//!
//! # Synchronization abstraction
//!
//! The network is generic over [`SyncApi`]: production code uses the
//! default [`RealSync`] (parking_lot + std atomics, zero-cost), while
//! `acn-check`'s `VirtualSync` routes every primitive through a
//! schedule-exploring model checker. Per-component locks are *ranked*
//! by the `ComponentId` total order (pre-order over `T_w`), declaring
//! the workspace lock order; the checker enforces it dynamically.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use acn_core::SharedAdaptiveNetwork;
//!
//! let net = Arc::new(SharedAdaptiveNetwork::new(8));
//! let workers: Vec<_> = (0..4)
//!     .map(|t| {
//!         let net = Arc::clone(&net);
//!         std::thread::spawn(move || (0..100).map(|i| net.next_value((t + i) % 8)).count())
//!     })
//!     .collect();
//! for w in workers {
//!     w.join().unwrap();
//! }
//! assert_eq!(net.total_exited(), 400);
//! ```

use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};

use acn_sync::{Ordering, RealSync, SyncApi, SyncAtomicU64, SyncMutex, SyncRwLock};
use acn_telemetry::{Counter, Histogram, Registry};

use acn_topology::{
    input_port_of, network_input_address, resolve_output, ComponentId, Cut, CutError,
    OutputDestination, Tree, WiringStyle,
};

use crate::component::{merge_components, split_component, Component};
use crate::local::AdaptError;

/// The lock-protected structure: the cut and its live components.
///
/// `BTreeMap` (not `HashMap`) so that iteration — and therefore lock
/// acquisition order, migration sweeps, and checker fingerprints — is
/// deterministic in the declared `ComponentId` order. (`acn-lint`
/// forbids hash collections in this module; PR 1 hit exactly this bug
/// class in the simulator.)
struct Structure<S: SyncApi> {
    cut: Cut,
    components: BTreeMap<ComponentId, S::Mutex<Component>>,
}

impl<S: SyncApi> Hash for Structure<S> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.cut.hash(state);
        self.components.hash(state);
    }
}

/// The lock-order rank of a component lock: its position in the
/// `ComponentId` total order, approximated by the pre-order index the
/// id would have in a deep tree. Ranks only need to be monotone in the
/// declared order for the checker's dynamic lock-order verification,
/// and `ComponentId`s order lexicographically by path, so encoding the
/// path bytes into a u64 (most-significant-first) preserves the order
/// for all depths that fit.
fn lock_rank(id: &ComponentId) -> u64 {
    let mut rank: u64 = 0;
    for (i, &step) in id.path().iter().take(8).enumerate() {
        // Child indices are < 8 for every component kind; one octal
        // digit per level keeps lexicographic order. Deeper levels tie,
        // which is still a valid (coarser) order declaration.
        rank |= u64::from(step + 1) << (56 - 8 * i);
    }
    rank
}

/// Telemetry handles for the shared runtime (all no-ops by default).
#[derive(Debug, Default)]
struct ConcMetrics {
    /// `acn.conc.traversal_depth` — components crossed per token.
    traversal_depth: Histogram,
    /// `acn.conc.lock_contention` — component-lock acquisitions that had
    /// to wait because another token held the lock.
    lock_contention: Counter,
    /// `acn.conc.tokens` — tokens routed through the network.
    tokens: Counter,
    /// `acn.conc.splits` / `acn.conc.merges` — reconfigurations applied.
    splits: Counter,
    merges: Counter,
}

impl ConcMetrics {
    fn attach(registry: &Registry) -> Self {
        ConcMetrics {
            traversal_depth: registry.histogram("acn.conc.traversal_depth"),
            lock_contention: registry.counter("acn.conc.lock_contention"),
            tokens: registry.counter("acn.conc.tokens"),
            splits: registry.counter("acn.conc.splits"),
            merges: registry.counter("acn.conc.merges"),
        }
    }

    /// Locks `mutex`, counting the acquisition as contended when another
    /// holder forced a wait. Purely observational: the token takes the
    /// same lock either way. Under the model checker
    /// (`CONTENTION_PROBES == false`) the probe is skipped so the
    /// observation does not double the explored operations.
    fn lock<'a, S: SyncApi>(
        &self,
        mutex: &'a S::Mutex<Component>,
    ) -> <S::Mutex<Component> as SyncMutex<Component>>::Guard<'a> {
        if !S::CONTENTION_PROBES {
            return mutex.lock();
        }
        match mutex.try_lock() {
            Some(guard) => guard,
            None => {
                self.lock_contention.inc();
                mutex.lock()
            }
        }
    }
}

/// A concurrent adaptive counting network for one address space.
///
/// Cloneable via `Arc`; see the module docs for the locking discipline.
/// Generic over [`SyncApi`] (default [`RealSync`]) so the same code is
/// both the production executor and the model-checked artifact.
pub struct SharedAdaptiveNetwork<S: SyncApi = RealSync> {
    tree: Tree,
    style: WiringStyle,
    structure: S::RwLock<Structure<S>>,
    input_counts: Vec<S::AtomicU64>,
    output_counts: Vec<S::AtomicU64>,
    metrics: ConcMetrics,
}

impl SharedAdaptiveNetwork<RealSync> {
    /// A new shared network of width `w`, starting as one component.
    ///
    /// # Panics
    ///
    /// Panics if `w` is not a power of two or `w < 2`.
    #[must_use]
    pub fn new(w: usize) -> Self {
        Self::new_in(w)
    }
}

impl<S: SyncApi> SharedAdaptiveNetwork<S> {
    /// A new shared network of width `w` under an explicit [`SyncApi`]
    /// (the model checker instantiates this with `VirtualSync`).
    ///
    /// # Panics
    ///
    /// Panics if `w` is not a power of two or `w < 2`.
    #[must_use]
    pub fn new_in(w: usize) -> Self {
        let tree = Tree::new(w);
        let cut = Cut::root();
        let components = cut
            .leaves()
            .iter()
            .map(|id| {
                (id.clone(), S::Mutex::with_rank(Component::new(&tree, id), lock_rank(id)))
            })
            .collect();
        SharedAdaptiveNetwork {
            tree,
            style: WiringStyle::Ahs,
            structure: S::RwLock::new(Structure { cut, components }),
            input_counts: (0..w).map(|_| S::AtomicU64::new(0)).collect(),
            output_counts: (0..w).map(|_| S::AtomicU64::new(0)).collect(),
            metrics: ConcMetrics::default(),
        }
    }

    /// Registers this network's metrics (`acn.conc.*`) with `registry`.
    ///
    /// Call before sharing the network across threads (it needs `&mut`).
    /// Telemetry is observation-only: routed values and step-property
    /// behaviour are identical with or without a registry attached.
    pub fn attach_telemetry(&mut self, registry: &Registry) {
        self.metrics = ConcMetrics::attach(registry);
    }

    /// The network width.
    #[must_use]
    pub fn width(&self) -> usize {
        self.tree.width()
    }

    /// A snapshot of the current cut.
    #[must_use]
    pub fn cut(&self) -> Cut {
        self.structure.read().cut.clone()
    }

    /// Whether the installed component set is exactly the cut's leaf
    /// set — the split/merge atomicity invariant (a token must never
    /// observe a half-installed child set). The model checker asserts
    /// this at every quiescent point.
    #[must_use]
    pub fn structure_consistent(&self) -> bool {
        let structure = self.structure.read();
        structure.components.len() == structure.cut.leaves().len()
            && structure.cut.leaves().iter().all(|id| structure.components.contains_key(id))
    }

    /// Routes one token from `wire` to an output wire. Many threads may
    /// push concurrently; the quiescent per-wire exit counts always have
    /// the step property.
    ///
    /// # Panics
    ///
    /// Panics if `wire >= width`.
    pub fn push(&self, wire: usize) -> usize {
        // lint: relaxed-ok(per-wire arrival tally; only read at quiescence, where the caller's join/sync supplies the edge)
        self.input_counts[wire].fetch_add(1, Ordering::Relaxed);
        self.metrics.tokens.inc();
        let structure = self.structure.read();
        let mut addr = network_input_address(&self.tree, wire, self.style);
        let mut depth = 0u64;
        loop {
            let owner = addr.owner_under(&structure.cut).expect("valid cut");
            let in_port = input_port_of(&self.tree, &owner, &addr, self.style);
            let out_port = {
                let mut comp = self.metrics.lock::<S>(&structure.components[&owner]);
                comp.process_token(in_port)
            };
            depth += 1;
            match resolve_output(&self.tree, &owner, out_port, self.style) {
                OutputDestination::Wire(next) => addr = next,
                OutputDestination::NetworkOutput(out) => {
                    // lint: relaxed-ok(RMWs on one location totally order in the modification order; cross-wire step claims hold only at quiescence)
                    self.output_counts[out].fetch_add(1, Ordering::Relaxed);
                    self.metrics.traversal_depth.record(depth);
                    return out;
                }
            }
        }
    }

    /// Distributed-counter semantics: routes a token and returns
    /// `out + w * round`. Concurrent calls hand out distinct values with
    /// no gaps once quiescent.
    ///
    /// # Panics
    ///
    /// Panics if `wire >= width`.
    pub fn next_value(&self, wire: usize) -> u64 {
        // lint: relaxed-ok(per-wire arrival tally; only read at quiescence, where the caller's join/sync supplies the edge)
        self.input_counts[wire].fetch_add(1, Ordering::Relaxed);
        self.metrics.tokens.inc();
        let structure = self.structure.read();
        let mut addr = network_input_address(&self.tree, wire, self.style);
        let mut depth = 0u64;
        loop {
            let owner = addr.owner_under(&structure.cut).expect("valid cut");
            let in_port = input_port_of(&self.tree, &owner, &addr, self.style);
            let out_port = {
                let mut comp = self.metrics.lock::<S>(&structure.components[&owner]);
                comp.process_token(in_port)
            };
            depth += 1;
            match resolve_output(&self.tree, &owner, out_port, self.style) {
                OutputDestination::Wire(next) => addr = next,
                OutputDestination::NetworkOutput(out) => {
                    // lint: relaxed-ok(the round comes from this wire's own RMW modification order, which alone determines the handed-out value)
                    let round = self.output_counts[out].fetch_add(1, Ordering::Relaxed);
                    self.metrics.traversal_depth.record(depth);
                    return out as u64 + round * self.width() as u64;
                }
            }
        }
    }

    /// Splits leaf `id`, blocking until in-flight tokens drain (the
    /// write lock waits out all readers, so the transfer is exact).
    ///
    /// # Errors
    ///
    /// Returns [`AdaptError::Cut`] if `id` is not a splittable leaf.
    pub fn split(&self, id: &ComponentId) -> Result<(), AdaptError> {
        let mut structure = self.structure.write();
        let mut cut = structure.cut.clone();
        cut.split(&self.tree, id).map_err(AdaptError::Cut)?;
        // Compute the transfer before touching the map so a deferred
        // transfer leaves the structure untouched. (Under the write lock
        // the network is quiescent, so deferral cannot actually happen —
        // this is belt and braces.)
        let children = {
            let parent = structure.components[id].lock();
            split_component(&self.tree, &parent, self.style)
                .map_err(|why| AdaptError::Deferred(id.clone(), why))?
        };
        structure.components.remove(id);
        for child in children {
            let rank = lock_rank(child.id());
            structure
                .components
                .insert(child.id().clone(), S::Mutex::with_rank(child, rank));
        }
        structure.cut = cut;
        self.metrics.splits.inc();
        Ok(())
    }

    /// Merges the subtree under `id` back into one component (recursive,
    /// like [`LocalAdaptiveNetwork::merge`]).
    ///
    /// # Errors
    ///
    /// Returns [`AdaptError::Cut`] if `id` is a leaf already or not
    /// covered by the cut.
    ///
    /// [`LocalAdaptiveNetwork::merge`]: crate::LocalAdaptiveNetwork::merge
    pub fn merge(&self, id: &ComponentId) -> Result<(), AdaptError> {
        let mut structure = self.structure.write();
        Self::merge_locked(&self.tree, self.style, &mut structure, id)?;
        self.metrics.merges.inc();
        Ok(())
    }

    fn merge_locked(
        tree: &Tree,
        style: WiringStyle,
        structure: &mut Structure<S>,
        id: &ComponentId,
    ) -> Result<(), AdaptError> {
        if structure.cut.contains(id) {
            return Err(AdaptError::Cut(CutError::NotALeaf(id.clone())));
        }
        let children_ids = tree.children(id);
        if children_ids.is_empty() {
            return Err(AdaptError::Cut(CutError::ChildrenNotLeaves(id.clone())));
        }
        for child in &children_ids {
            if !structure.cut.contains(child) {
                Self::merge_locked(tree, style, structure, child)?;
            }
        }
        let children: Vec<Component> = children_ids
            .iter()
            .map(|c| structure.components[c].lock().clone())
            .collect();
        let parent = merge_components(tree, id, &children, style)
            .map_err(|why| AdaptError::Deferred(id.clone(), why))?;
        for c in &children_ids {
            structure.components.remove(c);
        }
        let rank = lock_rank(id);
        structure.components.insert(id.clone(), S::Mutex::with_rank(parent, rank));
        structure.cut.merge(tree, id).expect("children are leaves now");
        Ok(())
    }

    /// Tokens that exited per output wire (quiescent snapshots have the
    /// step property). `Acquire` pairs with the caller's quiescence
    /// protocol (thread join or stronger); the per-wire RMWs themselves
    /// stay `Relaxed`.
    #[must_use]
    pub fn output_counts(&self) -> Vec<u64> {
        self.output_counts.iter().map(|c| c.load(Ordering::Acquire)).collect()
    }

    /// Tokens that arrived per input wire (diagnostic; exact once
    /// quiescent).
    #[must_use]
    pub fn input_counts(&self) -> Vec<u64> {
        self.input_counts.iter().map(|c| c.load(Ordering::Acquire)).collect()
    }

    /// Total tokens that exited.
    #[must_use]
    pub fn total_exited(&self) -> u64 {
        self.output_counts.iter().map(|c| c.load(Ordering::Acquire)).sum()
    }
}

impl<S: SyncApi> std::fmt::Debug for SharedAdaptiveNetwork<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let structure = self.structure.read();
        f.debug_struct("SharedAdaptiveNetwork")
            .field("width", &self.tree.width())
            .field("components", &structure.cut.leaves().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sequential_behaviour_matches_local() {
        let shared = SharedAdaptiveNetwork::new(16);
        let mut local = crate::LocalAdaptiveNetwork::new(16);
        let root = ComponentId::root();
        for t in 0..10usize {
            assert_eq!(shared.push(t % 16), local.push(t % 16));
        }
        shared.split(&root).unwrap();
        local.split(&root).unwrap();
        for t in 10..30usize {
            assert_eq!(shared.push((t * 3) % 16), local.push((t * 3) % 16));
        }
        shared.merge(&root).unwrap();
        local.merge(&root).unwrap();
        for t in 30..40usize {
            assert_eq!(shared.push(t % 16), local.push(t % 16));
        }
    }

    #[test]
    fn concurrent_values_are_distinct_and_dense() {
        let net = Arc::new(SharedAdaptiveNetwork::new(8));
        net.split(&ComponentId::root()).unwrap();
        let mut handles = Vec::new();
        for t in 0..8usize {
            let net = Arc::clone(&net);
            handles.push(std::thread::spawn(move || {
                (0..200).map(|i| net.next_value((t + i) % 8)).collect::<Vec<u64>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker panicked"))
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..1600u64).collect::<Vec<u64>>());
    }

    #[test]
    fn concurrent_pushes_with_live_reconfiguration() {
        let net = Arc::new(SharedAdaptiveNetwork::new(16));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut handles = Vec::new();
        for t in 0..4usize {
            let net = Arc::clone(&net);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                let mut n = 0u64;
                // lint: relaxed-ok(test stop flag; any stale read only runs one more harmless iteration)
                while !stop.load(Ordering::Relaxed) {
                    let _ = net.push((t * 5 + n as usize) % 16);
                    n += 1;
                }
                n
            }));
        }
        // Reconfigure while traffic flows.
        let root = ComponentId::root();
        for _ in 0..30 {
            net.split(&root).expect("split at quiescence");
            net.split(&root.child(0)).expect("split at quiescence");
            net.merge(&root).expect("merge at quiescence");
        }
        // lint: relaxed-ok(test stop flag; workers observe it eventually, exactness is not required)
        stop.store(true, Ordering::Relaxed);
        let pushed: u64 = handles.into_iter().map(|h| h.join().expect("worker")).sum();
        assert_eq!(net.total_exited(), pushed, "token conservation");
        let counts = net.output_counts();
        assert!(
            acn_bitonic::step::is_step_sequence(&counts),
            "step property violated: {counts:?}"
        );
        assert!(net.structure_consistent(), "components must mirror the cut");
    }

    #[test]
    fn telemetry_counts_tokens_depth_and_reconfigurations() {
        let registry = Registry::new();
        let mut net = SharedAdaptiveNetwork::new(8);
        net.attach_telemetry(&registry);
        let net = Arc::new(net);
        let root = ComponentId::root();
        net.split(&root).unwrap();
        for t in 0..40usize {
            net.push(t % 8);
        }
        net.merge(&root).unwrap();
        for t in 0..10usize {
            let _ = net.next_value(t % 8);
        }
        let snap = registry.snapshot();
        assert_eq!(snap.counter("acn.conc.tokens"), Some(50));
        assert_eq!(snap.counter("acn.conc.splits"), Some(1));
        assert_eq!(snap.counter("acn.conc.merges"), Some(1));
        let depth = snap.histogram("acn.conc.traversal_depth").expect("depth histogram");
        assert_eq!(depth.count, 50);
        // Every token crosses at least one component; under the split cut
        // a token crosses two.
        assert!(depth.sum >= 50 + 40, "sum {} too small", depth.sum);
        // No contention in a single-threaded run.
        assert_eq!(snap.counter("acn.conc.lock_contention"), Some(0));
    }

    #[test]
    fn lock_ranks_follow_component_order() {
        let ids = [
            ComponentId::root(),
            ComponentId::from_path(vec![0]),
            ComponentId::from_path(vec![0, 1]),
            ComponentId::from_path(vec![1]),
            ComponentId::from_path(vec![4]),
            ComponentId::from_path(vec![5, 3]),
        ];
        for a in &ids {
            for b in &ids {
                if a < b {
                    assert!(
                        lock_rank(a) < lock_rank(b),
                        "rank order must follow ComponentId order: {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SharedAdaptiveNetwork>();
    }
}
