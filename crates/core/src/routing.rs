//! Out-neighbour caching and name probing (paper Section 3.5).
//!
//! A component that wants to forward a token knows the *wire address* of
//! the destination (the balancer-level leaf owning the wire, computed
//! once from the static decomposition). The live owner of the wire is
//! that balancer or one of its `log w` ancestors — whichever is a leaf
//! of the current cut. Routers cache the last known owner per wire and,
//! on a miss (because the owner split or merged), probe along the
//! ancestor chain, nearest levels first. Each probe corresponds to one
//! DHT lookup in a real deployment.

use std::collections::HashMap;

use acn_topology::{ComponentId, Cut, WireAddress};

/// Cumulative probing statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeStats {
    /// Resolutions performed.
    pub lookups: u64,
    /// Name probes issued in total (>= lookups; each resolution needs at
    /// least one probe).
    pub probes: u64,
    /// Resolutions answered by the cached name (one probe).
    pub cache_hits: u64,
    /// The worst probe count of any single resolution.
    pub max_probes: u64,
}

impl ProbeStats {
    /// Mean probes per resolution.
    #[must_use]
    pub fn mean_probes(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.probes as f64 / self.lookups as f64
        }
    }
}

/// A per-router cache mapping wire addresses to their last known owner.
///
/// # Example
///
/// ```
/// use acn_core::NeighborCache;
/// use acn_topology::{network_input_address, Cut, ComponentId, Tree, WiringStyle};
///
/// let tree = Tree::new(8);
/// let mut cut = Cut::root();
/// cut.split(&tree, &ComponentId::root()).unwrap();
/// let addr = network_input_address(&tree, 0, WiringStyle::Ahs);
///
/// let mut cache = NeighborCache::new();
/// let owner = cache.resolve(&cut, &addr);
/// assert_eq!(owner, ComponentId::root().child(0));
/// // Warm resolutions cost a single probe.
/// let _ = cache.resolve(&cut, &addr);
/// assert_eq!(cache.stats().cache_hits, 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct NeighborCache {
    cache: HashMap<WireAddress, ComponentId>,
    stats: ProbeStats,
}

impl NeighborCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        NeighborCache::default()
    }

    /// Statistics accumulated so far.
    #[must_use]
    pub fn stats(&self) -> ProbeStats {
        self.stats
    }

    /// Resolves the live owner of `addr` under `cut`, counting probes.
    ///
    /// The probe order models the distributed search: first the cached
    /// name (if any), then the remaining candidates ordered by level
    /// distance from the cached name (a split moves the owner down, a
    /// merge moves it up — usually by one level).
    ///
    /// # Panics
    ///
    /// Panics if the cut does not cover the address (invalid cut).
    pub fn resolve(&mut self, cut: &Cut, addr: &WireAddress) -> ComponentId {
        self.stats.lookups += 1;
        let candidates: Vec<ComponentId> = addr.candidates().collect();
        let start_level = self
            .cache
            .get(addr)
            .map_or(candidates.len() - 1, |c| c.level());
        // Probe by increasing level distance from the cached level.
        let mut order: Vec<&ComponentId> = candidates.iter().collect();
        order.sort_by_key(|c| (c.level() as i64 - start_level as i64).unsigned_abs());
        let mut probes = 0u64;
        for candidate in order {
            probes += 1;
            if cut.contains(candidate) {
                self.stats.probes += probes;
                self.stats.max_probes = self.stats.max_probes.max(probes);
                if probes == 1 && self.cache.contains_key(addr) {
                    self.stats.cache_hits += 1;
                }
                self.cache.insert(addr.clone(), candidate.clone());
                return candidate.clone();
            }
        }
        panic!("cut does not cover wire address {addr}");
    }

    /// Drops every cached entry (e.g. after massive churn).
    pub fn clear(&mut self) {
        self.cache.clear();
    }

    /// Number of cached entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }
}

/// Finds the input component for network input `wire` by probing names
/// from the balancer upward, *without* a cache — the client-side
/// discovery of paper Section 3.5 ("Finding an Input Component").
/// Returns the owner and the number of names probed.
///
/// The paper bounds the probes by `log w - 1` plus the initial try; the
/// `exp_routing` harness measures the actual distribution.
///
/// # Panics
///
/// Panics if the cut does not cover the address.
#[must_use]
pub fn find_input_component(
    cut: &Cut,
    addr: &WireAddress,
) -> (ComponentId, u64) {
    let mut probes = 0;
    for candidate in addr.candidates() {
        probes += 1;
        if cut.contains(&candidate) {
            return (candidate, probes);
        }
    }
    panic!("cut does not cover wire address {addr}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use acn_topology::{network_input_address, Tree, WiringStyle};

    fn addr_of(tree: &Tree, wire: usize) -> WireAddress {
        network_input_address(tree, wire, WiringStyle::Ahs)
    }

    #[test]
    fn cold_resolution_probes_up_the_chain() {
        let tree = Tree::new(16);
        let cut = Cut::root();
        let mut cache = NeighborCache::new();
        let owner = cache.resolve(&cut, &addr_of(&tree, 0));
        assert_eq!(owner, ComponentId::root());
        // Cold cache starts at the balancer: probes = chain length.
        assert_eq!(cache.stats().probes, tree.max_level() as u64 + 1);
    }

    #[test]
    fn warm_resolution_costs_one_probe() {
        let tree = Tree::new(16);
        let cut = Cut::root();
        let mut cache = NeighborCache::new();
        let addr = addr_of(&tree, 3);
        let _ = cache.resolve(&cut, &addr);
        let before = cache.stats().probes;
        let _ = cache.resolve(&cut, &addr);
        assert_eq!(cache.stats().probes, before + 1);
        assert_eq!(cache.stats().cache_hits, 1);
    }

    #[test]
    fn split_costs_few_extra_probes() {
        let tree = Tree::new(16);
        let mut cut = Cut::root();
        let mut cache = NeighborCache::new();
        let addr = addr_of(&tree, 0);
        assert_eq!(cache.resolve(&cut, &addr), ComponentId::root());
        // The owner splits: the new owner is one level deeper.
        cut.split(&tree, &ComponentId::root()).unwrap();
        let before = cache.stats().probes;
        let owner = cache.resolve(&cut, &addr);
        assert_eq!(owner, ComponentId::root().child(0));
        // Probing by level distance finds it within 2-3 probes.
        assert!(cache.stats().probes - before <= 3);
    }

    #[test]
    fn merge_costs_few_extra_probes() {
        let tree = Tree::new(16);
        let mut cut = Cut::root();
        cut.split(&tree, &ComponentId::root()).unwrap();
        let mut cache = NeighborCache::new();
        let addr = addr_of(&tree, 0);
        assert_eq!(cache.resolve(&cut, &addr), ComponentId::root().child(0));
        cut.merge(&tree, &ComponentId::root()).unwrap();
        let before = cache.stats().probes;
        assert_eq!(cache.resolve(&cut, &addr), ComponentId::root());
        assert!(cache.stats().probes - before <= 3);
    }

    #[test]
    fn find_input_component_bounded_by_chain_length() {
        // Paper Section 3.5: at most the number of ancestors + 1 probes.
        for w in [4usize, 8, 16, 32] {
            let tree = Tree::new(w);
            for cut in [Cut::root(), Cut::balancers(&tree)] {
                for wire in 0..w {
                    let (_owner, probes) = find_input_component(&cut, &addr_of(&tree, wire));
                    assert!(
                        probes <= tree.max_level() as u64 + 1,
                        "w={w} wire={wire}: {probes} probes"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "does not cover")]
    fn invalid_cut_panics() {
        let tree = Tree::new(8);
        let cut = Cut::from_leaves(vec![ComponentId::from_path(vec![1])]);
        let mut cache = NeighborCache::new();
        let _ = cache.resolve(&cut, &addr_of(&tree, 0));
    }

    #[test]
    fn clear_resets_cache_but_not_stats() {
        let tree = Tree::new(8);
        let cut = Cut::root();
        let mut cache = NeighborCache::new();
        let _ = cache.resolve(&cut, &addr_of(&tree, 0));
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().lookups, 1);
    }
}
