//! Decentralized split/merge decisions and the converged network state
//! (paper Sections 3.2 and 3.3).
//!
//! Every component is mapped to the overlay node owning the hash of its
//! pre-order name. Each node `v` maintains the local invariant *"all
//! components residing on v are at level >= l_v"* (its level estimate):
//!
//! - **Splitting rule**: split every component on `v` whose level is
//!   below `l_v`.
//! - **Merging rule**: `v` re-examines components it split earlier; if a
//!   split component's level is now `>= l_v`, it is merged back.
//!
//! [`ConvergedNetwork`] computes the fixpoint of these rules for a given
//! overlay ring — the steady state the message-level runtime
//! ([`crate::dist`]) converges to — and measures the properties the
//! paper proves about it: component-count bounds (Lemma 3.5), component
//! level bounds (Lemma 3.4), and the effective width/depth bounds
//! (Theorem 3.6).

use std::collections::HashMap;

use acn_estimator::{ideal_level, node_level};
use acn_overlay::{NodeId, Ring};
use acn_topology::{
    effective_depth, effective_width, ComponentDag, ComponentId, Cut, Tree, WiringStyle,
};

/// The fixpoint of the decentralized splitting/merging rules over a
/// given overlay ring.
///
/// # Example
///
/// ```
/// use acn_overlay::Ring;
/// use acn_core::ConvergedNetwork;
///
/// let mut ring = Ring::new();
/// let mut seed = 5u64;
/// for _ in 0..200 {
///     ring.add_random_node(&mut seed);
/// }
/// let net = ConvergedNetwork::new(1 << 12, ring);
/// let snap = net.snapshot();
/// // Lemma 3.4/3.3: component levels sit within 4 of the ideal level.
/// assert!(snap.max_level as i64 - snap.ideal_level as i64 <= 4);
/// ```
#[derive(Debug, Clone)]
pub struct ConvergedNetwork {
    tree: Tree,
    style: WiringStyle,
    ring: Ring,
    cut: Cut,
    levels: HashMap<NodeId, usize>,
    /// Cumulative reconfiguration counters.
    splits: u64,
    merges: u64,
}

/// Aggregate measurements of a converged network, matching the claims of
/// Lemmas 3.4/3.5 and Theorem 3.6.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkSnapshot {
    /// Nodes in the overlay (the paper's `N`).
    pub nodes: usize,
    /// Live components (Lemma 3.5: `Theta(N)` w.h.p.).
    pub components: usize,
    /// Minimum component level in the cut.
    pub min_level: usize,
    /// Maximum component level in the cut.
    pub max_level: usize,
    /// The ideal level `l*` for the true `N`.
    pub ideal_level: usize,
    /// Mean components per node (Lemma 3.5: `O(1)` expected).
    pub mean_components_per_node: f64,
    /// Maximum components on any single node (Lemma 3.5:
    /// `O(log N / log log N)` w.h.p.).
    pub max_components_per_node: usize,
    /// Effective width of the component DAG (Theorem 3.6:
    /// `Omega(N / log^2 N)`).
    pub effective_width: usize,
    /// Effective depth of the component DAG (Theorem 3.6: `O(log^2 N)`).
    pub effective_depth: usize,
}

impl ConvergedNetwork {
    /// Builds the converged network of width `w` over `ring`, starting
    /// from the trivial (single-component) cut.
    ///
    /// # Panics
    ///
    /// Panics if `w` is not a power of two, `w < 2`, or the ring is
    /// empty.
    #[must_use]
    pub fn new(w: usize, ring: Ring) -> Self {
        assert!(!ring.is_empty(), "the overlay must have at least one node");
        let mut net = ConvergedNetwork {
            tree: Tree::new(w),
            style: WiringStyle::Ahs,
            ring,
            cut: Cut::root(),
            levels: HashMap::new(),
            splits: 0,
            merges: 0,
        };
        net.refresh_levels();
        net.converge();
        net
    }

    /// The overlay ring.
    #[must_use]
    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    /// The decomposition tree.
    #[must_use]
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// The converged cut.
    #[must_use]
    pub fn cut(&self) -> &Cut {
        &self.cut
    }

    /// Cumulative number of component splits performed.
    #[must_use]
    pub fn splits(&self) -> u64 {
        self.splits
    }

    /// Cumulative number of component merges performed.
    #[must_use]
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// The node hosting component `id`: the owner of the hash of its
    /// pre-order name (paper Section 2, naming, and Section 3).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a valid node of the tree.
    #[must_use]
    pub fn host(&self, id: &ComponentId) -> NodeId {
        self.ring.owner_of_name(self.tree.preorder_index(id))
    }

    /// The level estimate `l_v` the given node acts on.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not in the ring.
    #[must_use]
    pub fn level_of(&self, node: NodeId) -> usize {
        self.levels[&node]
    }

    fn refresh_levels(&mut self) {
        let nodes: Vec<NodeId> = self.ring.nodes().collect();
        self.levels = nodes
            .into_iter()
            .map(|n| (n, node_level(&self.ring, n).min(self.tree.max_level())))
            .collect();
    }

    /// Runs the split/merge rules to fixpoint. Returns
    /// `(splits, merges)` performed during this call.
    fn converge(&mut self) -> (u64, u64) {
        let (mut splits, mut merges) = (0u64, 0u64);
        loop {
            let mut changed = false;
            // Splitting rule: any leaf below its host's level splits.
            loop {
                let to_split: Vec<ComponentId> = self
                    .cut
                    .leaves()
                    .iter()
                    .filter(|leaf| {
                        let info = self.tree.info(leaf).expect("cut leaf is valid");
                        info.width >= 4 && info.level < self.levels[&self.host(leaf)]
                    })
                    .cloned()
                    .collect();
                if to_split.is_empty() {
                    break;
                }
                for leaf in to_split {
                    self.cut.split(&self.tree, &leaf).expect("leaf is splittable");
                    splits += 1;
                    changed = true;
                }
            }
            // Merging rule: the splitter of `p` (its hash owner) merges
            // the subtree back when level(p) >= l_host(p). Topmost first.
            let mut candidates: Vec<ComponentId> = self
                .cut
                .leaves()
                .iter()
                .flat_map(|leaf| leaf.ancestors())
                .collect();
            candidates.sort();
            candidates.dedup();
            for p in candidates {
                if self.cut.contains(&p) || !self.covered(&p) {
                    continue;
                }
                let level = p.level();
                if level >= self.levels[&self.host(&p)] {
                    merges += self.merge_subtree(&p);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        self.splits += splits;
        self.merges += merges;
        (splits, merges)
    }

    /// Whether the cut still covers (refines) the subtree at `p`.
    fn covered(&self, p: &ComponentId) -> bool {
        self.cut.leaves().iter().any(|l| p.is_ancestor_of(l))
    }

    /// Merges everything below `p` into `p`, bottom-up. Returns the
    /// number of merge operations.
    fn merge_subtree(&mut self, p: &ComponentId) -> u64 {
        let mut ops = 0;
        loop {
            if self.cut.contains(p) {
                return ops;
            }
            // Find a deepest mergeable ancestor under p.
            let mut deepest: Option<ComponentId> = None;
            for leaf in self.cut.leaves() {
                if !(p == leaf || p.is_ancestor_of(leaf)) {
                    continue;
                }
                let parent = leaf.parent().expect("leaf below p has a parent");
                let mergeable = self
                    .tree
                    .children(&parent)
                    .iter()
                    .all(|c| self.cut.contains(c));
                if mergeable
                    && deepest
                        .as_ref()
                        .map(|d| parent.level() > d.level())
                        .unwrap_or(true)
                {
                    deepest = Some(parent);
                }
            }
            let target = deepest.expect("a refined subtree always has a mergeable parent");
            self.cut.merge(&self.tree, &target).expect("children are leaves");
            ops += 1;
        }
    }

    /// Applies overlay churn: `joins` new random nodes and `leaves`
    /// random departures (drawn from `seed`), then re-runs the
    /// decentralized rules to fixpoint. Returns `(splits, merges)`
    /// triggered by the churn.
    ///
    /// # Panics
    ///
    /// Panics if the churn would empty the ring.
    pub fn churn(&mut self, joins: usize, leaves: usize, seed: &mut u64) -> (u64, u64) {
        for _ in 0..joins {
            self.ring.add_random_node(seed);
        }
        assert!(self.ring.len() > leaves, "churn would empty the ring");
        for _ in 0..leaves {
            let nodes: Vec<NodeId> = self.ring.nodes().collect();
            let victim = nodes[(acn_overlay::splitmix64(seed) as usize) % nodes.len()];
            self.ring.remove_node(victim);
        }
        self.refresh_levels();
        self.converge()
    }

    /// Measures the converged network.
    #[must_use]
    pub fn snapshot(&self) -> NetworkSnapshot {
        let mut per_node: HashMap<NodeId, usize> = HashMap::new();
        for leaf in self.cut.leaves() {
            *per_node.entry(self.host(leaf)).or_insert(0) += 1;
        }
        let components = self.cut.leaves().len();
        let nodes = self.ring.len();
        let dag = ComponentDag::with_style(&self.tree, &self.cut, self.style);
        NetworkSnapshot {
            nodes,
            components,
            min_level: self.cut.min_level(),
            max_level: self.cut.max_level(),
            ideal_level: ideal_level(nodes).min(self.tree.max_level()),
            mean_components_per_node: components as f64 / nodes as f64,
            max_components_per_node: per_node.values().copied().max().unwrap_or(0),
            effective_width: effective_width(&dag),
            effective_depth: effective_depth(&dag),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded_ring(n: usize, seed: u64) -> Ring {
        let mut ring = Ring::new();
        let mut s = seed;
        for _ in 0..n {
            ring.add_random_node(&mut s);
        }
        ring
    }

    #[test]
    fn single_node_system_stays_centralized() {
        let net = ConvergedNetwork::new(1 << 10, seeded_ring(1, 3));
        let snap = net.snapshot();
        assert_eq!(snap.components, 1);
        assert_eq!(snap.min_level, 0);
        assert_eq!(net.splits(), 0);
    }

    #[test]
    fn converged_levels_satisfy_lemma_3_4() {
        // Component levels lie within the range of node level estimates.
        for &n in &[16usize, 64, 256] {
            for seed in 0..3u64 {
                let net = ConvergedNetwork::new(1 << 10, seeded_ring(n, seed * 7 + 1));
                let lmin = net.levels.values().copied().min().unwrap();
                let lmax = net.levels.values().copied().max().unwrap();
                let snap = net.snapshot();
                assert!(
                    snap.min_level >= lmin.min(snap.min_level),
                    "N={n} seed={seed}: {snap:?}"
                );
                assert!(snap.max_level <= lmax, "N={n} seed={seed}: {snap:?} lmax={lmax}");
                // And every leaf respects its own host's invariant.
                for leaf in net.cut().leaves() {
                    let host_level = net.level_of(net.host(leaf));
                    let info = net.tree().info(leaf).unwrap();
                    assert!(
                        info.level >= host_level || info.width == 2,
                        "N={n}: leaf {leaf} at level {} on host with l_v={host_level}",
                        info.level
                    );
                }
            }
        }
    }

    #[test]
    fn component_counts_satisfy_lemma_3_5() {
        for &n in &[64usize, 256, 1024] {
            let net = ConvergedNetwork::new(1 << 12, seeded_ring(n, 42));
            let snap = net.snapshot();
            // Theta(N) components within the paper's constants
            // [N/6^5, 6^4 N] — empirically far tighter.
            assert!(
                snap.components as f64 >= n as f64 / 7776.0,
                "N={n}: too few components ({})",
                snap.components
            );
            assert!(
                snap.components as f64 <= 1296.0 * n as f64,
                "N={n}: too many components ({})",
                snap.components
            );
            // O(1) expected per node; generous constant.
            assert!(
                snap.mean_components_per_node <= 8.0,
                "N={n}: mean {}",
                snap.mean_components_per_node
            );
        }
    }

    #[test]
    fn effective_dimensions_satisfy_theorem_3_6() {
        for &n in &[64usize, 256, 1024] {
            let net = ConvergedNetwork::new(1 << 12, seeded_ring(n, 99));
            let snap = net.snapshot();
            let log2n = (n as f64).log2();
            assert!(
                (snap.effective_depth as f64) <= 2.0 * log2n * log2n,
                "N={n}: depth {} vs O(log^2 N)",
                snap.effective_depth
            );
            assert!(
                (snap.effective_width as f64) >= n as f64 / (8.0 * log2n * log2n),
                "N={n}: width {} vs Omega(N/log^2 N)",
                snap.effective_width
            );
        }
    }

    #[test]
    fn growth_triggers_splits_shrink_triggers_merges() {
        let mut seed = 7u64;
        let mut net = ConvergedNetwork::new(1 << 10, seeded_ring(8, 11));
        let comps_small = net.snapshot().components;
        let (splits, _) = net.churn(248, 0, &mut seed); // grow to 256
        assert!(splits > 0, "growth must split components");
        let comps_big = net.snapshot().components;
        assert!(
            comps_big > comps_small,
            "component count must grow: {comps_small} -> {comps_big}"
        );
        let (_, merges) = net.churn(0, 240, &mut seed); // shrink to 16
        assert!(merges > 0, "shrinking must merge components");
        let comps_final = net.snapshot().components;
        assert!(
            comps_final < comps_big,
            "component count must shrink: {comps_big} -> {comps_final}"
        );
    }

    #[test]
    fn converged_cut_is_always_valid() {
        let mut seed = 3u64;
        let mut net = ConvergedNetwork::new(1 << 12, seeded_ring(32, 5));
        for round in 0..10 {
            let joins = (acn_overlay::splitmix64(&mut seed) % 20) as usize;
            let leaves = ((acn_overlay::splitmix64(&mut seed) % 20) as usize)
                .min(net.ring().len().saturating_sub(2));
            net.churn(joins, leaves, &mut seed);
            assert!(net.cut().is_valid(net.tree()), "round {round}");
        }
    }

    #[test]
    fn width_is_capped_by_tree_depth_for_small_w() {
        // With a tiny w, a huge system saturates at the balancer cut.
        let net = ConvergedNetwork::new(8, seeded_ring(4096, 21));
        let snap = net.snapshot();
        assert_eq!(snap.max_level, net.tree().max_level());
        assert_eq!(snap.effective_width, 4); // width w/2 = 4 disjoint paths
    }
}
