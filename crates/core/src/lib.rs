//! The adaptive counting network (Tirthapura, ICDCS 2005).
//!
//! This is the paper's primary contribution: a bitonic counting network
//! whose degree of parallelism adapts to the size of the distributed
//! system hosting it. The network is implemented by variable-width
//! *components* — the leaves of a cut of the decomposition tree `T_w`
//! (see [`acn_topology`]) — each of which is a single mod-`k` round-robin
//! counter living on one node of a Chord-style overlay. Components
//! *split* into their children when nodes estimate the system has grown
//! and *merge* back when it shrinks; all decisions are local, driven by
//! the size estimator of [`acn_estimator`].
//!
//! The crate provides three layers:
//!
//! - [`component`]: the component state machine and the split/merge
//!   state-transfer rules that preserve the counting invariant;
//! - [`local`]: [`LocalAdaptiveNetwork`], a single-address-space runtime
//!   — the reference implementation used to validate Theorem 2.1 (every
//!   cut counts) and the split/merge correctness, and the fastest way to
//!   embed an adaptive counting network in one process;
//! - [`manager`] and [`routing`]: the decentralized placement rules
//!   (Sections 3.2–3.3 of the paper) computing where components live and
//!   what the converged network looks like for a given overlay;
//! - [`dist`]: the full message-passing runtime on the deterministic
//!   simulator of [`acn_simnet`], with token routing, name probing,
//!   freeze-and-transfer split/merge protocols, and churn handling.
//!
//! # Quick start
//!
//! ```
//! use acn_core::LocalAdaptiveNetwork;
//!
//! // An adaptive BITONIC[8] that starts as a single component.
//! let mut net = LocalAdaptiveNetwork::new(8);
//! assert_eq!(net.next_value(0), 0);
//! assert_eq!(net.next_value(5), 1);
//!
//! // Grow: split the root into six components; counting continues.
//! let root = acn_topology::ComponentId::root();
//! net.split(&root).unwrap();
//! assert_eq!(net.next_value(2), 2);
//! assert_eq!(net.next_value(0), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod component;
pub mod concurrent;
pub mod dist;
pub mod frontend;
pub mod local;
pub mod manager;
pub mod matching;
pub mod routing;
pub mod service;
pub mod stabilize;

pub use component::Component;
pub use concurrent::{ExecMode, SharedAdaptiveNetwork};
pub use frontend::{FrontendConfig, ShardedFrontEnd};
pub use local::{AdaptError, LocalAdaptiveNetwork, TokenPos};
pub use manager::{ConvergedNetwork, NetworkSnapshot};
pub use matching::{MatchMaker, MatchOutcome};
pub use routing::{NeighborCache, ProbeStats};
pub use service::ElasticCounter;
