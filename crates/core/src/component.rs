//! The component state machine and split/merge state transfer.
//!
//! A component of width `k` has `k` input and `k` output wires and a
//! round-robin counter: the next token leaves on output port
//! `tokens mod k` (the paper's local variable `x`, Section 2.2,
//! "Implementing a Component"). The *output* behaviour is oblivious to
//! which input wire a token arrives on — that is the trick that lets
//! `BITONIC[k]`, `MERGER[k]` and `MIX[k]` share one implementation.
//!
//! In addition to the counter, each component records how many tokens
//! arrived on each of its input wires (the *arrival profile*). This is
//! purely local information — every token message already carries its
//! destination wire — and it is exactly what makes **exact** split
//! state transfer possible: the correct child states after a split are
//! determined by the arrival profile (not by the counter alone; a
//! `MERGER` whose traffic all came from one input half must initialize
//! its sub-mergers very differently from one with balanced halves).
//!
//! # State transfer
//!
//! - **Split** ([`split_component`]): the children's counters and
//!   profiles are computed by *flowing* the parent's arrival profile
//!   through the decomposition: boundary arrivals map through
//!   [`parent_input_to_child`]; each child then emits its tokens
//!   round-robin, and those per-port emission counts
//!   ([`port_emissions`]) feed the sibling profiles via
//!   [`child_output_destination`]. Children are processed in index
//!   order, which is topological for every component kind.
//! - **Merge** ([`merge_components`]): the parent's counter is the
//!   total emitted by the output-side children; its profile is the
//!   children's boundary arrivals. Tokens still in flight on internal
//!   wires at merge time are *pre-counted* in the profile; their number
//!   (`floating`) is computed from per-wire sent/received deltas, and
//!   they are reconciled when they arrive (they bump the counter but
//!   not the profile). A component with floating tokens cannot split
//!   until they drain — [`split_component`] enforces this.

use acn_topology::{
    child_output_destination, parent_input_to_child, ChildOutput, ComponentId, ComponentKind,
    Tree, WiringStyle,
};

/// Tokens a round-robin counter of the given width has emitted on
/// `port` after `tokens` tokens (starting at position 0):
/// `ceil((tokens - port) / width)`, clamped at zero.
#[must_use]
pub fn port_emissions(tokens: u64, width: usize, port: usize) -> u64 {
    (tokens + width as u64 - 1 - port as u64) / width as u64
}

/// Why a state transfer had to be deferred.
///
/// Both conditions are transient: they clear as soon as the relevant
/// in-flight tokens are delivered, so runtimes simply retry (the
/// paper's model assumes reconfiguration is infrequent relative to
/// token traffic, Section 3.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferError {
    /// The component pre-counts merge-time in-flight tokens that have
    /// not been re-delivered yet.
    TokensInFlight,
    /// The component's arrival profile is transiently illegal (tokens
    /// are in flight towards it), so no locally-computable child state
    /// can reproduce its committed emissions.
    Unsettled,
}

impl std::fmt::Display for TransferError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransferError::TokensInFlight => {
                f.write_str("merged-over tokens are still in flight")
            }
            TransferError::Unsettled => {
                f.write_str("arrival profile is transiently unsettled")
            }
        }
    }
}

impl std::error::Error for TransferError {}

/// A live component of the adaptive network.
///
/// `Hash` feeds `acn-check`'s state fingerprints (the model checker
/// hashes lock payloads at every scheduling point); the runtimes never
/// hash components.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Component {
    id: ComponentId,
    kind: ComponentKind,
    width: usize,
    /// Tokens accounted for: every token that entered this component's
    /// subnetwork, including merge-time in-flight tokens that have not
    /// been re-delivered yet. Invariant: `sum(arrivals) == tokens ==
    /// sum(emitted) + sum(owed)`.
    tokens: u64,
    /// Arrivals per input wire.
    arrivals: Vec<u64>,
    /// Actual emissions per output wire so far.
    emitted: Vec<u64>,
    /// Output ports owed to merge-time in-flight tokens: when such a
    /// token is re-delivered it exits on an owed port instead of the
    /// round-robin position (the owed multiset is exactly the
    /// step-completion of what the subnetwork had emitted when it was
    /// merged).
    owed: Vec<u64>,
}

impl Component {
    /// A fresh (zero-token) component for node `id` of `tree`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a valid node of `tree`.
    #[must_use]
    pub fn new(tree: &Tree, id: &ComponentId) -> Self {
        let info = tree.info(id).expect("invalid component id");
        Component {
            id: id.clone(),
            kind: info.kind,
            width: info.width,
            tokens: 0,
            arrivals: vec![0; info.width],
            emitted: vec![0; info.width],
            owed: vec![0; info.width],
        }
    }

    /// A component that has processed `tokens` tokens arriving
    /// round-robin across its input wires — a canonical legal state,
    /// used by tests and fault injection.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a valid node of `tree`.
    #[must_use]
    pub fn with_tokens(tree: &Tree, id: &ComponentId, tokens: u64) -> Self {
        let mut c = Component::new(tree, id);
        c.tokens = tokens;
        for (i, a) in c.arrivals.iter_mut().enumerate() {
            *a = port_emissions(tokens, c.width, i);
        }
        for (i, e) in c.emitted.iter_mut().enumerate() {
            *e = port_emissions(tokens, c.width, i);
        }
        c
    }

    /// Rebuilds a component from transferred state (network messages,
    /// migration).
    ///
    /// # Panics
    ///
    /// Panics if `id` is invalid or `arrivals.len()` is not the width.
    #[must_use]
    pub fn from_parts(
        tree: &Tree,
        id: &ComponentId,
        tokens: u64,
        arrivals: Vec<u64>,
        emitted: Vec<u64>,
        owed: Vec<u64>,
    ) -> Self {
        let info = tree.info(id).expect("invalid component id");
        assert_eq!(arrivals.len(), info.width, "profile length mismatch");
        assert_eq!(emitted.len(), info.width, "emission ledger length mismatch");
        assert_eq!(owed.len(), info.width, "owed length mismatch");
        Component {
            id: id.clone(),
            kind: info.kind,
            width: info.width,
            tokens,
            arrivals,
            emitted,
            owed,
        }
    }

    /// The component's identifier in `T_w`.
    #[must_use]
    pub fn id(&self) -> &ComponentId {
        &self.id
    }

    /// The component kind (`BITONIC`, `MERGER` or `MIX`).
    #[must_use]
    pub fn kind(&self) -> ComponentKind {
        self.kind
    }

    /// The width `k` of the component.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Total tokens that have passed through this component.
    #[must_use]
    pub fn tokens(&self) -> u64 {
        self.tokens
    }

    /// The arrival profile (tokens received per input wire).
    #[must_use]
    pub fn arrivals(&self) -> &[u64] {
        &self.arrivals
    }

    /// Tokens pre-counted by a merge that are still in flight (the
    /// total of the owed output ports).
    #[must_use]
    pub fn floating(&self) -> u64 {
        self.owed.iter().sum()
    }

    /// Output ports owed to merge-time in-flight tokens.
    #[must_use]
    pub fn owed(&self) -> &[u64] {
        &self.owed
    }

    /// Actual emissions per output wire so far.
    #[must_use]
    pub fn emitted(&self) -> &[u64] {
        &self.emitted
    }

    /// The paper's variable `x`: the output port the *next* token will
    /// leave on.
    #[must_use]
    pub fn position(&self) -> usize {
        (self.tokens % self.width as u64) as usize
    }

    /// Processes one token arriving on `port` (`None` for a token on a
    /// wire internal to this component — one that was in flight across
    /// the merge that formed it). Returns the output port: the next
    /// round-robin position for ordinary tokens, an owed port for
    /// merge-time in-flight tokens (they were pre-counted and must
    /// complete the step pattern the subnetwork owed when it merged).
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn process_token(&mut self, port: Option<usize>) -> usize {
        let out = match port {
            Some(p) => {
                self.arrivals[p] += 1;
                let out = self.position();
                self.tokens += 1;
                out
            }
            None => {
                // Serve the owed multiset (pre-counted in `tokens`).
                match self.owed.iter().position(|&o| o > 0) {
                    Some(out) => {
                        self.owed[out] -= 1;
                        out
                    }
                    None => {
                        // No debt recorded (only possible after state
                        // corruption); fall back to round-robin.
                        debug_assert!(false, "unexpected internal token at {}", self.id);
                        let out = self.position();
                        self.tokens += 1;
                        out
                    }
                }
            }
        };
        self.emitted[out] += 1;
        out
    }

    /// Absorbs a batch of tokens processed *outside* the component by
    /// a lock-free fast path: `arrival_deltas[p]` tokens arrived on
    /// input wire `p` and were emitted round-robin continuing from the
    /// component's current position. Equivalent to the corresponding
    /// sequence of [`process_token`](Self::process_token)`(Some(p))`
    /// calls (the emission ledger is advanced by the round-robin
    /// delta, which is what those calls would have produced — output
    /// behaviour is oblivious to arrival order).
    ///
    /// # Panics
    ///
    /// Panics if `arrival_deltas.len()` is not the width, or if the
    /// component has merge-owed tokens in flight (the fast path only
    /// runs between quiescent reconfigurations, where `floating == 0`).
    pub fn absorb_batch(&mut self, arrival_deltas: &[u64]) {
        assert_eq!(arrival_deltas.len(), self.width, "profile length mismatch");
        assert_eq!(
            self.floating(),
            0,
            "fast-path batches require a quiescent component (no owed tokens)"
        );
        let n: u64 = arrival_deltas.iter().sum();
        let t0 = self.tokens;
        for (a, d) in self.arrivals.iter_mut().zip(arrival_deltas) {
            *a += d;
        }
        for (q, e) in self.emitted.iter_mut().enumerate() {
            *e += port_emissions(t0 + n, self.width, q) - port_emissions(t0, self.width, q);
        }
        self.tokens = t0 + n;
        debug_assert!(self.is_consistent());
    }

    /// Overwrites the token counter (fault injection / stabilization
    /// tests). The arrival profile is reset to the canonical
    /// round-robin profile for the new count.
    pub fn set_tokens(&mut self, tokens: u64) {
        self.tokens = tokens;
        self.owed = vec![0; self.width];
        for i in 0..self.width {
            self.arrivals[i] = port_emissions(tokens, self.width, i);
            self.emitted[i] = port_emissions(tokens, self.width, i);
        }
    }

    /// Internal consistency: `sum(arrivals) == tokens`. (The emission
    /// ledger may legitimately skew from the round-robin ideal — and
    /// from `tokens - floating` by a bounded amount — after histories
    /// in which merge-owed tokens were served out of round-robin order
    /// and the component was later split along flow-canonical internal
    /// ledgers; see `split_component`.)
    #[must_use]
    pub fn is_consistent(&self) -> bool {
        self.arrivals.iter().sum::<u64>() == self.tokens
    }
}

/// The child indices whose output wires are the parent's output wires.
/// Summing the children's counters over this set counts the tokens the
/// subnetwork has emitted.
#[must_use]
pub fn output_children(kind: ComponentKind) -> &'static [usize] {
    match kind {
        ComponentKind::Bitonic => &[4, 5],
        ComponentKind::Merger => &[2, 3],
        ComponentKind::Mix => &[0, 1],
    }
}

/// Splits a component into its children with exactly initialized states
/// (paper Section 2.2, "Splitting a Component", step 2): the parent's
/// arrival profile is flowed through the decomposition.
///
/// Returns the children in child-index order.
///
/// # Errors
///
/// Returns [`TransferError::TokensInFlight`] if merge-owed tokens are
/// undelivered, and [`TransferError::Unsettled`] if the arrival profile
/// is transiently illegal — the flow's boundary emissions would
/// contradict the emissions the component has actually committed
/// downstream. Both clear once in-flight tokens drain; callers retry.
///
/// # Panics
///
/// Panics if the component is a balancer (width 2) or not valid in
/// `tree`.
pub fn split_component(
    tree: &Tree,
    component: &Component,
    style: WiringStyle,
) -> Result<Vec<Component>, TransferError> {
    assert!(component.width >= 4, "cannot split a width-2 component");
    if component.floating() > 0 {
        return Err(TransferError::TokensInFlight);
    }
    debug_assert!(component.is_consistent(), "inconsistent component {}", component.id);
    let children_ids = tree.children(&component.id);
    let arity = children_ids.len();
    let half = component.width / 2;
    let mut tokens = vec![0u64; arity];
    let mut profiles = vec![vec![0u64; half]; arity];
    // Boundary arrivals enter the input-side children.
    for (port, &count) in component.arrivals.iter().enumerate() {
        let (child, child_port) =
            parent_input_to_child(component.kind, component.width, port, style);
        profiles[child][child_port] += count;
        tokens[child] += count;
    }
    // Flow internal wires in child-index order (topological for every
    // kind: bitonics feed mergers feed mixes).
    for child in 0..arity {
        for port in 0..half {
            let sent = port_emissions(tokens[child], half, port);
            if let ChildOutput::Sibling { child: sibling, port: sibling_port } =
                child_output_destination(component.kind, component.width, child, port, style)
            {
                profiles[sibling][sibling_port] += sent;
                tokens[sibling] += sent;
            }
        }
    }
    let children: Vec<Component> = children_ids
        .iter()
        .zip(tokens.into_iter().zip(profiles))
        .map(|(id, (t, profile))| {
            let width = profile.len();
            let emitted: Vec<u64> =
                (0..width).map(|q| port_emissions(t, width, q)).collect();
            Component::from_parts(tree, id, t, profile, emitted, vec![0; width])
        })
        .collect();
    // Settledness gate: the flow's boundary emissions must equal the
    // emissions the component actually committed. They differ exactly
    // when the arrival profile is transiently illegal (e.g. a merger
    // whose input halves are momentarily imbalanced because upstream
    // tokens are in flight): the atomic component has already emitted by
    // position, while the would-be children would have routed the same
    // arrivals differently. No local child state can bridge that; defer.
    for (child_index, child) in children.iter().enumerate() {
        for port in 0..half {
            if let ChildOutput::Parent { port: parent_port } = child_output_destination(
                component.kind,
                component.width,
                child_index,
                port,
                style,
            ) {
                if child.emitted[port] != component.emitted[parent_port] {
                    return Err(TransferError::Unsettled);
                }
            }
        }
    }
    Ok(children)
}

/// Merges fully-collected children back into their parent (paper
/// Section 2.2, "Merging Components", step 2).
///
/// The parent's profile is the boundary arrivals, and its counter is
/// the total number of tokens that entered the subnetwork. Tokens still
/// in flight on internal wires at merge time (computed from per-wire
/// sent/received deltas) are *owed*: the exact output ports the
/// subnetwork would have emitted them on are computed by flowing the
/// debts through the children's round-robin states, and recorded in the
/// parent's owed multiset. Re-delivered in-flight tokens then consume
/// owed ports instead of round-robin positions — which is precisely
/// what keeps the quiescent step property exact across merges with
/// concurrent traffic.
///
/// # Errors
///
/// Returns [`TransferError::Unsettled`] if the children's predicted
/// final emissions do not complete to the round-robin pattern of the
/// total entered — which happens exactly when the subnetwork's arrival
/// profile is transiently illegal (upstream tokens in flight). The
/// merged counter could not reproduce the children's behaviour then;
/// callers retry once traffic drains.
///
/// # Panics
///
/// Panics if `children` is not the complete child list of `parent_id`
/// in child-index order, or `parent_id` is invalid.
pub fn merge_components(
    tree: &Tree,
    parent_id: &ComponentId,
    children: &[Component],
    style: WiringStyle,
) -> Result<Component, TransferError> {
    let info = tree.info(parent_id).expect("invalid parent id");
    assert_eq!(children.len(), info.kind.arity(), "merge requires the full child list");
    for (i, child) in children.iter().enumerate() {
        assert_eq!(
            child.id().parent().as_ref(),
            Some(parent_id),
            "child {i} does not belong to {parent_id}"
        );
        assert_eq!(child.id().child_index(), Some(i as u8), "children out of order");
    }
    let half = info.width / 2;
    let arity = children.len();
    // Boundary profile; the parent's counter is everything that entered.
    let mut arrivals = vec![0u64; info.width];
    for (port, slot) in arrivals.iter_mut().enumerate() {
        let (child, child_port) = parent_input_to_child(info.kind, info.width, port, style);
        *slot = children[child].arrivals[child_port];
    }
    let tokens: u64 = arrivals.iter().sum();
    // Flow the debts: `extra[child]` counts in-flight tokens that will
    // still arrive at that child (wire debts plus upstream future
    // emissions). Children's own owed ports and the round-robin
    // continuation of the extras both produce future emissions, which
    // feed siblings (in index order — topological) or the parent's owed
    // multiset.
    let mut extra = vec![0u64; arity];
    // Seed with per-internal-wire debts: actual sent minus received.
    for (child_index, child) in children.iter().enumerate() {
        for port in 0..half {
            if let ChildOutput::Sibling { child: sibling, port: sibling_port } =
                child_output_destination(info.kind, info.width, child_index, port, style)
            {
                let sent = child.emitted[port];
                let received = children[sibling].arrivals[sibling_port];
                debug_assert!(
                    sent >= received,
                    "wire {child_index}:{port} -> {sibling}:{sibling_port}: received {received} > sent {sent}"
                );
                extra[sibling] += sent - received;
            }
        }
    }
    let mut owed = vec![0u64; info.width];
    let mut emitted = vec![0u64; info.width];
    for (child_index, child) in children.iter().enumerate() {
        for port in 0..half {
            // Future emissions of this child on this port: its owed
            // ports plus the round-robin continuation for the extra
            // (in-flight) arrivals. Round-robin positions continue from
            // `tokens` (which pre-counts the child's own owed tokens).
            let future = child.owed[port]
                + port_emissions(child.tokens + extra[child_index], half, port)
                - port_emissions(child.tokens, half, port);
            match child_output_destination(info.kind, info.width, child_index, port, style) {
                ChildOutput::Sibling { child: sibling, port: _ } => {
                    debug_assert!(sibling > child_index, "flow order violated");
                    extra[sibling] += future;
                }
                ChildOutput::Parent { port: parent_port } => {
                    owed[parent_port] += future;
                    emitted[parent_port] = child.emitted[port];
                }
            }
        }
    }
    // Settledness gate: the predicted final emissions (actual so far +
    // owed) must complete to the round-robin pattern of everything that
    // entered; otherwise the merged counter cannot reproduce the
    // children network's behaviour and the merge must wait for traffic
    // to drain.
    for q in 0..info.width {
        if emitted[q] + owed[q] != port_emissions(tokens, info.width, q) {
            return Err(TransferError::Unsettled);
        }
    }
    let merged = Component::from_parts(tree, parent_id, tokens, arrivals, emitted, owed);
    debug_assert!(merged.is_consistent(), "merge produced inconsistent state");
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_token_round_robin() {
        let tree = Tree::new(8);
        let mut c = Component::new(&tree, &ComponentId::root());
        let outs: Vec<usize> = (0..10).map(|i| c.process_token(Some(i % 8))).collect();
        assert_eq!(outs, [0, 1, 2, 3, 4, 5, 6, 7, 0, 1]);
        assert_eq!(c.tokens(), 10);
        assert_eq!(c.position(), 2);
        assert!(c.is_consistent());
    }

    #[test]
    fn absorb_batch_matches_sequential_processing() {
        let tree = Tree::new(8);
        let root = ComponentId::root();
        for start in 0..9u64 {
            let mut sequential = Component::with_tokens(&tree, &root, start);
            let mut batched = sequential.clone();
            // A skewed batch: 5 tokens on wire 1, 2 on wire 6, 1 on wire 0.
            let deltas = [1u64, 5, 0, 0, 0, 0, 2, 0];
            for (port, &count) in deltas.iter().enumerate() {
                for _ in 0..count {
                    let _ = sequential.process_token(Some(port));
                }
            }
            batched.absorb_batch(&deltas);
            assert_eq!(batched, sequential, "start={start}");
        }
    }

    #[test]
    fn fresh_split_produces_zeroed_children() {
        let tree = Tree::new(8);
        let parent = Component::new(&tree, &ComponentId::root());
        let children = split_component(&tree, &parent, WiringStyle::Ahs).unwrap();
        assert_eq!(children.len(), 6);
        assert!(children.iter().all(|c| c.tokens() == 0 && c.is_consistent()));
    }

    #[test]
    fn split_then_merge_is_identity() {
        let tree = Tree::new(16);
        for path in [vec![], vec![2], vec![4], vec![0]] {
            let id = ComponentId::from_path(path);
            let info = tree.info(&id).unwrap();
            if info.width < 4 {
                continue;
            }
            for tokens in 0..(3 * info.width as u64) {
                let parent = Component::with_tokens(&tree, &id, tokens);
                let children = split_component(&tree, &parent, WiringStyle::Ahs).unwrap();
                for c in &children {
                    assert!(c.is_consistent(), "{} child {} inconsistent", info, c.id());
                }
                let merged =
                    merge_components(&tree, &id, &children, WiringStyle::Ahs).unwrap();
                assert_eq!(merged, parent, "{info} tokens={tokens}");
            }
        }
    }

    #[test]
    fn split_flows_conserve_tokens() {
        let tree = Tree::new(16);
        let id = ComponentId::root();
        for tokens in 0..48u64 {
            let parent = Component::with_tokens(&tree, &id, tokens);
            let children = split_component(&tree, &parent, WiringStyle::Ahs).unwrap();
            let emitted: u64 = output_children(parent.kind())
                .iter()
                .map(|&i| children[i].tokens())
                .sum();
            assert_eq!(emitted, tokens, "tokens={tokens}");
        }
    }

    #[test]
    fn skewed_merger_profile_splits_differently_from_balanced() {
        // The reason profiles exist: two mergers with the same counter
        // but different (legal) arrival profiles must initialize their
        // children differently — the counter alone cannot tell them
        // apart.
        let tree = Tree::new(16);
        let id = ComponentId::root().child(2); // MERGER[8]
        let balanced = Component::with_tokens(&tree, &id, 2);
        let mut skewed = Component::new(&tree, &id);
        let _ = skewed.process_token(Some(0)); // x side
        let _ = skewed.process_token(Some(4)); // y side
        assert_eq!(balanced.tokens(), skewed.tokens());
        let cb = split_component(&tree, &balanced, WiringStyle::Ahs).unwrap();
        let cs = split_component(&tree, &skewed, WiringStyle::Ahs).unwrap();
        assert_ne!(
            cb.iter().map(|c| c.arrivals().to_vec()).collect::<Vec<_>>(),
            cs.iter().map(|c| c.arrivals().to_vec()).collect::<Vec<_>>(),
            "profiles must influence the split"
        );
    }

    #[test]
    fn illegal_profile_defers_split() {
        // Three tokens all on one wire of a merger is not a profile its
        // upstream can have settled into: the split must defer.
        let tree = Tree::new(16);
        let id = ComponentId::root().child(2); // MERGER[8]
        let mut c = Component::new(&tree, &id);
        for _ in 0..3 {
            let _ = c.process_token(Some(0));
        }
        assert_eq!(
            split_component(&tree, &c, WiringStyle::Ahs),
            Err(TransferError::Unsettled)
        );
    }

    #[test]
    fn split_positions_periodic_in_width() {
        // Canonical components with t and t + k produce children in the
        // same positions (each child's throughput per k parent tokens is
        // a multiple of its width).
        let tree = Tree::new(16);
        for path in [vec![], vec![2], vec![4]] {
            let id = ComponentId::from_path(path);
            let info = tree.info(&id).unwrap();
            if info.width < 4 {
                continue;
            }
            let k = info.width as u64;
            for n in 0..k {
                let a = split_component(
                    &tree,
                    &Component::with_tokens(&tree, &id, n),
                    WiringStyle::Ahs,
                )
                .unwrap();
                let b = split_component(
                    &tree,
                    &Component::with_tokens(&tree, &id, n + k),
                    WiringStyle::Ahs,
                )
                .unwrap();
                let pa: Vec<usize> = a.iter().map(Component::position).collect();
                let pb: Vec<usize> = b.iter().map(Component::position).collect();
                assert_eq!(pa, pb, "{info} n={n}");
            }
        }
    }

    #[test]
    fn merge_counts_floating_tokens() {
        // A token absorbed by the top bitonic but not yet delivered to a
        // merger is in flight: the merged parent must pre-count it.
        let tree = Tree::new(8);
        let root = ComponentId::root();
        let parent = Component::new(&tree, &root);
        let mut children = split_component(&tree, &parent, WiringStyle::Ahs).unwrap();
        // One token passes through child 0 (top BITONIC[4]) only.
        let _ = children[0].process_token(Some(0));
        let merged =
            merge_components(&tree, &root, &children, WiringStyle::Ahs).unwrap();
        assert_eq!(merged.tokens(), 1, "one token entered the subnetwork");
        assert_eq!(merged.floating(), 1, "one token is in flight");
        // The in-flight token is owed output wire 0 (nothing was
        // emitted yet, so the step-completion starts at wire 0).
        assert_eq!(merged.owed()[0], 1);
        assert!(merged.is_consistent());
        // Delivering the floater restores full consistency.
        let mut merged = merged;
        let out = merged.process_token(None);
        assert_eq!(out, 0);
        assert_eq!(merged.floating(), 0);
        assert!(merged.is_consistent());
    }

    #[test]
    fn merge_rejects_wrong_children() {
        let tree = Tree::new(8);
        let id = ComponentId::root();
        let mut children: Vec<Component> =
            tree.children(&id).iter().map(|c| Component::new(&tree, c)).collect();
        children.swap(0, 1);
        let result = std::panic::catch_unwind(|| {
            merge_components(&tree, &id, &children, WiringStyle::Ahs)
        });
        assert!(result.is_err(), "out-of-order children must be rejected");
    }

    #[test]
    fn split_rejects_floating_tokens() {
        let tree = Tree::new(8);
        let root = ComponentId::root();
        let parent = Component::new(&tree, &root);
        let mut children = split_component(&tree, &parent, WiringStyle::Ahs).unwrap();
        let _ = children[0].process_token(Some(0));
        let merged =
            merge_components(&tree, &root, &children, WiringStyle::Ahs).unwrap();
        assert_eq!(
            split_component(&tree, &merged, WiringStyle::Ahs),
            Err(TransferError::TokensInFlight)
        );
    }

    #[test]
    fn port_emissions_formula() {
        assert_eq!(port_emissions(0, 4, 0), 0);
        assert_eq!(port_emissions(1, 4, 0), 1);
        assert_eq!(port_emissions(5, 4, 0), 2);
        assert_eq!(port_emissions(5, 4, 1), 1);
        assert_eq!(port_emissions(5, 4, 3), 1);
        assert_eq!(port_emissions(3, 4, 3), 0);
        // Sums to the token count.
        for t in 0..40u64 {
            let total: u64 = (0..8).map(|i| port_emissions(t, 8, i)).sum();
            assert_eq!(total, t);
        }
    }

    #[test]
    fn output_children_cover_all_kinds() {
        assert_eq!(output_children(ComponentKind::Bitonic), &[4, 5]);
        assert_eq!(output_children(ComponentKind::Merger), &[2, 3]);
        assert_eq!(output_children(ComponentKind::Mix), &[0, 1]);
    }
}
