//! The sharded, batching, eliminating **front-end** of the lock-free
//! executor — the fix for the flat 1→8-thread scaling curve.
//!
//! [`SharedAdaptiveNetwork`]'s scalar fast path is one `fetch_add`
//! per component crossed, which is optimal *per token* but still
//! serializes every token of every thread through the same few hot
//! cache lines: E18 measured ~12M tokens/s at 1 thread and ~12M at 8.
//! [`ShardedFrontEnd`] restores scaling with three stacked moves:
//!
//! 1. **Per-shard value stashes**: each shard (one per core/thread)
//!    holds a small stash of pre-claimed counter values behind its own
//!    cache-padded mutex. `next_value` is a stash pop — no shared
//!    atomics at all — until the stash runs dry.
//! 2. **Batched refills**: a dry stash refills with
//!    [`SharedAdaptiveNetwork::next_batch`], claiming `B` values in
//!    one traversal (one `fetch_add` per leaf for the whole batch).
//!    `B` adapts: a refill that interleaves with other shards'
//!    refills (observed via a shared refill sequence probe) or that
//!    sees the network's contention counters rising
//!    ([`SharedAdaptiveNetwork::contention_signal`]) multiplies `B`
//!    by the size of the observed burst, toward `batch_max`; `B`
//!    halves toward `batch_min` only after a full *quiet window* of
//!    evidence-free refills (peers on an oversubscribed core surface
//!    as rare bursts, once per scheduler quantum — instant shrinking
//!    would floor the batch in between), so a lone thread decays back
//!    to the scalar path in bounded time and never over-claims.
//! 3. **Elimination slots** ([`ExchangeSlot`]): before traversing, a
//!    refilling shard first tries to *pair off*. A combiner that
//!    finds a posted offer absorbs the offered weight into its own
//!    batch and hands the extra values back through the slot; the
//!    network sees one combined traversal instead of two contending
//!    ones (the diffraction move). Offers time out after a bounded
//!    spin and fall back to the network, and a combiner whose partner
//!    withdrew keeps the speculatively-claimed values in its own
//!    stash (a *spill*) — values are never lost, so the quiescent
//!    union of handed-out and stashed values stays dense.
//!
//! # Consistency
//!
//! Values served from a stash were claimed at refill time, so a
//! batched counter is **quiescently consistent**, not linearizable:
//! real-time order between values of different shards is not
//! preserved, but no value is ever duplicated or lost, and at any
//! quiescent point `consumed ∪ outstanding stashes` is exactly
//! `0..total` (DESIGN.md §12; `acn-check` explores the pairing,
//! timeout, spill, and reconfiguration races under `VirtualSync`).

use std::sync::Arc;

use acn_sync::{
    CachePadded, ExchangeSlot, OfferOutcome, Ordering, RealSync, SyncApi, SyncAtomicU64,
    SyncMutex,
};
use acn_telemetry::{Counter, Registry};

use crate::concurrent::SharedAdaptiveNetwork;

/// Tuning knobs for [`ShardedFrontEnd`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrontendConfig {
    /// Smallest refill batch (also the initial size). Default 1: a
    /// shard that observes no concurrency degenerates to the scalar
    /// fast path — perfect freshness, nothing to amortize.
    pub batch_min: u64,
    /// Largest refill batch. Default 256.
    pub batch_max: u64,
    /// Consecutive refills with no foreign ticket (and a flat
    /// contention signal) before the batch halves. One quantum of a
    /// descheduled peer can span thousands of our refills on an
    /// oversubscribed core, so aloneness needs sustained evidence;
    /// concurrency (a foreign-ticket burst) is believed immediately.
    /// Default 1024 (≲ a scheduler quantum of max-batch refills).
    pub quiet_window: u64,
    /// Elimination slots shared by all shards (0 disables the
    /// elimination layer). Default 1 per two shards, at least 1.
    pub elim_slots: usize,
    /// Bounded spin (state loads) an offerer waits for a combiner
    /// before withdrawing. Small values keep the model checker's
    /// state space tight; production uses a few dozen. Default 32.
    pub elim_patience: usize,
}

impl FrontendConfig {
    fn default_for(shards: usize) -> FrontendConfig {
        FrontendConfig {
            batch_min: 1,
            batch_max: 256,
            quiet_window: 1024,
            elim_slots: (shards / 2).max(1),
            elim_patience: 32,
        }
    }

    /// A fixed batch size `b` (adaptivity pinned): used by E18's
    /// batch-size sweep.
    #[must_use]
    pub fn fixed_batch(mut self, b: u64) -> FrontendConfig {
        self.batch_min = b;
        self.batch_max = b;
        self
    }
}

/// The mutable state of one shard, behind its cache-padded mutex.
#[derive(Debug, Hash)]
struct ShardState {
    /// Pre-claimed values, served LIFO.
    stash: Vec<u64>,
    /// Current adaptive batch size, in `[batch_min, batch_max]`.
    batch: u64,
    /// The refill sequence number observed at this shard's last
    /// refill (concurrency probe).
    last_seq: u64,
    /// The network contention signal observed at the last refill.
    last_signal: u64,
    /// Consecutive refills with no concurrency evidence, in
    /// `[0, quiet_window)`; hitting the window halves the batch.
    quiet: u64,
}

/// Telemetry handles (`acn.exec.*`); all no-ops until
/// [`ShardedFrontEnd::attach_telemetry`].
#[derive(Debug, Default)]
struct FrontMetrics {
    /// `acn.exec.elim_hits` — successful pairings (counted once per
    /// pairing, on the fulfilling side).
    elim_hits: Counter,
    /// `acn.exec.elim_timeouts` — offers withdrawn unanswered.
    elim_timeouts: Counter,
    /// `acn.exec.elim_busy` — offers not posted because every slot
    /// was occupied.
    elim_busy: Counter,
    /// `acn.exec.elim_spills` — fulfilments that lost the race to a
    /// withdrawing offerer; the combiner kept the extra values.
    elim_spills: Counter,
    /// `acn.exec.refills` — stash refills (batched traversals issued
    /// by the front-end).
    refills: Counter,
    /// `acn.exec.batch_grow` — refills that saw concurrency evidence
    /// and grew the batch (already-at-max refills count too).
    batch_grow: Counter,
    /// `acn.exec.batch_shrink` — batch halvings after a full quiet
    /// window of alone refills (already-at-min halvings count too).
    batch_shrink: Counter,
}

impl FrontMetrics {
    fn attach(registry: &Registry) -> FrontMetrics {
        FrontMetrics {
            elim_hits: registry.counter("acn.exec.elim_hits"),
            elim_timeouts: registry.counter("acn.exec.elim_timeouts"),
            elim_busy: registry.counter("acn.exec.elim_busy"),
            elim_spills: registry.counter("acn.exec.elim_spills"),
            refills: registry.counter("acn.exec.refills"),
            batch_grow: registry.counter("acn.exec.batch_grow"),
            batch_shrink: registry.counter("acn.exec.batch_shrink"),
        }
    }
}

/// The sharded batching/eliminating front-end. See the
/// [module docs](self).
///
/// Callers address a shard explicitly (`shard` argument, typically
/// the worker's index modulo [`shards`](Self::shards)) so placement
/// stays deterministic under the model checker.
pub struct ShardedFrontEnd<S: SyncApi = RealSync> {
    net: Arc<SharedAdaptiveNetwork<S>>,
    shards: Vec<CachePadded<S::Mutex<ShardState>>>,
    slots: Vec<ExchangeSlot<Vec<u64>, S>>,
    /// Global refill sequence: each refill claims a ticket; a shard
    /// whose consecutive tickets are non-adjacent knows other shards
    /// refilled in between — the always-on concurrency probe behind
    /// adaptive batch sizing (works with telemetry detached).
    refill_seq: CachePadded<S::AtomicU64>,
    config: FrontendConfig,
    metrics: FrontMetrics,
}

impl ShardedFrontEnd<RealSync> {
    /// A front-end over `net` with `shards` shards and default tuning.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    #[must_use]
    pub fn new(net: Arc<SharedAdaptiveNetwork>, shards: usize) -> Self {
        Self::with_config_in(net, shards, FrontendConfig::default_for(shards))
    }
}

impl<S: SyncApi> ShardedFrontEnd<S> {
    /// A front-end with explicit tuning under an explicit [`SyncApi`]
    /// (the model checker instantiates this with `VirtualSync`).
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0` or `config.batch_min` is 0 or exceeds
    /// `config.batch_max`.
    #[must_use]
    pub fn with_config_in(
        net: Arc<SharedAdaptiveNetwork<S>>,
        shards: usize,
        config: FrontendConfig,
    ) -> Self {
        assert!(shards > 0, "at least one shard");
        assert!(
            (1..=config.batch_max).contains(&config.batch_min),
            "batch_min must be in 1..=batch_max"
        );
        ShardedFrontEnd {
            net,
            shards: (0..shards)
                .map(|_| {
                    CachePadded::new(S::Mutex::new(ShardState {
                        stash: Vec::new(),
                        batch: config.batch_min,
                        last_seq: 0,
                        last_signal: 0,
                        quiet: 0,
                    }))
                })
                .collect(),
            slots: (0..config.elim_slots).map(|_| ExchangeSlot::new()).collect(),
            refill_seq: CachePadded::new(S::AtomicU64::new(0)),
            config,
            metrics: FrontMetrics::default(),
        }
    }

    /// Registers the front-end's metrics (`acn.exec.elim_*`,
    /// `acn.exec.refills`) with `registry`. Call before sharing across
    /// threads (it needs `&mut`). Observation-only.
    pub fn attach_telemetry(&mut self, registry: &Registry) {
        self.metrics = FrontMetrics::attach(registry);
    }

    /// The number of shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The underlying network.
    #[must_use]
    pub fn network(&self) -> &SharedAdaptiveNetwork<S> {
        &self.net
    }

    /// The next counter value, served from `shard`'s stash (refilled
    /// in batches through `wire` when dry). Quiescently consistent;
    /// see the [module docs](self).
    ///
    /// # Panics
    ///
    /// Panics if `shard >= self.shards()` or `wire >= width`.
    pub fn next_value(&self, shard: usize, wire: usize) -> u64 {
        let mut st = self.shards[shard].lock();
        if let Some(v) = st.stash.pop() {
            return v;
        }
        self.refill(&mut st, shard, wire);
        st.stash.pop().expect("a refill stashes at least one value")
    }

    /// Refills a dry stash: adapt the batch size, try to pair off at
    /// an elimination slot, fall back to (or combine into) a batched
    /// network traversal.
    fn refill(&self, st: &mut ShardState, shard: usize, wire: usize) {
        self.metrics.refills.inc();
        // --- Adapt: grow under observed concurrency, shrink alone.
        // lint: relaxed-ok(monotone ticket counter; only the caller's own before/after delta is compared, no cross-location ordering consumed)
        let seq = self.refill_seq.fetch_add(1, Ordering::Relaxed);
        let signal = self.net.contention_signal();
        // `last_seq` holds the ticket this shard would draw if nobody
        // else refilled in between; `foreign` counts the peer refills
        // that interleaved. On an oversubscribed core peers surface as
        // rare huge bursts (one per scheduler quantum), so growth
        // scales with the burst while shrinking waits out a quiet
        // window — see `FrontendConfig::quiet_window`.
        let foreign = seq.saturating_sub(st.last_seq);
        let contended = foreign > 0 || signal > st.last_signal;
        st.last_seq = seq + 1;
        st.last_signal = signal;
        if contended {
            st.quiet = 0;
            self.metrics.batch_grow.inc();
            st.batch = st
                .batch
                .saturating_mul((foreign + 1).max(2))
                .min(self.config.batch_max);
        } else {
            st.quiet += 1;
            if st.quiet >= self.config.quiet_window {
                st.quiet = 0;
                self.metrics.batch_shrink.inc();
                st.batch = (st.batch / 2).max(self.config.batch_min);
            }
        }
        let want = st.batch;

        // --- Combine: absorb a pending offer into our own batch.
        let mut pending: Option<(usize, u64)> = None;
        for (i, slot) in self.slots.iter().enumerate() {
            if let Some(w) = slot.pending_offer() {
                pending = Some((i, w));
                break;
            }
        }

        // --- Or offer: under contention, with nothing to combine,
        // try to get served by another shard's traversal instead of
        // contending with it.
        if pending.is_none() && contended && !self.slots.is_empty() {
            match self.slots[shard % self.slots.len()]
                .offer(want, self.config.elim_patience)
            {
                OfferOutcome::Exchanged(values) => {
                    debug_assert_eq!(values.len() as u64, want);
                    st.stash = values;
                    return;
                }
                OfferOutcome::TimedOut => self.metrics.elim_timeouts.inc(),
                OfferOutcome::Busy => self.metrics.elim_busy.inc(),
            }
        }

        // --- Traverse, carrying any absorbed weight on top. A
        // weight-1 refill with nothing absorbed IS the scalar fast
        // path — take it directly (no batch bookkeeping, no Vec).
        let extra = pending.map_or(0, |(_, w)| w);
        if want + extra == 1 {
            st.stash.push(self.net.next_value(wire));
            return;
        }
        let mut values = self.net.next_batch(wire, want + extra);
        if let Some((slot, w)) = pending {
            let handoff = values.split_off(values.len() - w as usize);
            match self.slots[slot].fulfil(w, handoff) {
                Ok(()) => self.metrics.elim_hits.inc(),
                Err(spilled) => {
                    // The offerer withdrew first; keep the values —
                    // they are claimed and must eventually be served.
                    values.extend(spilled);
                    self.metrics.elim_spills.inc();
                }
            }
        }
        st.stash = values;
    }

    /// Each shard's current adaptive batch size (diagnostics; exact
    /// only at quiescence).
    #[must_use]
    pub fn batch_sizes(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.lock().batch).collect()
    }

    /// Total values claimed from the network but not yet handed out
    /// (the stashes' fill). Exact only at quiescence. The conservation
    /// oracle is `consumed + outstanding() == network total`.
    #[must_use]
    pub fn outstanding(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().stash.len() as u64).sum()
    }

    /// Drains and returns every stashed value (for quiescent density
    /// accounting in tests: `consumed ∪ drain_outstanding()` must be
    /// dense).
    #[must_use]
    pub fn drain_outstanding(&self) -> Vec<u64> {
        let mut all = Vec::new();
        for shard in &self.shards {
            all.append(&mut shard.lock().stash);
        }
        all
    }
}

impl<S: SyncApi> std::fmt::Debug for ShardedFrontEnd<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedFrontEnd")
            .field("shards", &self.shards.len())
            .field("elim_slots", &self.slots.len())
            .field("config", &self.config)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acn_topology::ComponentId;

    fn front(width: usize, shards: usize) -> ShardedFrontEnd {
        let net = Arc::new(SharedAdaptiveNetwork::new(width));
        net.split(&ComponentId::root()).unwrap();
        ShardedFrontEnd::new(net, shards)
    }

    #[test]
    fn single_shard_hands_out_values_and_conserves() {
        let fe = front(8, 1);
        let got: Vec<u64> = (0..40).map(|i| fe.next_value(0, i % 8)).collect();
        // No duplicates among served values.
        let mut sorted = got.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), got.len(), "duplicated value");
        // Conservation: consumed + stashed = claimed from the network.
        assert_eq!(got.len() as u64 + fe.outstanding(), fe.network().total_exited());
        // Density at quiescence.
        let mut all = got;
        all.extend(fe.drain_outstanding());
        all.sort_unstable();
        assert_eq!(all, (0..all.len() as u64).collect::<Vec<u64>>());
    }

    #[test]
    fn threads_on_distinct_shards_stay_dense() {
        let fe = Arc::new(front(8, 4));
        let handles: Vec<_> = (0..4usize)
            .map(|t| {
                let fe = Arc::clone(&fe);
                std::thread::spawn(move || {
                    (0..500).map(|i| fe.next_value(t, (t + i) % 8)).collect::<Vec<u64>>()
                })
            })
            .collect();
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker panicked"))
            .collect();
        assert_eq!(all.len() as u64 + fe.outstanding(), fe.network().total_exited());
        all.extend(fe.drain_outstanding());
        all.sort_unstable();
        assert_eq!(all, (0..all.len() as u64).collect::<Vec<u64>>());
    }

    #[test]
    fn batch_size_adapts_up_under_concurrency_and_down_alone() {
        let net = Arc::new(SharedAdaptiveNetwork::new(8));
        net.split(&ComponentId::root()).unwrap();
        let cfg = FrontendConfig {
            batch_min: 1,
            batch_max: 64,
            quiet_window: 3,
            elim_slots: 1,
            elim_patience: 2,
        };
        let fe = ShardedFrontEnd::with_config_in(net, 2, cfg);
        // Interleave refills of two shards: each sees the other's
        // ticket between its own → contended → batches grow.
        for _ in 0..cfg.batch_max.ilog2() + 2 {
            for shard in 0..2 {
                // Drain the stash so the next call refills.
                while fe.shards[shard].lock().stash.pop().is_some() {}
                let _ = fe.next_value(shard, 0);
            }
        }
        let grown = fe.shards[0].lock().batch;
        assert!(grown > cfg.batch_min, "interleaved refills must grow the batch");

        // Now refill only shard 0 repeatedly: adjacent tickets →
        // uncontended — but the batch must survive a full quiet
        // window before each halving (aloneness needs sustained
        // evidence; see FrontendConfig::quiet_window) ...
        for _ in 0..cfg.quiet_window - 1 {
            while fe.shards[0].lock().stash.pop().is_some() {}
            let _ = fe.next_value(0, 0);
        }
        assert_eq!(fe.shards[0].lock().batch, grown, "shrinking before the window");

        // ... and then decays back to the minimum.
        for _ in 0..(cfg.batch_max.ilog2() as u64 + 2) * cfg.quiet_window {
            while fe.shards[0].lock().stash.pop().is_some() {}
            let _ = fe.next_value(0, 0);
        }
        assert_eq!(fe.shards[0].lock().batch, cfg.batch_min);
    }

    #[test]
    fn elimination_pairs_offer_with_combiner() {
        // Deterministic pairing: post an offer directly on the slot,
        // then drive a combining refill through the front-end.
        let registry = Registry::new();
        let net = Arc::new(SharedAdaptiveNetwork::new(8));
        let mut fe = ShardedFrontEnd::with_config_in(
            net,
            2,
            FrontendConfig { batch_min: 4, batch_max: 4, quiet_window: 1, elim_slots: 1, elim_patience: 4 },
        );
        fe.attach_telemetry(&registry);
        let fe = Arc::new(fe);

        let offerer = {
            let fe = Arc::clone(&fe);
            std::thread::spawn(move || fe.slots[0].offer(3, 1 << 22))
        };
        while fe.slots[0].pending_offer().is_none() {
            std::hint::spin_loop();
        }
        // Shard 1 refills, finds the offer, combines 4 + 3 tokens.
        let v = fe.next_value(1, 0);
        let OfferOutcome::Exchanged(handed) = offerer.join().unwrap() else {
            panic!("offer must be fulfilled by the combining refill");
        };
        assert_eq!(handed.len(), 3);
        assert_eq!(registry.snapshot().counter("acn.exec.elim_hits"), Some(1));
        // All 7 claimed values are distinct and dense.
        let mut all = handed;
        all.push(v);
        all.extend(fe.drain_outstanding());
        all.sort_unstable();
        assert_eq!(all, (0..7u64).collect::<Vec<u64>>());
    }

    #[test]
    fn fixed_batch_config_pins_the_size() {
        let net = Arc::new(SharedAdaptiveNetwork::new(8));
        let fe = ShardedFrontEnd::with_config_in(
            net,
            2,
            FrontendConfig::default_for(2).fixed_batch(32),
        );
        let _ = fe.next_value(0, 0);
        assert_eq!(fe.shards[0].lock().batch, 32);
        assert_eq!(fe.outstanding(), 31);
    }
}
