//! Self-stabilization of the counting layer (paper Section 3.4).
//!
//! When a node crashes, the state of its components is lost or — worse —
//! reset to garbage. The paper points to Herlihy–Tirthapura \[HT03\]
//! ("Self-stabilizing smoothing and counting") for the recovery story:
//! balancing networks can be made self-stabilizing by *local* repair
//! actions that compare each element's state against the token counts on
//! its adjacent wires, and the technique "can be easily extended to the
//! more general components".
//!
//! This module implements that extension for the adaptive network. The
//! wire counts are exactly the ledgers the components already keep
//! (`arrivals` per input wire, `emitted` per output wire), plus the
//! client-side input ledger of the network. A stabilization pass walks
//! the components of the cut in topological order and applies the local
//! rule:
//!
//! > *my arrivals must equal what my upstream neighbours emitted onto my
//! > wires; my counter must equal my total arrivals; my emissions must be
//! > the round-robin of my counter.*
//!
//! One pass restores a legal (canonical flow) state of the whole network
//! from arbitrary corruption — provided the network is quiescent, which
//! is the standard setting for stabilization rounds. Tokens that the
//! corrupted state mis-emitted before the pass are history (stabilization
//! guarantees *future* legality, exactly as in \[HT03\]); the pass also
//! rewrites the output ledger so that application-level counter values
//! resume consistently.

use acn_sync::{RealSync, SyncApi};
use acn_telemetry::{Event as TelemetryEvent, Registry};
use acn_topology::{resolve_output, ComponentDag, ComponentId, OutputDestination};
use acn_trace::{Span, Tracer, SYSTEM_TRACE};

use crate::component::{port_emissions, Component};
use crate::local::LocalAdaptiveNetwork;

/// A single detected inconsistency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// The component's counter does not equal its total arrivals.
    CounterMismatch {
        /// The inconsistent component.
        id: ComponentId,
        /// Its counter value.
        tokens: u64,
        /// The sum of its arrival ledger.
        arrivals: u64,
    },
    /// A wire's receiver recorded a different count than its producer.
    WireMismatch {
        /// The receiving component.
        id: ComponentId,
        /// The receiving input port.
        port: usize,
        /// Tokens the producer put on the wire.
        sent: u64,
        /// Tokens the receiver recorded.
        received: u64,
    },
    /// The component's emission ledger is not the round-robin pattern of
    /// its counter (beyond what its owed ports explain).
    EmissionMismatch {
        /// The inconsistent component.
        id: ComponentId,
    },
}

/// Audits a quiescent network against the local legality rules. An empty
/// result means every component state is mutually consistent with its
/// neighbours and the client input ledger.
#[must_use]
pub fn audit(net: &LocalAdaptiveNetwork) -> Vec<Fault> {
    let mut faults = Vec::new();
    let tree = *net.tree();
    let style = net.style();
    for leaf in net.cut().leaves() {
        let comp = net.component(leaf).expect("cut leaf is live");
        let arrivals: u64 = comp.arrivals().iter().sum();
        if arrivals != comp.tokens() {
            faults.push(Fault::CounterMismatch {
                id: leaf.clone(),
                tokens: comp.tokens(),
                arrivals,
            });
        }
        for port in 0..comp.width() {
            let expected = port_emissions(comp.tokens(), comp.width(), port);
            if comp.emitted()[port] + comp.owed()[port] != expected {
                faults.push(Fault::EmissionMismatch { id: leaf.clone() });
                break;
            }
        }
    }
    // Wire consistency: what each producer sent must match what the
    // consumer received; network inputs check against the client ledger.
    for leaf in net.cut().leaves() {
        let comp = net.component(leaf).expect("cut leaf is live");
        for port in 0..comp.width() {
            match resolve_output(&tree, leaf, port, style) {
                OutputDestination::Wire(addr) => {
                    let owner = addr.owner_under(net.cut()).expect("valid cut");
                    let in_port =
                        acn_topology::input_port_of(&tree, &owner, &addr, style)
                            .expect("boundary wire has a port");
                    let received = net
                        .component(&owner)
                        .expect("owner is live")
                        .arrivals()[in_port];
                    let sent = comp.emitted()[port];
                    if sent != received {
                        faults.push(Fault::WireMismatch {
                            id: owner,
                            port: in_port,
                            sent,
                            received,
                        });
                    }
                }
                OutputDestination::NetworkOutput(wire) => {
                    let recorded = net.output_counts()[wire];
                    if comp.emitted()[port] != recorded {
                        faults.push(Fault::WireMismatch {
                            id: leaf.clone(),
                            port,
                            sent: comp.emitted()[port],
                            received: recorded,
                        });
                    }
                }
            }
        }
    }
    // Network inputs against the client ledger.
    for wire in 0..net.width() {
        let addr = acn_topology::network_input_address(&tree, wire, style);
        let owner = addr.owner_under(net.cut()).expect("valid cut");
        let in_port = acn_topology::input_port_of(&tree, &owner, &addr, style)
            .expect("input wire has a port");
        let received = net.component(&owner).expect("owner is live").arrivals()[in_port];
        let sent = net.input_counts()[wire];
        if sent != received {
            faults.push(Fault::WireMismatch { id: owner, port: in_port, sent, received });
        }
    }
    faults
}

/// One stabilization pass: rebuilds every component's state from the
/// trusted client-side input ledger, walking the cut in topological
/// order (each component's arrivals are the recomputed emissions of its
/// upstream neighbours), and rewrites the output ledger to match.
/// Returns the number of components whose state was corrected.
///
/// Must be called in a quiescent state (no tokens in flight); this is
/// the standard operating model of self-stabilization rounds.
pub fn stabilize(net: &mut LocalAdaptiveNetwork) -> usize {
    let tree = *net.tree();
    let style = net.style();
    let dag = ComponentDag::with_style(&tree, net.cut(), style);
    let order = dag.topological_order();
    let mut corrected = 0usize;
    let mut new_outputs = vec![0u64; net.width()];
    // Recomputed arrival profiles, indexed like the DAG vertices.
    let mut profiles: Vec<Vec<u64>> = dag
        .vertices()
        .iter()
        .map(|v| vec![0u64; tree.info(v).expect("valid leaf").width])
        .collect();
    // Seed with the client ledger.
    for wire in 0..net.width() {
        let addr = acn_topology::network_input_address(&tree, wire, style);
        let owner = addr.owner_under(net.cut()).expect("valid cut");
        let port = acn_topology::input_port_of(&tree, &owner, &addr, style)
            .expect("input wire has a port");
        let vi = dag.vertex_index(&owner).expect("owner is a vertex");
        profiles[vi][port] = net.input_counts()[wire];
    }
    for &vi in &order {
        let id = dag.vertices()[vi].clone();
        let width = tree.info(&id).expect("valid leaf").width;
        let profile = profiles[vi].clone();
        let tokens: u64 = profile.iter().sum();
        // Propagate the canonical emissions downstream.
        for port in 0..width {
            let sent = port_emissions(tokens, width, port);
            match resolve_output(&tree, &id, port, style) {
                OutputDestination::Wire(addr) => {
                    let owner = addr.owner_under(net.cut()).expect("valid cut");
                    let in_port = acn_topology::input_port_of(&tree, &owner, &addr, style)
                        .expect("boundary wire has a port");
                    let di = dag.vertex_index(&owner).expect("consumer is a vertex");
                    profiles[di][in_port] = sent;
                }
                OutputDestination::NetworkOutput(wire) => {
                    new_outputs[wire] = sent;
                }
            }
        }
        let emitted: Vec<u64> =
            (0..width).map(|q| port_emissions(tokens, width, q)).collect();
        let repaired =
            Component::from_parts(&tree, &id, tokens, profile, emitted, vec![0; width]);
        if net.component(&id) != Some(&repaired) {
            corrected += 1;
            net.replace_component(repaired);
        }
    }
    if net.output_counts() != new_outputs.as_slice() {
        net.set_output_counts(new_outputs);
    }
    corrected
}

/// Like [`audit`], but also records the fault count in `registry`
/// (`acn.dist.audit_faults` gauge) and emits a `stabilize.audit` event.
#[must_use]
pub fn audit_with_telemetry(net: &LocalAdaptiveNetwork, registry: &Registry) -> Vec<Fault> {
    let faults = audit(net);
    registry.gauge("acn.dist.audit_faults").set(faults.len() as f64);
    registry.emit(TelemetryEvent::new("stabilize.audit").with("faults", faults.len()));
    faults
}

/// Like [`stabilize`], but also counts corrected components in
/// `registry` (`acn.dist.stabilize_corrected` counter) and emits a
/// `stabilize.pass` event.
pub fn stabilize_with_telemetry(net: &mut LocalAdaptiveNetwork, registry: &Registry) -> usize {
    let corrected = stabilize(net);
    registry.counter("acn.dist.stabilize_corrected").add(corrected as u64);
    registry.emit(TelemetryEvent::new("stabilize.pass").with("corrected", corrected));
    corrected
}

/// Like [`audit_with_telemetry`], but additionally records a
/// `stabilize.audit` system span (monotonic timestamps from the
/// `acn-sync` clock seam, fault count as a field) in `tracer`.
#[must_use]
pub fn audit_traced(
    net: &LocalAdaptiveNetwork,
    registry: &Registry,
    tracer: &Tracer,
) -> Vec<Fault> {
    let start = RealSync::monotonic_now();
    let faults = audit_with_telemetry(net, registry);
    tracer.record(
        Span::new("stabilize.audit", SYSTEM_TRACE)
            .between(start, RealSync::monotonic_now())
            .with("faults", faults.len() as u64),
    );
    faults
}

/// Like [`stabilize_with_telemetry`], but additionally records a
/// `stabilize.pass` system span (monotonic timestamps, corrected
/// component count as a field) in `tracer`.
pub fn stabilize_traced(
    net: &mut LocalAdaptiveNetwork,
    registry: &Registry,
    tracer: &Tracer,
) -> usize {
    let start = RealSync::monotonic_now();
    let corrected = stabilize_with_telemetry(net, registry);
    tracer.record(
        Span::new("stabilize.pass", SYSTEM_TRACE)
            .between(start, RealSync::monotonic_now())
            .with("corrected", corrected as u64),
    );
    corrected
}

#[cfg(test)]
mod tests {
    use super::*;
    use acn_bitonic::step::is_step_sequence;
    use acn_topology::Cut;

    fn lcg(state: &mut u64) -> u64 {
        *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        *state >> 33
    }

    fn warmed_network(w: usize, warmup: usize, seed: &mut u64) -> LocalAdaptiveNetwork {
        let tree = acn_topology::Tree::new(w);
        let mut net = LocalAdaptiveNetwork::new(w);
        net.reconfigure(&Cut::uniform(&tree, 1 + (warmup % tree.max_level().max(1))));
        for t in 0..warmup {
            let wire = (lcg(seed) as usize) % w;
            let out = net.push(wire);
            assert_eq!(out, t % w);
        }
        net
    }

    #[test]
    fn clean_network_audits_clean() {
        let mut seed = 3u64;
        let net = warmed_network(16, 23, &mut seed);
        assert!(audit(&net).is_empty(), "{:?}", audit(&net));
    }

    #[test]
    fn corruption_is_detected() {
        let mut seed = 5u64;
        let mut net = warmed_network(16, 17, &mut seed);
        let victim = net.cut().leaves().iter().next().expect("non-empty cut").clone();
        net.component_mut(&victim).expect("live").set_tokens(999);
        let faults = audit(&net);
        assert!(!faults.is_empty(), "corruption went undetected");
    }

    #[test]
    fn stabilize_restores_legality_and_counting() {
        for w in [8usize, 16] {
            for round in 0..6u64 {
                let mut seed = round * 31 + 7;
                let mut net = warmed_network(w, 10 + round as usize * 3, &mut seed);
                // Corrupt several components arbitrarily.
                let victims: Vec<_> = net
                    .cut()
                    .leaves()
                    .iter()
                    .filter(|_| lcg(&mut seed).is_multiple_of(2))
                    .cloned()
                    .collect();
                for v in &victims {
                    let garbage = lcg(&mut seed) % 1000;
                    net.component_mut(v).expect("live").set_tokens(garbage);
                }
                if !victims.is_empty() {
                    assert!(!audit(&net).is_empty(), "w={w} round={round}");
                }
                let corrected = stabilize(&mut net);
                assert!(
                    corrected >= victims.len().min(1),
                    "w={w} round={round}: corrected {corrected}"
                );
                assert!(audit(&net).is_empty(), "w={w} round={round}: {:?}", audit(&net));
                // Counting resumes: outputs continue the canonical
                // pattern of the recorded inputs.
                let baseline = net.total_exited();
                let before: Vec<u64> = net.output_counts().to_vec();
                assert!(is_step_sequence(&before), "w={w} round={round}: {before:?}");
                for extra in 0..2 * w as u64 {
                    let wire = (lcg(&mut seed) as usize) % w;
                    let out = net.push(wire);
                    assert_eq!(
                        out as u64,
                        (baseline + extra) % w as u64,
                        "w={w} round={round}"
                    );
                }
                assert!(audit(&net).is_empty());
            }
        }
    }

    #[test]
    fn telemetry_wrappers_record_faults_and_corrections() {
        let registry = Registry::new();
        let mut seed = 17u64;
        let mut net = warmed_network(16, 21, &mut seed);
        assert!(audit_with_telemetry(&net, &registry).is_empty());
        assert_eq!(registry.snapshot().gauge("acn.dist.audit_faults"), Some(0.0));
        let victim = net.cut().leaves().iter().next().expect("non-empty cut").clone();
        net.component_mut(&victim).expect("live").set_tokens(4242);
        assert!(!audit_with_telemetry(&net, &registry).is_empty());
        let snap = registry.snapshot();
        assert!(snap.gauge("acn.dist.audit_faults").expect("gauge present") >= 1.0);
        let corrected = stabilize_with_telemetry(&mut net, &registry);
        assert!(corrected >= 1);
        assert_eq!(
            registry.snapshot().counter("acn.dist.stabilize_corrected"),
            Some(corrected as u64)
        );
        assert!(audit(&net).is_empty());
    }

    #[test]
    fn traced_wrappers_record_stabilization_spans() {
        let registry = Registry::new();
        let tracer = Tracer::new(64);
        let mut seed = 13u64;
        let mut net = warmed_network(16, 19, &mut seed);
        assert!(audit_traced(&net, &registry, &tracer).is_empty());
        let victim = net.cut().leaves().iter().next().expect("non-empty cut").clone();
        net.component_mut(&victim).expect("live").set_tokens(777);
        let corrected = stabilize_traced(&mut net, &registry, &tracer);
        assert!(corrected >= 1);
        let spans = tracer.spans();
        let audit_span =
            spans.iter().find(|s| s.kind == "stabilize.audit").expect("audit span recorded");
        assert_eq!(audit_span.field("faults"), Some(0));
        let pass_span =
            spans.iter().find(|s| s.kind == "stabilize.pass").expect("pass span recorded");
        assert_eq!(pass_span.field("corrected"), Some(corrected as u64));
        assert!(audit(&net).is_empty());
    }

    #[test]
    fn stabilize_is_idempotent() {
        let mut seed = 11u64;
        let mut net = warmed_network(16, 29, &mut seed);
        let first = stabilize(&mut net);
        assert_eq!(first, 0, "clean network needed corrections");
        net.component_mut(&net.cut().leaves().iter().next().unwrap().clone())
            .unwrap()
            .set_tokens(12345);
        let second = stabilize(&mut net);
        assert!(second >= 1);
        let third = stabilize(&mut net);
        assert_eq!(third, 0, "stabilize must be idempotent");
    }

    #[test]
    fn stabilize_after_reconfiguration_storm() {
        let w = 16;
        let tree = acn_topology::Tree::new(w);
        let mut net = LocalAdaptiveNetwork::new(w);
        let mut seed = 99u64;
        let mut pushed = 0u64;
        for _ in 0..120 {
            match lcg(&mut seed) % 4 {
                0 => {
                    let splittable: Vec<_> = net
                        .cut()
                        .leaves()
                        .iter()
                        .filter(|l| tree.info(l).map(|i| i.width >= 4).unwrap_or(false))
                        .cloned()
                        .collect();
                    if !splittable.is_empty() {
                        let pick = splittable[(lcg(&mut seed) as usize) % splittable.len()].clone();
                        let _ = net.split(&pick);
                    }
                }
                1 => {
                    let parents: Vec<_> =
                        net.cut().leaves().iter().filter_map(|l| l.parent()).collect();
                    if !parents.is_empty() {
                        let pick = parents[(lcg(&mut seed) as usize) % parents.len()].clone();
                        let _ = net.merge(&pick);
                    }
                }
                _ => {
                    let wire = (lcg(&mut seed) as usize) % w;
                    assert_eq!(net.push(wire) as u64, pushed % w as u64);
                    pushed += 1;
                }
            }
        }
        // A legal history audits clean even after arbitrary churn...
        assert!(audit(&net).is_empty(), "{:?}", audit(&net));
        // ...and stabilization never breaks a legal network.
        let _ = stabilize(&mut net);
        for extra in 0..w as u64 {
            let wire = (lcg(&mut seed) as usize) % w;
            assert_eq!(net.push(wire) as u64, (pushed + extra) % w as u64);
        }
    }
}
