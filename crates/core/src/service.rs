//! A self-sizing shared counter: the paper's whole pipeline behind one
//! type.
//!
//! [`ElasticCounter`] owns an overlay ring, runs the decentralized
//! size-estimation and split/merge rules whenever membership changes,
//! and reconfigures its adaptive counting network to the converged cut —
//! so a user gets "a counter that resizes itself as nodes come and go"
//! without touching any of the machinery.

use acn_overlay::{NodeId, Ring};

use crate::local::LocalAdaptiveNetwork;
use crate::manager::{ConvergedNetwork, NetworkSnapshot};

/// A shared counter whose parallelism tracks the hosting system's size.
///
/// # Example
///
/// ```
/// use acn_core::ElasticCounter;
///
/// let mut counter = ElasticCounter::new(64, 0xE1A57);
/// // One node: a centralized counter.
/// assert_eq!(counter.components(), 1);
/// assert_eq!(counter.next(), 0);
///
/// // The system grows; the counter re-sizes itself.
/// for _ in 0..63 {
///     counter.join();
/// }
/// assert!(counter.components() > 1);
/// assert_eq!(counter.next(), 1); // values keep flowing densely
/// ```
#[derive(Debug, Clone)]
pub struct ElasticCounter {
    net: LocalAdaptiveNetwork,
    ring: Ring,
    seed: u64,
    arrivals: u64,
    splits: u64,
    merges: u64,
}

impl ElasticCounter {
    /// A counter of width `w` on a fresh single-node system.
    ///
    /// # Panics
    ///
    /// Panics if `w` is not a power of two or `w < 2`.
    #[must_use]
    pub fn new(w: usize, seed: u64) -> Self {
        let mut ring = Ring::new();
        let mut s = seed;
        ring.add_random_node(&mut s);
        let mut counter = ElasticCounter {
            net: LocalAdaptiveNetwork::new(w),
            ring,
            seed: s,
            arrivals: 0,
            splits: 0,
            merges: 0,
        };
        counter.reconfigure();
        counter
    }

    /// The next counter value. Input wires are spread round-robin, as
    /// independent clients would.
    ///
    /// Named `next` to match counting-network convention (`next_value`,
    /// fetch-and-increment); this is not an `Iterator` — it never ends.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        let wire = (self.arrivals % self.net.width() as u64) as usize;
        self.arrivals += 1;
        self.net.next_value(wire)
    }

    /// A node joins the system; the counter re-runs the decentralized
    /// rules and resizes if the estimates call for it. Returns the new
    /// node's id.
    pub fn join(&mut self) -> NodeId {
        let node = self.ring.add_random_node(&mut self.seed);
        self.reconfigure();
        node
    }

    /// A node leaves the system (the caller picks which; `None` = an
    /// arbitrary one). Returns the departed id, or `None` when the last
    /// node cannot leave.
    pub fn leave(&mut self, node: Option<NodeId>) -> Option<NodeId> {
        if self.ring.len() <= 1 {
            return None;
        }
        let victim = match node {
            Some(n) if self.ring.contains(n) => n,
            Some(_) => return None,
            None => {
                let nodes: Vec<NodeId> = self.ring.nodes().collect();
                nodes[(acn_overlay::splitmix64(&mut self.seed) as usize) % nodes.len()]
            }
        };
        self.ring.remove_node(victim);
        self.reconfigure();
        Some(victim)
    }

    /// Number of nodes currently hosting the counter.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.ring.len()
    }

    /// Number of live components implementing the counter.
    #[must_use]
    pub fn components(&self) -> usize {
        self.net.cut().leaves().len()
    }

    /// Reconfigurations performed so far: `(splits, merges)`.
    #[must_use]
    pub fn reconfigurations(&self) -> (u64, u64) {
        (self.splits, self.merges)
    }

    /// A structural snapshot (effective width/depth, placement stats).
    #[must_use]
    pub fn snapshot(&self) -> NetworkSnapshot {
        ConvergedNetwork::new(self.net.width(), self.ring.clone()).snapshot()
    }

    /// Re-runs the decentralized split/merge rules for the current
    /// membership and reconfigures the network to the converged cut.
    fn reconfigure(&mut self) {
        let converged = ConvergedNetwork::new(self.net.width(), self.ring.clone());
        let target = converged.cut();
        if target != self.net.cut() {
            let before = self.net.cut().leaves().len();
            self.net.reconfigure(target);
            let after = self.net.cut().leaves().len();
            if after > before {
                self.splits += 1;
            } else {
                self.merges += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_stay_dense_through_full_lifecycle() {
        let mut c = ElasticCounter::new(64, 7);
        let mut expected = 0u64;
        let take = |c: &mut ElasticCounter, n: u64, expected: &mut u64| {
            for _ in 0..n {
                assert_eq!(c.next(), *expected);
                *expected += 1;
            }
        };
        take(&mut c, 10, &mut expected);
        for _ in 0..127 {
            c.join();
        }
        assert!(c.components() > 6, "128 nodes should split repeatedly");
        take(&mut c, 50, &mut expected);
        while c.nodes() > 2 {
            c.leave(None);
        }
        assert!(c.components() <= 6, "2 nodes should fold back");
        take(&mut c, 30, &mut expected);
        let (splits, merges) = c.reconfigurations();
        assert!(splits > 0 && merges > 0);
    }

    #[test]
    fn leave_respects_membership() {
        let mut c = ElasticCounter::new(8, 3);
        assert_eq!(c.leave(None), None, "the last node cannot leave");
        let n = c.join();
        assert_eq!(c.nodes(), 2);
        assert_eq!(c.leave(Some(n)), Some(n));
        assert_eq!(c.nodes(), 1);
        assert_eq!(c.leave(Some(n)), None, "unknown nodes cannot leave");
    }

    #[test]
    fn snapshot_reflects_membership() {
        let mut c = ElasticCounter::new(1 << 10, 11);
        for _ in 0..63 {
            c.join();
        }
        let snap = c.snapshot();
        assert_eq!(snap.nodes, 64);
        assert!(snap.effective_width >= 2);
    }
}
