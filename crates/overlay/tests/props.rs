//! Property tests for the overlay ring and Chord protocol.

use acn_overlay::{ChordNet, NodeId, Ring};
use proptest::prelude::*;

proptest! {
    /// Finger-table lookups always agree with the ownership oracle.
    #[test]
    fn lookup_matches_oracle(
        ids in proptest::collection::btree_set(any::<u64>(), 1..64),
        point in any::<u64>(),
    ) {
        let mut ring = Ring::new();
        for &id in &ids {
            ring.add_node(NodeId(id));
        }
        let from = NodeId(*ids.iter().next().unwrap());
        let (owner, hops) = ring.lookup_hops(from, point);
        prop_assert_eq!(owner, ring.successor_of_point(point));
        prop_assert!(hops <= ids.len() + 1);
    }

    /// Walking all the way around the ring covers the full circumference.
    #[test]
    fn walk_distance_full_circle(ids in proptest::collection::btree_set(any::<u64>(), 1..40)) {
        let mut ring = Ring::new();
        for &id in &ids {
            ring.add_node(NodeId(id));
        }
        let start = NodeId(*ids.iter().next().unwrap());
        let d = ring.walk_distance(start, ids.len());
        prop_assert!((d - 1.0).abs() < 1e-9, "full walk covered {d}");
    }

    /// A bootstrapped Chord network resolves every key to the oracle
    /// owner.
    #[test]
    fn chord_bootstrap_agrees_with_oracle(
        ids in proptest::collection::btree_set(any::<u64>(), 2..48),
        keys in proptest::collection::vec(any::<u64>(), 1..10),
    ) {
        let node_ids: Vec<NodeId> = ids.iter().map(|&i| NodeId(i)).collect();
        let mut net = ChordNet::bootstrap(&node_ids, 3);
        let mut ring = Ring::new();
        for &id in &ids {
            ring.add_node(NodeId(id));
        }
        let from = node_ids[0];
        for key in keys {
            let (owner, _) = net.lookup(from, key).expect("bootstrap state is perfect");
            prop_assert_eq!(owner, ring.successor_of_point(key));
        }
    }
}
