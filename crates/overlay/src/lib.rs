//! A simulated Chord-style peer-to-peer overlay.
//!
//! Two levels of fidelity are provided:
//!
//! - [`Ring`] — the *global* view: membership oracle, consistent-hash
//!   ownership (`h(name) -> node`), successor walks, and hop-counted
//!   greedy lookups. The counting layer consumes this interface, and
//!   every query corresponds to an operation a real Chord node performs
//!   locally or with the counted number of messages.
//! - [`ChordNet`] — the *protocol* view: per-node successor lists,
//!   predecessors and finger tables maintained by explicit join /
//!   stabilization / finger-fixing rounds, with lookups routed through
//!   possibly-stale local state. This substantiates the paper's model
//!   assumption (Section 1.4) that such a layer exists and converges.
//!
//! # Example
//!
//! ```
//! use acn_overlay::{Ring, NodeId};
//!
//! let mut ring = Ring::new();
//! let mut seed = 42u64;
//! for _ in 0..100 {
//!     ring.add_random_node(&mut seed);
//! }
//! assert_eq!(ring.len(), 100);
//! let owner = ring.owner_of_name(7);
//! assert!(ring.contains(owner));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chord;
mod ring;

pub use chord::{ChordNet, ChordStats};
pub use ring::{hash_name, splitmix64, NodeId, Ring};
